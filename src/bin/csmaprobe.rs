//! `csmaprobe` — command-line front end to the measurement library.
//!
//! Configure a simulated WLAN (or wired) link and run any of the
//! bandwidth-measurement tools against it:
//!
//! ```text
//! csmaprobe capacity  [--bytes 1500]
//! csmaprobe steady    --rate 5.0 [link options]
//! csmaprobe train     --rate 5.0 --n 50 --reps 200 [link options]
//! csmaprobe pair      --pairs 300 [link options]
//! csmaprobe slops     [link options]
//! csmaprobe topp      [link options]
//! csmaprobe chirp     [link options]
//! csmaprobe transient --rate 5.0 --n 300 --reps 1000 [link options]
//! csmaprobe serve     [--addr H:P] [--out-dir D] [--shards K] [--drivers N]
//!                     [--table FILE] [--port-file FILE] [--workers W]
//!
//! link options:
//!   --cross <Mb/s>       contending Poisson cross-traffic (repeatable)
//!   --fifo-cross <Mb/s>  FIFO cross-traffic sharing the probe queue
//!   --wired <C Mb/s>     use a wired FIFO link of this capacity instead
//!   --seed <u64>         master seed (default 0xC5AA)
//! ```
//!
//! All rates are Mb/s on the command line; output is plain text.

use csmaprobe::core::link::{LinkConfig, ProbeTarget, WiredLink, WlanLink};
use csmaprobe::core::transient::TransientExperiment;
use csmaprobe::desim::time::Dur;
use csmaprobe::mac::measured_standalone_capacity_bps;
use csmaprobe::phy::Phy;
use csmaprobe::probe::chirp::ChirpProbe;
use csmaprobe::probe::pair::PacketPairProbe;
use csmaprobe::probe::slops::SlopsEstimator;
use csmaprobe::probe::topp::ToppEstimator;
use csmaprobe::probe::train::TrainProbe;
use csmaprobe::traffic::probe::ProbeTrain;

struct Args {
    cmd: String,
    cross_mbps: Vec<f64>,
    fifo_cross_mbps: Option<f64>,
    wired_mbps: Option<f64>,
    rate_mbps: f64,
    n: usize,
    reps: usize,
    pairs: usize,
    bytes: u32,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: csmaprobe <capacity|steady|train|pair|slops|topp|chirp|transient> \
         [--cross M]... [--fifo-cross M] [--wired C] [--rate M] [--n N] \
         [--reps R] [--pairs P] [--bytes B] [--seed S]\n\
         \x20      csmaprobe serve [--addr H:P] [--out-dir D] [--shards K] [--drivers N] \
         [--table FILE] [--port-file FILE] [--workers W]"
    );
    std::process::exit(2);
}

/// `csmaprobe serve`: run the resident session daemon until SIGTERM,
/// then drain, finalize the session table, and exit 0 iff the drain
/// audit held (every accepted session done-and-persisted or
/// cancelled).
fn serve_main(argv: &[String]) -> ! {
    let mut cfg = csmaprobe::service::server::ServeConfig::default();
    let mut workers: Option<usize> = None;
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> &str {
            argv.get(i + 1)
                .map(|s| s.as_str())
                .unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--addr" => cfg.addr = need(i).to_string(),
            "--out-dir" => cfg.out_dir = need(i).into(),
            "--shards" => cfg.shards = need(i).parse().unwrap_or_else(|_| usage()),
            "--drivers" => cfg.drivers = need(i).parse().unwrap_or_else(|_| usage()),
            "--table" => cfg.table = Some(need(i).into()),
            "--port-file" => cfg.port_file = Some(need(i).into()),
            "--workers" => workers = Some(need(i).parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
        i += 2;
    }
    if let Some(w) = workers {
        csmaprobe::desim::executor::set_worker_limit(w);
    }
    match csmaprobe::service::server::serve(cfg) {
        Ok(summary) if summary.consistent => std::process::exit(0),
        Ok(summary) => {
            eprintln!(
                "csmaprobe serve: drain audit FAILED: accepted={} done={} cancelled={} persisted={}",
                summary.accepted, summary.done, summary.cancelled, summary.persisted
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("csmaprobe serve: {e}");
            std::process::exit(1);
        }
    }
}

fn parse() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    if argv.len() < 2 {
        usage();
    }
    if argv[1] == "serve" {
        serve_main(&argv[2..]);
    }
    let mut args = Args {
        cmd: argv[1].clone(),
        cross_mbps: Vec::new(),
        fifo_cross_mbps: None,
        wired_mbps: None,
        rate_mbps: 5.0,
        n: 50,
        reps: 200,
        pairs: 300,
        bytes: 1500,
        seed: 0xC5AA,
    };
    let mut i = 2;
    while i < argv.len() {
        let need = |i: usize| -> &str {
            argv.get(i + 1)
                .map(|s| s.as_str())
                .unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--cross" => args
                .cross_mbps
                .push(need(i).parse().unwrap_or_else(|_| usage())),
            "--fifo-cross" => {
                args.fifo_cross_mbps = Some(need(i).parse().unwrap_or_else(|_| usage()))
            }
            "--wired" => args.wired_mbps = Some(need(i).parse().unwrap_or_else(|_| usage())),
            "--rate" => args.rate_mbps = need(i).parse().unwrap_or_else(|_| usage()),
            "--n" => args.n = need(i).parse().unwrap_or_else(|_| usage()),
            "--reps" => args.reps = need(i).parse().unwrap_or_else(|_| usage()),
            "--pairs" => args.pairs = need(i).parse().unwrap_or_else(|_| usage()),
            "--bytes" => args.bytes = need(i).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = need(i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 2;
    }
    args
}

fn build_wlan(args: &Args) -> WlanLink {
    let mut cfg = LinkConfig::default().probe_bytes(args.bytes);
    for &c in &args.cross_mbps {
        cfg = cfg.contending_bps(c * 1e6);
    }
    if let Some(f) = args.fifo_cross_mbps {
        cfg = cfg.fifo_cross_bps(f * 1e6);
    }
    WlanLink::new(cfg)
}

fn target(args: &Args) -> Box<dyn ProbeTarget> {
    match args.wired_mbps {
        Some(c) => {
            let cross = args.cross_mbps.iter().sum::<f64>() * 1e6;
            Box::new(WiredLink::new(c * 1e6, cross))
        }
        None => Box::new(build_wlan(args)),
    }
}

fn main() {
    let args = parse();
    match args.cmd.as_str() {
        "capacity" => {
            let c =
                measured_standalone_capacity_bps(&Phy::dsss_11mbps(), args.bytes, 3000, args.seed);
            println!(
                "stand-alone DCF capacity ({}B frames): {:.3} Mb/s",
                args.bytes,
                c / 1e6
            );
        }
        "steady" => {
            let link = build_wlan(&args);
            let pt = link.steady_state(args.rate_mbps * 1e6, Dur::from_secs(8), args.seed);
            println!("input rate:   {:.3} Mb/s", pt.input_rate_bps / 1e6);
            println!("probe output: {:.3} Mb/s", pt.output_rate_bps / 1e6);
            for (k, c) in pt.contending_bps.iter().enumerate() {
                println!("contender {k}:  {:.3} Mb/s", c / 1e6);
            }
            if pt.fifo_cross_bps > 0.0 {
                println!("fifo cross:   {:.3} Mb/s", pt.fifo_cross_bps / 1e6);
            }
        }
        "train" => {
            let t = target(&args);
            let m = TrainProbe::new(args.n, args.bytes, args.rate_mbps * 1e6).measure(
                t.as_ref(),
                args.reps,
                args.seed,
            );
            println!(
                "{}-packet trains at {:.2} Mb/s over {} reps:",
                args.n, args.rate_mbps, args.reps
            );
            println!(
                "E[gO]   = {:.6} ms (95% ±{:.6})",
                m.mean_output_gap_s() * 1e3,
                m.gap_ci95_s() * 1e3
            );
            println!("L/E[gO] = {:.3} Mb/s", m.output_rate_bps() / 1e6);
        }
        "pair" => {
            let t = target(&args);
            let m = PacketPairProbe::new(args.bytes, args.pairs).measure(t.as_ref(), args.seed);
            println!("packet pairs ({}):", args.pairs);
            println!(
                "mean-dispersion rate:   {:.3} Mb/s",
                m.rate_from_mean_bps() / 1e6
            );
            println!(
                "median-dispersion rate: {:.3} Mb/s",
                m.rate_from_median_bps() / 1e6
            );
            println!(
                "min-dispersion rate:    {:.3} Mb/s",
                m.rate_from_min_bps() / 1e6
            );
        }
        "slops" => {
            let t = target(&args);
            let r = SlopsEstimator::default().run(t.as_ref(), args.seed);
            println!("SLoPS-style estimate: {:.3} Mb/s", r.estimate_bps / 1e6);
        }
        "topp" => {
            let t = target(&args);
            match ToppEstimator::default().run(t.as_ref(), args.seed) {
                Some(r) => {
                    println!(
                        "TOPP available bandwidth: {:.3} Mb/s",
                        r.available_bps / 1e6
                    );
                    println!("TOPP capacity:            {:.3} Mb/s", r.capacity_bps / 1e6);
                }
                None => println!("TOPP: no congestion within the probed range"),
            }
        }
        "chirp" => {
            let t = target(&args);
            let r = ChirpProbe::default().measure(t.as_ref(), args.seed);
            println!(
                "chirp estimate: {:.3} Mb/s ({} chirps uncongested, {} fully congested)",
                r.estimate_bps() / 1e6,
                r.saturated_high,
                r.saturated_low
            );
        }
        "transient" => {
            let exp = TransientExperiment {
                link: build_wlan(&args),
                train: ProbeTrain::from_rate(args.n, args.bytes, args.rate_mbps * 1e6),
                reps: args.reps,
                seed: args.seed,
            };
            let data = exp.run();
            let steady = data.steady_mean(args.n / 2);
            let profile = data.mean_profile();
            println!("steady-state mean access delay: {:.4} ms", steady * 1e3);
            println!("first-packet mean access delay: {:.4} ms", profile[0] * 1e3);
            for tol in [0.1, 0.01] {
                let est = data.transient_length(args.n / 2, tol);
                println!(
                    "transient length (rel. tol {tol}): {:?} packets",
                    est.first_within.map(|i| i + 1)
                );
            }
        }
        _ => usage(),
    }
}
