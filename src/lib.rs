//! # csmaprobe
//!
//! A Rust reproduction of **"Impact of Transient CSMA/CA Access Delays
//! on Active Bandwidth Measurements"** (Portoles-Comeras, Cabellos-
//! Aparicio, Banchs, Mangues-Bafalluy, Domingo-Pascual — IMC 2009).
//!
//! This facade crate re-exports the whole workspace under stable paths:
//!
//! | module | contents |
//! |---|---|
//! | [`desim`] | discrete-event engine, integer time, seeded RNG, replication |
//! | [`phy`] | IEEE 802.11b/g PHY timing (airtimes, SIFS/DIFS/slots, CW) |
//! | [`mac`] | DCF CSMA/CA simulator + Bianchi saturation model |
//! | [`traffic`] | Poisson/CBR/on-off/trace sources, probe trains, loads |
//! | [`queueing`] | FIFO substrate, Lindley trace simulator, sample paths |
//! | [`stats`] | KS test, MSER-m, histograms, transient-length estimation |
//! | [`core`] | the paper's models: rate-response curves, dispersion bounds |
//! | [`probe`] | measurement tools: packet pair/train, scanners, estimators |
//! | [`service`] | resident probe-session daemon (`csmaprobe serve`) |
//!
//! ## Quickstart
//!
//! ```
//! use csmaprobe::core::link::{WlanLink, LinkConfig};
//! use csmaprobe::probe::train::TrainProbe;
//!
//! // A WLAN link at 11 Mb/s with one contending station offering 2 Mb/s.
//! let cfg = LinkConfig::default().contending_bps(2_000_000.0);
//! let link = WlanLink::new(cfg);
//!
//! // Measure the rate response at 5 Mb/s input with 10-packet trains.
//! let probe = TrainProbe::new(10, 1500, 5_000_000.0);
//! let m = probe.measure(&link, 5, 0xC0FFEE);
//! assert!(m.output_rate_bps() > 0.0);
//! ```

pub use csmaprobe_core as core;
pub use csmaprobe_desim as desim;
pub use csmaprobe_mac as mac;
pub use csmaprobe_phy as phy;
pub use csmaprobe_probe as probe;
pub use csmaprobe_queueing as queueing;
pub use csmaprobe_service as service;
pub use csmaprobe_stats as stats;
pub use csmaprobe_traffic as traffic;
