//! The paper's §7.4 fix (Fig 17): treat the transient as a simulation
//! warm-up problem and truncate it with MSER-2 — better estimates from
//! the *same* 20-packet trains.
//!
//! Run with: `cargo run --release --example mser_truncation`

use csmaprobe::core::link::{LinkConfig, WlanLink};
use csmaprobe::desim::derive_seed;
use csmaprobe::probe::mser::MserProbe;
use csmaprobe::probe::train::TrainProbe;

fn main() {
    let link = WlanLink::new(LinkConfig::default().contending_bps(4.5e6));

    println!("20-packet trains vs steady state, with and without MSER-2 truncation");
    println!("ri_mbps\tsteady\traw20\tmser2\tcut_pkts");
    let mut raw_err = 0.0;
    let mut cor_err = 0.0;
    for k in 1..=10 {
        let ri = k as f64 * 1e6;
        let steady = TrainProbe::new(1000, 1500, ri)
            .measure(&link, 5, derive_seed(11, k))
            .output_rate_bps();
        let m = MserProbe::new(20, 1500, ri, 2).measure(&link, 400, derive_seed(12, k));
        println!(
            "{:.1}\t{:.3}\t{:.3}\t{:.3}\t{:.1}",
            ri / 1e6,
            steady / 1e6,
            m.raw_rate_bps() / 1e6,
            m.corrected_rate_bps() / 1e6,
            m.mean_truncated
        );
        if ri >= 4e6 {
            raw_err += (m.raw_rate_bps() - steady).abs();
            cor_err += (m.corrected_rate_bps() - steady).abs();
        }
    }
    println!(
        "\nsummed |error| beyond the knee: raw {:.3} Mb/s -> MSER-2 {:.3} Mb/s",
        raw_err / 1e6,
        cor_err / 1e6
    );
    println!("accuracy improves with no extra probing traffic — the transient packets");
    println!("flagged by MSER are simply removed from the dispersion average.");
}
