//! Rate-response curves, steady-state vs short trains (the Figs 13/15
//! experiment as a library walkthrough).
//!
//! Prints a TSV table: input rate, steady-state response, and the
//! dispersion-inferred response of 3/10/50-packet trains, first on a
//! contention-only link and then with FIFO cross-traffic sharing the
//! probe's queue.
//!
//! Run with: `cargo run --release --example rate_response`

use csmaprobe::core::link::{LinkConfig, WlanLink};
use csmaprobe::desim::derive_seed;
use csmaprobe::probe::scan::achievable_throughput_bps;
use csmaprobe::probe::scan::RateScan;
use csmaprobe::probe::train::TrainProbe;

fn sweep(link: &WlanLink, label: &str) {
    println!("## {label}");
    println!("ri_mbps\tsteady\ttrain3\ttrain10\ttrain50");
    for k in 1..=10 {
        let ri = k as f64 * 1e6;
        let steady = TrainProbe::new(1000, 1500, ri)
            .measure(link, 4, derive_seed(1, k))
            .output_rate_bps();
        let mut row = format!("{:.1}\t{:.3}", ri / 1e6, steady / 1e6);
        for (j, n) in [3usize, 10, 50].into_iter().enumerate() {
            let m = TrainProbe::new(n, 1500, ri).measure(
                link,
                (1500 / n).max(20),
                derive_seed(2, (j * 10 + k as usize) as u64),
            );
            row += &format!("\t{:.3}", m.output_rate_bps() / 1e6);
        }
        println!("{row}");
    }
}

fn main() {
    // Part I (Fig 13): contention only.
    let contention_only = WlanLink::new(LinkConfig::default().contending_bps(4.5e6));
    sweep(&contention_only, "no FIFO cross-traffic (Fig 13 scenario)");

    // The eq (2) achievable throughput from a dedicated long-train scan.
    let scan = RateScan::new(vec![2e6, 2.5e6, 3e6, 3.5e6, 4e6], 600, 1500, 5);
    let pts = scan.run(&contention_only, 99);
    println!(
        "# achievable throughput B (eq 2, 5% tolerance): {:.2} Mb/s\n",
        achievable_throughput_bps(&pts, 0.05) / 1e6
    );

    // Part II (Fig 15): FIFO cross-traffic reintroduced.
    let complete = WlanLink::new(
        LinkConfig::default()
            .contending_bps(3e6)
            .fifo_cross_bps(1.5e6),
    );
    sweep(&complete, "with FIFO cross-traffic (Fig 15 scenario)");
    println!("# note the knee below the no-FIFO case: B = Bf(1 - u_fifo), eq (5)");
}
