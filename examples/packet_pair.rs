//! Packet pairs on CSMA/CA links (§7.3 / Fig 16): the classic capacity
//! technique stops measuring capacity and starts (over-)estimating the
//! achievable throughput.
//!
//! Run with: `cargo run --release --example packet_pair`

use csmaprobe::core::link::{LinkConfig, WiredLink, WlanLink};
use csmaprobe::desim::derive_seed;
use csmaprobe::probe::pair::PacketPairProbe;
use csmaprobe::probe::train::TrainProbe;

fn main() {
    // On a wired FIFO link, packet pairs measure capacity — the minimum
    // filter recovers C = 10 Mb/s exactly even under cross-traffic.
    let wired = WiredLink::new(10e6, 5e6);
    let m = PacketPairProbe::new(1500, 200).measure(&wired, 1);
    println!(
        "wired link (C = 10 Mb/s, 5 Mb/s cross): pair mean {:.2} Mb/s, min-filter {:.2} Mb/s",
        m.rate_from_mean_bps() / 1e6,
        m.rate_from_min_bps() / 1e6
    );

    // On a WLAN link the pair tracks the achievable throughput instead,
    // and over-estimates it (Fig 16).
    println!("\ncross_mbps\tfluid_B_mbps\tpair_mbps\tpair_minus_B");
    for k in 0..=10 {
        let cross = k as f64 * 1e6;
        let link = if cross > 0.0 {
            WlanLink::new(LinkConfig::default().contending_bps(cross))
        } else {
            WlanLink::new(LinkConfig::default())
        };
        // Actual achievable throughput: long saturating train.
        let fluid = TrainProbe::new(800, 1500, 10.5e6)
            .measure(&link, 5, derive_seed(3, k))
            .output_rate_bps();
        let pair = PacketPairProbe::new(1500, 300)
            .measure(&link, derive_seed(4, k))
            .rate_from_mean_bps();
        println!(
            "{:.1}\t{:.3}\t{:.3}\t{:+.3}",
            cross / 1e6,
            fluid / 1e6,
            pair / 1e6,
            (pair - fluid) / 1e6
        );
    }
    println!("\nthe pair estimate touches the DCF capacity only at zero cross-traffic and");
    println!("sits above the fluid achievable throughput elsewhere — the §7.3 bias.");
}
