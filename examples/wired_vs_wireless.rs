//! The §7.2 consequence: available-bandwidth tools built on the FIFO
//! rate-response model measure *available bandwidth* on wired paths
//! but *achievable throughput* on CSMA/CA links — and those two
//! metrics can sit far apart.
//!
//! Run with: `cargo run --release --example wired_vs_wireless`

use csmaprobe::core::link::{LinkConfig, WiredLink, WlanLink};
use csmaprobe::mac::measured_standalone_capacity_bps;
use csmaprobe::phy::Phy;
use csmaprobe::probe::slops::SlopsEstimator;
use csmaprobe::probe::train::TrainProbe;

fn main() {
    let tool = SlopsEstimator {
        n: 200,
        reps: 8,
        ..Default::default()
    };

    // Wired: C = 10 Mb/s, 4 Mb/s cross ⇒ A = 6 Mb/s. The tool finds A.
    let wired = WiredLink::new(10e6, 4e6);
    let wired_result = tool.run(&wired, 31);
    println!(
        "wired FIFO link:   true A = {:.2} Mb/s, tool estimate = {:.2} Mb/s",
        wired.available_bps() / 1e6,
        wired_result.estimate_bps / 1e6
    );

    // WLAN: C ≈ 6.2 Mb/s, 4.5 Mb/s contending cross ⇒ A ≈ 1.7 Mb/s,
    // but the fair share is B ≈ 3.3 Mb/s. The SAME tool now reports B.
    let phy = Phy::dsss_11mbps();
    let c = measured_standalone_capacity_bps(&phy, 1500, 3000, 1);
    let wlan = WlanLink::new(LinkConfig::default().contending_bps(4.5e6));
    let b = TrainProbe::new(1000, 1500, 10e6)
        .measure(&wlan, 6, 33)
        .output_rate_bps();
    let wlan_result = tool.run(&wlan, 35);
    println!(
        "CSMA/CA link:      C = {:.2}, A = {:.2}, fair share B = {:.2} Mb/s",
        c / 1e6,
        (c - 4.5e6) / 1e6,
        b / 1e6
    );
    println!(
        "                   tool estimate = {:.2} Mb/s  <-- lands on B, not A",
        wlan_result.estimate_bps / 1e6
    );

    println!("\nsearch trace (rate probed -> ro/ri -> congested?):");
    for (rate, ratio, congested) in &wlan_result.trace {
        println!(
            "  {:>6.2} Mb/s -> {:.3} -> {}",
            rate / 1e6,
            ratio,
            if *congested { "congested" } else { "clear" }
        );
    }
}
