//! Detecting the access-delay transient (the §4 methodology end to
//! end): replicate a probing train, track the per-packet access-delay
//! distribution, KS-test it against steady state, and measure the
//! transient length at the paper's tolerances.
//!
//! Run with: `cargo run --release --example transient_detection`

use csmaprobe::core::link::{LinkConfig, WlanLink};
use csmaprobe::core::transient::TransientExperiment;
use csmaprobe::traffic::probe::ProbeTrain;

fn main() {
    // Fig 6 setting: probe 5 Mb/s against 4 Mb/s of contending
    // Poisson cross-traffic.
    let exp = TransientExperiment {
        link: WlanLink::new(LinkConfig::default().contending_bps(4e6)),
        train: ProbeTrain::from_rate(300, 1500, 5e6),
        reps: 1500,
        seed: 0x715A,
    };
    println!("running {} replications of a 300-packet train...", exp.reps);
    // Dense mode: the KS profile below needs raw per-index samples.
    // (`exp.run()` gives the O(train-length) streaming summary when
    // only mean profiles are needed.)
    let data = exp.run_dense(25_000);

    let profile = data.mean_profile();
    let steady = data.steady_mean(150);
    println!("\npacket\tmean access delay (ms)");
    for i in [0, 1, 2, 4, 9, 19, 49, 99, 149] {
        println!("{}\t{:.4}", i + 1, profile[i] * 1e3);
    }
    println!("steady\t{:.4}", steady * 1e3);

    // KS profile: how many packets until the per-index distribution is
    // indistinguishable from steady state (95%)?
    let ks = data.ks_profile(150, 0.05);
    let first_accept = ks.iter().position(|o| !o.reject);
    println!(
        "\nKS: packet 1 statistic {:.4} (threshold {:.4}); first accepted index: {:?}",
        ks[0].statistic,
        ks[0].threshold,
        first_accept.map(|i| i + 1)
    );

    // The §4.1 transient length at the paper's two tolerances.
    for tol in [0.1, 0.01] {
        let est = data.transient_length(150, tol);
        println!(
            "transient length at tolerance {tol}: {:?} packets (sustained: {:?})",
            est.first_within.map(|i| i + 1),
            est.first_sustained.map(|i| i + 1)
        );
    }

    // The contending station's queue builds up over the same horizon.
    let q = data.queue_profile();
    println!(
        "\ncontending queue at probe packet 1: {:.2} pkts; at packet 100: {:.2} pkts",
        q[0], q[99]
    );
    println!("\nconsequence: the first packets of a probing train are biased samples —");
    println!("see examples/mser_truncation.rs for the warm-up-removal fix.");
}
