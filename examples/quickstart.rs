//! Quickstart: build a WLAN link, measure its steady-state operating
//! point and probe it with a short train — the 60-second tour of the
//! library.
//!
//! Run with: `cargo run --release --example quickstart`

use csmaprobe::core::link::{LinkConfig, WlanLink};
use csmaprobe::mac::BianchiModel;
use csmaprobe::phy::Phy;
use csmaprobe::probe::train::TrainProbe;

fn main() {
    // The paper's testbed: 802.11b at 11 Mb/s, long preamble, no
    // RTS/CTS, 1500-byte frames.
    let phy = Phy::dsss_11mbps();
    println!("PHY: 11 Mb/s DSSS — DIFS {}, slot {}", phy.difs(), phy.slot);
    println!(
        "stand-alone capacity C ≈ {:.2} Mb/s (paper: ~6.5 on its testbed)",
        phy.standalone_capacity_bps(1500) / 1e6
    );

    // Analytical cross-check: Bianchi's model for 2 saturated stations.
    let bianchi = BianchiModel::solve(&phy, 2, 1500);
    println!(
        "Bianchi n=2: p = {:.3}, aggregate {:.2} Mb/s, fair share {:.2} Mb/s",
        bianchi.p,
        bianchi.throughput_bps / 1e6,
        bianchi.fair_share_bps / 1e6
    );

    // A link with one contending station offering 4.5 Mb/s of Poisson
    // cross-traffic (the paper's Fig 1 setting: A ≈ 2, B ≈ 3.4 Mb/s).
    let link = WlanLink::new(LinkConfig::default().contending_bps(4_500_000.0));

    // Steady state at ri = 5 Mb/s: the probe only gets its fair share.
    let pt = link.steady_state(5e6, csmaprobe::desim::Dur::from_secs(6), 0xC0FFEE);
    println!(
        "\nsteady state @ ri = 5 Mb/s: probe {:.2} Mb/s, cross {:.2} Mb/s",
        pt.output_rate_bps / 1e6,
        pt.contending_bps[0] / 1e6
    );

    // The same rate probed with a short train over-estimates: the first
    // packets ride the access-delay transient (the paper's headline
    // result).
    for n in [3, 10, 50, 400] {
        let m = TrainProbe::new(n, 1500, 5e6).measure(&link, 200.min(4000 / n), 7);
        println!(
            "{n:>4}-packet train: L/E[gO] = {:.2} Mb/s (±{:.2})",
            m.output_rate_bps() / 1e6,
            m.gap_ci95_s() * m.output_rate_bps() / m.mean_output_gap_s() / 1e6
        );
    }
    println!(
        "\nshorter trains → more optimistic estimates; see examples/mser_truncation.rs for the fix"
    );
}
