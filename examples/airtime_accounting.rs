//! Where does the airtime go? Channel accounting across contention
//! levels, validated against Bianchi's model — plus streaming
//! access-delay quantiles via the P² estimator.
//!
//! Run with: `cargo run --release --example airtime_accounting`

use csmaprobe::desim::time::Time;
use csmaprobe::mac::{saturated_source, BianchiModel, WlanSim};
use csmaprobe::phy::Phy;
use csmaprobe::stats::p2::P2Quantile;

fn main() {
    let phy = Phy::dsss_11mbps();
    println!("n_stations\tsuccess%\tcollision%\tidle%\tsim_agg_mbps\tbianchi_mbps\tp50_us\tp99_us");

    for n in [1usize, 2, 4, 8] {
        let mut sim = WlanSim::new(phy.clone(), n as u64);
        let stations: Vec<_> = (0..n)
            .map(|_| sim.add_station(saturated_source(1500, 4000 / n)))
            .collect();
        let out = sim.run(Time::MAX);
        let horizon = out.last_done;
        let ch = out.channel;

        let total = horizon.as_secs_f64();
        let success = ch.success_time.as_secs_f64() / total * 100.0;
        let collision = ch.collision_time.as_secs_f64() / total * 100.0;
        let idle = 100.0 - success - collision;

        let agg: f64 = stations
            .iter()
            .map(|&st| out.throughput_bps(st, horizon))
            .sum();
        let model = BianchiModel::solve(&phy, n, 1500);

        // Streaming access-delay quantiles over all stations.
        let mut p50 = P2Quantile::median();
        let mut p99 = P2Quantile::new(0.99);
        for &st in &stations {
            for r in out.records(st) {
                let us = r.access_delay().as_micros_f64();
                p50.push(us);
                p99.push(us);
            }
        }

        println!(
            "{n}\t{success:.1}\t{collision:.1}\t{idle:.1}\t{:.2}\t{:.2}\t{:.0}\t{:.0}",
            agg / 1e6,
            model.throughput_bps / 1e6,
            p50.value(),
            p99.value()
        );
    }

    println!("\nas contention grows: idle backoff shrinks, collision airtime grows,");
    println!("the sim agrees with Bianchi, and the access-delay tail (p99) stretches —");
    println!("the very tail the paper's transient makes short probing trains miss.");
}
