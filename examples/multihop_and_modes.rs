//! Multi-hop paths and packet-pair histogram modes: tools beyond the
//! paper's single-hop scenario.
//!
//! Builds a three-hop wired path whose *tight* link (least available
//! bandwidth) and *narrow* link (least capacity) differ, then shows
//! which tool finds which, and how Dovrolis-style histogram-mode
//! analysis recovers the capacity even when mean pair dispersion is
//! biased.
//!
//! Run with: `cargo run --release --example multihop_and_modes`

use csmaprobe::core::multihop::{Hop, WiredPath};
use csmaprobe::probe::pair::PacketPairProbe;
use csmaprobe::probe::slops::SlopsEstimator;
use csmaprobe::probe::topp::ToppEstimator;

fn main() {
    let path = WiredPath::new(vec![
        Hop::new(100e6, 10e6), // fast access link
        Hop::new(10e6, 7e6),   // tight link: A = 3 Mb/s
        Hop::new(8e6, 1e6),    // narrow link: C = 8 Mb/s, A = 7 Mb/s
    ]);
    println!(
        "path: narrow-link C = {:.1} Mb/s, tight-link A = {:.1} Mb/s",
        path.capacity_bps() / 1e6,
        path.available_bps() / 1e6
    );

    // Available-bandwidth tools find the TIGHT link.
    let slops = SlopsEstimator {
        n: 250,
        reps: 6,
        ..Default::default()
    }
    .run(&path, 1);
    println!(
        "\nSLoPS-style estimate: {:.2} Mb/s (tight link)",
        slops.estimate_bps / 1e6
    );

    if let Some(topp) = ToppEstimator::default().run(&path, 2) {
        println!(
            "TOPP: A = {:.2} Mb/s, asymptotic C = {:.2} Mb/s",
            topp.available_bps / 1e6,
            topp.capacity_bps / 1e6
        );
    }

    // Capacity tools find the NARROW link.
    let pairs = PacketPairProbe::new(1500, 500).measure(&path, 3);
    println!(
        "\npacket pairs: mean {:.2} Mb/s, min-filter {:.2} Mb/s (narrow link)",
        pairs.rate_from_mean_bps() / 1e6,
        pairs.rate_from_min_bps() / 1e6
    );
    let modes = pairs.rate_modes_bps(40);
    println!(
        "histogram modes (strongest first): {:?} Mb/s",
        modes
            .iter()
            .take(3)
            .map(|m| (m / 1e5).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!("\nthe capacity mode survives cross-traffic that biases the mean —");
    println!("and on a CSMA/CA link every one of these tools would report the");
    println!("achievable throughput instead (see examples/wired_vs_wireless.rs).");
}
