//! Engine-tier transparency at the probing-tool layer: the measurement
//! tools never know (and must never be able to tell) which engine tier
//! served their probes.
//!
//! Four guarantees, all exact:
//!
//! * **Routing is a no-op when the oracle is pinned** — on regimes the
//!   train-delay equivalence table does not certify (FIFO cross-traffic
//!   cells), `Auto` keeps trains on the event core, so forcing `Event`
//!   must change nothing, bit for bit.
//! * **The slotted kernel is invisible** — forcing `Slotted` on a
//!   covered link yields the identical measurement, because the kernel
//!   is trajectory-exact on trains.
//! * **Auto-promotion is invisible** — on certified (FIFO-free,
//!   slotted-covered) regimes `Auto` now routes trains to the kernel,
//!   including the replication-batched chunk path, and the measurement
//!   still fingerprints identically to the forced-event oracle.
//! * **The analytic tier never reaches the tools** — the finite-load
//!   fixed point serves steady-state cells only; forcing it on trains
//!   or SLoPS degrades to the event oracle, bit for bit, on certified
//!   and uncertified shapes alike.

use csmaprobe_core::engine::{test_guard, train_tier, EnginePolicy, EngineTier};
use csmaprobe_core::link::{CrossShape, CrossSpec, LinkConfig, WlanLink};
use csmaprobe_probe::{SlopsEstimator, TrainProbe};

/// A FIFO cell: covered by the kernel but *not* certified for trains,
/// so auto keeps the oracle.
fn fifo_link() -> WlanLink {
    WlanLink::new(
        LinkConfig::default()
            .contending_bps(2_000_000.0)
            .fifo_cross_bps(500_000.0),
    )
}

/// The newly auto-routed regimes: FIFO-free cells matching the
/// certified KS rows (`poisson-1`-like and `mixed-2`-like shapes).
fn certified_links() -> Vec<(&'static str, WlanLink)> {
    vec![
        (
            "poisson-1",
            WlanLink::new(LinkConfig::default().contending_bps(2_000_000.0)),
        ),
        (
            "mixed-2",
            WlanLink::new(
                LinkConfig::default()
                    .contending_bps(2_000_000.0)
                    .contending(CrossSpec::shaped(1_000_000.0, CrossShape::Cbr)),
            ),
        ),
    ]
}

fn train_fingerprint(
    link: &WlanLink,
    policy: EnginePolicy,
    reps: usize,
) -> (f64, f64, Vec<f64>, usize) {
    let _g = test_guard(policy);
    let m = TrainProbe::new(30, 1500, 5_000_000.0).measure(link, reps, 0xF00D);
    (
        m.output_gap.mean(),
        m.output_gap.variance(),
        m.access_delays.means(),
        m.incomplete,
    )
}

#[test]
fn train_measurement_identical_across_tiers() {
    let link = fifo_link();
    {
        let _g = test_guard(EnginePolicy::Auto);
        assert_eq!(train_tier(link.config()), EngineTier::Event);
    }
    let auto = train_fingerprint(&link, EnginePolicy::Auto, 8);
    let event = train_fingerprint(&link, EnginePolicy::Forced(EngineTier::Event), 8);
    let slotted = train_fingerprint(&link, EnginePolicy::Forced(EngineTier::Slotted), 8);
    // Auto keeps uncertified trains on the oracle: pinning it is a no-op.
    assert_eq!(auto, event);
    // The slotted kernel is trajectory-exact: forcing it is invisible.
    assert_eq!(auto, slotted);
}

#[test]
fn promoted_regimes_fingerprint_identically_to_oracle() {
    for (name, link) in certified_links() {
        {
            let _g = test_guard(EnginePolicy::Auto);
            assert_eq!(
                train_tier(link.config()),
                EngineTier::Slotted,
                "{name} must auto-promote"
            );
        }
        let auto = train_fingerprint(&link, EnginePolicy::Auto, 8);
        let event = train_fingerprint(&link, EnginePolicy::Forced(EngineTier::Event), 8);
        assert_eq!(auto, event, "{name}: auto vs forced-event");
    }
}

#[test]
fn promoted_batched_chunks_fingerprint_identically_to_oracle() {
    // 40 replications span one full CHUNK plus a ragged tail, so the
    // batched kernel path (one BatchedSlottedSim call per chunk) serves
    // both chunk shapes — and must still be invisible.
    let (_, link) = certified_links().remove(1);
    let auto = train_fingerprint(&link, EnginePolicy::Auto, 40);
    let event = train_fingerprint(&link, EnginePolicy::Forced(EngineTier::Event), 40);
    assert_eq!(auto, event);
}

#[test]
fn forced_analytic_never_leaks_into_trains() {
    // The finite-load fixed point serves *steady-state* cells only —
    // trains are per-frame trajectories no closed form reproduces, so
    // `train_tier` must refuse the analytic tier even when it is
    // forced, on every shape: the FIFO cell the tier does not certify
    // AND the Poisson cells whose steady points it does. The forced-
    // analytic fingerprint therefore equals the forced-event one, bit
    // for bit.
    let mut links = certified_links();
    links.push(("fifo-1", fifo_link()));
    for (name, link) in links {
        {
            let _g = test_guard(EnginePolicy::Forced(EngineTier::Analytic));
            assert_eq!(
                train_tier(link.config()),
                EngineTier::Event,
                "{name}: trains must never route analytic"
            );
        }
        let auto = train_fingerprint(&link, EnginePolicy::Auto, 8);
        let forced = train_fingerprint(&link, EnginePolicy::Forced(EngineTier::Analytic), 8);
        let event = train_fingerprint(&link, EnginePolicy::Forced(EngineTier::Event), 8);
        assert_eq!(forced, event, "{name}: forced-analytic vs forced-event");
        assert_eq!(auto, event, "{name}: auto vs forced-event");
    }
}

#[test]
fn forced_analytic_slops_identical_to_oracle() {
    // SLoPS drives probe trains underneath; the analytic tier must be
    // equally invisible there, certified steady cell or not.
    for (name, link) in certified_links() {
        let run = |policy: EnginePolicy| {
            let _g = test_guard(policy);
            SlopsEstimator::default().run(&link, 0xBEA7)
        };
        let forced = run(EnginePolicy::Forced(EngineTier::Analytic));
        let event = run(EnginePolicy::Forced(EngineTier::Event));
        assert_eq!(forced.estimate_bps, event.estimate_bps, "{name}");
        assert_eq!(forced.trace, event.trace, "{name}");
    }
}

#[test]
fn slops_estimate_identical_across_tiers() {
    let link = fifo_link();
    let run = |policy: EnginePolicy| {
        let _g = test_guard(policy);
        SlopsEstimator::default().run(&link, 0xBEA7)
    };
    let auto = run(EnginePolicy::Auto);
    let event = run(EnginePolicy::Forced(EngineTier::Event));
    let slotted = run(EnginePolicy::Forced(EngineTier::Slotted));
    assert_eq!(auto.estimate_bps, event.estimate_bps);
    assert_eq!(auto.trace, event.trace);
    assert_eq!(auto.estimate_bps, slotted.estimate_bps);
    assert_eq!(auto.trace, slotted.trace);
}
