//! Engine-tier transparency at the probing-tool layer: the measurement
//! tools never know (and must never be able to tell) which engine tier
//! served their probes.
//!
//! Two guarantees, both exact:
//!
//! * **Routing is a no-op when the oracle is pinned** — under the
//!   default `Auto` policy probe trains route to the event core, so
//!   forcing `Event` must change nothing, bit for bit.
//! * **The slotted kernel is invisible** — forcing `Slotted` on a
//!   covered link yields the identical measurement, because the kernel
//!   is trajectory-exact on trains.

use csmaprobe_core::engine::{test_guard, EnginePolicy, EngineTier};
use csmaprobe_core::link::{LinkConfig, WlanLink};
use csmaprobe_probe::{SlopsEstimator, TrainProbe};

fn link() -> WlanLink {
    WlanLink::new(
        LinkConfig::default()
            .contending_bps(2_000_000.0)
            .fifo_cross_bps(500_000.0),
    )
}

fn train_fingerprint(policy: EnginePolicy) -> (f64, f64, Vec<f64>, usize) {
    let _g = test_guard(policy);
    let m = TrainProbe::new(30, 1500, 5_000_000.0).measure(&link(), 8, 0xF00D);
    (
        m.output_gap.mean(),
        m.output_gap.variance(),
        m.access_delays.means(),
        m.incomplete,
    )
}

#[test]
fn train_measurement_identical_across_tiers() {
    let auto = train_fingerprint(EnginePolicy::Auto);
    let event = train_fingerprint(EnginePolicy::Forced(EngineTier::Event));
    let slotted = train_fingerprint(EnginePolicy::Forced(EngineTier::Slotted));
    // Auto routes trains to the oracle: pinning it is a no-op.
    assert_eq!(auto, event);
    // The slotted kernel is trajectory-exact: forcing it is invisible.
    assert_eq!(auto, slotted);
}

#[test]
fn slops_estimate_identical_across_tiers() {
    let run = |policy: EnginePolicy| {
        let _g = test_guard(policy);
        SlopsEstimator::default().run(&link(), 0xBEA7)
    };
    let auto = run(EnginePolicy::Auto);
    let event = run(EnginePolicy::Forced(EngineTier::Event));
    let slotted = run(EnginePolicy::Forced(EngineTier::Slotted));
    assert_eq!(auto.estimate_bps, event.estimate_bps);
    assert_eq!(auto.trace, event.trace);
    assert_eq!(auto.estimate_bps, slotted.estimate_bps);
    assert_eq!(auto.trace, slotted.trace);
}
