//! An iterative available-bandwidth estimator in the SLoPS/pathload
//! style (self-loading periodic streams).
//!
//! The tool binary-searches for the largest input rate at which the
//! flow still gets through undistorted (`ro/ri ≥ 1 − ε`, judged from
//! train dispersion). On the FIFO paths these tools were designed for,
//! that turning point is the **available bandwidth** `A`. §7.2 of the
//! paper shows that, run unchanged on a CSMA/CA link, the same
//! procedure converges to the **achievable throughput** `B` instead —
//! the two only coincide in special cases. This module exists to
//! demonstrate exactly that.

use crate::train::TrainProbe;
use csmaprobe_core::link::ProbeTarget;
use csmaprobe_desim::rng::derive_seed;

/// Iterative rate-search configuration.
#[derive(Debug, Clone, Copy)]
pub struct SlopsEstimator {
    /// Lower bracket of the search, bits/s.
    pub lo_bps: f64,
    /// Upper bracket of the search, bits/s.
    pub hi_bps: f64,
    /// Packets per probing train.
    pub n: usize,
    /// Probe payload, bytes.
    pub bytes: u32,
    /// Replications per rate decision.
    pub reps: usize,
    /// Relative distortion tolerated before declaring congestion
    /// (`ro/ri < 1 − epsilon` ⇒ rate too high).
    pub epsilon: f64,
    /// Binary-search iterations (each halves the bracket).
    pub iterations: usize,
}

impl Default for SlopsEstimator {
    fn default() -> Self {
        SlopsEstimator {
            lo_bps: 100e3,
            hi_bps: 11e6,
            n: 100,
            bytes: 1500,
            reps: 10,
            epsilon: 0.06,
            iterations: 10,
        }
    }
}

/// Result of a SLoPS-style search.
#[derive(Debug, Clone)]
pub struct SlopsResult {
    /// The converged estimate, bits/s.
    pub estimate_bps: f64,
    /// Every probed `(rate, ro/ri, congested)` decision, in order.
    pub trace: Vec<(f64, f64, bool)>,
}

impl SlopsEstimator {
    /// Run the search against `target`.
    pub fn run<T: ProbeTarget + ?Sized>(&self, target: &T, seed: u64) -> SlopsResult {
        let mut lo = self.lo_bps;
        let mut hi = self.hi_bps;
        let mut trace = Vec::with_capacity(self.iterations);
        for k in 0..self.iterations {
            let rate = 0.5 * (lo + hi);
            let m = TrainProbe::new(self.n, self.bytes, rate).measure(
                target,
                self.reps,
                derive_seed(seed, k as u64),
            );
            let ratio = m.output_rate_bps() / rate;
            let congested = ratio < 1.0 - self.epsilon;
            trace.push((rate, ratio, congested));
            if congested {
                hi = rate;
            } else {
                lo = rate;
            }
        }
        SlopsResult {
            estimate_bps: 0.5 * (lo + hi),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmaprobe_core::link::{LinkConfig, WiredLink, WlanLink};

    #[test]
    fn finds_available_bandwidth_on_fifo_path() {
        // C = 10, cross = 4 ⇒ A = 6 Mb/s.
        let link = WiredLink::new(10e6, 4e6);
        let est = SlopsEstimator {
            n: 300,
            reps: 6,
            ..Default::default()
        };
        let r = est.run(&link, 21);
        assert!(
            (5.0e6..7.0e6).contains(&r.estimate_bps),
            "A estimate {}",
            r.estimate_bps
        );
        // The search actually explored both congested and clear rates.
        assert!(r.trace.iter().any(|&(_, _, c)| c));
        assert!(r.trace.iter().any(|&(_, _, c)| !c));
    }

    #[test]
    fn finds_achievable_throughput_on_wlan() {
        // Paper Fig 1 setting: 4.5 Mb/s contender ⇒ A ≈ 1.7 Mb/s,
        // B ≈ 3.3 Mb/s. The unchanged FIFO-era tool lands on B, not A —
        // the paper's §7.2 point.
        let link = WlanLink::new(LinkConfig::default().contending_bps(4.5e6));
        let est = SlopsEstimator {
            n: 200,
            reps: 6,
            ..Default::default()
        };
        let r = est.run(&link, 23);
        assert!(
            (2.5e6..4.0e6).contains(&r.estimate_bps),
            "B estimate {}",
            r.estimate_bps
        );
        // Clearly above the available bandwidth.
        assert!(r.estimate_bps > 2.2e6);
    }

    #[test]
    fn bracket_narrows_monotonically() {
        let link = WiredLink::new(10e6, 2e6);
        let est = SlopsEstimator {
            n: 60,
            reps: 3,
            iterations: 6,
            ..Default::default()
        };
        let r = est.run(&link, 29);
        assert_eq!(r.trace.len(), 6);
        // Each probed rate lies inside the previous bracket: the probed
        // rates' spread shrinks.
        let first_step = (r.trace[1].0 - r.trace[0].0).abs();
        let last_step = (r.trace[5].0 - r.trace[4].0).abs();
        assert!(last_step < first_step);
    }
}
