//! The **tool axis**: every measurement tool of this crate behind one
//! uniform "run once, return an estimate" interface.
//!
//! The paper's §7.2 claim — FIFO-era tools read the achievable
//! throughput `B` instead of the available bandwidth `A` on CSMA/CA
//! links — is a statement *across tool families*. The scenario grid
//! (`csmaprobe_core::grid`) therefore needs tools as an enumerable
//! axis: [`ToolKind`] names the families, [`ToolProbe`] binds one to a
//! train shape and budget, and [`ToolProbe::estimate_once`] runs one
//! independent, seeded estimate — the grid cell's unit of replication.
//!
//! One grid replication = one *complete* tool run (a full SLoPS binary
//! search, a full TOPP regression, one chirp, one train). Tool runs are
//! pure functions of their seed, so grid cells accumulate estimates
//! with the engine's usual bit-identity guarantees.

use crate::chirp::ChirpProbe;
use crate::slops::SlopsEstimator;
use crate::topp::ToppEstimator;
use crate::train::TrainProbe;
use csmaprobe_core::link::ProbeTarget;
use csmaprobe_desim::rng::derive_seed;

/// A measurement-tool family, as an enumerable axis point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolKind {
    /// Packet-train dispersion: one train, estimate `L/gO` (§5.2).
    Train,
    /// SLoPS/pathload-style iterative rate search.
    Slops,
    /// TOPP rate-response regression (available-bandwidth output).
    Topp,
    /// pathChirp-style excursion analysis.
    Chirp,
}

impl ToolKind {
    /// Every tool family, in canonical axis order.
    pub const ALL: [ToolKind; 4] = [
        ToolKind::Train,
        ToolKind::Slops,
        ToolKind::Topp,
        ToolKind::Chirp,
    ];

    /// Canonical name (what CLIs parse and rows record).
    pub fn name(&self) -> &'static str {
        match self {
            ToolKind::Train => "train",
            ToolKind::Slops => "slops",
            ToolKind::Topp => "topp",
            ToolKind::Chirp => "chirp",
        }
    }

    /// Parse a canonical name (case-insensitive).
    pub fn parse(s: &str) -> Option<ToolKind> {
        ToolKind::ALL
            .into_iter()
            .find(|t| t.name().eq_ignore_ascii_case(s.trim()))
    }
}

impl std::fmt::Display for ToolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One tool bound to a train shape and an internal budget: the unit
/// the grid's tool axis instantiates per cell.
#[derive(Debug, Clone, Copy)]
pub struct ToolProbe {
    /// Which tool family to run.
    pub kind: ToolKind,
    /// Packets per probing train (the grid's train-shape axis; chirps
    /// use it as the chirp length, floored at 20 for resolution).
    pub n: usize,
    /// Probe payload, bytes.
    pub bytes: u32,
    /// Probing rate of the plain train tool, bits/s (the saturating
    /// rate whose dispersion reads the achievable throughput). The
    /// searching tools pick their own rates.
    pub rate_bps: f64,
    /// Replications each *internal* rate decision may spend (SLoPS /
    /// TOPP). One [`ToolProbe::estimate_once`] call is always one
    /// complete tool run regardless.
    pub decision_reps: usize,
}

impl ToolProbe {
    /// A tool probe with the given family and train shape, default
    /// budget (2 replications per internal decision).
    pub fn new(kind: ToolKind, n: usize, bytes: u32, rate_bps: f64) -> Self {
        ToolProbe {
            kind,
            n,
            bytes,
            rate_bps,
            decision_reps: 2,
        }
    }

    /// Run **one** complete, independently seeded estimate against
    /// `target` and return it in bits/s.
    ///
    /// Pure function of `(self, seed)`: the grid engine replicates
    /// cells by calling this with `derive_seed(cell_seed, rep)`.
    /// Returns a non-finite value when the tool could not produce an
    /// estimate (e.g. TOPP never saw congestion, or a train lost all
    /// but one packet) — callers should count, not accumulate, those.
    pub fn estimate_once<T: ProbeTarget + ?Sized>(&self, target: &T, seed: u64) -> f64 {
        match self.kind {
            ToolKind::Train => {
                let m = TrainProbe::new(self.n, self.bytes, self.rate_bps).measure(target, 1, seed);
                m.output_rate_bps()
            }
            ToolKind::Slops => {
                let est = SlopsEstimator {
                    n: self.n,
                    bytes: self.bytes,
                    reps: self.decision_reps,
                    iterations: 8,
                    ..Default::default()
                };
                est.run(target, seed).estimate_bps
            }
            ToolKind::Topp => {
                let est = ToppEstimator {
                    n: self.n,
                    bytes: self.bytes,
                    reps: self.decision_reps,
                    ..Default::default()
                };
                est.run(target, seed)
                    .map(|r| r.available_bps)
                    .unwrap_or(f64::NAN)
            }
            ToolKind::Chirp => {
                let probe = ChirpProbe {
                    n: self.n.max(20),
                    bytes: self.bytes,
                    chirps: 1,
                    ..Default::default()
                };
                probe.measure(target, seed).estimate_bps()
            }
        }
    }

    /// Run one complete estimate per entry of `seeds` — the
    /// chunk-granular form grid cells replicate through. **Contract:**
    /// element `k` is bit-identical to `estimate_once(target,
    /// seeds[k])`.
    ///
    /// Only the plain train tool batches: its replication is a single
    /// train, so a whole chunk forwards to
    /// [`ProbeTarget::probe_train_batch`] (one batched-kernel call on
    /// targets whose router sends trains to the slotted tier). The
    /// searching tools (SLoPS, TOPP, chirp excursions) are sequential
    /// decision processes inside one replication and keep the scalar
    /// loop.
    pub fn estimate_batch<T: ProbeTarget + ?Sized>(&self, target: &T, seeds: &[u64]) -> Vec<f64> {
        match self.kind {
            ToolKind::Train => {
                let probe = TrainProbe::new(self.n, self.bytes, self.rate_bps);
                // estimate_once runs measure(target, 1, seed), whose
                // single replication probes with derive_seed(seed, 0) —
                // replay exactly that seed chain per lane.
                let train_seeds: Vec<u64> = seeds.iter().map(|&s| derive_seed(s, 0)).collect();
                target
                    .probe_train_batch(probe.train, &train_seeds)
                    .iter()
                    .map(|obs| match obs.output_gap_s() {
                        // One replication: the measurement's mean gap is
                        // exactly this observation's gap.
                        Some(g) if g > 0.0 => probe.train.bytes as f64 * 8.0 / g,
                        _ => f64::NAN,
                    })
                    .collect()
            }
            _ => seeds
                .iter()
                .map(|&s| self.estimate_once(target, s))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmaprobe_core::link::WiredLink;

    #[test]
    fn names_parse_round_trip() {
        for kind in ToolKind::ALL {
            assert_eq!(ToolKind::parse(kind.name()), Some(kind));
            assert_eq!(ToolKind::parse(&kind.name().to_uppercase()), Some(kind));
        }
        assert_eq!(ToolKind::parse(" train "), Some(ToolKind::Train));
        assert_eq!(ToolKind::parse("pathload"), None);
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let link = WiredLink::new(10e6, 4e6);
        for kind in ToolKind::ALL {
            let probe = ToolProbe::new(kind, 40, 1500, 9e6);
            let a = probe.estimate_once(&link, 1234);
            let b = probe.estimate_once(&link, 1234);
            assert_eq!(a.to_bits(), b.to_bits(), "{kind} not deterministic");
        }
    }

    #[test]
    fn estimate_batch_bit_identical_to_estimate_once() {
        use csmaprobe_core::engine::{test_guard, EnginePolicy};
        use csmaprobe_core::link::{LinkConfig, WlanLink};
        // A certified WLAN cell (auto routes its trains to the batched
        // slotted kernel) and a wired link (scalar fallback): both must
        // reproduce the per-seed scalar estimates exactly.
        let _g = test_guard(EnginePolicy::Auto);
        let wlan = WlanLink::new(LinkConfig::default().contending_bps(2_000_000.0));
        let wired = WiredLink::new(10e6, 4e6);
        let seeds: Vec<u64> = (100..107).collect();
        for kind in [ToolKind::Train, ToolKind::Slops] {
            let probe = ToolProbe::new(kind, 12, 1500, 9e6);
            let wlan_batch = probe.estimate_batch(&wlan, &seeds);
            let wired_batch = probe.estimate_batch(&wired, &seeds);
            for (k, &s) in seeds.iter().enumerate() {
                assert_eq!(
                    wlan_batch[k].to_bits(),
                    probe.estimate_once(&wlan, s).to_bits(),
                    "{kind} wlan lane {k}"
                );
                assert_eq!(
                    wired_batch[k].to_bits(),
                    probe.estimate_once(&wired, s).to_bits(),
                    "{kind} wired lane {k}"
                );
            }
        }
    }

    #[test]
    fn wired_estimates_land_in_sane_bands() {
        // C = 10, cross = 4 => A = 6 Mb/s; dispersion tools read the
        // saturated output rate instead (eq 1: ~6.9 Mb/s at ri = 9).
        let link = WiredLink::new(10e6, 4e6);
        let slops = ToolProbe::new(ToolKind::Slops, 120, 1500, 9e6).estimate_once(&link, 7);
        assert!((4.5e6..7.5e6).contains(&slops), "slops {slops}");
        let train = ToolProbe::new(ToolKind::Train, 120, 1500, 9e6).estimate_once(&link, 7);
        assert!((6e6..8e6).contains(&train), "train {train}");
    }
}
