//! # csmaprobe-probe
//!
//! Active bandwidth-measurement tools, built on the
//! [`csmaprobe_core::link::ProbeTarget`] abstraction so each tool runs
//! unchanged over a wired FIFO path or a CSMA/CA WLAN link — the
//! paper's central experimental setting.
//!
//! * [`train`] — packet-train dispersion measurement: send an
//!   `n`-packet train at gap `gI`, average the output gap over many
//!   replications, infer `L/E[gO]` (§5.2). The workhorse behind
//!   Figs 13/15/17.
//! * [`pair`] — the packet-pair capacity technique (Dovrolis et al.,
//!   the paper's ref \[23\]); §7.3 shows it tracks (and over-estimates)
//!   the achievable throughput on CSMA/CA links (Fig 16).
//! * [`scan`] — rate-response curve scanning and achievable-throughput
//!   extraction per eq (2).
//! * [`mser`] — the paper's §7.4 improvement: MSER-m truncation of the
//!   receiver inter-arrivals removes the transient-tainted prefix and
//!   recovers the steady-state curve without longer trains (Fig 17).
//! * [`slops`] — an iterative available-bandwidth search in the style
//!   of SLoPS/pathload: binary-searches the largest rate at which
//!   `ro/ri ≈ 1`. On a FIFO path this finds the available bandwidth
//!   `A`; on a CSMA/CA link it converges to the achievable throughput
//!   `B` instead (§7.2).
//! * [`topp`] — TOPP (the paper's ref \[13\]): regression of `ri/ro` on
//!   `ri` over the congested segment, yielding both `C` and `A` on FIFO
//!   paths — and collapsing both onto `B` on CSMA/CA links.
//! * [`chirp`] — pathChirp-style exponential chirps (ref \[19\]) with a
//!   simplified excursion analysis; same CSMA/CA bias, one train per
//!   estimate.
//! * [`tool`] — the tool **axis**: every family above behind one
//!   uniform [`tool::ToolProbe::estimate_once`] interface, so the
//!   scenario grid (`csmaprobe_core::grid`) can enumerate tools as a
//!   dimension of the link × train × tool product space.

pub mod chirp;
pub mod mser;
pub mod pair;
pub mod scan;
pub mod slops;
pub mod tool;
pub mod topp;
pub mod train;

pub use chirp::ChirpProbe;
pub use mser::MserProbe;
pub use pair::PacketPairProbe;
pub use scan::RateScan;
pub use slops::SlopsEstimator;
pub use tool::{ToolKind, ToolProbe};
pub use topp::ToppEstimator;
pub use train::{TrainMeasurement, TrainProbe};
