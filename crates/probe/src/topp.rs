//! TOPP — Trains of Packet Pairs / regression-based available-bandwidth
//! and capacity estimation (Melander, Björkman, Gunningberg — the
//! paper's ref \[13\]).
//!
//! TOPP probes at increasing rates and exploits the FIFO fluid model
//! (eq 1): beyond the available bandwidth,
//!
//! ```text
//! ri/ro = ri/C + (C − A)/C
//! ```
//!
//! is linear in `ri`, so a least-squares fit of `ri/ro` against `ri`
//! over the congested segment yields **C = 1/slope** and
//! **A = C·(1 − intercept)**.
//!
//! On a CSMA/CA link the congested segment instead follows `ro = B`,
//! i.e. `ri/ro = ri/B` — slope `1/B`, intercept 0 — so TOPP reports
//! `C ≈ B` **and** `A ≈ B`: both of its outputs collapse onto the
//! achievable throughput. This module exists to demonstrate exactly
//! that (§7.2 across tool families).

use crate::train::TrainProbe;
use csmaprobe_core::link::ProbeTarget;
use csmaprobe_desim::rng::derive_seed;

/// TOPP configuration.
#[derive(Debug, Clone)]
pub struct ToppEstimator {
    /// Probing rates, bits/s (must be increasing).
    pub rates_bps: Vec<f64>,
    /// Packets per train at each rate.
    pub n: usize,
    /// Probe payload, bytes.
    pub bytes: u32,
    /// Replications per rate.
    pub reps: usize,
    /// Relative `ri/ro` excess marking the congested segment
    /// (points with `ri/ro > 1 + epsilon` enter the regression).
    pub epsilon: f64,
}

impl Default for ToppEstimator {
    fn default() -> Self {
        ToppEstimator {
            rates_bps: (1..=20).map(|k| k as f64 * 0.5e6).collect(),
            n: 150,
            bytes: 1500,
            reps: 8,
            epsilon: 0.03,
        }
    }
}

/// TOPP's outputs.
#[derive(Debug, Clone)]
pub struct ToppResult {
    /// Estimated capacity `1/slope`, bits/s.
    pub capacity_bps: f64,
    /// Estimated available bandwidth `C·(1 − intercept)`, bits/s.
    pub available_bps: f64,
    /// The measured `(ri, ri/ro)` points.
    pub curve: Vec<(f64, f64)>,
    /// Number of points used in the regression.
    pub congested_points: usize,
}

impl ToppEstimator {
    /// Run TOPP against `target`.
    ///
    /// Returns `None` when fewer than two rates show congestion (no
    /// regression possible — the sweep never exceeded the turning
    /// point).
    pub fn run<T: ProbeTarget + ?Sized>(&self, target: &T, seed: u64) -> Option<ToppResult> {
        let mut curve = Vec::with_capacity(self.rates_bps.len());
        for (k, &ri) in self.rates_bps.iter().enumerate() {
            let m = TrainProbe::new(self.n, self.bytes, ri).measure(
                target,
                self.reps,
                derive_seed(seed, k as u64),
            );
            let ro = m.output_rate_bps();
            curve.push((ri, ri / ro));
        }

        // Congested segment: ri/ro clearly above 1.
        let pts: Vec<(f64, f64)> = curve
            .iter()
            .filter(|(_, ratio)| *ratio > 1.0 + self.epsilon)
            .cloned()
            .collect();
        if pts.len() < 2 {
            return None;
        }

        // Least squares of ratio on ri.
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|(x, _)| x).sum();
        let sy: f64 = pts.iter().map(|(_, y)| y).sum();
        let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-30 {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        if slope <= 0.0 {
            return None;
        }
        let capacity = 1.0 / slope;
        let available = capacity * (1.0 - intercept);
        Some(ToppResult {
            capacity_bps: capacity,
            available_bps: available,
            curve,
            congested_points: pts.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmaprobe_core::link::{LinkConfig, WiredLink, WlanLink};

    #[test]
    fn topp_recovers_c_and_a_on_fifo_path() {
        // C = 10 Mb/s, cross 4 Mb/s => A = 6 Mb/s.
        let link = WiredLink::new(10e6, 4e6);
        let est = ToppEstimator {
            rates_bps: (1..=18).map(|k| k as f64 * 0.5e6).collect(),
            n: 300,
            reps: 6,
            ..Default::default()
        };
        let r = est.run(&link, 3).expect("congestion must be reached");
        assert!(
            (r.capacity_bps - 10e6).abs() / 10e6 < 0.1,
            "C estimate {:.0}",
            r.capacity_bps
        );
        assert!(
            (r.available_bps - 6e6).abs() / 6e6 < 0.15,
            "A estimate {:.0}",
            r.available_bps
        );
        assert!(r.congested_points >= 2);
    }

    #[test]
    fn topp_collapses_to_b_on_wlan() {
        // Paper Fig 1 point: B ≈ 3.3 Mb/s, A ≈ 1.7, C ≈ 6.2.
        let link = WlanLink::new(LinkConfig::default().contending_bps(4.5e6));
        let est = ToppEstimator {
            rates_bps: (2..=16).map(|k| k as f64 * 0.5e6).collect(),
            n: 200,
            reps: 6,
            ..Default::default()
        };
        let r = est.run(&link, 5).expect("congestion must be reached");
        // Both outputs land on the achievable throughput: far from the
        // true capacity, far from the true available bandwidth.
        assert!(
            (2.6e6..4.2e6).contains(&r.capacity_bps),
            "C-estimate {:.0} should be ~B",
            r.capacity_bps
        );
        assert!(
            (2.2e6..4.2e6).contains(&r.available_bps),
            "A-estimate {:.0} should be ~B",
            r.available_bps
        );
        // They collapse onto each other (intercept ~0).
        let gap = (r.capacity_bps - r.available_bps).abs() / r.capacity_bps;
        assert!(gap < 0.25, "C and A estimates should collapse: {gap:.3}");
    }

    #[test]
    fn topp_returns_none_without_congestion() {
        let link = WiredLink::new(10e6, 0.0);
        let est = ToppEstimator {
            rates_bps: vec![1e6, 2e6, 3e6], // all far below C
            n: 60,
            reps: 3,
            ..Default::default()
        };
        assert!(est.run(&link, 7).is_none());
    }
}
