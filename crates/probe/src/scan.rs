//! Rate-response curve scanning.
//!
//! Sweep a set of input rates, measure the dispersion-inferred output
//! rate at each (with trains of a configurable length), and extract
//! bandwidth metrics from the resulting curve — the measurement behind
//! Figs 13 and 15 and the eq (2) achievable-throughput estimator.

use crate::train::{TrainMeasurement, TrainProbe};
use csmaprobe_core::link::ProbeTarget;
use csmaprobe_core::rate_response::achievable_from_curve;
use csmaprobe_desim::rng::derive_seed;

/// A rate-response scan configuration.
#[derive(Debug, Clone)]
pub struct RateScan {
    /// Input rates to probe, bits/s.
    pub rates_bps: Vec<f64>,
    /// Packets per train.
    pub n: usize,
    /// Probe payload, bytes.
    pub bytes: u32,
    /// Replications per rate.
    pub reps: usize,
}

/// One `(ri, L/E[gO])` point with its underlying measurement.
#[derive(Debug, Clone)]
pub struct ScanPoint {
    /// Input rate, bits/s.
    pub input_bps: f64,
    /// Dispersion-inferred output rate, bits/s.
    pub output_bps: f64,
    /// The full measurement (CIs, μ profile, …).
    pub measurement: TrainMeasurement,
}

impl RateScan {
    /// A scan over `rates_bps` with `n`-packet trains of `bytes`
    /// payload, `reps` replications each.
    pub fn new(rates_bps: Vec<f64>, n: usize, bytes: u32, reps: usize) -> Self {
        RateScan {
            rates_bps,
            n,
            bytes,
            reps,
        }
    }

    /// Evenly spaced rates in `[lo, hi]` (inclusive), `points` of them.
    pub fn linspace(lo: f64, hi: f64, points: usize, n: usize, bytes: u32, reps: usize) -> Self {
        assert!(points >= 2 && hi > lo);
        let rates = (0..points)
            .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
            .collect();
        Self::new(rates, n, bytes, reps)
    }

    /// Run the scan.
    pub fn run<T: ProbeTarget + ?Sized>(&self, target: &T, seed: u64) -> Vec<ScanPoint> {
        self.rates_bps
            .iter()
            .enumerate()
            .map(|(i, &ri)| {
                let m = TrainProbe::new(self.n, self.bytes, ri).measure(
                    target,
                    self.reps,
                    derive_seed(seed, i as u64),
                );
                ScanPoint {
                    input_bps: ri,
                    output_bps: m.output_rate_bps(),
                    measurement: m,
                }
            })
            .collect()
    }
}

/// Eq. (2) on a measured scan: the largest probed rate still achieving
/// `ro/ri ≥ 1 − tolerance`.
pub fn achievable_throughput_bps(points: &[ScanPoint], tolerance: f64) -> f64 {
    let curve: Vec<(f64, f64)> = points.iter().map(|p| (p.input_bps, p.output_bps)).collect();
    achievable_from_curve(&curve, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmaprobe_core::link::{LinkConfig, WiredLink, WlanLink};

    #[test]
    fn scan_on_wired_link_finds_available_bandwidth() {
        let link = WiredLink::new(10e6, 4e6); // A = 6 Mb/s
        let scan = RateScan::linspace(1e6, 9e6, 9, 200, 1500, 8);
        let pts = scan.run(&link, 42);
        assert_eq!(pts.len(), 9);
        let b = achievable_throughput_bps(&pts, 0.05);
        // Long trains: B should land near A = 6 Mb/s.
        assert!((5e6..7.5e6).contains(&b), "B = {b}");
        // Below A the curve is the identity.
        for p in pts.iter().filter(|p| p.input_bps <= 5e6) {
            assert!(
                (p.output_bps - p.input_bps).abs() / p.input_bps < 0.08,
                "ri {} ro {}",
                p.input_bps,
                p.output_bps
            );
        }
    }

    #[test]
    fn scan_on_wlan_finds_fair_share_not_available() {
        // Paper Fig 1 setting: 4.5 Mb/s contender ⇒ A ≈ 1.7 Mb/s but
        // fair share B ≈ 3.3 Mb/s. The long-train curve must keep
        // following the identity PAST the available bandwidth and only
        // flatten at B — the key divergence from the FIFO model.
        let link = WlanLink::new(LinkConfig::default().contending_bps(4.5e6));
        let scan = RateScan::new(vec![1e6, 2e6, 2.5e6, 3e6, 4e6, 5e6, 7e6], 300, 1500, 6);
        let pts = scan.run(&link, 11);
        let b = achievable_throughput_bps(&pts, 0.07);
        assert!((2.5e6..4.0e6).contains(&b), "B = {b}");
        let available = 6.2e6 - 4.5e6;
        assert!(
            b > 1.3 * available,
            "B {b} must exceed available {available}: tools do NOT see A"
        );
        // At 7 Mb/s the output pins near B, clearly below the input.
        let top = pts.last().unwrap();
        assert!(top.output_bps < 0.7 * top.input_bps);
    }

    #[test]
    fn linspace_rates_are_even() {
        let scan = RateScan::linspace(1.0, 3.0, 5, 2, 100, 1);
        assert_eq!(scan.rates_bps, vec![1.0, 1.5, 2.0, 2.5, 3.0]);
    }

    #[test]
    #[should_panic]
    fn linspace_rejects_single_point() {
        RateScan::linspace(1.0, 2.0, 1, 2, 100, 1);
    }
}
