//! Packet-train dispersion measurement.
//!
//! The estimator of §5.2–5.3: send `m` replications of an `n`-packet
//! train at input gap `gI`, estimate `E[gO]` as the across-replication
//! average of eq (16), and report the dispersion-inferred output rate
//! `L/E[gO]`. Replications are independently seeded (the Poisson
//! train-spacing of the paper's methodology serves the same purpose:
//! fresh, stationary cross-traffic interaction per train).

use csmaprobe_core::link::{ProbeTarget, TrainObservation};
use csmaprobe_desim::replicate;
use csmaprobe_stats::accumulate::Accumulate;
use csmaprobe_stats::online::OnlineStats;
use csmaprobe_stats::transient::IndexedSeries;
use csmaprobe_traffic::probe::ProbeTrain;

/// A packet-train probe: `n` packets of `bytes` at `rate_bps`.
///
/// ```
/// use csmaprobe_core::link::{LinkConfig, WlanLink};
/// use csmaprobe_probe::train::TrainProbe;
///
/// let link = WlanLink::new(LinkConfig::default());
/// // 5-packet trains at 2 Mb/s on an idle link: ro ≈ ri.
/// let m = TrainProbe::new(5, 1500, 2e6).measure(&link, 3, 7);
/// let ro = m.output_rate_bps();
/// assert!((ro - 2e6).abs() / 2e6 < 0.1, "{ro}");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TrainProbe {
    /// The train shape sent on every replication.
    pub train: ProbeTrain,
}

/// Streaming accumulator of a train measurement: what one sweep cell
/// (or one `run_reduce` chunk) folds its replications into, merged in
/// chunk order by the scenario engine.
#[derive(Debug, Clone, Default)]
pub struct TrainAccumulator {
    gaps: OnlineStats,
    incomplete: usize,
    delays: IndexedSeries,
    receiver_gaps: IndexedSeries,
}

impl Accumulate for TrainAccumulator {
    fn merge(&mut self, other: Self) {
        OnlineStats::merge(&mut self.gaps, &other.gaps);
        self.incomplete += other.incomplete;
        self.delays.merge(other.delays);
        self.receiver_gaps.merge(other.receiver_gaps);
    }
}

impl TrainProbe {
    /// A probe of `n` packets of `bytes` payload at input rate
    /// `rate_bps`.
    pub fn new(n: usize, bytes: u32, rate_bps: f64) -> Self {
        TrainProbe {
            train: ProbeTrain::from_rate(n, bytes, rate_bps),
        }
    }

    /// Fold one replication's observation into `acc` — shared by the
    /// scalar and batched replication paths so both reduce identically.
    fn fold_obs(obs: &TrainObservation, acc: &mut TrainAccumulator) {
        match obs.output_gap_s() {
            Some(g) => acc.gaps.push(g),
            None => acc.incomplete += 1,
        }
        acc.receiver_gaps.push_replication(&obs.receiver_gaps_s());
        if let Some(mu) = &obs.access_delays {
            acc.delays.push_replication(mu);
        }
    }

    /// Run **one** replication with `seed` and fold its observations
    /// into `acc` — the cell body a sweep scenario calls with
    /// `derive_seed(cell_seed, rep)`. [`TrainProbe::measure`] is exactly
    /// `reps` of these reduced over the chunk grid.
    pub fn sample_into<T: ProbeTarget + ?Sized>(
        &self,
        target: &T,
        seed: u64,
        acc: &mut TrainAccumulator,
    ) {
        let obs = target.probe_train(self.train, seed);
        Self::fold_obs(&obs, acc);
    }

    /// Seal a fully-reduced accumulator into a [`TrainMeasurement`]
    /// (`reps` is the replication budget that fed `acc`).
    pub fn finish(&self, reps: usize, acc: TrainAccumulator) -> TrainMeasurement {
        TrainMeasurement {
            train: self.train,
            reps,
            incomplete: acc.incomplete,
            output_gap: acc.gaps,
            access_delays: acc.delays,
            receiver_gaps: acc.receiver_gaps,
        }
    }

    /// Run `reps` independent replications against `target`.
    pub fn measure<T: ProbeTarget + ?Sized>(
        &self,
        target: &T,
        reps: usize,
        seed: u64,
    ) -> TrainMeasurement {
        // Streaming map-reduce at chunk granularity: each chunk's
        // replications run as one [`ProbeTarget::probe_train_batch`]
        // call — a single batched-kernel invocation on targets whose
        // router sends trains to the slotted tier, a plain scalar loop
        // everywhere else — and fold into the chunk accumulator in
        // ascending replication order, so the reduction is bit-identical
        // to the historical per-replication `run_reduce` form.
        let acc = replicate::run_reduce_chunked(
            reps,
            seed,
            |_range, seeds, acc: &mut TrainAccumulator| {
                for obs in target.probe_train_batch(self.train, seeds) {
                    Self::fold_obs(&obs, acc);
                }
            },
            TrainAccumulator::default,
            Accumulate::merge,
        );
        self.finish(reps, acc)
    }
}

/// Aggregated result of a packet-train measurement.
#[derive(Debug, Clone)]
pub struct TrainMeasurement {
    /// The train shape used.
    pub train: ProbeTrain,
    /// Replications attempted.
    pub reps: usize,
    /// Replications where fewer than 2 probe packets were delivered.
    pub incomplete: usize,
    /// Across-replication statistics of the output gap `gO` (seconds).
    pub output_gap: OnlineStats,
    /// Per-index access delays (seconds; CSMA/CA targets only).
    pub access_delays: IndexedSeries,
    /// Per-position receiver inter-arrival gaps (seconds).
    pub receiver_gaps: IndexedSeries,
}

impl TrainMeasurement {
    /// The input rate `ri = L/gI` of the train, bits/s.
    pub fn input_rate_bps(&self) -> f64 {
        self.train.input_rate_bps()
    }

    /// The estimate of `E[gO]`, seconds.
    pub fn mean_output_gap_s(&self) -> f64 {
        self.output_gap.mean()
    }

    /// The dispersion-inferred output rate `L/E[gO]`, bits/s — the
    /// `y`-axis of Figs 13/15/17.
    pub fn output_rate_bps(&self) -> f64 {
        let g = self.mean_output_gap_s();
        if g <= 0.0 {
            return f64::NAN;
        }
        self.train.bytes as f64 * 8.0 / g
    }

    /// 95% confidence half-width of the mean output gap.
    pub fn gap_ci95_s(&self) -> f64 {
        self.output_gap.ci_half_width(0.95)
    }

    /// Per-index mean access delays `E[μ_i]` (empty for wired targets)
    /// — the input to the §6 bounds.
    pub fn mean_mu_profile(&self) -> Vec<f64> {
        self.access_delays.means()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmaprobe_core::link::{LinkConfig, WiredLink, WlanLink};

    #[test]
    fn identity_region_on_wired_link() {
        let link = WiredLink::new(10e6, 2e6);
        // 3 Mb/s < A = 8 Mb/s.
        let m = TrainProbe::new(40, 1500, 3e6).measure(&link, 40, 1);
        let ro = m.output_rate_bps();
        assert!((ro - 3e6).abs() / 3e6 < 0.08, "ro {ro}");
        assert_eq!(m.incomplete, 0);
        assert_eq!(m.receiver_gaps.len(), 39);
    }

    #[test]
    fn wlan_flattens_at_fair_share() {
        // The paper's Fig 1 setting: ~4.5 Mb/s contending cross-traffic
        // gives C≈6.2, A≈1.7, B≈3.3 — fair share well below available.
        let link = WlanLink::new(LinkConfig::default().contending_bps(4_500_000.0));
        let long = TrainProbe::new(400, 1500, 9e6).measure(&link, 12, 3);
        let ro_long = long.output_rate_bps();
        assert!((2.8e6..3.8e6).contains(&ro_long), "long-train B {ro_long}");
        let short = TrainProbe::new(3, 1500, 9e6).measure(&link, 300, 3);
        let ro_short = short.output_rate_bps();
        assert!(
            ro_short > ro_long * 1.05,
            "short trains must over-estimate: {ro_short} vs {ro_long}"
        );
    }

    #[test]
    fn mu_profile_collected_on_wlan_only() {
        let wlan = WlanLink::new(LinkConfig::default().contending_bps(1e6));
        let m = TrainProbe::new(10, 1500, 2e6).measure(&wlan, 25, 5);
        assert_eq!(m.mean_mu_profile().len(), 10);

        let wired = WiredLink::new(10e6, 1e6);
        let m2 = TrainProbe::new(10, 1500, 2e6).measure(&wired, 5, 5);
        assert!(m2.mean_mu_profile().is_empty());
    }

    #[test]
    fn measurement_is_deterministic() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(2e6));
        let probe = TrainProbe::new(15, 1500, 4e6);
        let a = probe.measure(&link, 10, 77).mean_output_gap_s();
        let b = probe.measure(&link, 10, 77).mean_output_gap_s();
        assert_eq!(a, b);
    }

    #[test]
    fn ci_shrinks_with_reps() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(2e6));
        let probe = TrainProbe::new(10, 1500, 5e6);
        let small = probe.measure(&link, 10, 9).gap_ci95_s();
        let large = probe.measure(&link, 80, 9).gap_ci95_s();
        assert!(large < small);
    }
}
