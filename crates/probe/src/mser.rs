//! The paper's §7.4 correction: treat the access-delay transient as a
//! *simulation warm-up problem* and truncate it with MSER-m.
//!
//! The receiver inter-arrival series `gO_1..gO_{n−1}` of a short train
//! carries the transient in its prefix (early, accelerated packets ⇒
//! small gaps). MSER-m (m = 2 in the paper's Fig 17) detects how long
//! that warm-up lasts; the flagged observations are discarded and the
//! output gap re-estimated from the remainder. This pulls short-train
//! rate-response curves back onto the steady-state curve **without
//! sending more packets** — and, because FIFO queues have their own
//! (opposite-sign) transient, it helps on wired paths too.
//!
//! Two application modes are provided:
//!
//! * [`MserMode::PooledProfile`] (default) — run MSER on the
//!   *across-replication mean* gap profile, where the transient ramp is
//!   clean, then truncate every replication at that common point. This
//!   is the right estimator when a measurement aggregates many trains
//!   (the paper's `m` probing sequences).
//! * [`MserMode::PerReplication`] — run MSER independently on each
//!   train's own gap series (what a single-shot tool would do). Noisier:
//!   individual DCF backoff variance often swamps the drift.
//!
//! Both modes stream. `PooledProfile` needs two passes (the truncation
//! point depends on the across-replication profile), so it runs as a
//! **two-phase reduce**: a profile pass folds every replication into
//! per-position [`IndexedStats`] (O(train length) memory), MSER picks
//! the cut on the resulting mean profile, and a second, truncated pass
//! re-runs the same seeds and accumulates the corrected gap. No
//! replication's gap vector is ever materialised — previously this mode
//! held all `reps × (n−1)` gaps at once. The phase pieces
//! ([`MserProbe::profile_rep`], [`MserProbe::truncation_point`],
//! [`MserProbe::corrected_rep`]) are public so sweep scenarios can
//! schedule them as cells; [`measure_rate_sweep`] does exactly that for
//! a family of probes.

use csmaprobe_core::link::ProbeTarget;
use csmaprobe_core::sweep::{run_sweep, SweepScenario};
use csmaprobe_desim::replicate;
use csmaprobe_desim::rng::derive_seed;
use csmaprobe_stats::accumulate::Accumulate;
use csmaprobe_stats::mser::mser_m;
use csmaprobe_stats::online::OnlineStats;
use csmaprobe_stats::transient::IndexedStats;
use csmaprobe_traffic::probe::ProbeTrain;

/// How the MSER truncation point is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MserMode {
    /// Truncate at the point MSER finds on the across-replication mean
    /// gap profile (recommended).
    #[default]
    PooledProfile,
    /// Truncate each replication at the point MSER finds on its own
    /// gap series.
    PerReplication,
}

/// An MSER-corrected packet-train probe.
#[derive(Debug, Clone, Copy)]
pub struct MserProbe {
    /// The underlying train shape.
    pub train: ProbeTrain,
    /// MSER batch size (2 in the paper).
    pub m: usize,
    /// Truncation-point selection mode.
    pub mode: MserMode,
}

/// Result of an MSER-corrected measurement.
#[derive(Debug, Clone)]
pub struct MserMeasurement {
    /// The train shape used.
    pub train: ProbeTrain,
    /// Raw output-gap statistics (no truncation), seconds.
    pub raw_gap: OnlineStats,
    /// MSER-truncated output-gap statistics, seconds.
    pub corrected_gap: OnlineStats,
    /// Mean number of raw observations truncated per replication.
    pub mean_truncated: f64,
}

/// Phase-1 (profile pass) accumulator: raw output-gap statistics plus
/// the per-position gap moments MSER picks its truncation point from.
/// O(train length) memory regardless of replication count.
#[derive(Debug, Clone, Default)]
pub struct MserProfileAcc {
    /// Across-replication statistics of the raw (untruncated) mean gap.
    pub raw_gap: OnlineStats,
    /// Per-position receiver-gap moments across replications.
    pub profile: IndexedStats,
}

impl Accumulate for MserProfileAcc {
    fn merge(&mut self, other: Self) {
        OnlineStats::merge(&mut self.raw_gap, &other.raw_gap);
        self.profile.merge(other.profile);
    }
}

/// Phase-2 (truncated pass) accumulator: statistics of the mean gap
/// after discarding each replication's MSER-flagged prefix.
#[derive(Debug, Clone, Default)]
pub struct MserCorrectedAcc {
    /// Across-replication statistics of the truncated mean gap.
    pub corrected_gap: OnlineStats,
    /// Total raw observations truncated across replications.
    pub truncated: usize,
}

impl Accumulate for MserCorrectedAcc {
    fn merge(&mut self, other: Self) {
        OnlineStats::merge(&mut self.corrected_gap, &other.corrected_gap);
        self.truncated += other.truncated;
    }
}

impl MserProbe {
    /// An MSER-`m` corrected probe of `n` packets of `bytes` at
    /// `rate_bps`, in the default pooled-profile mode.
    pub fn new(n: usize, bytes: u32, rate_bps: f64, m: usize) -> Self {
        MserProbe {
            train: ProbeTrain::from_rate(n, bytes, rate_bps),
            m,
            mode: MserMode::PooledProfile,
        }
    }

    /// Switch truncation mode.
    pub fn with_mode(mut self, mode: MserMode) -> Self {
        self.mode = mode;
        self
    }

    /// Phase 1, one replication: send the train with `seed` and fold
    /// its raw mean gap and per-position gaps into `acc`.
    pub fn profile_rep<T: ProbeTarget + ?Sized>(
        &self,
        target: &T,
        seed: u64,
        acc: &mut MserProfileAcc,
    ) {
        let gaps = target.probe_train(self.train, seed).receiver_gaps_s();
        if !gaps.is_empty() {
            acc.raw_gap
                .push(gaps.iter().sum::<f64>() / gaps.len() as f64);
        }
        acc.profile.push_replication(&gaps);
    }

    /// The pooled-profile truncation point: MSER-`m` on the
    /// across-replication mean gap profile (0 when MSER is undefined,
    /// e.g. trains too short for the batch size).
    pub fn truncation_point(&self, profile: &MserProfileAcc) -> usize {
        mser_m(&profile.profile.means(), self.m)
            .map(|r| r.truncate_raw)
            .unwrap_or(0)
    }

    /// Phase 2, one replication: re-run `seed` (replications are pure
    /// functions of their seed, so this reproduces phase 1's train
    /// exactly) and fold the gap mean beyond `cut` into `acc`.
    pub fn corrected_rep<T: ProbeTarget + ?Sized>(
        &self,
        target: &T,
        cut: usize,
        seed: u64,
        acc: &mut MserCorrectedAcc,
    ) {
        let gaps = target.probe_train(self.train, seed).receiver_gaps_s();
        let kept = &gaps[cut.min(gaps.len())..];
        if !kept.is_empty() {
            acc.corrected_gap
                .push(kept.iter().sum::<f64>() / kept.len() as f64);
            acc.truncated += cut.min(gaps.len());
        }
    }

    /// Seal the two phase accumulators into a measurement.
    pub fn assemble(
        &self,
        reps: usize,
        profile: MserProfileAcc,
        corrected: MserCorrectedAcc,
    ) -> MserMeasurement {
        MserMeasurement {
            train: self.train,
            raw_gap: profile.raw_gap,
            corrected_gap: corrected.corrected_gap,
            mean_truncated: corrected.truncated as f64 / reps.max(1) as f64,
        }
    }

    /// Run `reps` replications against `target`.
    ///
    /// `PooledProfile` runs the two-phase streaming reduce described in
    /// the module docs; `PerReplication` needs no shared profile and
    /// streams in a single pass. Peak memory is O(train length) either
    /// way.
    pub fn measure<T: ProbeTarget + ?Sized>(
        &self,
        target: &T,
        reps: usize,
        seed: u64,
    ) -> MserMeasurement {
        match self.mode {
            MserMode::PooledProfile => {
                let profile = replicate::run_reduce(
                    reps,
                    seed,
                    |_, s, acc: &mut MserProfileAcc| self.profile_rep(target, s, acc),
                    MserProfileAcc::default,
                    Accumulate::merge,
                );
                let cut = self.truncation_point(&profile);
                let corrected = replicate::run_reduce(
                    reps,
                    seed,
                    |_, s, acc: &mut MserCorrectedAcc| self.corrected_rep(target, cut, s, acc),
                    MserCorrectedAcc::default,
                    Accumulate::merge,
                );
                self.assemble(reps, profile, corrected)
            }
            MserMode::PerReplication => {
                let (profile, corrected) = replicate::run_reduce(
                    reps,
                    seed,
                    |_, s, (profile, corrected): &mut (MserProfileAcc, MserCorrectedAcc)| {
                        let gaps = target.probe_train(self.train, s).receiver_gaps_s();
                        if !gaps.is_empty() {
                            profile
                                .raw_gap
                                .push(gaps.iter().sum::<f64>() / gaps.len() as f64);
                        }
                        let cut = mser_m(&gaps, self.m).map(|r| r.truncate_raw).unwrap_or(0);
                        let kept = &gaps[cut..];
                        if !kept.is_empty() {
                            corrected
                                .corrected_gap
                                .push(kept.iter().sum::<f64>() / kept.len() as f64);
                            corrected.truncated += cut;
                        }
                    },
                    Default::default,
                    Accumulate::merge,
                );
                self.assemble(reps, profile, corrected)
            }
        }
    }
}

/// One cell of an MSER rate sweep: a probe, its replication budget, and
/// its master seed (replication `r` uses `derive_seed(seed, r)`).
#[derive(Debug, Clone, Copy)]
pub struct MserCell {
    /// The probe this cell replicates.
    pub probe: MserProbe,
    /// Replication budget.
    pub reps: usize,
    /// Master seed of the cell.
    pub seed: u64,
}

/// Phase-1 sweep: every `(cell × replication)` profile pass scheduled
/// through the scenario engine.
struct ProfileSweep<'a, T: ProbeTarget + ?Sized> {
    cells: &'a [MserCell],
    target: &'a T,
}

impl<T: ProbeTarget + ?Sized> SweepScenario for ProfileSweep<'_, T> {
    type Acc = MserProfileAcc;
    type Row = MserProfileAcc;

    fn name(&self) -> &str {
        "mser_profile"
    }
    fn points(&self) -> usize {
        self.cells.len()
    }
    fn reps(&self, point: usize) -> usize {
        self.cells[point].reps
    }
    fn identity(&self, _point: usize) -> MserProfileAcc {
        MserProfileAcc::default()
    }
    fn replicate(&self, point: usize, rep: usize, acc: &mut MserProfileAcc) {
        let cell = &self.cells[point];
        cell.probe
            .profile_rep(self.target, derive_seed(cell.seed, rep as u64), acc);
    }
    fn finish(&self, _point: usize, acc: MserProfileAcc) -> MserProfileAcc {
        acc
    }
}

/// Phase-2 sweep: the truncated passes, one cut per cell.
struct TruncatedSweep<'a, T: ProbeTarget + ?Sized> {
    cells: &'a [MserCell],
    cuts: &'a [usize],
    target: &'a T,
}

impl<T: ProbeTarget + ?Sized> SweepScenario for TruncatedSweep<'_, T> {
    type Acc = MserCorrectedAcc;
    type Row = MserCorrectedAcc;

    fn name(&self) -> &str {
        "mser_truncated"
    }
    fn points(&self) -> usize {
        self.cells.len()
    }
    fn reps(&self, point: usize) -> usize {
        self.cells[point].reps
    }
    fn identity(&self, _point: usize) -> MserCorrectedAcc {
        MserCorrectedAcc::default()
    }
    fn replicate(&self, point: usize, rep: usize, acc: &mut MserCorrectedAcc) {
        let cell = &self.cells[point];
        cell.probe.corrected_rep(
            self.target,
            self.cuts[point],
            derive_seed(cell.seed, rep as u64),
            acc,
        );
    }
    fn finish(&self, _point: usize, acc: MserCorrectedAcc) -> MserCorrectedAcc {
        acc
    }
}

/// Measure a family of pooled-profile MSER probes (e.g. one per probing
/// rate of Fig 17) through the sweep engine: two passes, each
/// scheduling every `(cell × replication)` concurrently over the shared
/// work-stealing executor. Cell `c`'s result is bit-identical to
/// `cells[c].probe.measure(target, cells[c].reps, cells[c].seed)` in
/// `PooledProfile` mode (per-replication modes are ignored).
pub fn measure_rate_sweep<T: ProbeTarget + ?Sized>(
    cells: &[MserCell],
    target: &T,
) -> Vec<MserMeasurement> {
    debug_assert!(
        cells
            .iter()
            .all(|c| c.probe.mode == MserMode::PooledProfile),
        "measure_rate_sweep applies PooledProfile semantics; a \
         PerReplication probe would silently measure differently than \
         its own measure()"
    );
    let profiles = run_sweep(&ProfileSweep { cells, target });
    let cuts: Vec<usize> = cells
        .iter()
        .zip(&profiles)
        .map(|(cell, profile)| cell.probe.truncation_point(profile))
        .collect();
    let corrected = run_sweep(&TruncatedSweep {
        cells,
        cuts: &cuts,
        target,
    });
    cells
        .iter()
        .zip(profiles)
        .zip(corrected)
        .map(|((cell, profile), cor)| cell.probe.assemble(cell.reps, profile, cor))
        .collect()
}

impl MserMeasurement {
    /// Raw dispersion-inferred rate `L/E[gO]`, bits/s.
    pub fn raw_rate_bps(&self) -> f64 {
        self.train.bytes as f64 * 8.0 / self.raw_gap.mean()
    }

    /// MSER-corrected rate, bits/s — the paper's Fig 17 curve.
    pub fn corrected_rate_bps(&self) -> f64 {
        self.train.bytes as f64 * 8.0 / self.corrected_gap.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainProbe;
    use csmaprobe_core::link::{LinkConfig, WlanLink};

    /// Fig 17's qualitative claim: at rates above the fair share, the
    /// MSER-2-corrected 20-packet estimate is closer to the long-train
    /// (steady-state) value than the raw 20-packet estimate.
    #[test]
    fn mser_moves_short_trains_toward_steady_state() {
        // Paper setting: heavy contention (4.5 Mb/s) maximises the
        // transient, probing above the ~3.3 Mb/s fair share.
        let link = WlanLink::new(LinkConfig::default().contending_bps(4.5e6));
        let rate = 6e6;

        let steady = TrainProbe::new(400, 1500, rate)
            .measure(&link, 15, 100)
            .output_rate_bps();
        let short = MserProbe::new(20, 1500, rate, 2).measure(&link, 500, 100);
        let raw_err = (short.raw_rate_bps() - steady).abs();
        let cor_err = (short.corrected_rate_bps() - steady).abs();
        assert!(
            cor_err < raw_err,
            "MSER should help: raw {} corrected {} steady {steady}",
            short.raw_rate_bps(),
            short.corrected_rate_bps()
        );
        // And it actually truncated something on average.
        assert!(short.mean_truncated > 0.1, "{}", short.mean_truncated);
    }

    #[test]
    fn mser_no_op_when_no_transient() {
        // Probing well below the fair share: gaps ≈ gI throughout, the
        // correction must not distort the estimate.
        let link = WlanLink::new(LinkConfig::default().contending_bps(2e6));
        let m = MserProbe::new(20, 1500, 1e6, 2).measure(&link, 60, 7);
        let raw = m.raw_rate_bps();
        let cor = m.corrected_rate_bps();
        assert!((raw - cor).abs() / raw < 0.05, "raw {raw} corrected {cor}");
        assert!((cor - 1e6).abs() / 1e6 < 0.1, "corrected {cor}");
    }

    #[test]
    fn tiny_trains_fall_back_to_raw() {
        let link = WlanLink::new(LinkConfig::default());
        // 3 packets -> 2 gaps -> k = 1 batch with m=2: MSER undefined,
        // no truncation happens.
        let m = MserProbe::new(3, 1500, 5e6, 2).measure(&link, 20, 9);
        assert_eq!(m.raw_gap.count(), m.corrected_gap.count());
        assert!((m.raw_gap.mean() - m.corrected_gap.mean()).abs() < 1e-12);
        assert_eq!(m.mean_truncated, 0.0);
    }

    #[test]
    fn per_replication_mode_runs() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(3e6));
        let m = MserProbe::new(20, 1500, 5e6, 2)
            .with_mode(MserMode::PerReplication)
            .measure(&link, 40, 13);
        assert!(m.corrected_gap.count() > 0);
        assert!(m.corrected_rate_bps() > 0.0);
    }
}
