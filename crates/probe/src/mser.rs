//! The paper's §7.4 correction: treat the access-delay transient as a
//! *simulation warm-up problem* and truncate it with MSER-m.
//!
//! The receiver inter-arrival series `gO_1..gO_{n−1}` of a short train
//! carries the transient in its prefix (early, accelerated packets ⇒
//! small gaps). MSER-m (m = 2 in the paper's Fig 17) detects how long
//! that warm-up lasts; the flagged observations are discarded and the
//! output gap re-estimated from the remainder. This pulls short-train
//! rate-response curves back onto the steady-state curve **without
//! sending more packets** — and, because FIFO queues have their own
//! (opposite-sign) transient, it helps on wired paths too.
//!
//! Two application modes are provided:
//!
//! * [`MserMode::PooledProfile`] (default) — run MSER on the
//!   *across-replication mean* gap profile, where the transient ramp is
//!   clean, then truncate every replication at that common point. This
//!   is the right estimator when a measurement aggregates many trains
//!   (the paper's `m` probing sequences).
//! * [`MserMode::PerReplication`] — run MSER independently on each
//!   train's own gap series (what a single-shot tool would do). Noisier:
//!   individual DCF backoff variance often swamps the drift.

use csmaprobe_core::link::ProbeTarget;
use csmaprobe_desim::replicate;
use csmaprobe_stats::mser::mser_m;
use csmaprobe_stats::online::OnlineStats;
use csmaprobe_stats::transient::IndexedSeries;
use csmaprobe_traffic::probe::ProbeTrain;

/// How the MSER truncation point is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MserMode {
    /// Truncate at the point MSER finds on the across-replication mean
    /// gap profile (recommended).
    #[default]
    PooledProfile,
    /// Truncate each replication at the point MSER finds on its own
    /// gap series.
    PerReplication,
}

/// An MSER-corrected packet-train probe.
#[derive(Debug, Clone, Copy)]
pub struct MserProbe {
    /// The underlying train shape.
    pub train: ProbeTrain,
    /// MSER batch size (2 in the paper).
    pub m: usize,
    /// Truncation-point selection mode.
    pub mode: MserMode,
}

/// Result of an MSER-corrected measurement.
#[derive(Debug, Clone)]
pub struct MserMeasurement {
    /// The train shape used.
    pub train: ProbeTrain,
    /// Raw output-gap statistics (no truncation), seconds.
    pub raw_gap: OnlineStats,
    /// MSER-truncated output-gap statistics, seconds.
    pub corrected_gap: OnlineStats,
    /// Mean number of raw observations truncated per replication.
    pub mean_truncated: f64,
}

impl MserProbe {
    /// An MSER-`m` corrected probe of `n` packets of `bytes` at
    /// `rate_bps`, in the default pooled-profile mode.
    pub fn new(n: usize, bytes: u32, rate_bps: f64, m: usize) -> Self {
        MserProbe {
            train: ProbeTrain::from_rate(n, bytes, rate_bps),
            m,
            mode: MserMode::PooledProfile,
        }
    }

    /// Switch truncation mode.
    pub fn with_mode(mut self, mode: MserMode) -> Self {
        self.mode = mode;
        self
    }

    /// Run `reps` replications against `target`.
    pub fn measure<T: ProbeTarget + ?Sized>(
        &self,
        target: &T,
        reps: usize,
        seed: u64,
    ) -> MserMeasurement {
        let train = self.train;
        let per_rep: Vec<Vec<f64>> = replicate::run(reps, seed, |_, s| {
            target.probe_train(train, s).receiver_gaps_s()
        });

        let mut raw_gap = OnlineStats::new();
        for gaps in &per_rep {
            if !gaps.is_empty() {
                raw_gap.push(gaps.iter().sum::<f64>() / gaps.len() as f64);
            }
        }

        let mut corrected_gap = OnlineStats::new();
        let mut truncated = 0usize;
        match self.mode {
            MserMode::PooledProfile => {
                // Mean gap per train position across replications: the
                // transient ramp without per-train backoff noise.
                let mut profile = IndexedSeries::new();
                for gaps in &per_rep {
                    profile.push_replication(gaps);
                }
                let means = profile.means();
                let cut = mser_m(&means, self.m)
                    .map(|r| r.truncate_raw)
                    .unwrap_or(0);
                for gaps in &per_rep {
                    let kept = &gaps[cut.min(gaps.len())..];
                    if !kept.is_empty() {
                        corrected_gap.push(kept.iter().sum::<f64>() / kept.len() as f64);
                        truncated += cut.min(gaps.len());
                    }
                }
            }
            MserMode::PerReplication => {
                for gaps in &per_rep {
                    let cut = mser_m(gaps, self.m).map(|r| r.truncate_raw).unwrap_or(0);
                    let kept = &gaps[cut..];
                    if !kept.is_empty() {
                        corrected_gap.push(kept.iter().sum::<f64>() / kept.len() as f64);
                        truncated += cut;
                    }
                }
            }
        }

        MserMeasurement {
            train,
            raw_gap,
            corrected_gap,
            mean_truncated: truncated as f64 / reps.max(1) as f64,
        }
    }
}

impl MserMeasurement {
    /// Raw dispersion-inferred rate `L/E[gO]`, bits/s.
    pub fn raw_rate_bps(&self) -> f64 {
        self.train.bytes as f64 * 8.0 / self.raw_gap.mean()
    }

    /// MSER-corrected rate, bits/s — the paper's Fig 17 curve.
    pub fn corrected_rate_bps(&self) -> f64 {
        self.train.bytes as f64 * 8.0 / self.corrected_gap.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainProbe;
    use csmaprobe_core::link::{LinkConfig, WlanLink};

    /// Fig 17's qualitative claim: at rates above the fair share, the
    /// MSER-2-corrected 20-packet estimate is closer to the long-train
    /// (steady-state) value than the raw 20-packet estimate.
    #[test]
    fn mser_moves_short_trains_toward_steady_state() {
        // Paper setting: heavy contention (4.5 Mb/s) maximises the
        // transient, probing above the ~3.3 Mb/s fair share.
        let link = WlanLink::new(LinkConfig::default().contending_bps(4.5e6));
        let rate = 6e6;

        let steady = TrainProbe::new(400, 1500, rate)
            .measure(&link, 15, 100)
            .output_rate_bps();
        let short = MserProbe::new(20, 1500, rate, 2).measure(&link, 500, 100);
        let raw_err = (short.raw_rate_bps() - steady).abs();
        let cor_err = (short.corrected_rate_bps() - steady).abs();
        assert!(
            cor_err < raw_err,
            "MSER should help: raw {} corrected {} steady {steady}",
            short.raw_rate_bps(),
            short.corrected_rate_bps()
        );
        // And it actually truncated something on average.
        assert!(short.mean_truncated > 0.1, "{}", short.mean_truncated);
    }

    #[test]
    fn mser_no_op_when_no_transient() {
        // Probing well below the fair share: gaps ≈ gI throughout, the
        // correction must not distort the estimate.
        let link = WlanLink::new(LinkConfig::default().contending_bps(2e6));
        let m = MserProbe::new(20, 1500, 1e6, 2).measure(&link, 60, 7);
        let raw = m.raw_rate_bps();
        let cor = m.corrected_rate_bps();
        assert!((raw - cor).abs() / raw < 0.05, "raw {raw} corrected {cor}");
        assert!((cor - 1e6).abs() / 1e6 < 0.1, "corrected {cor}");
    }

    #[test]
    fn tiny_trains_fall_back_to_raw() {
        let link = WlanLink::new(LinkConfig::default());
        // 3 packets -> 2 gaps -> k = 1 batch with m=2: MSER undefined,
        // no truncation happens.
        let m = MserProbe::new(3, 1500, 5e6, 2).measure(&link, 20, 9);
        assert_eq!(m.raw_gap.count(), m.corrected_gap.count());
        assert!((m.raw_gap.mean() - m.corrected_gap.mean()).abs() < 1e-12);
        assert_eq!(m.mean_truncated, 0.0);
    }

    #[test]
    fn per_replication_mode_runs() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(3e6));
        let m = MserProbe::new(20, 1500, 5e6, 2)
            .with_mode(MserMode::PerReplication)
            .measure(&link, 40, 13);
        assert!(m.corrected_gap.count() > 0);
        assert!(m.corrected_rate_bps() > 0.0);
    }
}
