//! pathChirp-style probing (Ribeiro et al., the paper's ref \[19\]):
//! a single "chirp" train whose instantaneous rate sweeps a whole range
//! exponentially, so one train localises the congestion turning point.
//!
//! Packet `k` and `k+1` are spaced `L/r_k` apart with
//! `r_k = r_min·γ^k`; the *excursion analysis* finds the packet index
//! from which one-way delays grow persistently — the instantaneous rate
//! there is the estimate. On FIFO paths that is the available
//! bandwidth; on CSMA/CA links the growth starts only when the chirp
//! exceeds the fair share, so the estimate lands on the achievable
//! throughput once more.

use csmaprobe_core::link::{ProbeTarget, TrainObservation};
use csmaprobe_desim::replicate;
use csmaprobe_desim::time::Dur;
use csmaprobe_stats::online::OnlineStats;

/// A chirp-probing estimator.
#[derive(Debug, Clone, Copy)]
pub struct ChirpProbe {
    /// Packets per chirp.
    pub n: usize,
    /// Probe payload, bytes.
    pub bytes: u32,
    /// Instantaneous rate of the first gap, bits/s.
    pub r_min_bps: f64,
    /// Instantaneous rate of the last gap, bits/s.
    pub r_max_bps: f64,
    /// Chirps to send (independent replications).
    pub chirps: usize,
}

impl Default for ChirpProbe {
    fn default() -> Self {
        ChirpProbe {
            n: 60,
            bytes: 1500,
            r_min_bps: 0.5e6,
            r_max_bps: 11e6,
            chirps: 30,
        }
    }
}

/// Result of a chirp measurement.
#[derive(Debug, Clone)]
pub struct ChirpResult {
    /// Across-chirp statistics of the turning-point rate, bits/s.
    pub estimate: OnlineStats,
    /// Chirps where no turning point was found (delays never grew):
    /// these contribute `r_max` to the estimate.
    pub saturated_high: usize,
    /// Chirps congested from the very first packets: contribute
    /// `r_min`.
    pub saturated_low: usize,
}

impl ChirpProbe {
    /// The instantaneous rate of gap `k` (0-based), bits/s.
    pub fn rate_at(&self, k: usize) -> f64 {
        debug_assert!(self.n >= 2);
        let gamma = (self.r_max_bps / self.r_min_bps).powf(1.0 / (self.n as f64 - 2.0).max(1.0));
        self.r_min_bps * gamma.powi(k as i32)
    }

    /// Arrival offsets of one chirp (first packet at offset 0).
    pub fn offsets(&self) -> Vec<Dur> {
        let mut out = Vec::with_capacity(self.n);
        let mut t = Dur::ZERO;
        out.push(t);
        for k in 0..self.n - 1 {
            let gap = Dur::from_secs_f64(self.bytes as f64 * 8.0 / self.rate_at(k));
            t += gap;
            out.push(t);
        }
        out
    }

    /// Excursion analysis of one chirp's observation: the rate carried
    /// by the last packet whose one-way delay was still at the
    /// baseline level.
    ///
    /// Simplified from pathChirp, made robust to CSMA/CA access-delay
    /// jitter: the noise floor is taken from the slowest (first)
    /// quarter of the chirp — presumed uncongested — and the turning
    /// point is the **last** index whose excess delay is within that
    /// floor. Queueing beyond the turning point accumulates
    /// monotonically in expectation, so everything after it stays
    /// elevated. Returns `+inf` when the chirp never leaves the
    /// baseline (no congestion up to `r_max`).
    pub fn turning_point(&self, obs: &TrainObservation) -> f64 {
        let n = obs.rx_times.len();
        if n < 8 {
            return f64::NAN;
        }
        let delays: Vec<f64> = obs
            .rx_times
            .iter()
            .zip(&obs.arrivals)
            .map(|(rx, a)| (*rx - *a).as_secs_f64())
            .collect();
        let base = delays.iter().cloned().fold(f64::INFINITY, f64::min);
        let q: Vec<f64> = delays.iter().map(|d| d - base).collect();
        // Noise floor: the spread of the slowest quarter of the chirp.
        let head = &q[..(n / 4).max(4)];
        let mut sorted = head.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let floor = sorted[(sorted.len() * 9 / 10).min(sorted.len() - 1)].max(1e-6);

        // Require the chirp to end clearly congested; otherwise report
        // "no turning point".
        let tail = &q[n - 3..];
        let tail_min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
        if tail_min <= 2.0 * floor {
            return f64::INFINITY;
        }
        // Last index still at the baseline.
        let j = q.iter().rposition(|&x| x <= floor).unwrap_or(0);
        self.rate_at(j.min(self.n.saturating_sub(2)))
    }

    /// Run the measurement: send `chirps` chirps, average the
    /// turning-point rates (chirps without a turning point count as
    /// `r_max`; fully congested ones as `r_min`).
    pub fn measure<T: ProbeTarget + ?Sized>(&self, target: &T, seed: u64) -> ChirpResult {
        let offsets = self.offsets();
        let probe = *self;
        let per_chirp: Vec<f64> = replicate::run(self.chirps, seed, |_, s| {
            let obs = target.probe_sequence(&offsets, probe.bytes, s);
            probe.turning_point(&obs)
        });
        let mut stats = OnlineStats::new();
        let mut hi = 0;
        let mut lo = 0;
        for v in per_chirp {
            if v.is_nan() {
                continue;
            }
            if v.is_infinite() {
                hi += 1;
                stats.push(self.r_max_bps);
            } else {
                if v <= self.r_min_bps * 1.0001 {
                    lo += 1;
                }
                stats.push(v);
            }
        }
        ChirpResult {
            estimate: stats,
            saturated_high: hi,
            saturated_low: lo,
        }
    }
}

impl ChirpResult {
    /// The mean turning-point rate, bits/s.
    pub fn estimate_bps(&self) -> f64 {
        self.estimate.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmaprobe_core::link::{LinkConfig, WiredLink, WlanLink};

    #[test]
    fn chirp_rates_sweep_exponentially() {
        let c = ChirpProbe::default();
        assert!((c.rate_at(0) - c.r_min_bps).abs() < 1.0);
        let last = c.rate_at(c.n - 2);
        assert!((last - c.r_max_bps).abs() / c.r_max_bps < 1e-9, "{last}");
        // Monotone increasing.
        for k in 0..c.n - 2 {
            assert!(c.rate_at(k + 1) > c.rate_at(k));
        }
        // Offsets monotone, n of them.
        let off = c.offsets();
        assert_eq!(off.len(), c.n);
        for w in off.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn chirp_finds_available_bandwidth_on_fifo() {
        let link = WiredLink::new(10e6, 4e6); // A = 6 Mb/s
        let probe = ChirpProbe {
            n: 80,
            chirps: 40,
            ..Default::default()
        };
        let r = probe.measure(&link, 11);
        let est = r.estimate_bps();
        assert!(
            (4.0e6..8.5e6).contains(&est),
            "chirp estimate {est:.0} should be ~A=6e6"
        );
    }

    #[test]
    fn chirp_lands_on_achievable_throughput_on_wlan() {
        // Fig 1 point: A ≈ 1.7 Mb/s, B ≈ 3.3 Mb/s.
        let link = WlanLink::new(LinkConfig::default().contending_bps(4.5e6));
        let probe = ChirpProbe {
            n: 80,
            chirps: 40,
            ..Default::default()
        };
        let r = probe.measure(&link, 13);
        let est = r.estimate_bps();
        // Above the available bandwidth: the chirp is not delayed until
        // it pushes past the fair share.
        assert!(est > 2.2e6, "chirp estimate {est:.0} must exceed A = 1.7e6");
        assert!(est < 6.5e6, "chirp estimate {est:.0} should stay near B");
    }

    #[test]
    fn idle_link_reports_no_turning_point_mostly() {
        let link = WiredLink::new(10e6, 0.0);
        let probe = ChirpProbe {
            n: 40,
            r_max_bps: 8e6, // below C: nothing should congest
            chirps: 20,
            ..Default::default()
        };
        let r = probe.measure(&link, 17);
        assert!(
            r.saturated_high >= 15,
            "most chirps should see no excursion, got {}",
            r.saturated_high
        );
    }
}
