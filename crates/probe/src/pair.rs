//! The packet-pair technique (the paper's ref \[23\], Dovrolis et al.).
//!
//! Two back-to-back packets are queued; on a wired FIFO path their
//! output dispersion equals the bottleneck serialisation time, so
//! `L/gO` estimates the **capacity** `C`. §7.3 of the paper shows that
//! on a CSMA/CA link a packet pair — a probe of infinite input rate —
//! instead targets the **achievable throughput**, and over-estimates
//! even that, because the pair rides the accelerated early transient
//! (Fig 16).

use csmaprobe_core::link::ProbeTarget;
use csmaprobe_desim::replicate;
use csmaprobe_stats::ecdf::Ecdf;
use csmaprobe_stats::online::OnlineStats;
use csmaprobe_traffic::probe::ProbeTrain;

/// A packet-pair capacity probe.
#[derive(Debug, Clone, Copy)]
pub struct PacketPairProbe {
    /// Probe packet payload, bytes.
    pub bytes: u32,
    /// Number of pairs to send (each in a fresh replication).
    pub pairs: usize,
}

/// Result of a packet-pair measurement.
#[derive(Debug, Clone)]
pub struct PairMeasurement {
    /// Probe payload, bytes.
    pub bytes: u32,
    /// Statistics of the pair dispersions, seconds.
    pub dispersion: OnlineStats,
    /// All pair dispersions (for mode/median analyses), seconds.
    pub samples: Vec<f64>,
}

impl PacketPairProbe {
    /// A probe sending `pairs` pairs of `bytes`-byte packets.
    pub fn new(bytes: u32, pairs: usize) -> Self {
        PacketPairProbe { bytes, pairs }
    }

    /// Run the measurement.
    pub fn measure<T: ProbeTarget + ?Sized>(&self, target: &T, seed: u64) -> PairMeasurement {
        let train = ProbeTrain::packet_pair(self.bytes);
        let gaps: Vec<Option<f64>> = replicate::run(self.pairs, seed, |_, s| {
            target.probe_train(train, s).output_gap_s()
        });
        let samples: Vec<f64> = gaps.into_iter().flatten().collect();
        PairMeasurement {
            bytes: self.bytes,
            dispersion: OnlineStats::from_slice(&samples),
            samples,
        }
    }
}

impl PairMeasurement {
    /// Mean-dispersion estimate `L / E[gO]`, bits/s — the estimator
    /// plotted in Fig 16.
    pub fn rate_from_mean_bps(&self) -> f64 {
        self.bytes as f64 * 8.0 / self.dispersion.mean()
    }

    /// Median-dispersion estimate, bits/s (robust variant used by
    /// classic capacity tools).
    pub fn rate_from_median_bps(&self) -> f64 {
        let med = Ecdf::new(self.samples.clone()).quantile(0.5);
        self.bytes as f64 * 8.0 / med
    }

    /// Minimum-dispersion estimate, bits/s (the classic "no
    /// interference" filter).
    pub fn rate_from_min_bps(&self) -> f64 {
        self.bytes as f64 * 8.0 / self.dispersion.min()
    }

    /// Dovrolis-style histogram-mode analysis: convert every pair
    /// dispersion to a rate, bin the rates, and return the bin-centre
    /// rates of the local maxima (strongest first).
    ///
    /// On a wired path the *capacity mode* (a spike at `C`) survives
    /// cross-traffic that drags the mean down; on CSMA/CA links the
    /// modes track the contention structure instead.
    pub fn rate_modes_bps(&self, bins: usize) -> Vec<f64> {
        if self.samples.len() < 4 {
            return vec![self.rate_from_mean_bps()];
        }
        let rates: Vec<f64> = self
            .samples
            .iter()
            .map(|g| self.bytes as f64 * 8.0 / g)
            .collect();
        let hist = csmaprobe_stats::histogram::Histogram::from_sample(&rates, bins);
        let counts = hist.counts();
        let mut modes: Vec<(u64, f64)> = Vec::new();
        for i in 0..counts.len() {
            let left = if i == 0 { 0 } else { counts[i - 1] };
            let right = if i + 1 == counts.len() {
                0
            } else {
                counts[i + 1]
            };
            if counts[i] > 0 && counts[i] >= left && counts[i] >= right {
                modes.push((counts[i], hist.bin_center(i)));
            }
        }
        modes.sort_by_key(|m| std::cmp::Reverse(m.0));
        modes.into_iter().map(|(_, rate)| rate).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmaprobe_core::link::{LinkConfig, WiredLink, WlanLink};

    #[test]
    fn wired_pair_measures_capacity() {
        // Idle wired link: dispersion = serialisation time exactly.
        let link = WiredLink::new(10e6, 0.0);
        let m = PacketPairProbe::new(1500, 20).measure(&link, 1);
        let c = m.rate_from_mean_bps();
        assert!((c - 10e6).abs() / 10e6 < 1e-9, "C = {c}");
        // With cross-traffic, the mean is biased low (expansion), but
        // the minimum filter still finds C.
        let busy = WiredLink::new(10e6, 5e6);
        let m2 = PacketPairProbe::new(1500, 200).measure(&busy, 2);
        let cmin = m2.rate_from_min_bps();
        assert!((cmin - 10e6).abs() / 10e6 < 0.01, "C_min = {cmin}");
        assert!(m2.rate_from_mean_bps() <= cmin);
    }

    #[test]
    fn wlan_pair_tracks_achievable_not_capacity() {
        // On an idle WLAN link the pair measures the per-frame channel
        // rate (≈ the 6.2 Mb/s DCF capacity), far below the 11 Mb/s PHY.
        let idle = WlanLink::new(LinkConfig::default());
        let m = PacketPairProbe::new(1500, 50).measure(&idle, 3);
        let c = m.rate_from_mean_bps();
        assert!((5.0e6..7.0e6).contains(&c), "idle WLAN pair: {c}");

        // With contention the estimate drops toward (but stays above)
        // the fair share — the §7.3 overestimation.
        let contended = WlanLink::new(LinkConfig::default().contending_bps(4e6));
        let m2 = PacketPairProbe::new(1500, 200).measure(&contended, 4);
        let est = m2.rate_from_mean_bps();
        assert!(est < c, "contention must lower the pair estimate");
        assert!(est > 2.0e6, "estimate {est} too low");
    }

    #[test]
    fn median_and_mean_close_on_idle_link() {
        let link = WiredLink::new(10e6, 0.0);
        let m = PacketPairProbe::new(1000, 11).measure(&link, 5);
        assert!((m.rate_from_mean_bps() - m.rate_from_median_bps()).abs() < 1.0);
    }

    #[test]
    fn histogram_mode_recovers_capacity_under_cross_traffic() {
        // Pair expansion needs the pair to be spread out before meeting
        // cross-traffic (on a single hop, back-to-back packets can never
        // be split in FIFO order): probe a 2-hop path whose first hop
        // spaces the pair and whose second (narrow, loaded) hop lets
        // cross packets slip in between. Expanded pairs drag the mean
        // down, but untouched pairs spike exactly at C: the strongest
        // histogram mode still reads the narrow-link capacity.
        use csmaprobe_core::multihop::{Hop, WiredPath};
        let path = WiredPath::new(vec![Hop::new(20e6, 0.0), Hop::new(10e6, 6e6)]);
        let m = PacketPairProbe::new(1500, 500).measure(&path, 7);
        assert!(
            m.rate_from_mean_bps() < 9.5e6,
            "mean should be dragged down, got {:.0}",
            m.rate_from_mean_bps()
        );
        let modes = m.rate_modes_bps(40);
        assert!(!modes.is_empty());
        let top = modes[0];
        assert!(
            (top - 10e6).abs() / 10e6 < 0.05,
            "capacity mode {top:.0} should be ~10 Mb/s (modes: {modes:?})"
        );
    }

    #[test]
    fn modes_fall_back_for_tiny_samples() {
        let link = WiredLink::new(10e6, 0.0);
        let m = PacketPairProbe::new(1500, 2).measure(&link, 9);
        let modes = m.rate_modes_bps(10);
        assert_eq!(modes.len(), 1);
    }
}
