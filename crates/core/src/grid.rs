//! The scenario **grid** subsystem: composing independent parameter
//! axes (link × train × tool, or any other enumerable dimensions) into
//! one flattened cell space scheduled through the replication engine.
//!
//! `core::sweep` schedules a *single* parameter axis per figure; the
//! paper's core claim is a function of three axes at once — the link
//! configuration, the probe-train shape, and the measurement tool. A
//! [`GridScenario`] describes one cell of that product space by its
//! multi-dimensional coordinate; [`GridRunner`] flattens the coordinate
//! space row-major (last axis fastest) and schedules every
//! `(cell × replication)` pair through
//! [`csmaprobe_desim::replicate::run_cells_emit`], streaming finished
//! rows to a consumer in ascending cell order.
//!
//! # Determinism guarantees
//!
//! The runner inherits the engine's bit-compatibility contract: each
//! cell's replications fold on the cell-local
//! [`CHUNK`](csmaprobe_desim::replicate::CHUNK) grid and merge in
//! ascending chunk order, so every cell's accumulator is
//! **bit-identical** to a standalone
//! `run_reduce(reps(coord), …)` over the same replications — for any
//! worker count, any surrounding grid, and (crucially for resume) any
//! *subset* of scheduled cells: [`GridRunner::run_cells_with`] over the
//! still-missing cells of an interrupted run reproduces exactly the
//! rows an uninterrupted run would have produced for them.
//!
//! # Streaming
//!
//! [`GridRunner::run_cells_with`] emits each finished row as soon as
//! its cell's last chunk has merged, holding at most one pending cell
//! plus O(workers) chunk accumulators — a grid of a million cells never
//! materialises a million accumulators. This is what makes incremental,
//! crash-tolerant persistence (the `bench` JSONL row sink) possible.

use crate::sweep::SweepScenario;
use csmaprobe_desim::replicate;
use csmaprobe_stats::accumulate::Accumulate;

/// One shard of a sharded grid campaign: this process owns the cells at
/// positions `index`, `index + count`, `index + 2·count`, … of the
/// campaign's **name-keyed** cell order (see [`shard_members`]).
///
/// `0/1` (the [`ShardSpec::solo`] default) is the unsharded campaign:
/// one shard owning every cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's index, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards in the campaign, `>= 1`.
    pub count: usize,
}

impl ShardSpec {
    /// The unsharded campaign: one shard owning everything.
    pub fn solo() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// Is this the unsharded `0/1` campaign?
    pub fn is_solo(&self) -> bool {
        self.count == 1
    }

    /// Parse an `i/n` CLI spec (`--shard 0/4`): both integers, `n >= 1`
    /// and `i < n`.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (i, n) = s
            .trim()
            .split_once('/')
            .ok_or_else(|| format!("malformed shard spec {s:?} (expected i/n, e.g. 0/4)"))?;
        let index: usize = i
            .trim()
            .parse()
            .map_err(|_| format!("shard index {i:?} is not an integer"))?;
        let count: usize = n
            .trim()
            .parse()
            .map_err(|_| format!("shard count {n:?} is not an integer"))?;
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range (must be below the count {count})"
            ));
        }
        Ok(ShardSpec { index, count })
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The flat cell indices owned by `shard` out of `total` cells, in
/// **ascending flat order** (ready for [`GridRunner::run_cells_with`]).
///
/// Membership is decided by round-robin over the cells sorted by
/// `key_of` (ties broken by flat index): the cell at sorted position
/// `p` belongs to shard `p % shard.count`. With a *name* key (as the
/// bench grid uses) shard membership depends only on the set of cell
/// names in the campaign — never on axis selection order — so two
/// operators spelling the same campaign differently still agree on who
/// owns which cell.
///
/// # Panics
/// If `shard.count == 0` or `shard.index >= shard.count`.
pub fn shard_members<K: Ord>(
    total: usize,
    shard: ShardSpec,
    key_of: impl Fn(usize) -> K,
) -> Vec<usize> {
    assert!(shard.count >= 1, "shard count must be at least 1");
    assert!(shard.index < shard.count, "shard index out of range");
    let keys: Vec<K> = (0..total).map(&key_of).collect();
    let mut order: Vec<usize> = (0..total).collect();
    order.sort_by(|&a, &b| keys[a].cmp(&keys[b]).then(a.cmp(&b)));
    let mut members: Vec<usize> = order
        .iter()
        .enumerate()
        .filter(|(pos, _)| pos % shard.count == shard.index)
        .map(|(_, &flat)| flat)
        .collect();
    members.sort_unstable();
    members
}

/// The shape of a grid: one extent per axis, flattened row-major (the
/// **last** axis varies fastest, like a nested `for` loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridShape {
    dims: Vec<usize>,
}

impl GridShape {
    /// A shape with the given per-axis extents.
    pub fn new(dims: Vec<usize>) -> Self {
        GridShape { dims }
    }

    /// Per-axis extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Total number of cells (product of extents; 1 for a zero-axis
    /// grid, 0 if any axis is empty).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// No cells at all?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major flat index of `coord` (last axis fastest).
    ///
    /// # Panics
    /// If `coord` has the wrong arity or any component is out of range.
    pub fn flatten(&self, coord: &[usize]) -> usize {
        assert_eq!(coord.len(), self.dims.len(), "coordinate arity");
        let mut flat = 0usize;
        for (c, d) in coord.iter().zip(&self.dims) {
            assert!(c < d, "coordinate {c} out of range {d}");
            flat = flat * d + c;
        }
        flat
    }

    /// Inverse of [`GridShape::flatten`].
    ///
    /// # Panics
    /// If `flat >= self.len()`.
    pub fn unflatten(&self, flat: usize) -> Vec<usize> {
        assert!(flat < self.len(), "flat index {flat} out of range");
        let mut coord = vec![0usize; self.dims.len()];
        let mut rest = flat;
        for (slot, d) in coord.iter_mut().zip(&self.dims).rev() {
            *slot = rest % d;
            rest /= d;
        }
        coord
    }

    /// Iterate all coordinates in flat (row-major) order.
    pub fn coords(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        (0..self.len()).map(|f| self.unflatten(f))
    }
}

/// A parameterised *grid* of scenarios — one cell per coordinate of the
/// product space of independent axes.
///
/// The contract mirrors [`SweepScenario`] with multi-dimensional cell
/// addressing: [`GridScenario::replicate`] must be a pure function of
/// `(coord, rep)` (derive all randomness from them), and
/// [`GridScenario::Acc`] must satisfy the [`Accumulate`] merge law, so
/// the runner may execute cells in any order on any worker.
pub trait GridScenario: Sync {
    /// Streaming per-cell accumulator.
    type Acc: Accumulate + Send;
    /// Finished row type, one per cell.
    type Row: Send;

    /// Short identifier (for registries and logs).
    fn name(&self) -> &str;

    /// The axis extents of the product space.
    fn shape(&self) -> GridShape;

    /// Replication budget of the cell at `coord`.
    fn reps(&self, coord: &[usize]) -> usize;

    /// A fresh (identity) accumulator for the cell at `coord`.
    fn identity(&self, coord: &[usize]) -> Self::Acc;

    /// Run replication `rep` of the cell at `coord`, folding its
    /// observations into `acc`. Must be a pure function of
    /// `(coord, rep)`.
    fn replicate(&self, coord: &[usize], rep: usize, acc: &mut Self::Acc);

    /// Run a whole chunk of replications (`range`, always confined to
    /// one cell-local [`CHUNK`](csmaprobe_desim::replicate::CHUNK)) of
    /// the cell at `coord`. The default loops [`GridScenario::replicate`]
    /// in ascending order; scenarios whose cells route to a
    /// replication-batched kernel override this so the chunk executes
    /// as one kernel call. **Contract:** must fold exactly what the
    /// default loop would fold, in the same order — the runner's
    /// bit-compatibility guarantees hinge on it.
    fn replicate_chunk(&self, coord: &[usize], range: std::ops::Range<usize>, acc: &mut Self::Acc) {
        for rep in range {
            self.replicate(coord, rep, acc);
        }
    }

    /// Turn a fully-reduced cell into its row.
    fn finish(&self, coord: &[usize], acc: Self::Acc) -> Self::Row;
}

/// Adapter presenting a [`GridScenario`]'s flattened cell space as a
/// [`SweepScenario`] — the compatibility bridge that lets grid cells
/// ride every scheduling path built for sweeps.
pub struct GridSweep<'a, G: GridScenario + ?Sized> {
    grid: &'a G,
    shape: GridShape,
}

impl<'a, G: GridScenario + ?Sized> GridSweep<'a, G> {
    /// Wrap `grid` (snapshots its shape).
    pub fn new(grid: &'a G) -> Self {
        let shape = grid.shape();
        GridSweep { grid, shape }
    }
}

impl<G: GridScenario + ?Sized> SweepScenario for GridSweep<'_, G> {
    type Acc = G::Acc;
    type Row = G::Row;

    fn name(&self) -> &str {
        self.grid.name()
    }
    fn points(&self) -> usize {
        self.shape.len()
    }
    fn reps(&self, point: usize) -> usize {
        self.grid.reps(&self.shape.unflatten(point))
    }
    fn identity(&self, point: usize) -> Self::Acc {
        self.grid.identity(&self.shape.unflatten(point))
    }
    fn replicate(&self, point: usize, rep: usize, acc: &mut Self::Acc) {
        self.grid.replicate(&self.shape.unflatten(point), rep, acc)
    }
    fn finish(&self, point: usize, acc: Self::Acc) -> Self::Row {
        self.grid.finish(&self.shape.unflatten(point), acc)
    }
}

/// Schedules the cells of a [`GridScenario`] through the shared
/// work-stealing chunk executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridRunner;

impl GridRunner {
    /// A runner with default scheduling.
    pub fn new() -> Self {
        GridRunner
    }

    /// Run **every** cell and return one row per cell, in flat
    /// (row-major) order.
    pub fn run<G: GridScenario + ?Sized>(&self, grid: &G) -> Vec<G::Row> {
        let shape = grid.shape();
        let all: Vec<usize> = (0..shape.len()).collect();
        let mut rows = Vec::with_capacity(all.len());
        self.run_cells_with(grid, &all, |_, row| rows.push(row));
        rows
    }

    /// Run only the cells whose **flat indices** are listed in `cells`
    /// (ascending, no duplicates), streaming each finished row to
    /// `emit(flat, row)` in ascending flat order as soon as the cell
    /// completes.
    ///
    /// This is the resume path: an interrupted run re-schedules exactly
    /// the cells missing from its persisted row set, and — by the
    /// engine's cell-local chunk-grid contract — produces rows
    /// bit-identical to what the uninterrupted run would have written.
    ///
    /// # Panics
    /// If `cells` is not strictly ascending or indexes past the grid.
    pub fn run_cells_with<G, E>(&self, grid: &G, cells: &[usize], mut emit: E)
    where
        G: GridScenario + ?Sized,
        E: FnMut(usize, G::Row) + Send,
    {
        let shape = grid.shape();
        assert!(
            cells.windows(2).all(|w| w[0] < w[1]),
            "cell list must be strictly ascending"
        );
        if let Some(&last) = cells.last() {
            assert!(
                last < shape.len(),
                "cell {last} out of range {}",
                shape.len()
            );
        }
        let coords: Vec<Vec<usize>> = cells.iter().map(|&f| shape.unflatten(f)).collect();
        let budgets: Vec<usize> = coords.iter().map(|c| grid.reps(c)).collect();
        replicate::run_cells_emit_chunked(
            &budgets,
            |i, range, acc: &mut G::Acc| grid.replicate_chunk(&coords[i], range, acc),
            |i| grid.identity(&coords[i]),
            |a, b| a.merge(b),
            |i, acc| emit(cells[i], grid.finish(&coords[i], acc)),
        );
    }
}

/// Convenience: run every cell of `grid` with a default [`GridRunner`].
pub fn run_grid<G: GridScenario + ?Sized>(grid: &G) -> Vec<G::Row> {
    GridRunner::new().run(grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmaprobe_desim::rng::{derive_seed, SimRng};
    use csmaprobe_stats::online::OnlineStats;

    /// A synthetic 3-axis grid: cell `(i, j, k)` averages
    /// `reps(i,j,k)` pseudo observations derived from the coordinate.
    struct Synthetic {
        dims: Vec<usize>,
        seed: u64,
    }

    impl Synthetic {
        fn cell_seed(&self, coord: &[usize]) -> u64 {
            coord
                .iter()
                .fold(self.seed, |s, &c| derive_seed(s, c as u64))
        }
    }

    impl GridScenario for Synthetic {
        type Acc = OnlineStats;
        type Row = (Vec<usize>, u64, f64);

        fn name(&self) -> &str {
            "synthetic"
        }
        fn shape(&self) -> GridShape {
            GridShape::new(self.dims.clone())
        }
        fn reps(&self, coord: &[usize]) -> usize {
            // Deterministic, coordinate-dependent budget incl. zeros.
            (coord.iter().sum::<usize>() * 3) % 5
        }
        fn identity(&self, _coord: &[usize]) -> OnlineStats {
            OnlineStats::new()
        }
        fn replicate(&self, coord: &[usize], rep: usize, acc: &mut OnlineStats) {
            let s = derive_seed(self.cell_seed(coord), rep as u64);
            acc.push(SimRng::new(s).f64());
        }
        fn finish(&self, coord: &[usize], acc: OnlineStats) -> Self::Row {
            (coord.to_vec(), acc.count(), acc.mean())
        }
    }

    #[test]
    fn shape_flatten_unflatten_roundtrip() {
        let s = GridShape::new(vec![3, 4, 2]);
        assert_eq!(s.len(), 24);
        for flat in 0..s.len() {
            let coord = s.unflatten(flat);
            assert_eq!(s.flatten(&coord), flat);
        }
        // Row-major: last axis fastest.
        assert_eq!(s.unflatten(0), vec![0, 0, 0]);
        assert_eq!(s.unflatten(1), vec![0, 0, 1]);
        assert_eq!(s.unflatten(2), vec![0, 1, 0]);
        assert_eq!(s.unflatten(23), vec![2, 3, 1]);
    }

    #[test]
    fn empty_axis_means_empty_grid() {
        let s = GridShape::new(vec![3, 0, 2]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        let g = Synthetic {
            dims: vec![3, 0, 2],
            seed: 1,
        };
        assert!(run_grid(&g).is_empty());
    }

    #[test]
    fn grid_matches_nested_sequential_reference() {
        let g = Synthetic {
            dims: vec![2, 3, 2],
            seed: 0x9E1D,
        };
        let rows = run_grid(&g);
        assert_eq!(rows.len(), 12);
        let shape = g.shape();
        for (flat, (coord, count, mean)) in rows.iter().enumerate() {
            assert_eq!(*coord, shape.unflatten(flat));
            // Sequential reference for this cell.
            let mut acc = OnlineStats::new();
            for rep in 0..g.reps(coord) {
                g.replicate(coord, rep, &mut acc);
            }
            assert_eq!(*count, acc.count());
            assert_eq!(mean.to_bits(), acc.mean().to_bits(), "cell {coord:?}");
        }
    }

    #[test]
    fn subset_rows_bit_identical_to_full_run() {
        let g = Synthetic {
            dims: vec![3, 3],
            seed: 7,
        };
        let full = run_grid(&g);
        // Run the odd cells only, as a resume would.
        let subset: Vec<usize> = (0..g.shape().len()).filter(|f| f % 2 == 1).collect();
        let mut got = Vec::new();
        GridRunner::new().run_cells_with(&g, &subset, |flat, row| got.push((flat, row)));
        assert_eq!(got.len(), subset.len());
        let mut last = None;
        for (flat, (coord, count, mean)) in &got {
            assert!(
                last.map(|l| l < *flat).unwrap_or(true),
                "ascending emission"
            );
            last = Some(*flat);
            let (rc, rn, rm) = &full[*flat];
            assert_eq!(coord, rc);
            assert_eq!(count, rn);
            assert_eq!(mean.to_bits(), rm.to_bits(), "cell {flat}");
        }
    }

    #[test]
    fn grid_as_sweep_equals_run_grid() {
        let g = Synthetic {
            dims: vec![2, 2, 3],
            seed: 0xA11,
        };
        let direct = run_grid(&g);
        let swept = crate::sweep::run_sweep(&GridSweep::new(&g));
        assert_eq!(direct.len(), swept.len());
        for ((dc, dn, dm), (sc, sn, sm)) in direct.iter().zip(&swept) {
            assert_eq!(dc, sc);
            assert_eq!(dn, sn);
            assert_eq!(dm.to_bits(), sm.to_bits());
        }
    }

    #[test]
    fn shard_spec_parses_and_rejects() {
        assert_eq!(
            ShardSpec::parse("0/4").unwrap(),
            ShardSpec { index: 0, count: 4 }
        );
        assert_eq!(
            ShardSpec::parse(" 3/8 ").unwrap(),
            ShardSpec { index: 3, count: 8 }
        );
        assert!(
            ShardSpec::parse("4/4").is_err(),
            "index must be below count"
        );
        assert!(ShardSpec::parse("0/0").is_err(), "count must be >= 1");
        assert!(ShardSpec::parse("0").is_err(), "missing slash");
        assert!(ShardSpec::parse("a/b").is_err(), "non-numeric");
        assert!(ShardSpec::parse("-1/2").is_err(), "negative index");
        assert_eq!(ShardSpec::solo().to_string(), "0/1");
        assert!(ShardSpec::solo().is_solo());
        assert!(!ShardSpec::parse("0/2").unwrap().is_solo());
    }

    #[test]
    fn shard_members_partition_the_cell_space() {
        let key = |f: usize| format!("cell-{f:03}");
        for total in [0usize, 1, 5, 24] {
            for count in 1..=8usize {
                let mut seen = vec![false; total];
                for index in 0..count {
                    let members = shard_members(total, ShardSpec { index, count }, key);
                    assert!(
                        members.windows(2).all(|w| w[0] < w[1]),
                        "ascending flat order"
                    );
                    for &f in &members {
                        assert!(!seen[f], "cell {f} owned by two shards");
                        seen[f] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "union covers every cell");
            }
        }
        // Solo shard owns everything.
        assert_eq!(shard_members(4, ShardSpec::solo(), key), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shard_membership_follows_the_key_order_not_the_flat_order() {
        // Reverse the key order: sorted position of flat f is 3 - f, so
        // shard 0 of 2 owns sorted positions {0, 2} = flat cells {3, 1}.
        let key = |f: usize| 3 - f;
        let s0 = shard_members(4, ShardSpec { index: 0, count: 2 }, key);
        let s1 = shard_members(4, ShardSpec { index: 1, count: 2 }, key);
        assert_eq!(s0, vec![1, 3]);
        assert_eq!(s1, vec![0, 2]);
    }

    #[test]
    fn grid_bit_identical_across_worker_counts() {
        let g = Synthetic {
            dims: vec![2, 4],
            seed: 0x5EED,
        };
        csmaprobe_desim::replicate::set_worker_limit(1);
        let solo = run_grid(&g);
        csmaprobe_desim::replicate::set_worker_limit(4);
        let quad = run_grid(&g);
        csmaprobe_desim::replicate::set_worker_limit(0);
        for (a, b) in solo.iter().zip(&quad) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
            assert_eq!(a.2.to_bits(), b.2.to_bits());
        }
    }
}
