//! Steady-state rate-response curves (§2 and §3 of the paper).
//!
//! A rate-response curve relates the input rate `ri` of a probing flow
//! to the output rate `ro` it achieves across a path. All rates are in
//! bits/s.

/// Eq. (1) — the fluid FIFO model of the wired bandwidth-measurement
/// literature:
///
/// ```text
/// ro = ri                      ri ≤ A
/// ro = C·ri/(ri + C − A)       ri ≥ A
/// ```
///
/// `capacity` is `C`, `available` is the available bandwidth `A ≤ C`.
pub fn fifo_rate_response(ri: f64, capacity: f64, available: f64) -> f64 {
    debug_assert!(capacity > 0.0 && (0.0..=capacity).contains(&available));
    if ri <= available {
        ri
    } else {
        capacity * ri / (ri + capacity - available)
    }
}

/// Eq. (3) — the contention-only CSMA/CA curve of Bredel & Fidler:
/// `ro = min(ri, B)` with `B` the achievable throughput (fair share).
pub fn csma_rate_response(ri: f64, achievable: f64) -> f64 {
    ri.min(achievable)
}

/// Eq. (5) — achievable throughput when FIFO cross-traffic occupies the
/// transmission queue a fraction `u_fifo` of the time:
/// `B = Bf·(1 − u_fifo)`, where `Bf` is the fair share the probe would
/// get with an otherwise empty queue.
pub fn achievable_throughput(bf: f64, u_fifo: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&u_fifo));
    bf * (1.0 - u_fifo)
}

/// Eq. (4) — the paper's complete steady-state rate-response curve for
/// a probing flow that both shares a FIFO queue (utilisation `u_fifo`)
/// and contends for channel access (fair share `bf`):
///
/// ```text
/// ro = ri                            ri ≤ B = Bf(1−u_fifo)
/// ro = Bf·ri/(ri + u_fifo·Bf)        ri ≥ B
/// ```
///
/// ```
/// use csmaprobe_core::rate_response::complete_rate_response;
///
/// let (bf, u) = (3.5e6, 0.4); // fair share 3.5 Mb/s, queue 40% busy
/// assert_eq!(complete_rate_response(1e6, bf, u), 1e6);   // identity
/// let knee = bf * (1.0 - u);                             // B = 2.1 Mb/s
/// assert!(complete_rate_response(8e6, bf, u) > knee);    // probe squeezes
/// assert!(complete_rate_response(8e6, bf, u) < bf);      // ... toward Bf
/// ```
pub fn complete_rate_response(ri: f64, bf: f64, u_fifo: f64) -> f64 {
    debug_assert!(bf > 0.0 && (0.0..=1.0).contains(&u_fifo));
    let b = achievable_throughput(bf, u_fifo);
    if ri <= b {
        ri
    } else {
        bf * ri / (ri + u_fifo * bf)
    }
}

/// Eq. (2) — the paper's definition of achievable throughput from a
/// measured curve: `B = sup{ ri : ro/ri = 1 }`.
///
/// `curve` is a list of `(ri, ro)` samples (any order); `tolerance` is
/// the relative shortfall treated as "equal" (e.g. 0.02 accepts
/// `ro/ri ≥ 0.98`). Returns 0.0 when no point qualifies.
pub fn achievable_from_curve(curve: &[(f64, f64)], tolerance: f64) -> f64 {
    curve
        .iter()
        .filter(|(ri, ro)| *ri > 0.0 && ro / ri >= 1.0 - tolerance)
        .map(|(ri, _)| *ri)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_identity_below_available() {
        for ri in [0.1e6, 1e6, 2e6] {
            assert_eq!(fifo_rate_response(ri, 10e6, 2e6), ri);
        }
    }

    #[test]
    fn fifo_saturates_toward_capacity() {
        let c = 10e6;
        let a = 2e6;
        // Above A the curve is strictly below ri and approaches C.
        let r1 = fifo_rate_response(5e6, c, a);
        assert!(r1 < 5e6);
        let r2 = fifo_rate_response(1e9, c, a);
        assert!(r2 < c && r2 > 0.98 * c);
        // Continuity at ri = A.
        let eps = 1.0;
        assert!((fifo_rate_response(a + eps, c, a) - a).abs() < 2.0);
    }

    #[test]
    fn fifo_is_monotone_nondecreasing() {
        let mut prev = 0.0;
        for k in 1..200 {
            let ri = k as f64 * 1e5;
            let ro = fifo_rate_response(ri, 10e6, 3e6);
            assert!(ro >= prev - 1e-9);
            prev = ro;
        }
    }

    #[test]
    fn csma_flattens_at_fair_share() {
        assert_eq!(csma_rate_response(1e6, 3.4e6), 1e6);
        assert_eq!(csma_rate_response(5e6, 3.4e6), 3.4e6);
        assert_eq!(csma_rate_response(3.4e6, 3.4e6), 3.4e6);
    }

    #[test]
    fn complete_curve_is_continuous_at_b() {
        let bf = 3.2e6;
        let u = 0.3;
        let b = achievable_throughput(bf, u);
        let below = complete_rate_response(b * (1.0 - 1e-9), bf, u);
        let above = complete_rate_response(b * (1.0 + 1e-9), bf, u);
        assert!((below - above).abs() < 1.0, "{below} vs {above}");
        assert!((below - b).abs() < 1.0);
    }

    #[test]
    fn complete_curve_reduces_to_csma_without_fifo_cross() {
        let bf = 3.2e6;
        for ri in [1e6, 3e6, 5e6, 9e6] {
            let full = complete_rate_response(ri, bf, 0.0);
            let csma = csma_rate_response(ri, bf);
            assert!((full - csma).abs() < 1e-6, "ri={ri}: {full} vs {csma}");
        }
    }

    #[test]
    fn complete_curve_approaches_bf_at_high_rate() {
        // As ri → ∞ the probe squeezes the FIFO cross-traffic out of the
        // queue and its throughput approaches the full fair share Bf.
        let bf = 3.2e6;
        let u = 0.4;
        let ro = complete_rate_response(1e12, bf, u);
        assert!(ro > 0.999 * bf && ro < bf);
    }

    #[test]
    fn achievable_equals_available_in_fifo_model() {
        // In eq (1), ro/ri = 1 exactly up to ri = A.
        let c = 10e6;
        let a = 2e6;
        let curve: Vec<(f64, f64)> = (1..100)
            .map(|k| {
                let ri = k as f64 * 1e5;
                (ri, fifo_rate_response(ri, c, a))
            })
            .collect();
        let b = achievable_from_curve(&curve, 1e-6);
        assert!((b - a).abs() <= 1e5, "B={b}");
    }

    #[test]
    fn achievable_from_curve_respects_tolerance() {
        let curve = vec![(1.0, 1.0), (2.0, 1.97), (3.0, 2.5)];
        assert_eq!(achievable_from_curve(&curve, 0.0), 1.0);
        assert_eq!(achievable_from_curve(&curve, 0.02), 2.0);
        assert_eq!(achievable_from_curve(&[], 0.1), 0.0);
    }
}
