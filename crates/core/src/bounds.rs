//! §6 — bounds on the expected output dispersion under transient
//! access delays (eqs 23–34) and the transient-aware achievable
//! throughput (eqs 31/36).
//!
//! Inputs are the **per-index mean access delays** `E[μ_1..μ_n]` of an
//! `n`-packet train (measured, e.g., by
//! [`crate::transient::TransientExperiment`]), the input gap `gI`, and
//! the FIFO cross-traffic utilisation `u_fifo` (0 for the §6.2 case).
//!
//! The paper derives the bounds from two different decompositions of
//! `E[gO]` — eq (21), via the intrusion residual, and eq (22), via
//! queue utilisation. Their region structure (eqs 29/30) is implemented
//! literally. Note the paper's own observation (§6.2.2): in the region
//! `gI ≥ S1` the residual-based *lower* bound `gI + κ(n)` sits **above**
//! the steady-state curve `gI` — that gap *is* the transient-induced
//! deviation, and it is why short trains mis-estimate steady-state
//! metrics.

/// The paper's κ(n) (below eq 21) under workload stationarity
/// (`E[W(a_n)] = E[W(a_1)]`): `κ(n) = (E[μ_n] − E[μ_1])/(n−1)`.
pub fn kappa(e_mu: &[f64]) -> f64 {
    assert!(e_mu.len() >= 2);
    (e_mu[e_mu.len() - 1] - e_mu[0]) / (e_mu.len() as f64 - 1.0)
}

/// `S₂ = (1/(n−1))·Σ_{i=2..n} E[μ_i]` — the mean access delay of all
/// packets but the first.
pub fn mean_mu_tail(e_mu: &[f64]) -> f64 {
    assert!(e_mu.len() >= 2);
    e_mu[1..].iter().sum::<f64>() / (e_mu.len() as f64 - 1.0)
}

/// `S₁ = (1/(n−1))·Σ_{i=1..n−1} E[μ_i]` — the mean access delay of all
/// packets but the last.
pub fn mean_mu_head(e_mu: &[f64]) -> f64 {
    assert!(e_mu.len() >= 2);
    e_mu[..e_mu.len() - 1].iter().sum::<f64>() / (e_mu.len() as f64 - 1.0)
}

/// Eq. (23) — sample-path bounds on the final intrusion residual:
/// `max(0, Σ_{i<n}(μ_i − gI)) ≤ R_n ≤ Σ_{i<n} μ_i`.
pub fn residual_bounds(mu: &[f64], g_i: f64) -> (f64, f64) {
    assert!(mu.len() >= 2);
    let head = &mu[..mu.len() - 1];
    let lower = head.iter().map(|m| m - g_i).sum::<f64>().max(0.0);
    let upper = head.iter().sum::<f64>();
    (lower, upper)
}

/// The §6 dispersion bounds at one input gap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientBounds {
    /// Input gap `gI` these bounds are for (seconds).
    pub g_i: f64,
    /// Lower bound on `E[gO]` (eq 29; eq 33 when `u_fifo = 0`).
    pub lower: f64,
    /// Upper bound on `E[gO]` (eq 30; eq 34 when `u_fifo = 0`).
    pub upper: f64,
    /// The closed-form value of eq (27) when `gI ≤ S₂` (the saturated
    /// region, where the bounds coincide).
    pub exact: Option<f64>,
}

/// Compute the eq (29)/(30) bounds for an `n`-packet train with mean
/// access-delay profile `e_mu`, input gap `g_i` (seconds) and FIFO
/// cross-traffic utilisation `u_fifo ∈ [0, 1)`.
pub fn dispersion_bounds(e_mu: &[f64], g_i: f64, u_fifo: f64) -> TransientBounds {
    assert!(e_mu.len() >= 2, "need n >= 2");
    assert!((0.0..1.0).contains(&u_fifo), "u_fifo = {u_fifo}");
    assert!(g_i >= 0.0);
    let s2 = mean_mu_tail(e_mu);
    let s1 = mean_mu_head(e_mu);
    let k = kappa(e_mu);

    if g_i <= s2 {
        // Eq (27): the queue is busy throughout the measurement; the
        // output gap is exactly the mean tail access delay plus the
        // cross-traffic share of each gap.
        let exact = s2 + u_fifo * g_i;
        return TransientBounds {
            g_i,
            lower: exact,
            upper: exact,
            exact: Some(exact),
        };
    }

    // Eq (28) rearranged: lower = max over both decompositions,
    // upper = min over both (region splits of eqs 29/30 emerge from the
    // max/min automatically).
    let lower = (g_i + k).max(s2 + u_fifo * g_i);
    let upper = (g_i + s1 + k).min((1.0 + u_fifo) * g_i);
    TransientBounds {
        g_i,
        lower,
        upper,
        exact: None,
    }
}

/// Eq. (31) (u_fifo = 0) / eq. (36) — the transient-aware achievable
/// throughput of an `n`-packet train:
/// `L/B = (1/n)·Σ E[μ_i] / (1 − u_fifo)`, returned in bits/s for
/// payload `l_bytes`.
pub fn achievable_throughput_transient(e_mu: &[f64], l_bytes: u32, u_fifo: f64) -> f64 {
    assert!(!e_mu.is_empty());
    assert!((0.0..1.0).contains(&u_fifo));
    let mean_mu = e_mu.iter().sum::<f64>() / e_mu.len() as f64;
    l_bytes as f64 * 8.0 * (1.0 - u_fifo) / mean_mu
}

/// Eq. (32)/(37) — the steady-state limit of the above as `n → ∞`:
/// uses the steady-state mean access delay only.
pub fn achievable_throughput_steady(steady_mu: f64, l_bytes: u32, u_fifo: f64) -> f64 {
    assert!(steady_mu > 0.0);
    l_bytes as f64 * 8.0 * (1.0 - u_fifo) / steady_mu
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A typical transient profile: μ rises from μ1 to steady μ∞.
    fn ramp(n: usize, mu1: f64, mu_inf: f64) -> Vec<f64> {
        (0..n)
            .map(|i| mu_inf - (mu_inf - mu1) * (-(i as f64) / 8.0).exp())
            .collect()
    }

    #[test]
    fn kappa_positive_for_increasing_profile() {
        let mu = ramp(50, 1.5e-3, 2.0e-3);
        assert!(kappa(&mu) > 0.0);
        // Flat profile: kappa = 0.
        assert_eq!(kappa(&[1e-3; 10]), 0.0);
    }

    #[test]
    fn head_and_tail_means_order() {
        // μ increasing ⇒ S1 ≤ S2 ≤ μ_n (paper eq 35).
        let mu = ramp(30, 1.0e-3, 2.0e-3);
        let s1 = mean_mu_head(&mu);
        let s2 = mean_mu_tail(&mu);
        assert!(s1 <= s2);
        assert!(s2 <= *mu.last().unwrap());
    }

    #[test]
    fn residual_bounds_bracket() {
        let mu = vec![2e-3, 2e-3, 2e-3, 2e-3];
        // Fast probing: gI = 1 ms < μ.
        let (lo, hi) = residual_bounds(&mu, 1e-3);
        assert!((lo - 3e-3).abs() < 1e-15); // 3 * (2-1)ms
        assert!((hi - 6e-3).abs() < 1e-15); // 3 * 2ms
                                            // Slow probing: lower bound clamps to 0.
        let (lo2, _) = residual_bounds(&mu, 10e-3);
        assert_eq!(lo2, 0.0);
    }

    #[test]
    fn saturated_region_is_exact_and_continuous() {
        let mu = ramp(20, 1.5e-3, 2.0e-3);
        let s2 = mean_mu_tail(&mu);
        let b = dispersion_bounds(&mu, s2 * 0.5, 0.0);
        assert_eq!(b.lower, b.upper);
        assert_eq!(b.exact, Some(s2));
        // Just above S2 the bounds separate but remain near S2. Note
        // that for an increasing μ-profile the residual-based lower
        // bound (gI + κ) may sit ABOVE the utilisation-based upper
        // bound (gI) here — that overlap zone is exactly the paper's
        // §6.2.2 "deviation" region, so we assert proximity, not order.
        let b2 = dispersion_bounds(&mu, s2 * 1.0001, 0.0);
        assert!(b2.exact.is_none());
        assert!((b2.lower - s2).abs() / s2 < 0.05);
        assert!((b2.upper - s2).abs() / s2 < 0.05);
    }

    #[test]
    fn no_fifo_reduces_to_eq_33_34() {
        let mu = ramp(20, 1.5e-3, 2.0e-3);
        let s1 = mean_mu_head(&mu);
        let k = kappa(&mu);
        // Large gI: upper = gI (eq 34 first region), lower = gI + κ.
        let g = 50e-3;
        let b = dispersion_bounds(&mu, g, 0.0);
        assert!((b.upper - g).abs() < 1e-12, "upper {}", b.upper);
        assert!((b.lower - (g + k)).abs() < 1e-12);
        // The paper's point: lower sits κ above the steady curve gI.
        assert!(b.lower > g);
        // Moderate gI in (S2, S1+...): still consistent.
        let _ = s1;
    }

    #[test]
    fn fifo_utilisation_raises_dispersion() {
        let mu = ramp(20, 1.5e-3, 2.0e-3);
        let g = 4e-3;
        let b0 = dispersion_bounds(&mu, g, 0.0);
        let b5 = dispersion_bounds(&mu, g, 0.5);
        assert!(b5.lower >= b0.lower);
        assert!(b5.upper >= b0.upper);
    }

    #[test]
    fn transient_b_exceeds_steady_b() {
        // Short trains average in the small early μ_i, so eq (31) gives
        // a HIGHER achievable throughput than the steady-state eq (32)
        // — the optimistic bias of short-train probing.
        let mu = ramp(10, 1.5e-3, 2.0e-3);
        let b_short = achievable_throughput_transient(&mu, 1500, 0.0);
        let b_steady = achievable_throughput_steady(2.0e-3, 1500, 0.0);
        assert!(
            b_short > b_steady,
            "short {b_short:.0} vs steady {b_steady:.0}"
        );
        // A long train converges toward the steady value.
        let mu_long = ramp(10_000, 1.5e-3, 2.0e-3);
        let b_long = achievable_throughput_transient(&mu_long, 1500, 0.0);
        assert!((b_long - b_steady).abs() / b_steady < 0.01);
    }

    #[test]
    fn fifo_share_scales_achievable() {
        let b0 = achievable_throughput_steady(2e-3, 1500, 0.0);
        let b4 = achievable_throughput_steady(2e-3, 1500, 0.4);
        assert!((b4 - 0.6 * b0).abs() < 1e-9);
    }
}
