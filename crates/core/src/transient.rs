//! §4 — the transient-state experiments: replicated probing trains,
//! per-index access-delay statistics, KS profiles, and the §4.1
//! transient-length estimator — run by the **scenario engine**.
//!
//! A [`Scenario`] names a link, a probing train, and a replication
//! budget; the engine executes it in one of two modes:
//!
//! * [`run_summary`] (and [`TransientExperiment::run`]) — fully
//!   streaming: every replication folds straight into per-index
//!   [`OnlineStats`] via `replicate::run_reduce`, so peak memory is
//!   O(train length × accumulator) no matter the replication count.
//!   This serves Figs 6 and 10 and every mean-profile analysis.
//! * [`run_dense`] (and [`TransientExperiment::run_dense`]) — the
//!   escape hatch for analyses that genuinely need raw per-index
//!   samples (the KS profiles of Figs 7–9), with an **explicit
//!   per-index reservoir cap** bounding memory at O(train length ×
//!   cap).
//!
//! Both modes are deterministic in `(seed, reps)` — bit-identical
//! across repeated runs and across worker counts, because the
//! underlying reduce merges chunk accumulators in fixed chunk order.

use crate::link::{WlanLink, WlanTrainRun};
use csmaprobe_desim::replicate;
use csmaprobe_stats::accumulate::Accumulate;
use csmaprobe_stats::ks::KsOutcome;
use csmaprobe_stats::online::OnlineStats;
use csmaprobe_stats::transient::{IndexedQuantile, IndexedSeries, IndexedStats, TransientEstimate};
use csmaprobe_traffic::probe::ProbeTrain;

/// One replicated probing scenario: everything the engine needs to run
/// it, independent of *how* (streaming summary or dense samples).
pub trait Scenario: Sync {
    /// Short identifier (for registries and logs).
    fn name(&self) -> &str;
    /// The link (probe + cross-traffic configuration).
    fn link(&self) -> &WlanLink;
    /// The probing train sent in every replication.
    fn train(&self) -> ProbeTrain;
    /// Replication budget.
    fn reps(&self) -> usize;
}

/// A replicated transient-probing experiment (the canonical
/// [`Scenario`]).
#[derive(Debug, Clone)]
pub struct TransientExperiment {
    /// The link (probe + cross-traffic configuration).
    pub link: WlanLink,
    /// The probing train sent in every replication.
    pub train: ProbeTrain,
    /// Number of independent replications.
    pub reps: usize,
    /// Master seed; replication `k` uses seed `derive(seed, k)`.
    pub seed: u64,
}

impl Scenario for TransientExperiment {
    fn name(&self) -> &str {
        "transient"
    }
    fn link(&self) -> &WlanLink {
        &self.link
    }
    fn train(&self) -> ProbeTrain {
        self.train
    }
    fn reps(&self) -> usize {
        self.reps
    }
}

/// The tail percentile both execution modes stream per packet index
/// (the paper's access-delay distributions are right-skewed; the p95
/// tracks the transient's effect on the tail, not just the mean).
pub const TAIL_QUANTILE: f64 = 0.95;

/// Streaming accumulator of one scenario: per-index delay and
/// queue-size moments plus the streamed per-index delay p95. Moments
/// merge exactly (up to rounding), the p95 by the deterministic P²
/// marker merge, under the chunk-ordered reduce.
#[derive(Debug, Clone)]
struct SummaryAcc {
    delays: IndexedStats,
    queues: IndexedStats,
    delay_p95: IndexedQuantile,
}

impl Default for SummaryAcc {
    fn default() -> Self {
        SummaryAcc {
            delays: IndexedStats::new(),
            queues: IndexedStats::new(),
            delay_p95: IndexedQuantile::new(TAIL_QUANTILE),
        }
    }
}

impl Accumulate for SummaryAcc {
    fn merge(&mut self, other: Self) {
        self.delays.merge(other.delays);
        self.queues.merge(other.queues);
        self.delay_p95.merge(other.delay_p95);
    }
}

/// Dense accumulator: raw per-index samples, reservoir-capped, plus
/// the same streamed per-index delay p95 as the summary path (P² — not
/// recomputed from the capped reservoir, so the tail estimate never
/// degrades with decimation).
#[derive(Debug, Clone)]
struct DenseAcc {
    delays: IndexedSeries,
    queues: IndexedSeries,
    delay_p95: IndexedQuantile,
}

impl Accumulate for DenseAcc {
    fn merge(&mut self, other: Self) {
        self.delays.merge(other.delays);
        self.queues.merge(other.queues);
        self.delay_p95.merge(other.delay_p95);
    }
}

/// Run one replication of `scenario` and feed it to `consume` as
/// `(delays, queue_sizes)` iterators; the simulation buffers are
/// recycled afterwards.
fn replicate_once(
    scenario: &(impl Scenario + ?Sized),
    seed: u64,
    mut consume: impl FnMut(usize, f64, Option<f64>),
) {
    let has_contender = !scenario.link().config().contending.is_empty();
    let run: WlanTrainRun = scenario.link().send_train(scenario.train(), seed);
    for (i, r) in run.probe.iter().enumerate() {
        let queue = if has_contender {
            Some(run.output.queue_len_at(run.contending[0], r.arrival) as f64)
        } else {
            None
        };
        consume(i, r.access_delay().as_secs_f64(), queue);
    }
    run.recycle();
}

/// Execute a scenario in streaming-summary mode (see module docs).
pub fn run_summary(scenario: &(impl Scenario + ?Sized), seed: u64) -> TransientSummary {
    let acc = replicate::run_reduce(
        scenario.reps(),
        seed,
        |_, s, acc: &mut SummaryAcc| {
            replicate_once(scenario, s, |i, delay, queue| {
                acc.delays.push(i, delay);
                acc.delay_p95.push(i, delay);
                if let Some(q) = queue {
                    acc.queues.push(i, q);
                }
            });
        },
        SummaryAcc::default,
        Accumulate::merge,
    );
    TransientSummary {
        delays: acc.delays,
        queue_sizes: acc.queues,
        delay_p95: acc.delay_p95,
        reps: scenario.reps(),
    }
}

/// Execute a scenario in dense mode, retaining at most `cap` raw
/// samples per packet index (deterministic decimation beyond that).
pub fn run_dense(scenario: &(impl Scenario + ?Sized), seed: u64, cap: usize) -> TransientData {
    let acc = replicate::run_reduce(
        scenario.reps(),
        seed,
        |_, s, acc: &mut DenseAcc| {
            let mut delays = Vec::with_capacity(scenario.train().n);
            let mut queues = Vec::new();
            replicate_once(scenario, s, |_, delay, queue| {
                delays.push(delay);
                if let Some(q) = queue {
                    queues.push(q);
                }
            });
            acc.delays.push_replication(&delays);
            acc.delay_p95.push_replication(&delays);
            if !queues.is_empty() {
                acc.queues.push_replication(&queues);
            }
        },
        || DenseAcc {
            delays: IndexedSeries::with_cap(cap),
            queues: IndexedSeries::with_cap(cap),
            delay_p95: IndexedQuantile::new(TAIL_QUANTILE),
        },
        Accumulate::merge,
    );
    TransientData {
        delays: acc.delays,
        queue_sizes: acc.queues,
        delay_p95: acc.delay_p95,
    }
}

impl TransientExperiment {
    /// Run all replications in streaming mode (thread-parallel,
    /// deterministic): per-index moments only, O(train length) memory.
    pub fn run(&self) -> TransientSummary {
        run_summary(self, self.seed)
    }

    /// Run all replications retaining raw per-index samples (for KS
    /// profiles and histograms), capped at `cap` samples per index.
    pub fn run_dense(&self, cap: usize) -> TransientData {
        run_dense(self, self.seed, cap)
    }
}

/// Streaming result of a [`Scenario`]: per-index moments of the access
/// delay and of the first contending station's queue size.
#[derive(Debug, Clone)]
pub struct TransientSummary {
    /// Per-index access-delay moments (seconds).
    pub delays: IndexedStats,
    /// Per-index contending-queue-size moments (empty when the link has
    /// no contenders).
    pub queue_sizes: IndexedStats,
    /// Streamed per-index access-delay p95 ([`TAIL_QUANTILE`]), seconds.
    pub delay_p95: IndexedQuantile,
    /// Replications executed.
    pub reps: usize,
}

impl TransientSummary {
    /// Per-index mean access delay (Fig 6), seconds.
    pub fn mean_profile(&self) -> Vec<f64> {
        self.delays.means()
    }

    /// Pooled moments of the last `last_k` packet indices — the paper's
    /// steady-state statistics (e.g. the last 500 of 1000) without
    /// materialising the pooled sample.
    pub fn steady_stats(&self, last_k: usize) -> OnlineStats {
        let n = self.delays.len();
        self.delays.pooled_stats(n.saturating_sub(last_k), n)
    }

    /// Mean of the steady-state pool.
    pub fn steady_mean(&self, last_k: usize) -> f64 {
        self.steady_stats(last_k).mean()
    }

    /// §4.1 transient length at relative `tolerance` (Fig 10).
    pub fn transient_length(&self, last_k: usize, tolerance: f64) -> TransientEstimate {
        self.delays
            .transient_length(self.steady_mean(last_k), tolerance)
    }

    /// Transient length with an **absolute** tolerance in seconds (the
    /// paper's Fig 10 "0.1/0.01" values read as milliseconds).
    pub fn transient_length_abs(&self, last_k: usize, tol_seconds: f64) -> TransientEstimate {
        csmaprobe_stats::transient::transient_length_of_means_abs(
            &self.mean_profile(),
            self.steady_mean(last_k),
            tol_seconds,
        )
    }

    /// Per-index mean contending-station queue size (Fig 8 bottom).
    pub fn queue_profile(&self) -> Vec<f64> {
        self.queue_sizes.means()
    }

    /// Streamed per-index p95 access delay ([`TAIL_QUANTILE`]), seconds.
    pub fn p95_profile(&self) -> Vec<f64> {
        self.delay_p95.values()
    }
}

/// Dense per-index data from a [`Scenario`] (raw samples, reservoir
/// capped): what the KS analyses of Figs 7–9 need.
#[derive(Debug, Clone)]
pub struct TransientData {
    /// Access delay (seconds) of packet index `i` across replications.
    pub delays: IndexedSeries,
    /// Queue length of the first contending station sampled at each
    /// probe packet's arrival (empty when the link has no contenders).
    pub queue_sizes: IndexedSeries,
    /// Streamed per-index access-delay p95 ([`TAIL_QUANTILE`]), seconds
    /// — P²-estimated over **all** replications, independent of the
    /// reservoir cap.
    pub delay_p95: IndexedQuantile,
}

impl TransientData {
    /// Per-index mean access delay (Fig 6), seconds.
    pub fn mean_profile(&self) -> Vec<f64> {
        self.delays.means()
    }

    /// The pooled steady-state sample: the access delays of the last
    /// `last_k` packet indices across all replications (the paper pools
    /// the last 500 of 1000).
    pub fn steady_sample(&self, last_k: usize) -> Vec<f64> {
        let n = self.delays.len();
        self.delays.pooled(n.saturating_sub(last_k), n)
    }

    /// Mean of the steady-state sample.
    pub fn steady_mean(&self, last_k: usize) -> f64 {
        let s = self.steady_sample(last_k);
        s.iter().sum::<f64>() / s.len() as f64
    }

    /// KS statistic of each packet index against the steady-state
    /// sample (Fig 8 top / Fig 9), at significance `alpha`.
    pub fn ks_profile(&self, last_k: usize, alpha: f64) -> Vec<KsOutcome> {
        let reference = self.steady_sample(last_k);
        self.delays.ks_profile(&reference, alpha)
    }

    /// §4.1 transient length at relative `tolerance` (Fig 10): the
    /// first packet index whose mean access delay is within tolerance
    /// of the steady-state mean.
    pub fn transient_length(&self, last_k: usize, tolerance: f64) -> TransientEstimate {
        self.delays
            .transient_length(self.steady_mean(last_k), tolerance)
    }

    /// Transient length with an **absolute** tolerance in seconds (the
    /// paper's Fig 10 "0.1/0.01" values read as milliseconds).
    pub fn transient_length_abs(&self, last_k: usize, tol_seconds: f64) -> TransientEstimate {
        csmaprobe_stats::transient::transient_length_of_means_abs(
            &self.mean_profile(),
            self.steady_mean(last_k),
            tol_seconds,
        )
    }

    /// Per-index mean contending-station queue size (Fig 8 bottom).
    pub fn queue_profile(&self) -> Vec<f64> {
        self.queue_sizes.means()
    }

    /// Streamed per-index p95 access delay ([`TAIL_QUANTILE`]), seconds.
    pub fn p95_profile(&self) -> Vec<f64> {
        self.delay_p95.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;

    /// The paper's Fig 6 setting, scaled down: probe 5 Mb/s vs 4 Mb/s
    /// contending cross-traffic. The first packets must see smaller
    /// access delays than steady state.
    #[test]
    fn access_delay_shows_transient() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(4_000_000.0));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(200, 1500, 5_000_000.0),
            reps: 400,
            seed: 0xF1606,
        };
        let data = exp.run();
        let profile = data.mean_profile();
        assert_eq!(profile.len(), 200);
        let steady = data.steady_mean(100);
        // First packet clearly accelerated.
        assert!(
            profile[0] < 0.9 * steady,
            "first {} vs steady {steady}",
            profile[0]
        );
        // Late packets near steady state.
        let late = profile[150..].iter().sum::<f64>() / 50.0;
        assert!(
            (late - steady).abs() / steady < 0.05,
            "late {late} vs steady {steady}"
        );
        // The mean profile is (noisily) increasing early on: packet 1
        // below packet 10's level.
        assert!(profile[0] < profile[9]);
    }

    #[test]
    fn ks_profile_rejects_early_indices_only() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(4_000_000.0));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(150, 1500, 8_000_000.0),
            reps: 300,
            seed: 0xF1608,
        };
        let data = exp.run_dense(usize::MAX);
        let ks = data.ks_profile(75, 0.05);
        // Index 0 differs from steady state.
        assert!(ks[0].reject, "first packet should be off steady state");
        // Most of the last indices do not (they ARE the reference pool,
        // so this is a sanity check of the machinery, not a discovery).
        let late_rejects = ks[100..].iter().filter(|o| o.reject).count();
        assert!(late_rejects < 20, "late rejects: {late_rejects}/50");
    }

    #[test]
    fn transient_length_reasonable() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(4_000_000.0));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(150, 1500, 5_000_000.0),
            reps: 400,
            seed: 0xF1610,
        };
        let data = exp.run();
        let est = data.transient_length(75, 0.1);
        let first = est.first_within.expect("must converge at 0.1 tolerance");
        // Paper: transient ≤ 150 packets at 0.1 tolerance; in this
        // moderate-load setting it is tens of packets at most.
        assert!(first < 100, "transient length {first}");
    }

    #[test]
    fn queue_profile_tracks_contender() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(2_000_000.0));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(100, 1500, 8_000_000.0),
            reps: 150,
            seed: 0xF1612,
        };
        let data = exp.run();
        let q = data.queue_profile();
        assert_eq!(q.len(), 100);
        // The probe's load pushes the contender's queue up over the
        // train: late mean queue exceeds the initial one.
        let early = q[0];
        let late = q[80..].iter().sum::<f64>() / 20.0;
        assert!(late > early, "early {early} late {late}");
    }

    #[test]
    fn p95_profile_sits_above_mean_and_shows_transient() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(4_000_000.0));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(200, 1500, 5_000_000.0),
            reps: 400,
            seed: 0xF1606,
        };
        let summary = exp.run();
        let mean = summary.mean_profile();
        let p95 = summary.p95_profile();
        assert_eq!(p95.len(), mean.len());
        // A right-skewed delay distribution: p95 above the mean at
        // (almost) every index.
        let above = p95.iter().zip(&mean).filter(|(q, m)| q > m).count();
        assert!(above >= mean.len() * 9 / 10, "{above}/{} above", mean.len());
        // The tail shows the transient too: first-packet p95 below the
        // steady-state tail level.
        let steady_p95 = p95[100..].iter().sum::<f64>() / 100.0;
        assert!(
            p95[0] < steady_p95,
            "p95[0] = {} vs steady {steady_p95}",
            p95[0]
        );
        // Dense mode streams the same estimator (identical bits: same
        // replications, same chunk-ordered merge).
        let dense = exp.run_dense(usize::MAX);
        let dense_p95 = dense.p95_profile();
        for (i, (a, b)) in p95.iter().zip(&dense_p95).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "index {i}");
        }
    }

    #[test]
    fn experiment_is_deterministic() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(3_000_000.0));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(30, 1500, 5_000_000.0),
            reps: 20,
            seed: 1234,
        };
        let a = exp.run().mean_profile();
        let b = exp.run().mean_profile();
        assert_eq!(a, b);
    }

    #[test]
    fn summary_agrees_with_dense() {
        // The streaming summary and the (uncapped) dense path are two
        // views of the same replications: identical means up to
        // floating-point rounding.
        let link = WlanLink::new(LinkConfig::default().contending_bps(3_000_000.0));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(50, 1500, 5_000_000.0),
            reps: 60,
            seed: 0xABCD,
        };
        let summary = exp.run();
        let dense = exp.run_dense(usize::MAX);
        let a = summary.mean_profile();
        let b = dense.mean_profile();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
        assert!(
            (summary.steady_mean(25) - dense.steady_mean(25)).abs() / dense.steady_mean(25) < 1e-9
        );
        let qa = summary.queue_profile();
        let qb = dense.queue_profile();
        for (x, y) in qa.iter().zip(&qb) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_cap_bounds_samples_per_index() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(3_000_000.0));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(20, 1500, 5_000_000.0),
            reps: 100,
            seed: 0xBEEF,
        };
        let data = exp.run_dense(16);
        for i in 0..20 {
            assert!(data.delays.sample(i).len() <= 16, "index {i} over cap");
        }
        // Capped means are still close to the full-data means.
        let full = exp.run_dense(usize::MAX);
        let steady_capped = data.steady_mean(10);
        let steady_full = full.steady_mean(10);
        assert!(
            (steady_capped - steady_full).abs() / steady_full < 0.25,
            "{steady_capped} vs {steady_full}"
        );
    }

    #[test]
    fn scenario_trait_is_object_usable() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(2_000_000.0));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(10, 1500, 4_000_000.0),
            reps: 8,
            seed: 5,
        };
        let s: &dyn Scenario = &exp;
        assert_eq!(s.name(), "transient");
        assert_eq!(s.reps(), 8);
        let summary = run_summary(s, 5);
        assert_eq!(summary.mean_profile().len(), 10);
    }
}
