//! §4 — the transient-state experiments: replicated probing trains,
//! per-index access-delay statistics, KS profiles, and the §4.1
//! transient-length estimator.
//!
//! [`TransientExperiment`] is the machinery behind Figs 6–10: it sends
//! the same probing train through independently-seeded replicas of a
//! [`WlanLink`] (the paper repeats 25 000 NS2 runs) and aggregates the
//! access delay of the *i*-th packet across replications into sample
//! *i*. [`TransientData`] then exposes the paper's analyses.

use crate::link::{WlanLink, WlanTrainRun};
use csmaprobe_desim::replicate;
use csmaprobe_stats::ks::KsOutcome;
use csmaprobe_stats::transient::{IndexedSeries, TransientEstimate};
use csmaprobe_traffic::probe::ProbeTrain;

/// A replicated transient-probing experiment.
#[derive(Debug, Clone)]
pub struct TransientExperiment {
    /// The link (probe + cross-traffic configuration).
    pub link: WlanLink,
    /// The probing train sent in every replication.
    pub train: ProbeTrain,
    /// Number of independent replications.
    pub reps: usize,
    /// Master seed; replication `k` uses seed `derive(seed, k)`.
    pub seed: u64,
}

/// Aggregated per-index data from a [`TransientExperiment`].
#[derive(Debug, Clone)]
pub struct TransientData {
    /// Access delay (seconds) of packet index `i` across replications.
    pub delays: IndexedSeries,
    /// Queue length of the first contending station sampled at each
    /// probe packet's arrival (empty when the link has no contenders).
    pub queue_sizes: IndexedSeries,
}

impl TransientExperiment {
    /// Run all replications (thread-parallel, deterministic).
    pub fn run(&self) -> TransientData {
        let has_contender = !self.link.config().contending.is_empty();
        let per_rep: Vec<(Vec<f64>, Vec<f64>)> = replicate::run(self.reps, self.seed, |_, s| {
            let run: WlanTrainRun = self.link.send_train(self.train, s);
            let delays = run.access_delays_s();
            let queues = if has_contender {
                run.contending_queue_at_probe_arrivals(0)
                    .into_iter()
                    .map(|q| q as f64)
                    .collect()
            } else {
                Vec::new()
            };
            (delays, queues)
        });
        let mut delays = IndexedSeries::new();
        let mut queue_sizes = IndexedSeries::new();
        for (d, q) in &per_rep {
            delays.push_replication(d);
            if !q.is_empty() {
                queue_sizes.push_replication(q);
            }
        }
        TransientData {
            delays,
            queue_sizes,
        }
    }
}

impl TransientData {
    /// Per-index mean access delay (Fig 6), seconds.
    pub fn mean_profile(&self) -> Vec<f64> {
        self.delays.means()
    }

    /// The pooled steady-state sample: the access delays of the last
    /// `last_k` packet indices across all replications (the paper pools
    /// the last 500 of 1000).
    pub fn steady_sample(&self, last_k: usize) -> Vec<f64> {
        let n = self.delays.len();
        self.delays.pooled(n.saturating_sub(last_k), n)
    }

    /// Mean of the steady-state sample.
    pub fn steady_mean(&self, last_k: usize) -> f64 {
        let s = self.steady_sample(last_k);
        s.iter().sum::<f64>() / s.len() as f64
    }

    /// KS statistic of each packet index against the steady-state
    /// sample (Fig 8 top / Fig 9), at significance `alpha`.
    pub fn ks_profile(&self, last_k: usize, alpha: f64) -> Vec<KsOutcome> {
        let reference = self.steady_sample(last_k);
        self.delays.ks_profile(&reference, alpha)
    }

    /// §4.1 transient length at relative `tolerance` (Fig 10): the
    /// first packet index whose mean access delay is within tolerance
    /// of the steady-state mean.
    pub fn transient_length(&self, last_k: usize, tolerance: f64) -> TransientEstimate {
        self.delays
            .transient_length(self.steady_mean(last_k), tolerance)
    }

    /// Transient length with an **absolute** tolerance in seconds (the
    /// paper's Fig 10 "0.1/0.01" values read as milliseconds).
    pub fn transient_length_abs(&self, last_k: usize, tol_seconds: f64) -> TransientEstimate {
        csmaprobe_stats::transient::transient_length_of_means_abs(
            &self.mean_profile(),
            self.steady_mean(last_k),
            tol_seconds,
        )
    }

    /// Per-index mean contending-station queue size (Fig 8 bottom).
    pub fn queue_profile(&self) -> Vec<f64> {
        self.queue_sizes.means()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;

    /// The paper's Fig 6 setting, scaled down: probe 5 Mb/s vs 4 Mb/s
    /// contending cross-traffic. The first packets must see smaller
    /// access delays than steady state.
    #[test]
    fn access_delay_shows_transient() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(4_000_000.0));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(200, 1500, 5_000_000.0),
            reps: 400,
            seed: 0xF1606,
        };
        let data = exp.run();
        let profile = data.mean_profile();
        assert_eq!(profile.len(), 200);
        let steady = data.steady_mean(100);
        // First packet clearly accelerated.
        assert!(
            profile[0] < 0.9 * steady,
            "first {} vs steady {steady}",
            profile[0]
        );
        // Late packets near steady state.
        let late = profile[150..].iter().sum::<f64>() / 50.0;
        assert!(
            (late - steady).abs() / steady < 0.05,
            "late {late} vs steady {steady}"
        );
        // The mean profile is (noisily) increasing early on: packet 1
        // below packet 10's level.
        assert!(profile[0] < profile[9]);
    }

    #[test]
    fn ks_profile_rejects_early_indices_only() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(4_000_000.0));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(150, 1500, 8_000_000.0),
            reps: 300,
            seed: 0xF1608,
        };
        let data = exp.run();
        let ks = data.ks_profile(75, 0.05);
        // Index 0 differs from steady state.
        assert!(ks[0].reject, "first packet should be off steady state");
        // Most of the last indices do not (they ARE the reference pool,
        // so this is a sanity check of the machinery, not a discovery).
        let late_rejects = ks[100..].iter().filter(|o| o.reject).count();
        assert!(late_rejects < 20, "late rejects: {late_rejects}/50");
    }

    #[test]
    fn transient_length_reasonable() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(4_000_000.0));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(150, 1500, 5_000_000.0),
            reps: 400,
            seed: 0xF1610,
        };
        let data = exp.run();
        let est = data.transient_length(75, 0.1);
        let first = est.first_within.expect("must converge at 0.1 tolerance");
        // Paper: transient ≤ 150 packets at 0.1 tolerance; in this
        // moderate-load setting it is tens of packets at most.
        assert!(first < 100, "transient length {first}");
    }

    #[test]
    fn queue_profile_tracks_contender() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(2_000_000.0));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(100, 1500, 8_000_000.0),
            reps: 150,
            seed: 0xF1612,
        };
        let data = exp.run();
        let q = data.queue_profile();
        assert_eq!(q.len(), 100);
        // The probe's load pushes the contender's queue up over the
        // train: late mean queue exceeds the initial one.
        let early = q[0];
        let late = q[80..].iter().sum::<f64>() / 20.0;
        assert!(late > early, "early {early} late {late}");
    }

    #[test]
    fn experiment_is_deterministic() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(3_000_000.0));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(30, 1500, 5_000_000.0),
            reps: 20,
            seed: 1234,
        };
        let a = exp.run().mean_profile();
        let b = exp.run().mean_profile();
        assert_eq!(a, b);
    }
}
