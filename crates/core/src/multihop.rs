//! Multi-hop wired FIFO paths.
//!
//! The paper's wired baseline is a single hop; its reference \[15\]
//! (Liu, Ravindran, Loguinov) analyses probing *asymptotics across
//! several FIFO hops*. [`WiredPath`] chains single-hop FIFO queues —
//! each with its own capacity and independent Poisson cross-traffic —
//! so the tools in `csmaprobe-probe` can be exercised on multi-hop
//! topologies too: the end-to-end available bandwidth is the minimum
//! over hops ("tight link"), the packet-pair capacity is set by the
//! narrow link, and each extra hop adds its own transient to short
//! trains.

use crate::link::{ProbeTarget, TrainObservation};
use csmaprobe_desim::rng::{derive_seed, SimRng};
use csmaprobe_desim::time::{Dur, Time};
use csmaprobe_queueing::fifo::{fifo_serve, Job};
use csmaprobe_traffic::probe::ProbeTrain;
use csmaprobe_traffic::{PoissonSource, SizeModel, Source};

/// One FIFO hop of a wired path.
#[derive(Debug, Clone, Copy)]
pub struct Hop {
    /// Link capacity, bits/s.
    pub capacity_bps: f64,
    /// Poisson cross-traffic rate entering at this hop, bits/s
    /// (single-hop-persistent: it leaves before the next hop).
    pub cross_rate_bps: f64,
    /// Cross-traffic packet size, bytes.
    pub cross_bytes: u32,
}

impl Hop {
    /// A hop with the given capacity and cross-traffic (1500 B packets).
    pub fn new(capacity_bps: f64, cross_rate_bps: f64) -> Self {
        Hop {
            capacity_bps,
            cross_rate_bps,
            cross_bytes: 1500,
        }
    }

    /// This hop's available bandwidth.
    pub fn available_bps(&self) -> f64 {
        (self.capacity_bps - self.cross_rate_bps).max(0.0)
    }
}

/// A chain of FIFO hops with per-hop cross-traffic.
#[derive(Debug, Clone)]
pub struct WiredPath {
    /// The hops, in path order.
    pub hops: Vec<Hop>,
    /// Probe payload size, bytes.
    pub probe_bytes: u32,
    /// Cross-traffic warm-up before probing begins.
    pub warmup: Dur,
}

impl WiredPath {
    /// A path over the given hops.
    pub fn new(hops: Vec<Hop>) -> Self {
        assert!(!hops.is_empty(), "a path needs at least one hop");
        WiredPath {
            hops,
            probe_bytes: 1500,
            warmup: Dur::from_millis(500),
        }
    }

    /// The end-to-end available bandwidth: the minimum over hops.
    pub fn available_bps(&self) -> f64 {
        self.hops
            .iter()
            .map(Hop::available_bps)
            .fold(f64::INFINITY, f64::min)
    }

    /// The narrow-link capacity: the minimum hop capacity.
    pub fn capacity_bps(&self) -> f64 {
        self.hops
            .iter()
            .map(|h| h.capacity_bps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Push a probe arrival sequence through every hop in turn; probe
    /// departures of hop `k` are its arrivals at hop `k+1`.
    fn traverse(&self, probe: &[(Time, u32)], seed: u64) -> Vec<(Time, u32)> {
        let mut current: Vec<(Time, u32)> = probe.to_vec();
        for (h, hop) in self.hops.iter().enumerate() {
            let service = |bytes: u32| Dur::from_secs_f64(bytes as f64 * 8.0 / hop.capacity_bps);
            let last = current.last().map(|&(t, _)| t).unwrap_or(Time::ZERO);
            let horizon =
                last + service(self.probe_bytes) * (current.len() as u64 + 8) + Dur::from_secs(2);
            // Independent cross-traffic stream per hop.
            let mut rng = SimRng::new(derive_seed(seed, 0xB0B + h as u64));
            let mut cross = PoissonSource::from_bitrate(
                hop.cross_rate_bps,
                SizeModel::Fixed(hop.cross_bytes),
                Time::ZERO,
                horizon,
            );
            let mut jobs: Vec<(Time, u32, bool)> = Vec::new();
            while let Some(p) = cross.next_packet(&mut rng) {
                jobs.push((p.time, p.bytes, false));
            }
            for &(t, b) in &current {
                jobs.push((t, b, true));
            }
            jobs.sort_by_key(|&(t, _, is_probe)| (t, !is_probe));
            let plain: Vec<Job> = jobs
                .iter()
                .map(|&(t, bytes, _)| Job {
                    arrival: t,
                    service: service(bytes),
                })
                .collect();
            let served = fifo_serve(&plain);
            current = served
                .iter()
                .zip(&jobs)
                .filter(|(_, &(_, _, is_probe))| is_probe)
                .map(|(s, &(_, b, _))| (s.depart, b))
                .collect();
        }
        current
    }
}

impl ProbeTarget for WiredPath {
    fn probe_train(&self, train: ProbeTrain, seed: u64) -> TrainObservation {
        let start = Time::ZERO + self.warmup;
        let probe: Vec<(Time, u32)> = train
            .arrivals(start)
            .iter()
            .map(|p| (p.time, p.bytes))
            .collect();
        let arrivals: Vec<Time> = probe.iter().map(|&(t, _)| t).collect();
        let out = self.traverse(&probe, seed);
        TrainObservation {
            arrivals,
            rx_times: out.iter().map(|&(t, _)| t).collect(),
            access_delays: None,
            g_i: train.gap,
            bytes: train.bytes,
        }
    }

    fn probe_sequence(&self, offsets: &[Dur], bytes: u32, seed: u64) -> TrainObservation {
        let start = Time::ZERO + self.warmup;
        let probe: Vec<(Time, u32)> = offsets.iter().map(|&o| (start + o, bytes)).collect();
        let arrivals: Vec<Time> = probe.iter().map(|&(t, _)| t).collect();
        let out = self.traverse(&probe, seed);
        TrainObservation {
            arrivals,
            rx_times: out.iter().map(|&(t, _)| t).collect(),
            access_delays: None,
            g_i: Dur::ZERO,
            bytes,
        }
    }

    fn probe_bytes(&self) -> u32 {
        self.probe_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_metrics_are_minima() {
        let path = WiredPath::new(vec![
            Hop::new(100e6, 20e6),
            Hop::new(10e6, 4e6), // tight AND narrow link
            Hop::new(50e6, 45e6),
        ]);
        assert_eq!(path.capacity_bps(), 10e6);
        assert_eq!(path.available_bps(), 5e6); // 50-45 = 5 < 6 < 80
    }

    #[test]
    fn single_hop_path_equals_wired_link() {
        use crate::link::WiredLink;
        let path = WiredPath::new(vec![Hop::new(10e6, 4e6)]);
        let link = WiredLink::new(10e6, 4e6);
        let train = ProbeTrain::from_rate(200, 1500, 3e6);
        let a = path.probe_train(train, 5).output_rate_bps().unwrap();
        let b = link.probe_train(train, 5).output_rate_bps().unwrap();
        // Different cross-traffic streams, same statistics.
        assert!((a - b).abs() / b < 0.05, "{a} vs {b}");
    }

    #[test]
    fn bottleneck_caps_throughput() {
        let path = WiredPath::new(vec![Hop::new(100e6, 0.0), Hop::new(10e6, 4e6)]);
        // Probing hard: the long-train response pins at the tight
        // link's eq (1) value.
        let train = ProbeTrain::from_rate(1500, 1500, 9e6);
        let ro = path.probe_train(train, 7).output_rate_bps().unwrap();
        let fluid = crate::rate_response::fifo_rate_response(9e6, 10e6, 6e6);
        assert!(
            (ro - fluid).abs() / fluid < 0.06,
            "ro {ro} vs fluid {fluid}"
        );
    }

    #[test]
    fn packet_pair_reads_narrow_link() {
        // Pair dispersion after the narrow link survives wide
        // downstream hops (no cross-traffic to re-compress it).
        let path = WiredPath::new(vec![Hop::new(10e6, 0.0), Hop::new(100e6, 0.0)]);
        let train = ProbeTrain::packet_pair(1500);
        let obs = path.probe_train(train, 9);
        let rate = obs.output_rate_bps().unwrap();
        assert!((rate - 10e6).abs() / 10e6 < 1e-6, "pair rate {rate}");
    }

    #[test]
    fn extra_hops_add_dispersion_noise() {
        // Short trains across 3 loaded hops deviate more from the input
        // rate than across 1 hop (each hop adds burstiness).
        let one = WiredPath::new(vec![Hop::new(10e6, 5e6)]);
        let three = WiredPath::new(vec![
            Hop::new(10e6, 5e6),
            Hop::new(10e6, 5e6),
            Hop::new(10e6, 5e6),
        ]);
        let train = ProbeTrain::from_rate(10, 1500, 4e6);
        let spread = |path: &WiredPath| {
            let mut dev = 0.0;
            for seed in 0..40u64 {
                let ro = path.probe_train(train, seed).output_rate_bps().unwrap();
                dev += (ro - 4e6).abs();
            }
            dev / 40.0
        };
        assert!(spread(&three) > spread(&one));
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_path_rejected() {
        WiredPath::new(vec![]);
    }
}
