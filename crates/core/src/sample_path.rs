//! The §5 sample-path framework: how probe arrivals, access delays,
//! FIFO cross-traffic workload and the intrusion residual compose into
//! the output dispersion.
//!
//! All quantities here are in **seconds** (this is the
//! analysis/measurement boundary; the simulators below it use integer
//! nanoseconds).
//!
//! Notation (paper §5.1):
//!
//! * `gI` — input gap of the periodic probing sequence,
//!   `a_i = a_1 + (i−1)·gI`.
//! * `μ_i` — access delay of probe packet `i` (head-of-queue until
//!   fully transmitted).
//! * `W(t)` — hop workload of the FIFO cross-traffic alone.
//! * `u_fifo(t, t+τ)` — cross-traffic utilisation of the queue.
//! * `R_i` — intrusion residual: probe-traffic workload still in the
//!   queue when probe packet `i` arrives (eq 13/14).
//! * `Z_i = μ_i + R_i + W(a_i)` — queueing plus access delay (eq 15).

/// Eq. (14) — the intrusion-residual recursion.
///
/// `g_i` is the input gap; `mu[i]` is `μ_{i+1}` (0-based storage);
/// `u_between[i]` is `u_fifo(a_{i+1}, a_{i+2})`, the cross-traffic
/// utilisation of the queue between consecutive probe arrivals (pass
/// all-zeros when there is no FIFO cross-traffic). Returns
/// `R_1..R_n` (0-based `R[i] = R_{i+1}`), with `R_1 = 0`.
pub fn intrusion_residuals(g_i: f64, mu: &[f64], u_between: &[f64]) -> Vec<f64> {
    assert!(
        u_between.len() + 1 >= mu.len(),
        "need a utilisation sample for every inter-arrival gap"
    );
    let mut r = Vec::with_capacity(mu.len());
    let mut prev = 0.0;
    for i in 0..mu.len() {
        if i > 0 {
            let u = u_between[i - 1];
            prev = (mu[i - 1] + prev - (1.0 - u) * g_i).max(0.0);
        }
        r.push(prev);
    }
    r
}

/// Eq. (15) — total queueing-plus-access delay
/// `Z_i = μ_i + R_i + W(a_i)`.
///
/// `w_at_arrivals[i]` is the cross-traffic workload `W(a_i⁻)` found by
/// probe packet `i` (zeros when there is no FIFO cross-traffic).
pub fn total_delays(mu: &[f64], residuals: &[f64], w_at_arrivals: &[f64]) -> Vec<f64> {
    assert_eq!(mu.len(), residuals.len());
    assert_eq!(mu.len(), w_at_arrivals.len());
    mu.iter()
        .zip(residuals)
        .zip(w_at_arrivals)
        .map(|((m, r), w)| m + r + w)
        .collect()
}

/// Eq. (16) — output gap from receiver-side timestamps:
/// `gO = (d_n − d_1)/(n−1)`.
///
/// Panics with fewer than two departures.
pub fn output_gap(departures: &[f64]) -> f64 {
    assert!(departures.len() >= 2, "need at least two departures");
    (departures.last().unwrap() - departures.first().unwrap()) / (departures.len() as f64 - 1.0)
}

/// Eq. (17) — the same output gap from the delay processes:
/// `gO = gI + (Z_n − Z_1)/(n−1)`.
pub fn output_gap_from_delays(g_i: f64, z: &[f64]) -> f64 {
    assert!(z.len() >= 2);
    g_i + (z.last().unwrap() - z.first().unwrap()) / (z.len() as f64 - 1.0)
}

/// Eq. (18) — decomposition of the output gap:
/// `gO = gI + R_n/(n−1) + (W(a_n) − W(a_1))/(n−1) + (μ_n − μ_1)/(n−1)`.
pub fn output_gap_decomposed(
    g_i: f64,
    r_n: f64,
    w_first: f64,
    w_last: f64,
    mu_first: f64,
    mu_last: f64,
    n: usize,
) -> f64 {
    assert!(n >= 2);
    let d = (n - 1) as f64;
    g_i + r_n / d + (w_last - w_first) / d + (mu_last - mu_first) / d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residuals_zero_when_probing_slow() {
        // gI much larger than every access delay: no residual builds up.
        let mu = vec![1e-3; 10];
        let u = vec![0.0; 9];
        let r = intrusion_residuals(10e-3, &mu, &u);
        assert!(r.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn residuals_accumulate_when_probing_fast() {
        // gI below the access delay: every packet leaves residual
        // behind; with u = 0, R_i = (i-1)(μ − gI).
        let mu = vec![2e-3; 5];
        let u = vec![0.0; 4];
        let g = 0.5e-3;
        let r = intrusion_residuals(g, &mu, &u);
        for (i, &ri) in r.iter().enumerate() {
            let expect = i as f64 * (2e-3 - 0.5e-3);
            assert!((ri - expect).abs() < 1e-12, "R_{i} = {ri}");
        }
    }

    #[test]
    fn fifo_utilisation_slows_drain() {
        // The (1-u)·gI term: with u=0.5 only half the gap drains probe
        // residual.
        let mu = vec![1e-3, 1e-3];
        let g = 1.5e-3;
        let r_free = intrusion_residuals(g, &mu, &[0.0]);
        let r_busy = intrusion_residuals(g, &mu, &[0.5]);
        assert_eq!(r_free[1], 0.0); // 1e-3 - 1.5e-3 < 0
        assert!((r_busy[1] - (1e-3 - 0.75e-3)).abs() < 1e-12);
    }

    #[test]
    fn first_residual_is_always_zero() {
        let r = intrusion_residuals(1e-3, &[5e-3, 5e-3, 5e-3], &[0.3, 0.9]);
        assert_eq!(r[0], 0.0);
    }

    #[test]
    fn total_delay_composition() {
        let mu = vec![1.0, 2.0];
        let r = vec![0.0, 0.5];
        let w = vec![0.25, 0.0];
        let z = total_delays(&mu, &r, &w);
        assert_eq!(z, vec![1.25, 2.5]);
    }

    #[test]
    fn gap_identities_agree() {
        // Synthetic consistency check of eqs (16), (17), (18):
        // build a_i and d_i from Z_i and verify all three give the same gO.
        let g_i = 2e-3;
        let n = 6;
        let mu = vec![1.0e-3, 1.2e-3, 1.4e-3, 1.5e-3, 1.55e-3, 1.6e-3];
        let u = vec![0.2; 5];
        let w = vec![0.3e-3, 0.1e-3, 0.0, 0.2e-3, 0.0, 0.25e-3];
        let r = intrusion_residuals(g_i, &mu, &u);
        let z = total_delays(&mu, &r, &w);
        let departures: Vec<f64> = (0..n).map(|i| i as f64 * g_i + z[i]).collect();
        let g1 = output_gap(&departures);
        let g2 = output_gap_from_delays(g_i, &z);
        let g3 = output_gap_decomposed(g_i, r[n - 1], w[0], w[n - 1], mu[0], mu[n - 1], n);
        assert!((g1 - g2).abs() < 1e-15);
        assert!((g1 - g3).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn output_gap_needs_two() {
        output_gap(&[1.0]);
    }
}
