//! The sweep scenario subsystem: parameterised families of scenarios
//! (one cell per sweep point — e.g. per probing rate) scheduled as one
//! streaming map-reduce on the shared work-stealing executor.
//!
//! PR 2's scenario engine made single replicated experiments stream
//! through `csmaprobe_desim::replicate::run_reduce`; the rate-response
//! sweeps of Figs 1/4/13/15/17 still hand-rolled their loops, so a
//! sweep figure occupied one worker while its ~20 rate points ran
//! serially. [`SweepScenario`] + [`SweepRunner`] lift those sweeps onto
//! the engine: every `(point × replication)` cell is an independent
//! unit of work, scheduled through
//! [`csmaprobe_desim::replicate::run_cells`], streamed into a per-cell
//! [`Accumulate`] reducer, and returned as registry-ordered rows.
//!
//! # Trait contract
//!
//! A [`SweepScenario`] is a **pure function of its parameters**:
//!
//! * [`SweepScenario::replicate`] must derive all randomness from
//!   `(point, rep)` alone (typically `derive_seed(point_seed, rep)`),
//!   never from shared mutable state — the runner executes cells in any
//!   order, on any worker.
//! * [`SweepScenario::Acc`] must satisfy the [`Accumulate`] contract:
//!   merging two accumulators equals having pushed both observation
//!   streams into one (exactly or up to documented rounding).
//! * [`SweepScenario::finish`] turns a fully-reduced cell into its row;
//!   it runs once per point, in no particular order, after all
//!   replications of that point completed.
//!
//! # Determinism guarantees
//!
//! The runner inherits `run_cells`' bit-compatibility contract: each
//! cell's replications fold on the cell-local [`CHUNK`] grid and merge
//! in ascending chunk order, so every cell's accumulator is
//! **bit-identical** to a standalone
//! `run_reduce(reps(point), …)` over the same replications — for any
//! worker count, any surrounding grid, and any scheduling order. Rows
//! always come back in point order. A figure ported from a hand-rolled
//! loop of per-point `run_reduce` calls therefore reproduces its old
//! output exactly, while its points now run concurrently.
//!
//! [`CHUNK`]: csmaprobe_desim::replicate::CHUNK

use crate::link::{SteadyPoint, WlanLink};
use csmaprobe_desim::replicate;
use csmaprobe_desim::rng::derive_seed;
use csmaprobe_desim::time::Dur;
use csmaprobe_stats::accumulate::Accumulate;

/// A parameterised family of scenarios — one cell per sweep point.
///
/// Implementors describe *what* one replication of one point does and
/// how its observations accumulate; [`SweepRunner`] decides *how* the
/// `(point × replication)` grid is scheduled.
pub trait SweepScenario: Sync {
    /// Streaming per-cell accumulator (one per sweep point).
    type Acc: Accumulate + Send;
    /// Finished row type, one per sweep point.
    type Row: Send;

    /// Short identifier (for registries and logs).
    fn name(&self) -> &str;

    /// Number of sweep points (cells on the parameter axis).
    fn points(&self) -> usize;

    /// Replication budget of point `point`.
    fn reps(&self, point: usize) -> usize;

    /// A fresh (identity) accumulator for point `point`.
    fn identity(&self, point: usize) -> Self::Acc;

    /// Run replication `rep` of point `point`, folding its observations
    /// into `acc`. Must be a pure function of `(point, rep)` — derive
    /// seeds from them, e.g. `derive_seed(point_seed, rep as u64)`.
    fn replicate(&self, point: usize, rep: usize, acc: &mut Self::Acc);

    /// Turn point `point`'s fully-reduced accumulator into its row.
    fn finish(&self, point: usize, acc: Self::Acc) -> Self::Row;
}

/// Schedules every `(point × replication)` cell of a [`SweepScenario`]
/// through the shared work-stealing chunk executor.
///
/// Stateless today; a value (rather than a free function) so future
/// scheduling knobs — per-sweep worker caps, progress callbacks — have
/// a home that doesn't churn every call site.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepRunner;

impl SweepRunner {
    /// A runner with default scheduling.
    pub fn new() -> Self {
        SweepRunner
    }

    /// Run every cell of `scenario` and return one row per point, in
    /// point order. See the module docs for the determinism contract.
    pub fn run<S: SweepScenario + ?Sized>(&self, scenario: &S) -> Vec<S::Row> {
        let cells: Vec<usize> = (0..scenario.points()).map(|p| scenario.reps(p)).collect();
        let accs = replicate::run_cells(
            &cells,
            |point, rep, acc: &mut S::Acc| scenario.replicate(point, rep, acc),
            |point| scenario.identity(point),
            |a, b| a.merge(b),
        );
        accs.into_iter()
            .enumerate()
            .map(|(point, acc)| scenario.finish(point, acc))
            .collect()
    }
}

/// Convenience: run `scenario` with a default [`SweepRunner`].
pub fn run_sweep<S: SweepScenario + ?Sized>(scenario: &S) -> Vec<S::Row> {
    SweepRunner::new().run(scenario)
}

/// The steady-state rate-response sweep of Figs 1/4: one long-flow
/// [`WlanLink::steady_state`] measurement per probing rate.
///
/// Point `i` runs one replication seeded `derive_seed(seed, i)` — the
/// exact seeds the historical `rate_response_curve` loop used, so the
/// curve is bit-identical to the sequential implementation while the
/// rate points now run concurrently.
#[derive(Debug, Clone)]
pub struct RateResponseSweep {
    /// The link every point probes.
    pub link: WlanLink,
    /// Probe input rates, bits/s — one sweep point each.
    pub rates_bps: Vec<f64>,
    /// Measurement duration per point (after warm-up).
    pub duration: Dur,
    /// Master seed; point `i` uses `derive_seed(seed, i)`.
    pub seed: u64,
}

impl SweepScenario for RateResponseSweep {
    // One steady-state run per point: the Vec accumulator materialises
    // that single output (concatenation keeps replication order if a
    // future variant replicates points).
    type Acc = Vec<SteadyPoint>;
    type Row = SteadyPoint;

    fn name(&self) -> &str {
        "rate_response"
    }

    fn points(&self) -> usize {
        self.rates_bps.len()
    }

    fn reps(&self, _point: usize) -> usize {
        1
    }

    fn identity(&self, _point: usize) -> Self::Acc {
        Vec::new()
    }

    fn replicate(&self, point: usize, _rep: usize, acc: &mut Self::Acc) {
        let ri = self.rates_bps[point];
        acc.push(
            self.link
                .steady_state(ri, self.duration, derive_seed(self.seed, point as u64)),
        );
    }

    fn finish(&self, point: usize, mut acc: Self::Acc) -> Self::Row {
        debug_assert_eq!(acc.len(), 1, "point {point} ran exactly once");
        acc.pop().expect("one steady-state run per point")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use csmaprobe_stats::online::OnlineStats;

    /// A cheap synthetic sweep: point `p` averages `reps(p)` pseudo
    /// observations derived from `(p, rep)`.
    struct Synthetic {
        reps: Vec<usize>,
        seed: u64,
    }

    impl SweepScenario for Synthetic {
        type Acc = OnlineStats;
        type Row = (u64, f64);

        fn name(&self) -> &str {
            "synthetic"
        }
        fn points(&self) -> usize {
            self.reps.len()
        }
        fn reps(&self, point: usize) -> usize {
            self.reps[point]
        }
        fn identity(&self, _point: usize) -> OnlineStats {
            OnlineStats::new()
        }
        fn replicate(&self, point: usize, rep: usize, acc: &mut OnlineStats) {
            let seed = derive_seed(derive_seed(self.seed, point as u64), rep as u64);
            acc.push(csmaprobe_desim::rng::SimRng::new(seed).f64());
        }
        fn finish(&self, _point: usize, acc: OnlineStats) -> (u64, f64) {
            (acc.count(), acc.mean())
        }
    }

    #[test]
    fn rows_in_point_order_with_full_budgets() {
        let s = Synthetic {
            reps: vec![3, 0, 100, 40],
            seed: 9,
        };
        let rows = run_sweep(&s);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].0, 3);
        assert_eq!(rows[1].0, 0);
        assert_eq!(rows[2].0, 100);
        assert_eq!(rows[3].0, 40);
        for (n, mean) in &rows {
            if *n > 20 {
                assert!((mean - 0.5).abs() < 0.2, "mean {mean}");
            }
        }
    }

    #[test]
    fn sweep_bit_identical_across_worker_counts() {
        let s = Synthetic {
            reps: vec![70, 33, 1],
            seed: 0x5EED,
        };
        csmaprobe_desim::replicate::set_worker_limit(1);
        let solo = run_sweep(&s);
        csmaprobe_desim::replicate::set_worker_limit(4);
        let quad = run_sweep(&s);
        csmaprobe_desim::replicate::set_worker_limit(0);
        for (a, b) in solo.iter().zip(&quad) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn rate_response_sweep_matches_sequential_steady_state() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(2_000_000.0));
        let rates = vec![1.5e6, 8e6];
        let duration = Dur::from_secs(2);
        let sweep = RateResponseSweep {
            link: link.clone(),
            rates_bps: rates.clone(),
            duration,
            seed: 77,
        };
        let rows = run_sweep(&sweep);
        assert_eq!(rows.len(), 2);
        for (i, (&ri, row)) in rates.iter().zip(&rows).enumerate() {
            let reference = link.steady_state(ri, duration, derive_seed(77, i as u64));
            assert_eq!(row.input_rate_bps, reference.input_rate_bps);
            assert_eq!(
                row.output_rate_bps.to_bits(),
                reference.output_rate_bps.to_bits(),
                "point {i}"
            );
        }
    }

    #[test]
    fn runner_usable_as_trait_object() {
        let s = Synthetic {
            reps: vec![2, 2],
            seed: 1,
        };
        let dynref: &dyn SweepScenario<Acc = OnlineStats, Row = (u64, f64)> = &s;
        let rows = run_sweep(dynref);
        assert_eq!(rows.len(), 2);
        assert_eq!(s.name(), "synthetic");
    }
}
