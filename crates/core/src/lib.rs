//! # csmaprobe-core
//!
//! The paper's contribution, as a library. Everything in this crate
//! maps to a numbered equation or section of *"Impact of Transient
//! CSMA/CA Access Delays on Active Bandwidth Measurements"* (IMC 2009):
//!
//! * [`rate_response`] — steady-state rate-response curves: the wired
//!   FIFO model (eq 1), the contention-only CSMA/CA model (eq 3), the
//!   complete two-cross-traffic model (eq 4), the achievable-throughput
//!   definition (eq 2) and relation `B = Bf(1−u_fifo)` (eq 5).
//! * [`sample_path`] — the §5 sample-path framework: intrusion
//!   residuals `R_i` (eq 14), total delays `Z_i` (eq 15), and the
//!   output-gap decompositions (eqs 16–19).
//! * [`bounds`] — the §6 transient dispersion bounds (eqs 23–30 with
//!   FIFO cross-traffic, 33–34 without) and the transient-aware
//!   achievable throughput (eqs 31/36).
//! * [`transient`] — the §4 experiment machinery: replicated probing
//!   trains, per-index access-delay distributions, KS profiles and the
//!   tolerance-based transient length (Fig 10).
//! * [`sweep`] — the sweep scenario subsystem: parameterised families
//!   of scenarios ([`sweep::SweepScenario`], e.g. one cell per probing
//!   rate) scheduled by [`sweep::SweepRunner`] as one streaming
//!   map-reduce on the shared work-stealing executor, with per-cell results
//!   bit-identical to a standalone per-point reduce.
//! * [`grid`] — the scenario grid subsystem: independent parameter
//!   axes (link × train × tool) composed into one flattened cell space
//!   ([`grid::GridScenario`]) scheduled by [`grid::GridRunner`], with
//!   streaming row emission in cell order and bit-identical per-cell
//!   results for any worker count or scheduled subset (the resume
//!   contract).
//! * [`engine`] — the tiered DCF engine selector: routes each
//!   steady-state/train cell to the cheapest engine tier (event-driven
//!   oracle, slot-quantised kernel, or analytic Bianchi model) whose
//!   documented error bound covers it; `CSMAPROBE_ENGINE` forces a
//!   tier.
//! * [`link`] — runnable link models: [`link::WlanLink`] (Fig 3: a
//!   FIFO transmission queue feeding a CSMA/CA virtual scheduler, with
//!   contending stations) and [`link::WiredLink`] (the classic FIFO
//!   path the wired literature assumes), both exposing the common
//!   [`link::ProbeTarget`] interface that the `csmaprobe-probe` tools
//!   consume.

pub mod bounds;
pub mod engine;
pub mod grid;
pub mod link;
pub mod multihop;
pub mod rate_response;
pub mod sample_path;
pub mod sweep;
pub mod transient;

pub use bounds::{dispersion_bounds, TransientBounds};
pub use engine::{EnginePolicy, EngineTier};
pub use grid::{run_grid, GridRunner, GridScenario, GridShape, GridSweep};
pub use link::{CrossSpec, LinkConfig, ProbeTarget, TrainObservation, WiredLink, WlanLink};
pub use multihop::{Hop, WiredPath};
pub use rate_response::{
    achievable_from_curve, achievable_throughput, complete_rate_response, csma_rate_response,
    fifo_rate_response,
};
pub use sweep::{run_sweep, RateResponseSweep, SweepRunner, SweepScenario};
pub use transient::{
    run_dense, run_summary, Scenario, TransientData, TransientExperiment, TransientSummary,
};
