//! The **tiered DCF engine** selector: route each measurement cell to
//! the cheapest engine tier whose documented error bound covers it.
//!
//! Three tiers exist, cheapest last:
//!
//! | tier | implementation | covers |
//! |------|----------------|--------|
//! | `Event` | [`csmaprobe_mac::WlanSim`] | everything (the oracle) |
//! | `Slotted` | [`csmaprobe_mac::SlottedSim`] | Poisson/CBR/trace flows, fixed frame sizes |
//! | `Analytic` | [`csmaprobe_mac::BianchiModel`] / [`csmaprobe_mac::NonSatModel`] | saturated symmetric cells / certified Poisson finite-load cells |
//!
//! The slotted kernel shares the event core's seeded RNG contract and
//! is **trajectory-exact** on its covered regimes (bit-for-bit the same
//! packet schedule per seed — pinned by `crates/mac/src/slotted.rs`
//! unit tests and, distributionally on disjoint seeds, by the
//! `tests/tier_equivalence.rs` KS harness). The analytic tier replaces
//! simulation entirely and is only trusted for throughput scalars,
//! within the tolerances pinned by `crates/mac/tests/bianchi_oracle.rs`
//! (saturated symmetric cells, ±5 %) and
//! `crates/mac/tests/bianchi_nonsat_oracle.rs` (certified Poisson
//! finite-load cells, ±5 %); the finite-load fixed point additionally
//! requires its per-cell convergence certificate
//! ([`nonsat_certified`]), so an unconverged cell can never leave the
//! simulators.
//!
//! # Selection policy
//!
//! The process-wide policy follows the `CSMAPROBE_ENGINE` environment
//! variable at first use (`event`, `slotted`, `analytic`, or `auto`),
//! overridable at runtime with [`set_policy`] — the same
//! read-env-once-then-atomic pattern as the executor's
//! `CSMAPROBE_WORKERS`.
//!
//! * **Auto** (default): steady-state cells route to `Analytic` when
//!   [`analytic_covers`] holds, else to `Slotted` when
//!   [`slotted_covers`] holds, else `Event`. **Probe-train cells**
//!   route to `Slotted` only on the regimes the EXPERIMENTS.md
//!   statistical-equivalence table certifies for train access delays —
//!   slotted-covered cells without FIFO cross-traffic
//!   ([`train_slotted_certified`]); the FIFO-queue train leg has no
//!   certified KS row yet and stays on the oracle, as does every
//!   uncovered shape. Transient-regime figures make delicate per-index
//!   distributional claims, so the gate is the measured table, not a
//!   blanket pin in either direction.
//! * **Forced `event`**: everything runs the oracle — the routing layer
//!   is provably a no-op (`crates/bench/tests/determinism.rs`).
//! * **Forced `slotted`**: trains and steady cells both use the kernel
//!   where covered (uncovered cells still fall back to `Event` — a
//!   forced tier never silently produces wrong numbers).
//! * **Forced `analytic`**: analytic where covered, else `Event`.

use crate::link::{CrossShape, LinkConfig};
use csmaprobe_mac::{NonSatModel, NonSatStation};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// One engine tier, cheapest-to-most-expensive ordering not implied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineTier {
    /// The event-driven oracle (`WlanSim`).
    Event,
    /// The slot-quantised kernel (`SlottedSim`).
    Slotted,
    /// Closed-form Bianchi saturation model.
    Analytic,
}

impl EngineTier {
    /// Stable lowercase token for provenance columns and fingerprints
    /// (`event`, `slotted`, `analytic`).
    pub fn token(self) -> &'static str {
        match self {
            EngineTier::Event => "event",
            EngineTier::Slotted => "slotted",
            EngineTier::Analytic => "analytic",
        }
    }
}

/// Process-wide routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePolicy {
    /// Route each cell to the cheapest covered tier (the default).
    Auto,
    /// Pin one tier; uncovered cells still fall back to `Event`.
    Forced(EngineTier),
}

const POLICY_UNSET: u8 = 0;
const POLICY_AUTO: u8 = 1;
const POLICY_EVENT: u8 = 2;
const POLICY_SLOTTED: u8 = 3;
const POLICY_ANALYTIC: u8 = 4;

/// Runtime override; `POLICY_UNSET` defers to the environment.
static POLICY: AtomicU8 = AtomicU8::new(POLICY_UNSET);

fn env_policy() -> u8 {
    static ENV: OnceLock<u8> = OnceLock::new();
    *ENV.get_or_init(|| {
        match std::env::var("CSMAPROBE_ENGINE").as_deref() {
            Ok("event") => POLICY_EVENT,
            Ok("slotted") => POLICY_SLOTTED,
            Ok("analytic") => POLICY_ANALYTIC,
            // Unknown values behave like auto rather than erroring:
            // a measurement run must not die on a typo'd optimisation
            // hint, and `auto` is always correct.
            _ => POLICY_AUTO,
        }
    })
}

/// Pin the process-wide engine policy (tests, tools). Passing
/// [`EnginePolicy::Auto`] restores automatic routing; the
/// `CSMAPROBE_ENGINE` environment variable is only consulted while no
/// explicit policy has been set.
pub fn set_policy(policy: EnginePolicy) {
    let v = match policy {
        EnginePolicy::Auto => POLICY_AUTO,
        EnginePolicy::Forced(EngineTier::Event) => POLICY_EVENT,
        EnginePolicy::Forced(EngineTier::Slotted) => POLICY_SLOTTED,
        EnginePolicy::Forced(EngineTier::Analytic) => POLICY_ANALYTIC,
    };
    POLICY.store(v, Ordering::Relaxed);
}

/// Routing-rules revision, folded into run-config fingerprints next to
/// [`policy_token`]: bumped whenever a coverage predicate changes what
/// a policy *means* (r2: the finite-load fixed point extended
/// `analytic_covers` beyond saturation). Two campaigns under the same
/// `auto` token can still route cells differently across revisions;
/// the revision token lets resume refuse that mix even when the
/// per-cell tier resolution happens to agree.
pub const ROUTER_REVISION: &str = "r2-nonsat";

/// Stable lowercase token naming the active policy (`auto`, `event`,
/// `slotted`, `analytic`) — folded into run-config fingerprints so
/// resumable campaigns refuse to silently mix rows produced under
/// different routing policies.
pub fn policy_token() -> &'static str {
    match policy() {
        EnginePolicy::Auto => "auto",
        EnginePolicy::Forced(t) => t.token(),
    }
}

/// The active policy: the [`set_policy`] override if any, else
/// `CSMAPROBE_ENGINE` as read at first use, else auto.
pub fn policy() -> EnginePolicy {
    let v = match POLICY.load(Ordering::Relaxed) {
        POLICY_UNSET => env_policy(),
        v => v,
    };
    match v {
        POLICY_EVENT => EnginePolicy::Forced(EngineTier::Event),
        POLICY_SLOTTED => EnginePolicy::Forced(EngineTier::Slotted),
        POLICY_ANALYTIC => EnginePolicy::Forced(EngineTier::Analytic),
        _ => EnginePolicy::Auto,
    }
}

/// RAII scope for a temporary policy override. The policy is process
/// state, so overlapping overrides from concurrent threads would
/// interleave; the guard serialises them on a global mutex and restores
/// [`EnginePolicy::Auto`] on drop. Tests and tools that pin a tier
/// should prefer this over raw [`set_policy`].
pub struct PolicyOverride {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for PolicyOverride {
    fn drop(&mut self) {
        set_policy(EnginePolicy::Auto);
    }
}

/// Install `policy` for the lifetime of the returned guard (see
/// [`PolicyOverride`]).
pub fn test_guard(policy: EnginePolicy) -> PolicyOverride {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    set_policy(policy);
    PolicyOverride { _lock: lock }
}

fn shape_slotted(shape: CrossShape) -> bool {
    matches!(shape, CrossShape::Poisson | CrossShape::Cbr)
}

/// Whether the slotted kernel's coverage claim holds for `cfg`: every
/// cross flow (contending and FIFO) is Poisson or CBR with a fixed
/// frame size — the regimes on which the kernel is trajectory-exact
/// and the KS harness certifies distributional equivalence. On/off
/// bursty shapes stay on the event core.
pub fn slotted_covers(cfg: &LinkConfig) -> bool {
    cfg.contending.iter().all(|s| shape_slotted(s.shape))
        && cfg
            .fifo_cross
            .map(|s| shape_slotted(s.shape))
            .unwrap_or(true)
}

/// Structural preconditions shared by both analytic models: no FIFO
/// cross-traffic in the probe queue, at least one contender, and none
/// of the MAC ablations (frame errors, RTS/CTS) the fixed points do
/// not model.
fn analytic_shape_ok(cfg: &LinkConfig) -> bool {
    cfg.fifo_cross.is_none()
        && !cfg.contending.is_empty()
        && cfg.mac.frame_error_rate == 0.0
        && !cfg.mac.uses_rts(cfg.probe_bytes)
}

/// Whether the **saturation** (Bianchi) model's error bound covers a
/// steady-state cell at probe input rate `ri_bps`: the cell must be a
/// **fully saturated symmetric** collision domain — every station
/// (probe included) offers at least the stand-alone capacity of its
/// frame size, all frames are the probe size, no FIFO cross-traffic
/// shares the probe queue, and none of the MAC ablations (frame
/// errors, RTS/CTS) are active.
pub fn saturation_covers(cfg: &LinkConfig, ri_bps: f64) -> bool {
    if !analytic_shape_ok(cfg) {
        return false;
    }
    let capacity = cfg.phy.standalone_capacity_bps(cfg.probe_bytes);
    if ri_bps < capacity {
        return false;
    }
    cfg.contending
        .iter()
        .all(|s| shape_slotted(s.shape) && s.bytes == cfg.probe_bytes && s.rate_bps >= capacity)
}

/// Whether the **finite-load** fixed point
/// ([`csmaprobe_mac::NonSatModel`]) structurally covers a steady-state
/// cell: the measured ±5 % throughput tolerance table
/// (`crates/mac/tests/bianchi_nonsat_oracle.rs`) describes cells with
/// **Poisson** contenders of the probe's frame size, 2–10 stations
/// total, positive offered loads, and the same no-FIFO / no-ablation
/// shape as the saturation tier. CBR or bursty contenders, asymmetric
/// frame sizes and larger domains have no certified rows and stay on
/// the simulators.
///
/// This is the *structural* predicate; actual routing additionally
/// requires the solver's convergence certificate
/// ([`nonsat_certified`]).
pub fn nonsat_covers(cfg: &LinkConfig, ri_bps: f64) -> bool {
    analytic_shape_ok(cfg)
        && ri_bps > 0.0
        && cfg.contending.len() <= 9
        && cfg.contending.iter().all(|s| {
            s.shape == CrossShape::Poisson && s.bytes == cfg.probe_bytes && s.rate_bps > 0.0
        })
}

/// The station vector the finite-load fixed point solves for a covered
/// cell: the probe (station 0, offered `ri_bps`) followed by the
/// contenders in configuration order — the station layout of
/// `WlanLink::steady_state_event`.
pub fn nonsat_stations(cfg: &LinkConfig, ri_bps: f64) -> Vec<NonSatStation> {
    let mut v = Vec::with_capacity(cfg.contending.len() + 1);
    v.push(NonSatStation {
        rate_bps: ri_bps,
        bytes: cfg.probe_bytes,
    });
    v.extend(cfg.contending.iter().map(|s| NonSatStation {
        rate_bps: s.rate_bps,
        bytes: s.bytes,
    }));
    v
}

/// Whether the finite-load tier actually certifies this cell: it must
/// be structurally covered ([`nonsat_covers`]) *and* the fixed point
/// must converge with its residual certificate — a cell the solver
/// refuses routes to a simulation tier, never to an uncertified
/// number.
pub fn nonsat_certified(cfg: &LinkConfig, ri_bps: f64) -> bool {
    nonsat_covers(cfg, ri_bps)
        && NonSatModel::solve(&cfg.phy, &nonsat_stations(cfg, ri_bps)).is_ok()
}

/// Whether *some* analytic model's error bound covers a steady-state
/// cell at probe input rate `ri_bps`: the saturation (Bianchi) model
/// for fully saturated symmetric cells, or the finite-load fixed point
/// ([`nonsat_certified`]) for Poisson finite-load cells it certifies.
pub fn analytic_covers(cfg: &LinkConfig, ri_bps: f64) -> bool {
    saturation_covers(cfg, ri_bps) || nonsat_certified(cfg, ri_bps)
}

/// The tier a **steady-state** cell routes to under the active policy.
pub fn steady_tier(cfg: &LinkConfig, ri_bps: f64) -> EngineTier {
    match policy() {
        EnginePolicy::Forced(EngineTier::Event) => EngineTier::Event,
        EnginePolicy::Forced(EngineTier::Slotted) => {
            if slotted_covers(cfg) {
                EngineTier::Slotted
            } else {
                EngineTier::Event
            }
        }
        EnginePolicy::Forced(EngineTier::Analytic) => {
            if analytic_covers(cfg, ri_bps) {
                EngineTier::Analytic
            } else {
                EngineTier::Event
            }
        }
        EnginePolicy::Auto => {
            if analytic_covers(cfg, ri_bps) {
                EngineTier::Analytic
            } else if slotted_covers(cfg) {
                EngineTier::Slotted
            } else {
                EngineTier::Event
            }
        }
    }
}

/// Whether the EXPERIMENTS.md train-delay equivalence table certifies
/// the slotted kernel for **probe-train** cells of this shape: the
/// kernel must cover every flow ([`slotted_covers`]) *and* the probe
/// queue must not be shared with FIFO cross-traffic. The KS rows
/// backing this gate (`poisson-1`, `mixed-2` at train lengths 20 and
/// 100, α = 0.01) all describe FIFO-free cells; the FIFO-queue train
/// leg has no certified row, so it keeps the oracle until the table
/// grows one.
pub fn train_slotted_certified(cfg: &LinkConfig) -> bool {
    slotted_covers(cfg) && cfg.fifo_cross.is_none()
}

/// The tier a **probe-train** cell routes to under the active policy.
/// Auto promotes trains to the kernel only where the measured
/// equivalence table certifies the regime
/// ([`train_slotted_certified`]); a forced `slotted` policy moves
/// every *covered* train cell onto the kernel (including FIFO cells —
/// forcing is the explicit opt-out from the certification gate, but
/// never from coverage).
pub fn train_tier(cfg: &LinkConfig) -> EngineTier {
    match policy() {
        EnginePolicy::Forced(EngineTier::Slotted) if slotted_covers(cfg) => EngineTier::Slotted,
        EnginePolicy::Auto if train_slotted_certified(cfg) => EngineTier::Slotted,
        _ => EngineTier::Event,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::CrossSpec;

    fn steady_cfg() -> LinkConfig {
        LinkConfig::default().contending_bps(2_000_000.0)
    }

    fn saturated_cfg() -> LinkConfig {
        LinkConfig::default().contending_bps(9_000_000.0)
    }

    #[test]
    fn auto_routes_steady_and_certified_trains_to_slotted() {
        let _g = test_guard(EnginePolicy::Auto);
        let cfg = steady_cfg();
        // Certified finite-load steady cells now go all the way to the
        // fixed point; an *uncertifiable shape* (CBR contender) is what
        // exercises the steady slotted path.
        assert_eq!(steady_tier(&cfg, 1.5e6), EngineTier::Analytic);
        let cbr = LinkConfig::default().contending(CrossSpec::shaped(2e6, CrossShape::Cbr));
        assert_eq!(steady_tier(&cbr, 1.5e6), EngineTier::Slotted);
        // FIFO-free covered cells are certified by the train-delay KS
        // table and promote in auto mode…
        assert!(train_slotted_certified(&cfg));
        assert_eq!(train_tier(&cfg), EngineTier::Slotted);
        // …but the FIFO-queue train leg has no certified row and keeps
        // the oracle, even though the kernel *covers* the shape.
        let fifo = steady_cfg().fifo_cross_bps(1_500_000.0);
        assert!(slotted_covers(&fifo));
        assert!(!train_slotted_certified(&fifo));
        assert_eq!(train_tier(&fifo), EngineTier::Event);
    }

    #[test]
    fn forced_slotted_still_covers_fifo_trains() {
        let _g = test_guard(EnginePolicy::Forced(EngineTier::Slotted));
        let fifo = steady_cfg().fifo_cross_bps(1_500_000.0);
        assert_eq!(train_tier(&fifo), EngineTier::Slotted);
    }

    #[test]
    fn policy_token_names_every_policy() {
        for (p, tok) in [
            (EnginePolicy::Auto, "auto"),
            (EnginePolicy::Forced(EngineTier::Event), "event"),
            (EnginePolicy::Forced(EngineTier::Slotted), "slotted"),
            (EnginePolicy::Forced(EngineTier::Analytic), "analytic"),
        ] {
            let _g = test_guard(p);
            assert_eq!(policy_token(), tok);
        }
    }

    #[test]
    fn auto_routes_saturated_symmetric_to_analytic() {
        let _g = test_guard(EnginePolicy::Auto);
        let cfg = saturated_cfg();
        assert!(saturation_covers(&cfg, 9e6));
        assert!(analytic_covers(&cfg, 9e6));
        assert_eq!(steady_tier(&cfg, 9e6), EngineTier::Analytic);
        // An unsaturated probe leaves the saturation model's coverage —
        // the cell now belongs to the finite-load fixed point instead.
        assert!(!saturation_covers(&cfg, 1e6));
        assert!(nonsat_certified(&cfg, 1e6));
        assert_eq!(steady_tier(&cfg, 1e6), EngineTier::Analytic);
    }

    #[test]
    fn auto_routes_certified_finite_load_to_analytic() {
        let _g = test_guard(EnginePolicy::Auto);
        // A finite-load Poisson cell (nobody saturated) is the
        // fixed point's home regime.
        let cfg = steady_cfg();
        assert!(!saturation_covers(&cfg, 1.5e6));
        assert!(nonsat_covers(&cfg, 1.5e6));
        assert!(nonsat_certified(&cfg, 1.5e6));
        assert_eq!(steady_tier(&cfg, 1.5e6), EngineTier::Analytic);
        // The station vector mirrors the event layout: probe first.
        let st = nonsat_stations(&cfg, 1.5e6);
        assert_eq!(st.len(), 2);
        assert_eq!(st[0].rate_bps, 1.5e6);
        assert_eq!(st[1].rate_bps, 2_000_000.0);
    }

    #[test]
    fn finite_load_coverage_requires_certified_shape() {
        let _g = test_guard(EnginePolicy::Auto);
        // CBR contenders have no certified oracle rows: only Poisson
        // arrivals match the fixed point's queue model.
        let cbr = LinkConfig::default().contending(CrossSpec::shaped(2e6, CrossShape::Cbr));
        assert!(!nonsat_covers(&cbr, 1.5e6));
        assert_eq!(steady_tier(&cbr, 1.5e6), EngineTier::Slotted);
        // Asymmetric frame sizes, FIFO cross-traffic and idle probes
        // stay structural exclusions.
        let asym = LinkConfig::default().contending(CrossSpec::poisson_sized(2e6, 500));
        assert!(!nonsat_covers(&asym, 1.5e6));
        let fifo = steady_cfg().fifo_cross_bps(1e6);
        assert!(!nonsat_covers(&fifo, 1.5e6));
        assert!(!nonsat_covers(&steady_cfg(), 0.0));
        // Domains beyond the certified 10-station matrix keep the
        // simulators.
        let mut big = LinkConfig::default();
        for _ in 0..10 {
            big = big.contending_bps(300_000.0);
        }
        assert!(!nonsat_covers(&big, 1.5e6));
        assert_eq!(steady_tier(&big, 1.5e6), EngineTier::Slotted);
    }

    #[test]
    fn bursty_shapes_stay_on_event() {
        let _g = test_guard(EnginePolicy::Auto);
        let cfg = LinkConfig::default()
            .contending(CrossSpec::shaped(2e6, CrossShape::ExpOnOff { duty: 0.3 }));
        assert!(!slotted_covers(&cfg));
        assert_eq!(steady_tier(&cfg, 1.5e6), EngineTier::Event);
    }

    #[test]
    fn forced_event_pins_everything() {
        let _g = test_guard(EnginePolicy::Forced(EngineTier::Event));
        assert_eq!(steady_tier(&saturated_cfg(), 9e6), EngineTier::Event);
        assert_eq!(steady_tier(&steady_cfg(), 1.5e6), EngineTier::Event);
        assert_eq!(train_tier(&steady_cfg()), EngineTier::Event);
    }

    #[test]
    fn forced_slotted_covers_trains_but_falls_back_when_uncovered() {
        let _g = test_guard(EnginePolicy::Forced(EngineTier::Slotted));
        assert_eq!(train_tier(&steady_cfg()), EngineTier::Slotted);
        let bursty = LinkConfig::default().contending(CrossSpec::shaped(
            2e6,
            CrossShape::ParetoOnOff {
                alpha: 1.5,
                duty: 0.3,
            },
        ));
        assert_eq!(train_tier(&bursty), EngineTier::Event);
        assert_eq!(steady_tier(&bursty, 1e6), EngineTier::Event);
    }

    #[test]
    fn analytic_coverage_requires_full_symmetric_saturation() {
        let _g = test_guard(EnginePolicy::Auto);
        // FIFO cross-traffic breaks the single-queue assumption.
        let fifo = saturated_cfg().fifo_cross_bps(1e6);
        assert!(!analytic_covers(&fifo, 9e6));
        // Asymmetric frame sizes break symmetry.
        let asym = LinkConfig::default().contending(CrossSpec::poisson_sized(9e6, 500));
        assert!(!analytic_covers(&asym, 9e6));
        // An idle channel (no contenders) is not a Bianchi system here:
        // the probe alone is the standalone-capacity calibration, which
        // the simulators already answer exactly.
        assert!(!analytic_covers(&LinkConfig::default(), 9e6));
        // Frame errors / RTS are modelled only by the simulators.
        let err = {
            let mut c = saturated_cfg();
            c.mac = c.mac.with_frame_error_rate(0.1);
            c
        };
        assert!(!analytic_covers(&err, 9e6));
    }
}
