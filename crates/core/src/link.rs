//! Runnable link models (the paper's Fig 2/3 scenario) and the common
//! probing interface the measurement tools consume.
//!
//! [`WlanLink`] is the full model of Fig 3: the probe flow enters a
//! station's FIFO transmission queue — optionally shared with **FIFO
//! cross-traffic** — and the station contends for channel access
//! against **contending cross-traffic** stations under DCF. The link
//! owns warm-up handling: contending/FIFO cross-traffic starts at t=0
//! and probing begins only after `warmup`, so the probe interacts with
//! cross-traffic that has already reached its stationary regime (§4:
//! "the transient-state is present whenever the system is not empty,
//! nor in backlog when the probing flow starts").
//!
//! [`WiredLink`] is the classic single-FIFO constant-capacity path of
//! the wired literature — the baseline every comparison in §2/§7 is
//! made against.
//!
//! Both implement [`ProbeTarget`], so every tool in `csmaprobe-probe`
//! runs unchanged against either link type — exactly the paper's
//! "traditional tools are run unchanged over wireless links" setting.

use crate::engine::{self, EngineTier};
use csmaprobe_desim::rng::{derive_seed, SimRng};
use csmaprobe_desim::time::{Dur, Time};
use csmaprobe_mac::options::MacOptions;
use csmaprobe_mac::sim::{PacketRecord, StationId, WlanSim};
use csmaprobe_mac::slotted::{SlottedFlow, SlottedSim};
use csmaprobe_mac::{BatchedSlottedSim, BianchiModel, NonSatModel};
use csmaprobe_phy::Phy;
use csmaprobe_queueing::fifo::{fifo_serve, Job};
use csmaprobe_traffic::probe::ProbeTrain;
use csmaprobe_traffic::{CbrSource, MergeSource, PoissonSource, SizeModel, Source, TraceSource};

/// Flow tag of probe packets inside the probe station's queue.
pub const FLOW_PROBE: u16 = 1;
/// Flow tag of FIFO cross-traffic packets sharing the probe queue.
pub const FLOW_FIFO_CROSS: u16 = 2;

/// Arrival-process shape of a cross-traffic flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrossShape {
    /// Poisson arrivals (the paper's setting).
    Poisson,
    /// Periodic (CBR) arrivals.
    Cbr,
    /// Exponential on/off bursts with the given duty cycle (the source
    /// transmits at `rate/duty` while ON; mean burst ≈ 10 ms).
    ExpOnOff {
        /// Fraction of time spent in ON periods, in (0, 1).
        duty: f64,
    },
    /// Pareto on/off bursts (heavy-tailed ON durations, shape `alpha`),
    /// same duty-cycle convention — the §6.3 "bursty cross-traffic".
    ParetoOnOff {
        /// Pareto shape of ON durations (> 1).
        alpha: f64,
        /// Fraction of time spent in ON periods, in (0, 1).
        duty: f64,
    },
}

/// One cross-traffic flow specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossSpec {
    /// Offered (long-run mean) rate, bits/s of payload.
    pub rate_bps: f64,
    /// Payload size per packet, bytes.
    pub bytes: u32,
    /// Arrival-process shape.
    pub shape: CrossShape,
}

impl CrossSpec {
    /// Poisson cross-traffic at `rate_bps` with 1500-byte packets.
    pub fn poisson(rate_bps: f64) -> Self {
        CrossSpec {
            rate_bps,
            bytes: 1500,
            shape: CrossShape::Poisson,
        }
    }

    /// Poisson cross-traffic with an explicit packet size.
    pub fn poisson_sized(rate_bps: f64, bytes: u32) -> Self {
        CrossSpec {
            rate_bps,
            bytes,
            shape: CrossShape::Poisson,
        }
    }

    /// Cross-traffic with the given shape (1500-byte packets).
    pub fn shaped(rate_bps: f64, shape: CrossShape) -> Self {
        CrossSpec {
            rate_bps,
            bytes: 1500,
            shape,
        }
    }

    /// The slotted-kernel flow equivalent of [`CrossSpec::build`].
    /// Only defined on the shapes the kernel covers
    /// ([`crate::engine::slotted_covers`] gates every call site).
    fn slotted_flow(&self, start: Time, until: Time, flow: u16) -> SlottedFlow {
        match self.shape {
            CrossShape::Poisson => SlottedFlow::Poisson {
                rate_bps: self.rate_bps,
                bytes: self.bytes,
                flow,
                start,
                until,
            },
            CrossShape::Cbr => SlottedFlow::Cbr {
                rate_bps: self.rate_bps,
                bytes: self.bytes,
                flow,
                start,
                until,
            },
            _ => unreachable!("slotted tier routed an uncovered cross shape"),
        }
    }

    fn build(&self, start: Time, until: Time, flow: u16) -> Box<dyn Source> {
        use csmaprobe_traffic::{OnOffSource, ParetoOnOffSource};
        let sizes = SizeModel::Fixed(self.bytes);
        // Mean burst length shared by both on/off shapes.
        const MEAN_ON: Dur = Dur(10_000_000); // 10 ms
        match self.shape {
            CrossShape::Poisson => Box::new(
                PoissonSource::from_bitrate(self.rate_bps, sizes, start, until).with_flow(flow),
            ),
            CrossShape::Cbr => Box::new(
                CbrSource::from_bitrate(self.rate_bps, sizes, start, until).with_flow(flow),
            ),
            CrossShape::ExpOnOff { duty } => {
                assert!(duty > 0.0 && duty < 1.0, "duty {duty} out of (0,1)");
                let peak = self.rate_bps / duty;
                let mean_off = Dur::from_secs_f64(MEAN_ON.as_secs_f64() * (1.0 - duty) / duty);
                Box::new(
                    OnOffSource::new(peak, MEAN_ON, mean_off, sizes, start, until).with_flow(flow),
                )
            }
            CrossShape::ParetoOnOff { alpha, duty } => {
                assert!(duty > 0.0 && duty < 1.0, "duty {duty} out of (0,1)");
                let peak = self.rate_bps / duty;
                let on_min = Dur::from_secs_f64(MEAN_ON.as_secs_f64() * (alpha - 1.0) / alpha);
                let mean_off = Dur::from_secs_f64(MEAN_ON.as_secs_f64() * (1.0 - duty) / duty);
                Box::new(
                    ParetoOnOffSource::new(peak, alpha, on_min, mean_off, sizes, start, until)
                        .with_flow(flow),
                )
            }
        }
    }
}

/// Configuration of a [`WlanLink`].
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// PHY/MAC timing (defaults to the paper's 11 Mb/s 802.11b).
    pub phy: Phy,
    /// Payload size of probe packets, bytes.
    pub probe_bytes: u32,
    /// Contending cross-traffic: one DCF station per entry.
    pub contending: Vec<CrossSpec>,
    /// FIFO cross-traffic sharing the probe station's queue.
    pub fifo_cross: Option<CrossSpec>,
    /// Cross-traffic warm-up before probing begins.
    pub warmup: Dur,
    /// MAC behaviour switches (paper defaults; see
    /// [`csmaprobe_mac::MacOptions`] for ablations/extensions).
    pub mac: MacOptions,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            phy: Phy::dsss_11mbps(),
            probe_bytes: 1500,
            contending: Vec::new(),
            fifo_cross: None,
            warmup: Dur::from_millis(500),
            mac: MacOptions::default(),
        }
    }
}

impl LinkConfig {
    /// Add one contending station offering Poisson traffic at
    /// `rate_bps` (1500-byte packets).
    pub fn contending_bps(mut self, rate_bps: f64) -> Self {
        self.contending.push(CrossSpec::poisson(rate_bps));
        self
    }

    /// Add one contending station with an explicit spec.
    pub fn contending(mut self, spec: CrossSpec) -> Self {
        self.contending.push(spec);
        self
    }

    /// Set FIFO cross-traffic (Poisson, 1500-byte) sharing the probe
    /// station's transmission queue.
    pub fn fifo_cross_bps(mut self, rate_bps: f64) -> Self {
        self.fifo_cross = Some(CrossSpec::poisson(rate_bps));
        self
    }

    /// Set the FIFO cross-traffic spec.
    pub fn fifo_cross(mut self, spec: CrossSpec) -> Self {
        self.fifo_cross = Some(spec);
        self
    }

    /// Set the probe payload size.
    pub fn probe_bytes(mut self, bytes: u32) -> Self {
        self.probe_bytes = bytes;
        self
    }

    /// Set the PHY.
    pub fn phy(mut self, phy: Phy) -> Self {
        self.phy = phy;
        self
    }

    /// Set the cross-traffic warm-up.
    pub fn warmup(mut self, warmup: Dur) -> Self {
        self.warmup = warmup;
        self
    }

    /// Set the MAC behaviour options.
    pub fn mac_options(mut self, mac: MacOptions) -> Self {
        self.mac = mac;
        self
    }
}

/// What one probing train observed on a link — the common currency of
/// all measurement tools.
#[derive(Debug, Clone)]
pub struct TrainObservation {
    /// Queue-entry instants `a_i` of the delivered probe packets.
    pub arrivals: Vec<Time>,
    /// Receiver-side timestamps `d_i` (data-frame end on WLAN; wire
    /// departure on a FIFO link).
    pub rx_times: Vec<Time>,
    /// Access delays μ_i in seconds (WLAN links only).
    pub access_delays: Option<Vec<f64>>,
    /// The input gap the train was sent with.
    pub g_i: Dur,
    /// Probe payload bytes.
    pub bytes: u32,
}

impl TrainObservation {
    /// Eq. (16): output gap `gO = (d_n − d_1)/(n−1)` in seconds.
    /// `None` with fewer than two deliveries.
    pub fn output_gap_s(&self) -> Option<f64> {
        if self.rx_times.len() < 2 {
            return None;
        }
        let n = self.rx_times.len() as f64;
        Some((*self.rx_times.last().unwrap() - self.rx_times[0]).as_secs_f64() / (n - 1.0))
    }

    /// Receiver inter-arrival gaps (length n−1), in seconds — the raw
    /// series MSER-based correction operates on.
    pub fn receiver_gaps_s(&self) -> Vec<f64> {
        self.rx_times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect()
    }

    /// Dispersion-inferred output rate `L/gO` in bits/s.
    pub fn output_rate_bps(&self) -> Option<f64> {
        self.output_gap_s().map(|g| self.bytes as f64 * 8.0 / g)
    }
}

/// Anything a probing tool can send trains through.
pub trait ProbeTarget: Sync {
    /// Send one probing train (one replication); `seed` controls all
    /// randomness of this replication.
    fn probe_train(&self, train: ProbeTrain, seed: u64) -> TrainObservation;

    /// Send the same probing train once per seed — one replication per
    /// entry of `seeds`, returned in seed order. The default simply
    /// loops [`ProbeTarget::probe_train`]; targets with a batched
    /// kernel override this so a whole replication chunk executes as
    /// one kernel call. **Contract:** element `k` must be bit-identical
    /// to `probe_train(train, seeds[k])`.
    fn probe_train_batch(&self, train: ProbeTrain, seeds: &[u64]) -> Vec<TrainObservation> {
        seeds.iter().map(|&s| self.probe_train(train, s)).collect()
    }

    /// Send an arbitrary probing sequence: packets of `bytes` payload
    /// offered at the given offsets **relative to the link's warm-up
    /// instant** (offset 0 = the moment probing may start). Needed by
    /// tools with non-uniform spacing (chirps). Offsets must be
    /// non-decreasing.
    fn probe_sequence(&self, offsets: &[Dur], bytes: u32, seed: u64) -> TrainObservation;

    /// The probe payload size this target is configured for.
    fn probe_bytes(&self) -> u32;
}

/// One steady-state operating point of a link (long-flow measurement).
#[derive(Debug, Clone)]
pub struct SteadyPoint {
    /// Probe input rate, bits/s.
    pub input_rate_bps: f64,
    /// Probe output (delivered) rate, bits/s.
    pub output_rate_bps: f64,
    /// Delivered rate of each contending station, bits/s.
    pub contending_bps: Vec<f64>,
    /// Delivered rate of the FIFO cross-traffic, bits/s.
    pub fifo_cross_bps: f64,
}

/// The paper's WLAN link (Fig 3): probe + optional FIFO cross-traffic
/// in one station's queue, contending stations on the same channel.
#[derive(Debug, Clone)]
pub struct WlanLink {
    cfg: LinkConfig,
}

/// Result of sending one probe train over a [`WlanLink`], with access
/// to the full simulation output.
pub struct WlanTrainRun {
    /// Probe-flow packet records, in order.
    pub probe: Vec<PacketRecord>,
    /// The full simulation output (cross stations, queue lengths, …).
    pub output: csmaprobe_mac::sim::SimOutput,
    /// The probe station id.
    pub probe_station: StationId,
    /// Contending station ids, in config order.
    pub contending: Vec<StationId>,
}

impl WlanTrainRun {
    /// Access delays of the probe packets, seconds.
    pub fn access_delays_s(&self) -> Vec<f64> {
        self.probe
            .iter()
            .map(|r| r.access_delay().as_secs_f64())
            .collect()
    }

    /// Return the underlying simulation buffers to the worker's
    /// allocation pool (see [`csmaprobe_mac::sim::SimOutput::recycle`]).
    /// Call once everything needed has been extracted — replication
    /// loops that recycle avoid reallocating queues and record vectors
    /// on every run.
    pub fn recycle(self) {
        self.output.recycle();
    }
}

impl WlanLink {
    /// Create a link from its configuration.
    pub fn new(cfg: LinkConfig) -> Self {
        WlanLink { cfg }
    }

    /// The configuration this link runs.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Send one probe train (full-detail variant). The train starts at
    /// `warmup`; cross-traffic runs from t = 0 until well past the
    /// train's worst-case completion.
    pub fn send_train(&self, train: ProbeTrain, seed: u64) -> WlanTrainRun {
        let train = ProbeTrain {
            flow: FLOW_PROBE,
            ..train
        };
        let start = Time::ZERO + self.cfg.warmup;
        self.send_arrivals(train.arrivals(start), seed)
    }

    /// Send an explicit probe arrival sequence (flow tags are
    /// overwritten with the probe tag).
    pub fn send_arrivals(
        &self,
        mut probe_arrivals: Vec<csmaprobe_traffic::PacketArrival>,
        seed: u64,
    ) -> WlanTrainRun {
        for p in &mut probe_arrivals {
            p.flow = FLOW_PROBE;
        }
        let n = probe_arrivals.len();
        let last = probe_arrivals.last().map(|p| p.time).unwrap_or(Time::ZERO);
        // Generous completion budget: sequence span + 20 ms per packet
        // (a DCF exchange is ~2 ms even under heavy contention).
        let horizon = last + Dur::from_millis(20) * n as u64 + Dur::from_millis(100);

        let mut sim = WlanSim::new(self.cfg.phy.clone(), seed).with_options(self.cfg.mac);
        let probe_src: Box<dyn Source> = match &self.cfg.fifo_cross {
            None => Box::new(TraceSource::new(probe_arrivals)),
            Some(spec) => Box::new(MergeSource::new(vec![
                Box::new(TraceSource::new(probe_arrivals)),
                spec.build(Time::ZERO, horizon, FLOW_FIFO_CROSS),
            ])),
        };
        let probe_station = sim.add_station(probe_src);
        let contending: Vec<StationId> = self
            .cfg
            .contending
            .iter()
            .map(|spec| sim.add_station(spec.build(Time::ZERO, horizon, 0)))
            .collect();
        // The horizon is a worst-case budget; stop as soon as the whole
        // probe sequence has completed instead of simulating the dead
        // cross-traffic-only tail (identical records, big CPU saving).
        sim.stop_after_flow(probe_station, FLOW_PROBE, n);

        let output = sim.run(horizon);
        let probe = output.flow_records(probe_station, FLOW_PROBE);
        WlanTrainRun {
            probe,
            output,
            probe_station,
            contending,
        }
    }

    /// Measure one steady-state operating point: a long CBR probe flow
    /// at `ri_bps` for `duration` (after warm-up), reporting delivered
    /// rates of every flow over the second half of the measurement
    /// window (the first half absorbs the probe's own transient).
    ///
    /// Routed through the [`crate::engine`] tier selector: covered
    /// cells run the slot-quantised kernel (trajectory-exact — same
    /// seed, bit-identical point) or the analytic saturation model;
    /// `CSMAPROBE_ENGINE=event` pins the event-core oracle.
    pub fn steady_state(&self, ri_bps: f64, duration: Dur, seed: u64) -> SteadyPoint {
        match engine::steady_tier(&self.cfg, ri_bps) {
            EngineTier::Event => self.steady_state_event(ri_bps, duration, seed),
            EngineTier::Slotted => self.steady_state_slotted(ri_bps, duration, seed),
            EngineTier::Analytic => self.steady_state_analytic(ri_bps),
        }
    }

    /// Event-core (oracle) steady-state measurement.
    pub fn steady_state_event(&self, ri_bps: f64, duration: Dur, seed: u64) -> SteadyPoint {
        let start = Time::ZERO + self.cfg.warmup;
        let end = start + duration;
        let mut sim = WlanSim::new(self.cfg.phy.clone(), seed).with_options(self.cfg.mac);

        let probe_cbr: Box<dyn Source> = Box::new(
            CbrSource::from_bitrate(ri_bps, SizeModel::Fixed(self.cfg.probe_bytes), start, end)
                .with_flow(FLOW_PROBE),
        );
        let probe_src: Box<dyn Source> = match &self.cfg.fifo_cross {
            None => probe_cbr,
            Some(spec) => Box::new(MergeSource::new(vec![
                probe_cbr,
                spec.build(Time::ZERO, end, FLOW_FIFO_CROSS),
            ])),
        };
        let probe_station = sim.add_station(probe_src);
        let contending: Vec<StationId> = self
            .cfg
            .contending
            .iter()
            .map(|spec| sim.add_station(spec.build(Time::ZERO, end, 0)))
            .collect();

        let output = sim.run(end + Dur::from_secs(2));
        let mid = start + duration / 2;
        let window = |records: &[PacketRecord]| {
            let bits: u64 = records
                .iter()
                .filter(|r| !r.dropped && r.rx_end > mid && r.rx_end <= end)
                .map(|r| r.bytes as u64 * 8)
                .sum();
            bits as f64 / (end - mid).as_secs_f64()
        };
        let probe_recs = output.flow_records(probe_station, FLOW_PROBE);
        let fifo_recs = output.flow_records(probe_station, FLOW_FIFO_CROSS);
        SteadyPoint {
            input_rate_bps: ri_bps,
            output_rate_bps: window(&probe_recs),
            contending_bps: contending
                .iter()
                .map(|&st| window(output.records(st)))
                .collect(),
            fifo_cross_bps: window(&fifo_recs),
        }
    }

    /// Slotted-kernel steady-state measurement. Station layout, flow
    /// order, seeds and window arithmetic replicate
    /// [`WlanLink::steady_state_event`] exactly; because the kernel is
    /// trajectory-exact on covered regimes the returned point is
    /// bit-identical to the oracle's. The only intentional divergence
    /// is the horizon: the oracle simulates a 2 s post-`end` tail whose
    /// completions all fall outside the `(mid, end]` counting window,
    /// so the kernel stops at `end`.
    pub fn steady_state_slotted(&self, ri_bps: f64, duration: Dur, seed: u64) -> SteadyPoint {
        debug_assert!(engine::slotted_covers(&self.cfg));
        let start = Time::ZERO + self.cfg.warmup;
        let end = start + duration;
        let mut sim = SlottedSim::new(self.cfg.phy.clone(), seed).with_options(self.cfg.mac);

        let probe_cbr = SlottedFlow::Cbr {
            rate_bps: ri_bps,
            bytes: self.cfg.probe_bytes,
            flow: FLOW_PROBE,
            start,
            until: end,
        };
        let probe_flows = match &self.cfg.fifo_cross {
            None => vec![probe_cbr],
            Some(spec) => vec![
                probe_cbr,
                spec.slotted_flow(Time::ZERO, end, FLOW_FIFO_CROSS),
            ],
        };
        let probe_station = sim.add_station(probe_flows);
        let contending: Vec<StationId> = self
            .cfg
            .contending
            .iter()
            .map(|spec| sim.add_station(vec![spec.slotted_flow(Time::ZERO, end, 0)]))
            .collect();

        let mid = start + duration / 2;
        sim.set_window(mid, end);
        let out = sim.run(end);
        let secs = (end - mid).as_secs_f64();
        SteadyPoint {
            input_rate_bps: ri_bps,
            output_rate_bps: out.flow_window_bits(probe_station, FLOW_PROBE) as f64 / secs,
            contending_bps: contending
                .iter()
                .map(|&st| out.flow_window_bits(st, 0) as f64 / secs)
                .collect(),
            fifo_cross_bps: out.flow_window_bits(probe_station, FLOW_FIFO_CROSS) as f64 / secs,
        }
    }

    /// Analytic-tier steady-state point. Fully saturated symmetric
    /// cells get the Bianchi fair share; certified Poisson finite-load
    /// cells get the non-saturated fixed point's per-station delivered
    /// rates. Only called when [`crate::engine::analytic_covers`]
    /// holds; accuracy is pinned against the event sim in
    /// `crates/mac/tests/bianchi_oracle.rs` and
    /// `crates/mac/tests/bianchi_nonsat_oracle.rs` (±5 %).
    pub fn steady_state_analytic(&self, ri_bps: f64) -> SteadyPoint {
        debug_assert!(engine::analytic_covers(&self.cfg, ri_bps));
        if engine::saturation_covers(&self.cfg, ri_bps) {
            let n = self.cfg.contending.len() + 1;
            let model = BianchiModel::solve(&self.cfg.phy, n, self.cfg.probe_bytes);
            return SteadyPoint {
                input_rate_bps: ri_bps,
                output_rate_bps: model.fair_share_bps,
                contending_bps: vec![model.fair_share_bps; n - 1],
                fifo_cross_bps: 0.0,
            };
        }
        let model = NonSatModel::solve(&self.cfg.phy, &engine::nonsat_stations(&self.cfg, ri_bps))
            .expect("nonsat_certified gated this cell on convergence");
        SteadyPoint {
            input_rate_bps: ri_bps,
            output_rate_bps: model.per_station[0].throughput_bps,
            contending_bps: model.per_station[1..]
                .iter()
                .map(|s| s.throughput_bps)
                .collect(),
            fifo_cross_bps: 0.0,
        }
    }

    /// Slotted-kernel probe-sequence run: the kernel-side equivalent of
    /// [`WlanLink::send_arrivals`], used by the [`ProbeTarget`] methods
    /// when the engine policy routes trains to the kernel (forced
    /// `CSMAPROBE_ENGINE=slotted`). Same station layout, seeds, horizon
    /// and stop rule; returns the probe records directly.
    fn probe_records_slotted(
        &self,
        mut probe_arrivals: Vec<csmaprobe_traffic::PacketArrival>,
        seed: u64,
    ) -> Vec<PacketRecord> {
        debug_assert!(engine::slotted_covers(&self.cfg));
        for p in &mut probe_arrivals {
            p.flow = FLOW_PROBE;
        }
        let n = probe_arrivals.len();
        let last = probe_arrivals.last().map(|p| p.time).unwrap_or(Time::ZERO);
        let horizon = last + Dur::from_millis(20) * n as u64 + Dur::from_millis(100);

        let mut sim = SlottedSim::new(self.cfg.phy.clone(), seed).with_options(self.cfg.mac);
        let probe_flows = match &self.cfg.fifo_cross {
            None => vec![SlottedFlow::Trace(probe_arrivals)],
            Some(spec) => vec![
                SlottedFlow::Trace(probe_arrivals),
                spec.slotted_flow(Time::ZERO, horizon, FLOW_FIFO_CROSS),
            ],
        };
        let probe_station = sim.add_station(probe_flows);
        for spec in &self.cfg.contending {
            sim.add_station(vec![spec.slotted_flow(Time::ZERO, horizon, 0)]);
        }
        sim.watch_flow(probe_station, FLOW_PROBE);
        sim.stop_after_flow(probe_station, FLOW_PROBE, n);
        sim.run(horizon).records
    }

    /// Replication-batched counterpart of
    /// [`WlanLink::probe_records_slotted`]: run the same probe sequence
    /// once per entry of `seeds` through one
    /// [`BatchedSlottedSim`] call — station layout, horizon, stop rule
    /// and per-lane seeding identical to the scalar path, so lane `k`'s
    /// records are bit-identical to `probe_records_slotted(arrivals,
    /// seeds[k])` (pinned by `probe_train_batch_bit_identical` below
    /// and property-tested in `tests/slotted_batch_property.rs`).
    fn probe_records_slotted_batch(
        &self,
        mut probe_arrivals: Vec<csmaprobe_traffic::PacketArrival>,
        seeds: &[u64],
    ) -> Vec<Vec<PacketRecord>> {
        debug_assert!(engine::slotted_covers(&self.cfg));
        for p in &mut probe_arrivals {
            p.flow = FLOW_PROBE;
        }
        let n = probe_arrivals.len();
        let last = probe_arrivals.last().map(|p| p.time).unwrap_or(Time::ZERO);
        let horizon = last + Dur::from_millis(20) * n as u64 + Dur::from_millis(100);

        let mut sim =
            BatchedSlottedSim::new(self.cfg.phy.clone(), seeds.to_vec()).with_options(self.cfg.mac);
        let probe_flows = match &self.cfg.fifo_cross {
            None => vec![SlottedFlow::Trace(probe_arrivals)],
            Some(spec) => vec![
                SlottedFlow::Trace(probe_arrivals),
                spec.slotted_flow(Time::ZERO, horizon, FLOW_FIFO_CROSS),
            ],
        };
        let probe_station = sim.add_station(probe_flows);
        for spec in &self.cfg.contending {
            sim.add_station(vec![spec.slotted_flow(Time::ZERO, horizon, 0)]);
        }
        sim.watch_flow(probe_station, FLOW_PROBE);
        sim.stop_after_flow(probe_station, FLOW_PROBE, n);
        sim.run(horizon).into_iter().map(|o| o.records).collect()
    }

    /// Explicit slotted-tier train run, bypassing the router — the
    /// train counterpart of [`WlanLink::steady_state_slotted`]. The
    /// tier benches compare tiers side by side with this (mutating the
    /// process-wide engine policy would leak into concurrently-running
    /// figures). Requires [`engine::slotted_covers`].
    pub fn probe_train_slotted(&self, train: ProbeTrain, seed: u64) -> TrainObservation {
        let start = Time::ZERO + self.cfg.warmup;
        let train = ProbeTrain {
            flow: FLOW_PROBE,
            ..train
        };
        let probe = self.probe_records_slotted(train.arrivals(start), seed);
        slotted_train_obs(&probe, train.gap, train.bytes)
    }

    /// Replication-batched counterpart of
    /// [`WlanLink::probe_train_slotted`]: the whole chunk runs as one
    /// [`BatchedSlottedSim`] kernel call, element `k` bit-identical to
    /// `probe_train_slotted(train, seeds[k])`.
    pub fn probe_train_slotted_batch(
        &self,
        train: ProbeTrain,
        seeds: &[u64],
    ) -> Vec<TrainObservation> {
        let start = Time::ZERO + self.cfg.warmup;
        let train = ProbeTrain {
            flow: FLOW_PROBE,
            ..train
        };
        self.probe_records_slotted_batch(train.arrivals(start), seeds)
            .iter()
            .map(|probe| slotted_train_obs(probe, train.gap, train.bytes))
            .collect()
    }

    /// Sweep input rates and produce the steady-state rate-response
    /// curve (Figs 1/4), one [`SteadyPoint`] per rate.
    ///
    /// Runs as a [`crate::sweep::RateResponseSweep`] through the sweep
    /// engine: rate points are scheduled concurrently over the shared
    /// work-stealing executor, with the exact per-point seeds (and therefore
    /// bit-identical points) of the historical sequential loop.
    pub fn rate_response_curve(
        &self,
        rates_bps: &[f64],
        duration: Dur,
        seed: u64,
    ) -> Vec<SteadyPoint> {
        crate::sweep::run_sweep(&crate::sweep::RateResponseSweep {
            link: self.clone(),
            rates_bps: rates_bps.to_vec(),
            duration,
            seed,
        })
    }
}

/// Build a [`TrainObservation`] from watched probe records (the
/// slotted paths return exactly these).
fn slotted_train_obs(probe: &[PacketRecord], g_i: Dur, bytes: u32) -> TrainObservation {
    TrainObservation {
        arrivals: probe.iter().map(|r| r.arrival).collect(),
        rx_times: probe.iter().map(|r| r.rx_end).collect(),
        access_delays: Some(
            probe
                .iter()
                .map(|r| r.access_delay().as_secs_f64())
                .collect(),
        ),
        g_i,
        bytes,
    }
}

impl ProbeTarget for WlanLink {
    fn probe_train(&self, train: ProbeTrain, seed: u64) -> TrainObservation {
        if engine::train_tier(&self.cfg) == EngineTier::Slotted {
            return self.probe_train_slotted(train, seed);
        }
        let run = self.send_train(train, seed);
        let obs = TrainObservation {
            arrivals: run.probe.iter().map(|r| r.arrival).collect(),
            rx_times: run.probe.iter().map(|r| r.rx_end).collect(),
            access_delays: Some(run.access_delays_s()),
            g_i: train.gap,
            bytes: train.bytes,
        };
        run.recycle();
        obs
    }

    /// Batched replications: when the router sends this cell's trains
    /// to the slotted tier, the whole chunk runs as **one**
    /// [`BatchedSlottedSim`] kernel call; otherwise the default
    /// per-replication loop over the event core applies.
    fn probe_train_batch(&self, train: ProbeTrain, seeds: &[u64]) -> Vec<TrainObservation> {
        if engine::train_tier(&self.cfg) != EngineTier::Slotted || seeds.is_empty() {
            return seeds.iter().map(|&s| self.probe_train(train, s)).collect();
        }
        self.probe_train_slotted_batch(train, seeds)
    }

    fn probe_sequence(&self, offsets: &[Dur], bytes: u32, seed: u64) -> TrainObservation {
        let start = Time::ZERO + self.cfg.warmup;
        let arrivals: Vec<csmaprobe_traffic::PacketArrival> = offsets
            .iter()
            .map(|&o| csmaprobe_traffic::PacketArrival {
                time: start + o,
                bytes,
                flow: FLOW_PROBE,
            })
            .collect();
        if engine::train_tier(&self.cfg) == EngineTier::Slotted {
            let probe = self.probe_records_slotted(arrivals, seed);
            return slotted_train_obs(&probe, Dur::ZERO, bytes);
        }
        let run = self.send_arrivals(arrivals, seed);
        let obs = TrainObservation {
            arrivals: run.probe.iter().map(|r| r.arrival).collect(),
            rx_times: run.probe.iter().map(|r| r.rx_end).collect(),
            access_delays: Some(run.access_delays_s()),
            g_i: Dur::ZERO,
            bytes,
        };
        run.recycle();
        obs
    }

    fn probe_bytes(&self) -> u32 {
        self.cfg.probe_bytes
    }
}

/// The wired baseline: a single FIFO queue served at a constant
/// `capacity_bps`, with Poisson cross-traffic — the system eq (1)
/// describes exactly.
#[derive(Debug, Clone)]
pub struct WiredLink {
    /// Link capacity, bits/s.
    pub capacity_bps: f64,
    /// Poisson cross-traffic rate, bits/s.
    pub cross_rate_bps: f64,
    /// Cross-traffic packet size, bytes.
    pub cross_bytes: u32,
    /// Probe payload size, bytes.
    pub probe_bytes: u32,
    /// Cross-traffic warm-up before probing begins.
    pub warmup: Dur,
}

impl WiredLink {
    /// A wired link with the given capacity and Poisson cross-traffic
    /// (1500-byte packets, 0.5 s warm-up).
    pub fn new(capacity_bps: f64, cross_rate_bps: f64) -> Self {
        WiredLink {
            capacity_bps,
            cross_rate_bps,
            cross_bytes: 1500,
            probe_bytes: 1500,
            warmup: Dur::from_millis(500),
        }
    }

    /// The available bandwidth `A = C − cross rate`.
    pub fn available_bps(&self) -> f64 {
        (self.capacity_bps - self.cross_rate_bps).max(0.0)
    }

    fn service_time(&self, bytes: u32) -> Dur {
        Dur::from_secs_f64(bytes as f64 * 8.0 / self.capacity_bps)
    }
}

impl WiredLink {
    fn run_sequence(
        &self,
        probe: &[(Time, u32)],
        seed: u64,
        g_i: Dur,
        bytes: u32,
    ) -> TrainObservation {
        let last = probe.last().map(|&(t, _)| t).unwrap_or(Time::ZERO);
        let horizon =
            last + self.service_time(bytes) * (probe.len() as u64 + 8) + Dur::from_secs(2);

        // Cross-traffic jobs from t=0 so the queue is stationary when
        // probing starts.
        let mut rng = SimRng::new(derive_seed(seed, 0x51ED));
        let mut cross = PoissonSource::from_bitrate(
            self.cross_rate_bps,
            SizeModel::Fixed(self.cross_bytes),
            Time::ZERO,
            horizon,
        );
        let mut jobs: Vec<(Time, u32, bool)> = Vec::new();
        while let Some(p) = cross.next_packet(&mut rng) {
            jobs.push((p.time, p.bytes, false));
        }
        for &(t, b) in probe {
            jobs.push((t, b, true));
        }
        jobs.sort_by_key(|&(t, _, is_probe)| (t, !is_probe));

        let plain: Vec<Job> = jobs
            .iter()
            .map(|&(t, bytes, _)| Job {
                arrival: t,
                service: self.service_time(bytes),
            })
            .collect();
        let served = fifo_serve(&plain);

        let mut arrivals = Vec::with_capacity(probe.len());
        let mut rx_times = Vec::with_capacity(probe.len());
        for (s, &(_, _, is_probe)) in served.iter().zip(&jobs) {
            if is_probe {
                arrivals.push(s.arrival);
                rx_times.push(s.depart);
            }
        }
        TrainObservation {
            arrivals,
            rx_times,
            access_delays: None,
            g_i,
            bytes,
        }
    }
}

impl ProbeTarget for WiredLink {
    fn probe_train(&self, train: ProbeTrain, seed: u64) -> TrainObservation {
        let start = Time::ZERO + self.warmup;
        let probe: Vec<(Time, u32)> = train
            .arrivals(start)
            .iter()
            .map(|p| (p.time, p.bytes))
            .collect();
        self.run_sequence(&probe, seed, train.gap, train.bytes)
    }

    fn probe_sequence(&self, offsets: &[Dur], bytes: u32, seed: u64) -> TrainObservation {
        let start = Time::ZERO + self.warmup;
        let probe: Vec<(Time, u32)> = offsets.iter().map(|&o| (start + o, bytes)).collect();
        self.run_sequence(&probe, seed, Dur::ZERO, bytes)
    }

    fn probe_bytes(&self) -> u32 {
        self.probe_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wlan_link_delivers_whole_train() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(2_000_000.0));
        let train = ProbeTrain::from_rate(50, 1500, 4_000_000.0);
        let run = link.send_train(train, 7);
        assert_eq!(run.probe.len(), 50);
        // Arrivals are the configured periodic sequence.
        for (i, r) in run.probe.iter().enumerate() {
            assert_eq!(
                r.arrival,
                Time::ZERO + link.config().warmup + train.gap * i as u64
            );
        }
        // rx times strictly increasing.
        for w in run.probe.windows(2) {
            assert!(w[1].rx_end > w[0].rx_end);
        }
    }

    #[test]
    fn observation_rates_consistent() {
        let link = WlanLink::new(LinkConfig::default());
        let train = ProbeTrain::from_rate(20, 1500, 3_000_000.0);
        let obs = link.probe_train(train, 3);
        // Without cross-traffic, 3 Mb/s < C so output ≈ input.
        let ro = obs.output_rate_bps().unwrap();
        assert!((ro - 3_000_000.0).abs() / 3e6 < 0.05, "output rate {ro}");
        let gaps = obs.receiver_gaps_s();
        assert_eq!(gaps.len(), 19);
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean_gap - obs.output_gap_s().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn steady_state_identity_region() {
        // 1.5 Mb/s against 2 Mb/s contention: well below fair share, so
        // ro = ri.
        let link = WlanLink::new(LinkConfig::default().contending_bps(2_000_000.0));
        let pt = link.steady_state(1_500_000.0, Dur::from_secs(8), 11);
        assert!(
            (pt.output_rate_bps - 1.5e6).abs() / 1.5e6 < 0.05,
            "{}",
            pt.output_rate_bps
        );
        // Cross-traffic unharmed.
        assert!(
            (pt.contending_bps[0] - 2e6).abs() / 2e6 < 0.08,
            "{}",
            pt.contending_bps[0]
        );
    }

    #[test]
    fn steady_state_saturation_region() {
        // Probing far above fair share: output pins at B < C, cross
        // keeps a similar share (fair-share protection).
        let link = WlanLink::new(LinkConfig::default().contending_bps(2_000_000.0));
        let pt = link.steady_state(9_000_000.0, Dur::from_secs(8), 13);
        assert!(
            (2.5e6..4.5e6).contains(&pt.output_rate_bps),
            "B = {}",
            pt.output_rate_bps
        );
    }

    #[test]
    fn fifo_cross_traffic_reduces_probe_share() {
        let plain = WlanLink::new(LinkConfig::default().contending_bps(2_000_000.0));
        let with_fifo = WlanLink::new(
            LinkConfig::default()
                .contending_bps(2_000_000.0)
                .fifo_cross_bps(1_000_000.0),
        );
        let p1 = plain.steady_state(9e6, Dur::from_secs(6), 17);
        let p2 = with_fifo.steady_state(9e6, Dur::from_secs(6), 17);
        assert!(
            p2.output_rate_bps < p1.output_rate_bps,
            "{} !< {}",
            p2.output_rate_bps,
            p1.output_rate_bps
        );
        assert!(p2.fifo_cross_bps > 0.0);
    }

    #[test]
    fn steady_state_slotted_bit_identical_to_event() {
        // The router's core claim: on covered regimes the kernel
        // returns the *same* point as the oracle, per seed, bit for
        // bit — including with FIFO cross-traffic and CBR contenders.
        let configs = [
            LinkConfig::default().contending_bps(2_000_000.0),
            LinkConfig::default()
                .contending_bps(2_000_000.0)
                .contending(CrossSpec::shaped(1_000_000.0, CrossShape::Cbr))
                .fifo_cross_bps(800_000.0),
        ];
        for (c, cfg) in configs.into_iter().enumerate() {
            let link = WlanLink::new(cfg);
            for (ri, seed) in [(1.5e6, 11u64), (9e6, 13)] {
                let ev = link.steady_state_event(ri, Dur::from_secs(4), seed);
                let sl = link.steady_state_slotted(ri, Dur::from_secs(4), seed);
                assert_eq!(ev.output_rate_bps, sl.output_rate_bps, "cfg {c} ri {ri}");
                assert_eq!(ev.contending_bps, sl.contending_bps, "cfg {c} ri {ri}");
                assert_eq!(ev.fifo_cross_bps, sl.fifo_cross_bps, "cfg {c} ri {ri}");
            }
        }
    }

    #[test]
    fn analytic_point_within_documented_band_of_event() {
        // Saturated symmetric cell: the analytic fair share must sit
        // within the ±5 % band documented for the tier.
        let link = WlanLink::new(LinkConfig::default().contending_bps(9e6));
        assert!(crate::engine::analytic_covers(link.config(), 9e6));
        let ev = link.steady_state_event(9e6, Dur::from_secs(8), 21);
        let an = link.steady_state_analytic(9e6);
        let rel = (an.output_rate_bps - ev.output_rate_bps).abs() / ev.output_rate_bps;
        assert!(
            rel < 0.05,
            "analytic {} vs event {} (rel {rel:.3})",
            an.output_rate_bps,
            ev.output_rate_bps
        );
    }

    #[test]
    fn probe_train_identical_across_forced_tiers() {
        // Forced-slotted train probing returns the oracle's exact
        // observation (the kernel is trajectory-exact on trains too).
        let link = WlanLink::new(
            LinkConfig::default()
                .contending_bps(2_000_000.0)
                .fifo_cross_bps(500_000.0),
        );
        let train = ProbeTrain::from_rate(40, 1500, 5_000_000.0);
        let ev = link.probe_train(train, 29); // default policy: event
        let sl = {
            let _g = crate::engine::test_guard(crate::engine::EnginePolicy::Forced(
                crate::engine::EngineTier::Slotted,
            ));
            link.probe_train(train, 29)
        };
        assert_eq!(ev.arrivals, sl.arrivals);
        assert_eq!(ev.rx_times, sl.rx_times);
        assert_eq!(ev.access_delays, sl.access_delays);
    }

    #[test]
    fn auto_promoted_trains_match_forced_event_oracle() {
        // The certification gate (train_slotted_certified): a FIFO-free
        // covered cell auto-routes its trains to the kernel, and the
        // observation is the oracle's, bit for bit.
        let link = WlanLink::new(LinkConfig::default().contending_bps(2_000_000.0));
        let train = ProbeTrain::from_rate(30, 1500, 4_000_000.0);
        let auto = {
            let _g = crate::engine::test_guard(crate::engine::EnginePolicy::Auto);
            assert_eq!(
                crate::engine::train_tier(link.config()),
                crate::engine::EngineTier::Slotted
            );
            link.probe_train(train, 31)
        };
        let ev = {
            let _g = crate::engine::test_guard(crate::engine::EnginePolicy::Forced(
                crate::engine::EngineTier::Event,
            ));
            link.probe_train(train, 31)
        };
        assert_eq!(auto.arrivals, ev.arrivals);
        assert_eq!(auto.rx_times, ev.rx_times);
        assert_eq!(auto.access_delays, ev.access_delays);
    }

    #[test]
    fn probe_train_batch_bit_identical_to_scalar_runs() {
        // One batched kernel call per chunk must reproduce the scalar
        // per-seed observations exactly — the contract desim's chunked
        // reducers rely on.
        let link = WlanLink::new(
            LinkConfig::default()
                .contending_bps(2_000_000.0)
                .contending(CrossSpec::shaped(1_000_000.0, CrossShape::Cbr)),
        );
        let train = ProbeTrain::from_rate(25, 1500, 6_000_000.0);
        let seeds: Vec<u64> = (0..7).map(|k| derive_seed(0xBEEF, k)).collect();
        let _g = crate::engine::test_guard(crate::engine::EnginePolicy::Auto);
        assert_eq!(
            crate::engine::train_tier(link.config()),
            crate::engine::EngineTier::Slotted
        );
        let batch = link.probe_train_batch(train, &seeds);
        assert_eq!(batch.len(), seeds.len());
        for (k, (b, &s)) in batch.iter().zip(&seeds).enumerate() {
            let scalar = link.probe_train(train, s);
            assert_eq!(b.arrivals, scalar.arrivals, "lane {k}");
            assert_eq!(b.rx_times, scalar.rx_times, "lane {k}");
            assert_eq!(b.access_delays, scalar.access_delays, "lane {k}");
        }
    }

    #[test]
    fn wired_link_matches_fluid_model_below_a() {
        let link = WiredLink::new(10e6, 4e6);
        let train = ProbeTrain::from_rate(100, 1500, 3_000_000.0);
        let obs = link.probe_train(train, 5);
        assert_eq!(obs.rx_times.len(), 100);
        let ro = obs.output_rate_bps().unwrap();
        // Below A = 6 Mb/s: ro ≈ ri.
        assert!((ro - 3e6).abs() / 3e6 < 0.1, "ro = {ro}");
    }

    #[test]
    fn wired_link_saturates_above_a() {
        let link = WiredLink::new(10e6, 4e6);
        // Probing at 9 Mb/s > A=6: eq (1) predicts
        // ro = C*ri/(ri+C-A) = 10*9/(9+10-6) = 6.9 Mb/s.
        let train = ProbeTrain::from_rate(2000, 1500, 9_000_000.0);
        let obs = link.probe_train(train, 9);
        let ro = obs.output_rate_bps().unwrap();
        let predict = crate::rate_response::fifo_rate_response(9e6, 10e6, 6e6);
        assert!(
            (ro - predict).abs() / predict < 0.05,
            "ro {ro} vs fluid {predict}"
        );
    }

    #[test]
    fn wired_access_delays_absent_wlan_present() {
        let wired = WiredLink::new(10e6, 1e6);
        let train = ProbeTrain::from_rate(5, 1500, 1e6);
        assert!(wired.probe_train(train, 1).access_delays.is_none());
        let wlan = WlanLink::new(LinkConfig::default());
        let obs = wlan.probe_train(train, 1);
        assert_eq!(obs.access_delays.unwrap().len(), 5);
    }
}
