//! Probing sequences (§5.1.2 of the paper).
//!
//! A *probing sequence* (train) is `n` packets of `l` bytes entering the
//! transmission queue at fixed input gap `gI`: arrivals
//! `a_i = a_1 + (i−1)·gI`. A *measurement* sends `m` such trains with
//! Poisson spacing between trains "in order to assure complete
//! interaction with the system".

use crate::{PacketArrival, Source};
use csmaprobe_desim::rng::SimRng;
use csmaprobe_desim::time::{Dur, Time};

/// One probing train: `n` packets of `bytes` payload at input gap `gap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeTrain {
    /// Packets per train (`n`). Must be ≥ 2 for a dispersion to exist.
    pub n: usize,
    /// Payload bytes per probe packet (`L` in the paper's rate maths).
    pub bytes: u32,
    /// Input gap `gI` between consecutive arrivals.
    pub gap: Dur,
    /// Flow tag stamped on every probe packet (defaults to 0).
    pub flow: u16,
}

impl ProbeTrain {
    /// A train whose input **rate** is `rate_bps` (so `gI = 8·L/rate`).
    pub fn from_rate(n: usize, bytes: u32, rate_bps: f64) -> Self {
        debug_assert!(rate_bps > 0.0);
        let gap = Dur::from_secs_f64(bytes as f64 * 8.0 / rate_bps);
        ProbeTrain {
            n,
            bytes,
            gap,
            flow: 0,
        }
    }

    /// A packet pair: two back-to-back packets (`gI = 0`, i.e. the
    /// second packet is queued the instant the first is).
    pub fn packet_pair(bytes: u32) -> Self {
        ProbeTrain {
            n: 2,
            bytes,
            gap: Dur::ZERO,
            flow: 0,
        }
    }

    /// Tag every packet of this train with `flow`.
    pub fn with_flow(mut self, flow: u16) -> Self {
        self.flow = flow;
        self
    }

    /// The offered input rate `ri = L/gI` in bits/s (`f64::INFINITY`
    /// for back-to-back pairs).
    pub fn input_rate_bps(&self) -> f64 {
        if self.gap == Dur::ZERO {
            f64::INFINITY
        } else {
            self.bytes as f64 * 8.0 / self.gap.as_secs_f64()
        }
    }

    /// The arrival times of this train when it starts at `start`.
    pub fn arrivals(&self, start: Time) -> Vec<PacketArrival> {
        (0..self.n)
            .map(|i| PacketArrival {
                time: start + self.gap * i as u64,
                bytes: self.bytes,
                flow: self.flow,
            })
            .collect()
    }

    /// Total time from the first to the last arrival.
    pub fn span(&self) -> Dur {
        self.gap * (self.n.saturating_sub(1)) as u64
    }
}

/// A schedule of `m` probing trains with Poisson-distributed idle gaps
/// between the end of one train and the start of the next.
///
/// Implements [`Source`] so a whole measurement session can be fed to
/// the MAC simulator as a single flow; [`TrainSchedule::train_of`]
/// recovers which train a packet index belongs to.
#[derive(Debug, Clone)]
pub struct TrainSchedule {
    /// Train shape.
    pub train: ProbeTrain,
    /// Number of trains (`m`).
    pub trains: usize,
    /// Mean idle gap between trains (exponentially distributed).
    pub mean_spacing: Dur,
    /// Start of the first train.
    pub start: Time,
    // iteration state
    cur_train: usize,
    cur_pkt: usize,
    train_start: Time,
}

impl TrainSchedule {
    /// Create a schedule of `trains` repetitions of `train`, separated
    /// by exponential gaps with mean `mean_spacing`, starting at
    /// `start`.
    pub fn new(train: ProbeTrain, trains: usize, mean_spacing: Dur, start: Time) -> Self {
        TrainSchedule {
            train,
            trains,
            mean_spacing,
            start,
            cur_train: 0,
            cur_pkt: 0,
            train_start: start,
        }
    }

    /// Which train (0-based) the `k`-th emitted packet belongs to.
    pub fn train_of(&self, packet_index: usize) -> usize {
        packet_index / self.train.n
    }

    /// Index of a packet within its train (0-based).
    pub fn index_in_train(&self, packet_index: usize) -> usize {
        packet_index % self.train.n
    }

    /// Total number of packets this schedule will emit.
    pub fn total_packets(&self) -> usize {
        self.trains * self.train.n
    }
}

impl Source for TrainSchedule {
    fn next_packet(&mut self, rng: &mut SimRng) -> Option<PacketArrival> {
        if self.cur_train >= self.trains {
            return None;
        }
        let time = self.train_start + self.train.gap * self.cur_pkt as u64;
        let arrival = PacketArrival {
            time,
            bytes: self.train.bytes,
            flow: self.train.flow,
        };
        self.cur_pkt += 1;
        if self.cur_pkt == self.train.n {
            // Next train starts after this one's last arrival plus an
            // exponential spacing.
            let spacing = Dur::from_secs_f64(rng.exp(self.mean_spacing.as_secs_f64()));
            self.train_start = time + spacing;
            self.cur_pkt = 0;
            self.cur_train += 1;
        }
        Some(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_from_rate_gap() {
        // 1500 B at 6 Mb/s -> gI = 2 ms.
        let t = ProbeTrain::from_rate(10, 1500, 6_000_000.0);
        assert_eq!(t.gap, Dur::from_millis(2));
        assert!((t.input_rate_bps() - 6_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn packet_pair_has_infinite_rate() {
        let p = ProbeTrain::packet_pair(1500);
        assert_eq!(p.n, 2);
        assert!(p.input_rate_bps().is_infinite());
        assert_eq!(p.span(), Dur::ZERO);
    }

    #[test]
    fn arrivals_are_periodic() {
        let t = ProbeTrain {
            n: 4,
            bytes: 100,
            gap: Dur::from_micros(250),
            flow: 0,
        };
        let a = t.arrivals(Time::from_micros(1000));
        assert_eq!(a.len(), 4);
        for (i, p) in a.iter().enumerate() {
            assert_eq!(p.time, Time::from_micros(1000 + 250 * i as u64));
            assert_eq!(p.bytes, 100);
        }
        assert_eq!(t.span(), Dur::from_micros(750));
    }

    #[test]
    fn schedule_emits_all_trains_in_order() {
        let train = ProbeTrain {
            n: 3,
            bytes: 200,
            gap: Dur::from_micros(100),
            flow: 0,
        };
        let mut sched = TrainSchedule::new(train, 5, Dur::from_millis(1), Time::ZERO);
        let mut rng = SimRng::new(11);
        let mut all = Vec::new();
        while let Some(p) = sched.next_packet(&mut rng) {
            all.push(p);
        }
        assert_eq!(all.len(), 15);
        // Monotone arrivals; intra-train gaps exactly gI.
        for w in all.windows(2) {
            assert!(w[1].time >= w[0].time);
        }
        for tr in 0..5 {
            let base = all[tr * 3].time;
            assert_eq!(all[tr * 3 + 1].time, base + Dur::from_micros(100));
            assert_eq!(all[tr * 3 + 2].time, base + Dur::from_micros(200));
        }
        // Inter-train spacing is strictly positive.
        for tr in 1..5 {
            assert!(all[tr * 3].time > all[tr * 3 - 1].time);
        }
    }

    #[test]
    fn schedule_indexing_helpers() {
        let train = ProbeTrain {
            n: 4,
            bytes: 1,
            gap: Dur::ZERO,
            flow: 0,
        };
        let sched = TrainSchedule::new(train, 3, Dur::from_micros(1), Time::ZERO);
        assert_eq!(sched.total_packets(), 12);
        assert_eq!(sched.train_of(0), 0);
        assert_eq!(sched.train_of(7), 1);
        assert_eq!(sched.index_in_train(7), 3);
        assert_eq!(sched.train_of(11), 2);
    }

    #[test]
    fn mean_train_spacing_is_respected() {
        let train = ProbeTrain {
            n: 2,
            bytes: 1,
            gap: Dur::from_micros(10),
            flow: 0,
        };
        let mut sched = TrainSchedule::new(train, 20_000, Dur::from_millis(5), Time::ZERO);
        let mut rng = SimRng::new(12);
        let mut starts = Vec::new();
        let mut idx = 0usize;
        while let Some(p) = sched.next_packet(&mut rng) {
            if idx % 2 == 0 {
                starts.push(p.time);
            }
            idx += 1;
        }
        let gaps: Vec<f64> = starts
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        // Expected spacing = train span (10 us) + 5 ms mean idle.
        let expect = 10e-6 + 5e-3;
        assert!((mean - expect).abs() / expect < 0.05, "mean {mean}");
    }
}
