//! # csmaprobe-traffic
//!
//! Traffic generation for the `csmaprobe` workspace — the MGEN
//! replacement from the paper's validation setup (appendix A).
//!
//! A traffic source is anything implementing [`Source`]: a stateful
//! generator that, when pulled, emits the next packet arrival (absolute
//! time + payload size). Sources never look at the channel — they model
//! *offered* load; queueing and medium access happen downstream in the
//! `queueing` and `mac` crates.
//!
//! Provided sources:
//!
//! * [`PoissonSource`] — exponential interarrivals (the paper's
//!   cross-traffic: "the cross-traffic generated follows a Poisson
//!   distribution").
//! * [`CbrSource`] — periodic (constant bit rate) arrivals with optional
//!   uniform jitter.
//! * [`OnOffSource`] — exponential on/off bursty traffic for the
//!   burstiness discussions of §6.3.
//! * [`TraceSource`] — replay of an explicit arrival list.
//! * [`probe::ProbeTrain`] / [`probe::TrainSchedule`] — the probing
//!   sequences of §5.1.2 (n packets at fixed gap `gI`, m trains with
//!   Poisson train spacing).
//!
//! Packet sizes come from a [`SizeModel`]; offered-load conversions
//! (b/s ↔ packets/s ↔ Erlang) live in [`load`].

pub mod load;
pub mod probe;

use csmaprobe_desim::rng::SimRng;
use csmaprobe_desim::time::{Dur, Time};

/// One offered packet: when it arrives at the transmission queue and
/// how many payload bytes it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketArrival {
    /// Absolute arrival instant at the queue.
    pub time: Time,
    /// Higher-layer payload size in bytes (MAC overhead is added by the
    /// PHY model, not here).
    pub bytes: u32,
    /// Flow tag carried through to measurement records. Needed when two
    /// flows (probe + FIFO cross-traffic) share one transmission queue,
    /// as in the paper's complete link model (Fig 3). Sources emit 0 by
    /// default; use their `with_flow` builders to change it.
    pub flow: u16,
}

impl PacketArrival {
    /// An arrival on the default flow 0.
    pub fn new(time: Time, bytes: u32) -> Self {
        PacketArrival {
            time,
            bytes,
            flow: 0,
        }
    }
}

/// Merge several sources into one, preserving global time order (ties
/// resolved in favour of the earlier-added source).
///
/// Used to put probe traffic and FIFO cross-traffic into the *same*
/// station transmission queue.
pub struct MergeSource {
    sources: Vec<Box<dyn Source>>,
    /// One look-ahead packet per source.
    pending: Vec<Option<PacketArrival>>,
    primed: bool,
}

impl MergeSource {
    /// Merge the given sources.
    pub fn new(sources: Vec<Box<dyn Source>>) -> Self {
        let n = sources.len();
        MergeSource {
            sources,
            pending: vec![None; n],
            primed: false,
        }
    }
}

impl Source for MergeSource {
    fn next_packet(&mut self, rng: &mut SimRng) -> Option<PacketArrival> {
        if !self.primed {
            for (i, s) in self.sources.iter_mut().enumerate() {
                self.pending[i] = s.next_packet(rng);
            }
            self.primed = true;
        }
        // Pick the earliest pending arrival.
        let mut best: Option<usize> = None;
        for (i, p) in self.pending.iter().enumerate() {
            if let Some(pkt) = p {
                match best {
                    Some(b) if self.pending[b].unwrap().time <= pkt.time => {}
                    _ => best = Some(i),
                }
            }
        }
        let i = best?;
        let out = self.pending[i].take();
        self.pending[i] = self.sources[i].next_packet(rng);
        out
    }
}

/// A pull-based traffic generator.
///
/// Implementations are deterministic given the same `rng` stream; all
/// randomness is drawn from the passed-in generator so the caller
/// controls reproducibility.
pub trait Source {
    /// The next packet this source will offer, or `None` if the source
    /// is exhausted. Arrival times must be non-decreasing.
    fn next_packet(&mut self, rng: &mut SimRng) -> Option<PacketArrival>;
}

/// Packet payload size distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeModel {
    /// Every packet has the same payload size.
    Fixed(u32),
    /// Sizes drawn from a finite distribution `(bytes, weight)`;
    /// weights need not sum to one.
    Choice(Vec<(u32, f64)>),
    /// Uniform over an inclusive byte range.
    Uniform(u32, u32),
}

impl SizeModel {
    /// Draw one payload size.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        match self {
            SizeModel::Fixed(b) => *b,
            SizeModel::Choice(items) => {
                debug_assert!(!items.is_empty());
                let total: f64 = items.iter().map(|(_, w)| *w).sum();
                let mut x = rng.f64() * total;
                for (b, w) in items {
                    if x < *w {
                        return *b;
                    }
                    x -= *w;
                }
                items.last().map(|(b, _)| *b).unwrap()
            }
            SizeModel::Uniform(lo, hi) => {
                debug_assert!(lo <= hi);
                rng.range_inclusive(*lo as u64, *hi as u64) as u32
            }
        }
    }

    /// The mean payload size of this model, in bytes.
    pub fn mean_bytes(&self) -> f64 {
        match self {
            SizeModel::Fixed(b) => *b as f64,
            SizeModel::Choice(items) => {
                let total: f64 = items.iter().map(|(_, w)| *w).sum();
                items.iter().map(|(b, w)| *b as f64 * *w).sum::<f64>() / total
            }
            SizeModel::Uniform(lo, hi) => (*lo as f64 + *hi as f64) / 2.0,
        }
    }
}

/// Poisson arrivals: i.i.d. exponential interarrival times.
#[derive(Debug, Clone)]
pub struct PoissonSource {
    mean_gap: Dur,
    sizes: SizeModel,
    next_time: Option<Time>,
    until: Time,
    started: bool,
    flow: u16,
}

impl PoissonSource {
    /// A Poisson source offering `rate_bps` of payload using packets
    /// from `sizes`, active on `[start, until)`.
    ///
    /// The packet rate is `rate_bps / (8 · mean_bytes)`; a zero or
    /// negative rate yields a source that never emits.
    pub fn from_bitrate(rate_bps: f64, sizes: SizeModel, start: Time, until: Time) -> Self {
        let pps = rate_bps / (8.0 * sizes.mean_bytes());
        Self::from_packet_rate(pps, sizes, start, until)
    }

    /// A Poisson source emitting `pps` packets per second on
    /// `[start, until)`.
    pub fn from_packet_rate(pps: f64, sizes: SizeModel, start: Time, until: Time) -> Self {
        let mean_gap = if pps > 0.0 {
            Dur::from_secs_f64(1.0 / pps)
        } else {
            Dur::MAX
        };
        PoissonSource {
            mean_gap,
            sizes,
            next_time: Some(start),
            until,
            started: false,
            flow: 0,
        }
    }

    /// Tag every packet of this source with `flow`.
    pub fn with_flow(mut self, flow: u16) -> Self {
        self.flow = flow;
        self
    }

    fn advance(&mut self, rng: &mut SimRng, from: Time) -> Option<Time> {
        if self.mean_gap == Dur::MAX {
            return None;
        }
        let gap = Dur::from_secs_f64(rng.exp(self.mean_gap.as_secs_f64()));
        let t = from + gap;
        (t < self.until).then_some(t)
    }
}

impl Source for PoissonSource {
    fn next_packet(&mut self, rng: &mut SimRng) -> Option<PacketArrival> {
        let base = self.next_time?;
        // The first arrival is offset exponentially from `start` too, so
        // the process is time-stationary from the observer's viewpoint.
        let time = if self.started {
            base
        } else {
            self.started = true;
            match self.advance(rng, base) {
                Some(t) => t,
                None => {
                    self.next_time = None;
                    return None;
                }
            }
        };
        self.next_time = self.advance(rng, time);
        let bytes = self.sizes.sample(rng);
        Some(PacketArrival {
            time,
            bytes,
            flow: self.flow,
        })
    }
}

/// Constant-bit-rate (periodic) arrivals with optional uniform jitter.
#[derive(Debug, Clone)]
pub struct CbrSource {
    interval: Dur,
    jitter: Dur,
    sizes: SizeModel,
    next_nominal: Time,
    until: Time,
    remaining: u64,
    flow: u16,
}

impl CbrSource {
    /// A CBR source offering `rate_bps` with packets from `sizes`,
    /// active on `[start, until)`, unlimited packet count.
    pub fn from_bitrate(rate_bps: f64, sizes: SizeModel, start: Time, until: Time) -> Self {
        debug_assert!(rate_bps > 0.0);
        let interval = Dur::from_secs_f64(8.0 * sizes.mean_bytes() / rate_bps);
        CbrSource {
            interval,
            jitter: Dur::ZERO,
            sizes,
            next_nominal: start,
            until,
            remaining: u64::MAX,
            flow: 0,
        }
    }

    /// A CBR source with an explicit inter-packet interval and packet
    /// budget.
    pub fn with_interval(interval: Dur, sizes: SizeModel, start: Time, count: u64) -> Self {
        CbrSource {
            interval,
            jitter: Dur::ZERO,
            sizes,
            next_nominal: start,
            until: Time::MAX,
            remaining: count,
            flow: 0,
        }
    }

    /// Tag every packet of this source with `flow`.
    pub fn with_flow(mut self, flow: u16) -> Self {
        self.flow = flow;
        self
    }

    /// Add uniform jitter in `[0, jitter)` to every nominal send time.
    pub fn with_jitter(mut self, jitter: Dur) -> Self {
        self.jitter = jitter;
        self
    }
}

impl Source for CbrSource {
    fn next_packet(&mut self, rng: &mut SimRng) -> Option<PacketArrival> {
        if self.remaining == 0 || self.next_nominal >= self.until {
            return None;
        }
        self.remaining -= 1;
        let mut time = self.next_nominal;
        self.next_nominal += self.interval;
        if self.jitter > Dur::ZERO {
            time += Dur::from_nanos(rng.below(self.jitter.as_nanos()));
        }
        let bytes = self.sizes.sample(rng);
        Some(PacketArrival {
            time,
            bytes,
            flow: self.flow,
        })
    }
}

/// Markov on/off bursty traffic: exponential ON and OFF sojourns; while
/// ON, packets are emitted back-to-back at `peak_rate_bps`.
///
/// The long-run offered rate is `peak · E[on] / (E[on]+E[off])`.
#[derive(Debug, Clone)]
pub struct OnOffSource {
    mean_on: Dur,
    mean_off: Dur,
    gap_in_burst: Dur,
    sizes: SizeModel,
    /// Remaining time of the current ON period, if inside one.
    burst_end: Option<Time>,
    next_time: Time,
    until: Time,
    flow: u16,
}

impl OnOffSource {
    /// Create an on/off source. `peak_rate_bps` is the rate *inside*
    /// bursts.
    pub fn new(
        peak_rate_bps: f64,
        mean_on: Dur,
        mean_off: Dur,
        sizes: SizeModel,
        start: Time,
        until: Time,
    ) -> Self {
        debug_assert!(peak_rate_bps > 0.0);
        let gap = Dur::from_secs_f64(8.0 * sizes.mean_bytes() / peak_rate_bps);
        OnOffSource {
            mean_on,
            mean_off,
            gap_in_burst: gap,
            sizes,
            burst_end: None,
            next_time: start,
            until,
            flow: 0,
        }
    }

    /// Tag every packet of this source with `flow`.
    pub fn with_flow(mut self, flow: u16) -> Self {
        self.flow = flow;
        self
    }

    /// The long-run average offered bitrate of this source.
    pub fn mean_rate_bps(&self) -> f64 {
        let on = self.mean_on.as_secs_f64();
        let off = self.mean_off.as_secs_f64();
        let peak = 8.0 * self.sizes.mean_bytes() / self.gap_in_burst.as_secs_f64();
        peak * on / (on + off)
    }
}

impl Source for OnOffSource {
    fn next_packet(&mut self, rng: &mut SimRng) -> Option<PacketArrival> {
        loop {
            if self.next_time >= self.until {
                return None;
            }
            match self.burst_end {
                Some(end) if self.next_time < end => {
                    let time = self.next_time;
                    self.next_time += self.gap_in_burst;
                    let bytes = self.sizes.sample(rng);
                    return Some(PacketArrival {
                        time,
                        bytes,
                        flow: self.flow,
                    });
                }
                Some(end) => {
                    // Burst over: exponential OFF period.
                    let off = Dur::from_secs_f64(rng.exp(self.mean_off.as_secs_f64()));
                    self.next_time = end + off;
                    self.burst_end = None;
                }
                None => {
                    // Start a new exponential ON period at next_time.
                    let on = Dur::from_secs_f64(rng.exp(self.mean_on.as_secs_f64()));
                    self.burst_end = Some(self.next_time + on);
                }
            }
        }
    }
}

/// Pareto on/off bursty traffic: heavy-tailed ON periods (Pareto with
/// shape `alpha`), exponential OFF periods; packets back-to-back at
/// `peak_rate_bps` while ON.
///
/// The classic self-similar-traffic building block (Willinger et al.):
/// smaller `alpha` means heavier tails and a burstier aggregate. Used
/// for the paper's §6.3 discussion — "as the burstiness of cross-traffic
/// flow increases so will the variability of dispersion measures".
#[derive(Debug, Clone)]
pub struct ParetoOnOffSource {
    /// Pareto shape of ON durations (must be > 1 for a finite mean).
    alpha: f64,
    /// Pareto scale: minimum ON duration.
    on_min: Dur,
    mean_off: Dur,
    gap_in_burst: Dur,
    sizes: SizeModel,
    burst_end: Option<Time>,
    next_time: Time,
    until: Time,
    flow: u16,
}

impl ParetoOnOffSource {
    /// Create a Pareto on/off source. `alpha > 1` is required so the
    /// mean ON duration `alpha*on_min/(alpha-1)` exists.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        peak_rate_bps: f64,
        alpha: f64,
        on_min: Dur,
        mean_off: Dur,
        sizes: SizeModel,
        start: Time,
        until: Time,
    ) -> Self {
        assert!(alpha > 1.0, "alpha must exceed 1 (got {alpha})");
        assert!(peak_rate_bps > 0.0);
        let gap = Dur::from_secs_f64(8.0 * sizes.mean_bytes() / peak_rate_bps);
        ParetoOnOffSource {
            alpha,
            on_min,
            mean_off,
            gap_in_burst: gap,
            sizes,
            burst_end: None,
            next_time: start,
            until,
            flow: 0,
        }
    }

    /// Tag every packet of this source with `flow`.
    pub fn with_flow(mut self, flow: u16) -> Self {
        self.flow = flow;
        self
    }

    /// Mean ON duration `alpha*on_min/(alpha-1)`.
    pub fn mean_on(&self) -> Dur {
        Dur::from_secs_f64(self.alpha * self.on_min.as_secs_f64() / (self.alpha - 1.0))
    }

    /// The long-run average offered bitrate.
    pub fn mean_rate_bps(&self) -> f64 {
        let on = self.mean_on().as_secs_f64();
        let off = self.mean_off.as_secs_f64();
        let peak = 8.0 * self.sizes.mean_bytes() / self.gap_in_burst.as_secs_f64();
        peak * on / (on + off)
    }

    fn draw_on(&self, rng: &mut SimRng) -> Dur {
        // Inverse-CDF Pareto: X = x_m / U^(1/alpha).
        let u = 1.0 - rng.f64(); // in (0, 1]
        let secs = self.on_min.as_secs_f64() / u.powf(1.0 / self.alpha);
        // Cap pathological tail draws at 10^4 x mean to keep single
        // replications bounded (documented heavy-tail truncation).
        let cap = self.mean_on().as_secs_f64() * 1e4;
        Dur::from_secs_f64(secs.min(cap))
    }
}

impl Source for ParetoOnOffSource {
    fn next_packet(&mut self, rng: &mut SimRng) -> Option<PacketArrival> {
        loop {
            if self.next_time >= self.until {
                return None;
            }
            match self.burst_end {
                Some(end) if self.next_time < end => {
                    let time = self.next_time;
                    self.next_time += self.gap_in_burst;
                    let bytes = self.sizes.sample(rng);
                    return Some(PacketArrival {
                        time,
                        bytes,
                        flow: self.flow,
                    });
                }
                Some(end) => {
                    let off = Dur::from_secs_f64(rng.exp(self.mean_off.as_secs_f64()));
                    self.next_time = end + off;
                    self.burst_end = None;
                }
                None => {
                    let on = self.draw_on(rng);
                    self.burst_end = Some(self.next_time + on);
                }
            }
        }
    }
}

/// Replay of an explicit arrival trace.
#[derive(Debug, Clone)]
pub struct TraceSource {
    packets: Vec<PacketArrival>,
    idx: usize,
}

impl TraceSource {
    /// Wrap an arrival list. Panics if arrival times decrease.
    pub fn new(packets: Vec<PacketArrival>) -> Self {
        for w in packets.windows(2) {
            assert!(
                w[1].time >= w[0].time,
                "trace arrivals must be time-ordered"
            );
        }
        TraceSource { packets, idx: 0 }
    }
}

impl Source for TraceSource {
    fn next_packet(&mut self, _rng: &mut SimRng) -> Option<PacketArrival> {
        let p = self.packets.get(self.idx).copied();
        if p.is_some() {
            self.idx += 1;
        }
        p
    }
}

/// A source that never offers any packet (placeholder for stations that
/// only receive).
#[derive(Debug, Clone, Copy, Default)]
pub struct SilentSource;

impl Source for SilentSource {
    fn next_packet(&mut self, _rng: &mut SimRng) -> Option<PacketArrival> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(src: &mut dyn Source, rng: &mut SimRng, cap: usize) -> Vec<PacketArrival> {
        let mut out = Vec::new();
        while out.len() < cap {
            match src.next_packet(rng) {
                Some(p) => out.push(p),
                None => break,
            }
        }
        out
    }

    #[test]
    fn poisson_rate_is_honoured() {
        let mut rng = SimRng::new(1);
        let horizon = Time::from_secs_f64(50.0);
        let mut src =
            PoissonSource::from_bitrate(2_000_000.0, SizeModel::Fixed(1000), Time::ZERO, horizon);
        let pkts = drain(&mut src, &mut rng, usize::MAX);
        // Expect about rate * T / (8*bytes) = 2e6*50/8000 = 12_500 packets.
        let n = pkts.len() as f64;
        assert!((n - 12_500.0).abs() < 400.0, "got {n} packets");
        // Interarrivals should have CV ~ 1 (exponential).
        let gaps: Vec<f64> = pkts
            .windows(2)
            .map(|w| (w[1].time - w[0].time).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn poisson_times_are_monotone_and_bounded() {
        let mut rng = SimRng::new(2);
        let until = Time::from_secs_f64(1.0);
        let mut src =
            PoissonSource::from_packet_rate(10_000.0, SizeModel::Fixed(100), Time::ZERO, until);
        let pkts = drain(&mut src, &mut rng, usize::MAX);
        for w in pkts.windows(2) {
            assert!(w[1].time >= w[0].time);
        }
        assert!(pkts.iter().all(|p| p.time < until));
        assert!(src.next_packet(&mut rng).is_none());
    }

    #[test]
    fn zero_rate_poisson_never_emits() {
        let mut rng = SimRng::new(3);
        let mut src = PoissonSource::from_packet_rate(
            0.0,
            SizeModel::Fixed(100),
            Time::ZERO,
            Time::from_secs_f64(10.0),
        );
        assert!(src.next_packet(&mut rng).is_none());
    }

    #[test]
    fn cbr_is_periodic() {
        let mut rng = SimRng::new(4);
        let mut src = CbrSource::with_interval(
            Dur::from_micros(500),
            SizeModel::Fixed(1500),
            Time::from_micros(100),
            5,
        );
        let pkts = drain(&mut src, &mut rng, usize::MAX);
        assert_eq!(pkts.len(), 5);
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.time, Time::from_micros(100 + 500 * i as u64));
            assert_eq!(p.bytes, 1500);
        }
    }

    #[test]
    fn cbr_bitrate_interval() {
        let mut rng = SimRng::new(5);
        // 1 Mb/s with 1000-byte packets -> one packet every 8 ms.
        let mut src = CbrSource::from_bitrate(
            1_000_000.0,
            SizeModel::Fixed(1000),
            Time::ZERO,
            Time::from_secs_f64(1.0),
        );
        let pkts = drain(&mut src, &mut rng, usize::MAX);
        assert_eq!(pkts.len(), 125);
        assert_eq!(pkts[1].time - pkts[0].time, Dur::from_millis(8));
    }

    #[test]
    fn cbr_jitter_stays_in_bound() {
        let mut rng = SimRng::new(6);
        let mut src =
            CbrSource::with_interval(Dur::from_millis(1), SizeModel::Fixed(64), Time::ZERO, 1000)
                .with_jitter(Dur::from_micros(100));
        let pkts = drain(&mut src, &mut rng, usize::MAX);
        for (i, p) in pkts.iter().enumerate() {
            let nominal = Time::from_millis(i as u64);
            assert!(p.time >= nominal);
            assert!(p.time < nominal + Dur::from_micros(100));
        }
    }

    #[test]
    fn onoff_mean_rate_matches_formula() {
        let sizes = SizeModel::Fixed(500);
        let src = OnOffSource::new(
            4_000_000.0,
            Dur::from_millis(10),
            Dur::from_millis(30),
            sizes,
            Time::ZERO,
            Time::from_secs_f64(200.0),
        );
        let expect = 4_000_000.0 * 10.0 / 40.0;
        assert!((src.mean_rate_bps() - expect).abs() / expect < 1e-9);
        // And empirically:
        let mut rng = SimRng::new(7);
        let mut src = src;
        let mut bits = 0u64;
        let mut rngc = rng.fork();
        let _ = &mut rng;
        let mut last = Time::ZERO;
        while let Some(p) = src.next_packet(&mut rngc) {
            bits += p.bytes as u64 * 8;
            last = p.time;
        }
        let rate = bits as f64 / last.as_secs_f64();
        assert!(
            (rate - expect).abs() / expect < 0.1,
            "rate {rate} vs {expect}"
        );
    }

    #[test]
    fn trace_source_replays_exactly() {
        let trace = vec![
            PacketArrival::new(Time::from_micros(1), 10),
            PacketArrival::new(Time::from_micros(5), 20),
        ];
        let mut src = TraceSource::new(trace.clone());
        let mut rng = SimRng::new(8);
        assert_eq!(src.next_packet(&mut rng), Some(trace[0]));
        assert_eq!(src.next_packet(&mut rng), Some(trace[1]));
        assert_eq!(src.next_packet(&mut rng), None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn trace_source_rejects_unordered() {
        TraceSource::new(vec![
            PacketArrival::new(Time::from_micros(5), 10),
            PacketArrival::new(Time::from_micros(1), 10),
        ]);
    }

    #[test]
    fn size_models_sample_correctly() {
        let mut rng = SimRng::new(9);
        assert_eq!(SizeModel::Fixed(77).sample(&mut rng), 77);
        assert_eq!(SizeModel::Fixed(77).mean_bytes(), 77.0);

        let choice = SizeModel::Choice(vec![(100, 1.0), (200, 3.0)]);
        assert!((choice.mean_bytes() - 175.0).abs() < 1e-12);
        let mut c100 = 0;
        let n = 40_000;
        for _ in 0..n {
            match choice.sample(&mut rng) {
                100 => c100 += 1,
                200 => {}
                other => panic!("unexpected size {other}"),
            }
        }
        let frac = c100 as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");

        let uni = SizeModel::Uniform(40, 60);
        assert_eq!(uni.mean_bytes(), 50.0);
        for _ in 0..1000 {
            let v = uni.sample(&mut rng);
            assert!((40..=60).contains(&v));
        }
    }

    #[test]
    fn silent_source_is_silent() {
        let mut rng = SimRng::new(10);
        assert!(SilentSource.next_packet(&mut rng).is_none());
    }

    #[test]
    fn pareto_onoff_mean_rate() {
        let src = ParetoOnOffSource::new(
            6_000_000.0,
            1.5,
            Dur::from_millis(4),
            Dur::from_millis(12),
            SizeModel::Fixed(1500),
            Time::ZERO,
            Time::from_secs_f64(400.0),
        );
        // mean_on = 1.5*4/(0.5) = 12 ms; duty = 12/(12+12) = 0.5.
        assert!((src.mean_on().as_secs_f64() - 12e-3).abs() < 1e-9);
        let expect = 3_000_000.0;
        assert!((src.mean_rate_bps() - expect).abs() / expect < 1e-9);
        // Empirical rate within 15% (heavy tails converge slowly).
        let mut rng = SimRng::new(42);
        let mut src = src;
        let mut bits = 0u64;
        let mut last = Time::ZERO;
        while let Some(p) = src.next_packet(&mut rng) {
            bits += p.bytes as u64 * 8;
            last = p.time;
        }
        let rate = bits as f64 / last.as_secs_f64();
        assert!(
            (rate - expect).abs() / expect < 0.15,
            "empirical rate {rate}"
        );
    }

    #[test]
    fn pareto_burstier_than_exponential_onoff() {
        // Same mean rate and mean ON; compare the variance of packets
        // per 100 ms window: Pareto (alpha=1.3) must exceed exponential.
        let horizon = Time::from_secs_f64(300.0);
        let window = 0.1;
        let count_var = |arrivals: Vec<Time>| {
            let bins = (300.0 / window) as usize;
            let mut counts = vec![0f64; bins];
            for t in arrivals {
                let b = (t.as_secs_f64() / window) as usize;
                if b < bins {
                    counts[b] += 1.0;
                }
            }
            let mean = counts.iter().sum::<f64>() / bins as f64;
            counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / bins as f64
        };
        let collect = |src: &mut dyn Source, seed: u64| {
            let mut rng = SimRng::new(seed);
            let mut out = Vec::new();
            while let Some(p) = src.next_packet(&mut rng) {
                out.push(p.time);
            }
            out
        };
        let mut pareto = ParetoOnOffSource::new(
            6e6,
            1.3,
            Dur::from_millis(3),
            Dur::from_millis(13),
            SizeModel::Fixed(1500),
            Time::ZERO,
            horizon,
        );
        let mean_on = pareto.mean_on();
        let mut exp = OnOffSource::new(
            6e6,
            mean_on,
            Dur::from_millis(13),
            SizeModel::Fixed(1500),
            Time::ZERO,
            horizon,
        );
        let v_pareto = count_var(collect(&mut pareto, 7));
        let v_exp = count_var(collect(&mut exp, 7));
        assert!(
            v_pareto > 1.2 * v_exp,
            "pareto var {v_pareto} vs exp var {v_exp}"
        );
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn pareto_rejects_infinite_mean() {
        ParetoOnOffSource::new(
            1e6,
            0.9,
            Dur::from_millis(1),
            Dur::from_millis(1),
            SizeModel::Fixed(100),
            Time::ZERO,
            Time::MAX,
        );
    }
}
