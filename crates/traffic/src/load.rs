//! Offered-load arithmetic.
//!
//! The paper's transient-length study (Fig 10) parameterises sources in
//! **Erlangs**: an offered load of 1 Erlang means the source offers
//! work at exactly the rate the channel could serve it if the source
//! were alone. We normalise against the *stand-alone capacity* of a
//! station for the source's packet size (see
//! `csmaprobe_phy::Phy::standalone_capacity_bps` and the measured
//! variant in the `mac` crate).

/// Convert a bitrate to an offered load in Erlangs, given the capacity
/// the flow would have alone.
#[inline]
pub fn erlang_from_bps(rate_bps: f64, standalone_capacity_bps: f64) -> f64 {
    debug_assert!(standalone_capacity_bps > 0.0);
    rate_bps / standalone_capacity_bps
}

/// Convert an offered load in Erlangs to a bitrate, given the capacity
/// the flow would have alone.
#[inline]
pub fn bps_from_erlang(erlang: f64, standalone_capacity_bps: f64) -> f64 {
    debug_assert!(standalone_capacity_bps > 0.0);
    erlang * standalone_capacity_bps
}

/// Bits per second carried by `pps` packets of `bytes` payload.
#[inline]
pub fn bps_from_pps(pps: f64, bytes: u32) -> f64 {
    pps * bytes as f64 * 8.0
}

/// Packets per second needed for `rate_bps` with `bytes`-byte packets.
#[inline]
pub fn pps_from_bps(rate_bps: f64, bytes: u32) -> f64 {
    debug_assert!(bytes > 0);
    rate_bps / (bytes as f64 * 8.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_round_trip() {
        let cap = 6_200_000.0;
        let rate = 3_100_000.0;
        let e = erlang_from_bps(rate, cap);
        assert!((e - 0.5).abs() < 1e-12);
        assert!((bps_from_erlang(e, cap) - rate).abs() < 1e-6);
    }

    #[test]
    fn pps_round_trip() {
        let bps = bps_from_pps(100.0, 1500);
        assert_eq!(bps, 1_200_000.0);
        assert!((pps_from_bps(bps, 1500) - 100.0).abs() < 1e-12);
    }
}
