//! A minimal, in-tree stand-in for the [`proptest`] crate.
//!
//! The build environment has no network access to a crates registry, so
//! this crate provides the exact API subset the workspace's property
//! tests use, under the same paths:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies (`0u64..100`, `0.0f64..1.0`, …), [`any`], and
//!   [`prop::collection::vec`],
//! * [`ProptestConfig`].
//!
//! Semantics: each `#[test]` runs `cases` times (default 64) with
//! deterministically seeded pseudorandom inputs, so failures are
//! reproducible run-to-run. No shrinking — on failure the generated
//! inputs are printed as-is. Swapping the real `proptest` back in is a
//! `Cargo.toml` change; the test files need not change.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::ops::Range;

/// Runner configuration: how many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated input cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the heavier
        // simulation-backed properties fast while still exploring.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator backing input strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction; each (property, case) pair gets its own seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; the tiny modulo bias is irrelevant for tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. The subset of `proptest::strategy::Strategy` the
/// workspace needs: generation only, no shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )+};
}
impl_int_range_strategy!(u64, usize, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy generating any value of `T` (full range).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Sizes accepted by [`prop::collection::vec`]: a fixed length or a
/// half-open range of lengths.
pub trait IntoSizeRange {
    /// Convert into `(min, max_exclusive)`.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// Strategy for vectors of a given element strategy and size range.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max_exclusive - self.min).max(1) as u64;
        let len = self.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Mirror of the `proptest::prop` module path.
pub mod prop {
    /// Mirror of `proptest::prop::collection`.
    pub mod collection {
        use super::super::{IntoSizeRange, Strategy, VecStrategy};

        /// A strategy for `Vec`s with elements from `element` and length
        /// from `size` (a `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max_exclusive) = size.bounds();
            assert!(min < max_exclusive, "empty vec size range");
            VecStrategy {
                element,
                min,
                max_exclusive,
            }
        }
    }
}

/// Everything the property tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Like `assert!`, but named as in proptest. Panics on failure (the
/// real proptest records and shrinks instead; shrinking is out of
/// scope here).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Like `assert_eq!`, but named as in proptest.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Define property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))] // optional
///     #[test]
///     fn prop_name(x in 0u64..100, v in prop::collection::vec(0.0f64..1.0, 1..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
///
/// Each property becomes a normal `#[test]` running `cases` times with
/// deterministic seeds derived from the property name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Deterministic per-property seed: FNV-1a over the name.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed ^= b as u64;
                    seed = seed.wrapping_mul(0x100_0000_01b3);
                }
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(
                        seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)),
                    );
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let run = || { $body };
                    if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)).is_err() {
                        panic!(
                            "property {} failed at case {}/{} with inputs: {:#?}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            ($(&$arg,)+)
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{Strategy, TestRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..10_000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::new(2);
        for _ in 0..1000 {
            let v = prop::collection::vec(0u64..5, 3usize..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = prop::collection::vec(0u64..5, 4usize).generate(&mut rng);
        assert_eq!(fixed.len(), 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_roundtrip(x in 0u64..50, v in prop::collection::vec(0.0f64..1.0, 1..10)) {
            prop_assert!(x < 50);
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
