//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in order —
//! clients may pipeline. Requests are flat JSON objects dispatched on
//! their `"op"` field:
//!
//! ```text
//! {"op":"submit","id":"s1","cell":1,"link":"wired","train":"short","tool":"train","reps":64,"seed":7}
//! {"op":"poll","id":"s1"}
//! {"op":"cancel","id":"s1"}
//! {"op":"drain"}
//! {"op":"metrics"}
//! ```
//!
//! Responses are `{"ok":true,…}` or a **typed error**
//! `{"ok":false,"error":"<code>","detail":"…"}` — a malformed,
//! truncated or oversized frame, a duplicate or unknown session id,
//! cancelling a completed session, or submitting to a draining server
//! each get their own stable code ([`WireError::code`]); the
//! connection survives every error and resynchronises on the next
//! newline. A connection whose first bytes are `GET ` is treated as a
//! plain-text `/metrics` scrape instead (see
//! [`crate::server`]).
//!
//! The parser is deliberately flat (strings, integers, floats, bools,
//! null — no nesting): every request is a bounded line
//! ([`MAX_FRAME`]), so a hostile or confused client can neither wedge
//! a session slot nor balloon memory. It never panics on any input
//! (fuzz-pinned in `tests/wire_fuzz.rs`).

use std::io::BufRead;

/// Longest accepted request line, bytes (newline included). Longer
/// frames are answered with an `oversized_frame` error and discarded
/// up to the next newline.
pub const MAX_FRAME: usize = 16 * 1024;

/// Largest accepted per-session replication budget — bounds a
/// session's executor submission, not any materialised memory.
pub const MAX_REPS: usize = 1 << 20;

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session.
    Submit(SubmitRequest),
    /// Read a session's current (possibly partial) estimate.
    Poll { id: String },
    /// Cancel a session that has not completed yet.
    Cancel { id: String },
    /// Block until every accepted session has finished.
    Drain,
    /// Metrics snapshot (JSON form; `GET /metrics` is the text form).
    Metrics,
}

/// The payload of a `submit` request. Axis fields are still names
/// here; [`crate::session::SessionSpec::resolve`] binds them to the
/// catalog (or inline-spec) axis points.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Client-chosen session id — the row key of the session table.
    pub id: String,
    /// Client-chosen table cell index: the finalized table sorts by
    /// it, which is what makes the table independent of completion
    /// order. Must be unique among accepted sessions.
    pub cell: u64,
    /// Link-axis name (catalog or inline spec, as `--links` accepts).
    pub link: String,
    /// Train-axis name.
    pub train: String,
    /// Tool family name.
    pub tool: String,
    /// Independent tool runs to replicate (1..=[`MAX_REPS`]).
    pub reps: usize,
    /// Session master seed: replication `i` runs under
    /// `derive_seed(seed, i)`, exactly as `run_reduce` derives them.
    pub seed: u64,
}

/// Every way a request can be refused, as a stable typed code.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Line exceeded [`MAX_FRAME`] bytes.
    Oversized { len: usize },
    /// Not a parseable flat JSON object (truncated frames land here).
    Malformed { detail: String },
    /// Valid object, unknown `"op"`.
    UnknownOp { op: String },
    /// A field is missing, has the wrong type, or an invalid value.
    BadField { field: &'static str, detail: String },
    /// Submit with an id an accepted session already uses.
    DuplicateId { id: String },
    /// Submit with a cell index an accepted session already uses.
    DuplicateCell { cell: u64 },
    /// Poll/cancel of an id no accepted session uses.
    UnknownId { id: String },
    /// Cancel of a session that already completed.
    AlreadyComplete { id: String },
    /// Submit refused because the server is draining for shutdown.
    Draining,
}

impl WireError {
    /// The stable error code clients dispatch on.
    pub fn code(&self) -> &'static str {
        match self {
            WireError::Oversized { .. } => "oversized_frame",
            WireError::Malformed { .. } => "malformed_request",
            WireError::UnknownOp { .. } => "unknown_op",
            WireError::BadField { .. } => "bad_field",
            WireError::DuplicateId { .. } => "duplicate_id",
            WireError::DuplicateCell { .. } => "duplicate_cell",
            WireError::UnknownId { .. } => "unknown_id",
            WireError::AlreadyComplete { .. } => "already_complete",
            WireError::Draining => "draining",
        }
    }

    /// Human detail for the response line.
    pub fn detail(&self) -> String {
        match self {
            WireError::Oversized { len } => {
                format!("frame of {len}+ bytes exceeds the {MAX_FRAME}-byte limit")
            }
            WireError::Malformed { detail } => detail.clone(),
            WireError::UnknownOp { op } => format!("unknown op {op:?}"),
            WireError::BadField { field, detail } => format!("field {field:?}: {detail}"),
            WireError::DuplicateId { id } => format!("session id {id:?} already accepted"),
            WireError::DuplicateCell { cell } => {
                format!("cell index {cell} already used by an accepted session")
            }
            WireError::UnknownId { id } => format!("no accepted session with id {id:?}"),
            WireError::AlreadyComplete { id } => {
                format!("session {id:?} already completed; nothing to cancel")
            }
            WireError::Draining => "server is draining; no new sessions".to_string(),
        }
    }

    /// The `{"ok":false,…}` response line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ok\":false,\"error\":{},\"detail\":{}}}",
            json_str(self.code()),
            json_str(&self.detail())
        )
    }
}

pub use csmaprobe_bench::report::{json_f64, json_str};

/// A flat JSON scalar.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    /// Raw number text (kept raw so u64 seeds round-trip exactly).
    Num(String),
    Bool(bool),
    Null,
}

/// Parse a strict flat JSON object: `{"key":scalar,…}` with nothing
/// but whitespace around it. Nested arrays/objects are refused — no
/// request needs them and flatness is what bounds the parser.
fn parse_object(line: &str) -> Result<Vec<(String, Value)>, WireError> {
    let malformed = |detail: &str| WireError::Malformed {
        detail: detail.to_string(),
    };
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };
    skip_ws(&mut i);
    if i >= bytes.len() || bytes[i] != b'{' {
        return Err(malformed("expected a JSON object"));
    }
    i += 1;
    let mut fields = Vec::new();
    skip_ws(&mut i);
    if i < bytes.len() && bytes[i] == b'}' {
        i += 1;
    } else {
        loop {
            skip_ws(&mut i);
            let key = parse_string(line, &mut i)?;
            skip_ws(&mut i);
            if i >= bytes.len() || bytes[i] != b':' {
                return Err(malformed("expected ':' after object key"));
            }
            i += 1;
            skip_ws(&mut i);
            let value = parse_scalar(line, &mut i)?;
            fields.push((key, value));
            skip_ws(&mut i);
            match bytes.get(i) {
                Some(b',') => i += 1,
                Some(b'}') => {
                    i += 1;
                    break;
                }
                _ => return Err(malformed("expected ',' or '}' after value")),
            }
        }
    }
    skip_ws(&mut i);
    if i != bytes.len() {
        return Err(malformed("trailing bytes after the JSON object"));
    }
    Ok(fields)
}

/// Parse one scalar value at `*i`.
fn parse_scalar(line: &str, i: &mut usize) -> Result<Value, WireError> {
    let malformed = |detail: &str| WireError::Malformed {
        detail: detail.to_string(),
    };
    let bytes = line.as_bytes();
    match bytes.get(*i) {
        Some(b'"') => Ok(Value::Str(parse_string(line, i)?)),
        Some(b't') if line[*i..].starts_with("true") => {
            *i += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if line[*i..].starts_with("false") => {
            *i += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if line[*i..].starts_with("null") => {
            *i += 4;
            Ok(Value::Null)
        }
        Some(b'[') | Some(b'{') => Err(malformed("nested values are not part of the protocol")),
        Some(c) if c.is_ascii_digit() || *c == b'-' || *c == b'+' => {
            let start = *i;
            while *i < bytes.len()
                && (bytes[*i].is_ascii_digit()
                    || matches!(bytes[*i], b'-' | b'+' | b'.' | b'e' | b'E'))
            {
                *i += 1;
            }
            let text = &line[start..*i];
            // Validate through the f64 grammar; the raw text is kept
            // for exact integer extraction.
            text.parse::<f64>()
                .map_err(|_| malformed("unparseable number"))?;
            Ok(Value::Num(text.to_string()))
        }
        _ => Err(malformed("expected a scalar value")),
    }
}

/// Parse a JSON string literal at `*i` (which must point at `"`),
/// advancing past the closing quote.
fn parse_string(line: &str, i: &mut usize) -> Result<String, WireError> {
    let malformed = |detail: &str| WireError::Malformed {
        detail: detail.to_string(),
    };
    let bytes = line.as_bytes();
    if bytes.get(*i) != Some(&b'"') {
        return Err(malformed("expected a string"));
    }
    *i += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*i) else {
            return Err(malformed("unterminated string (truncated frame?)"));
        };
        match b {
            b'"' => {
                *i += 1;
                return Ok(out);
            }
            b'\\' => {
                *i += 1;
                let Some(&esc) = bytes.get(*i) else {
                    return Err(malformed("unterminated escape"));
                };
                *i += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = line
                            .get(*i..*i + 4)
                            .ok_or_else(|| malformed("truncated \\u escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| malformed("bad \\u escape"))?;
                        *i += 4;
                        // Surrogates would need pairing; the protocol
                        // has no use for them, so refuse instead of
                        // guessing.
                        let ch = char::from_u32(cp)
                            .ok_or_else(|| malformed("\\u escape is not a scalar value"))?;
                        out.push(ch);
                    }
                    _ => return Err(malformed("unknown escape")),
                }
            }
            _ if b < 0x20 => return Err(malformed("raw control byte in string")),
            _ => {
                // Consume one full UTF-8 scalar (the line is &str, so
                // boundaries are valid).
                let ch_len = line[*i..].chars().next().map(|c| c.len_utf8()).unwrap_or(1);
                out.push_str(&line[*i..*i + ch_len]);
                *i += ch_len;
            }
        }
    }
}

/// Field accessors over the parsed object.
struct Fields(Vec<(String, Value)>);

impl Fields {
    fn get(&self, key: &str) -> Option<&Value> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str_field(&self, field: &'static str) -> Result<String, WireError> {
        match self.get(field) {
            Some(Value::Str(s)) => Ok(s.clone()),
            Some(_) => Err(WireError::BadField {
                field,
                detail: "expected a string".to_string(),
            }),
            None => Err(WireError::BadField {
                field,
                detail: "required field missing".to_string(),
            }),
        }
    }

    fn u64_field(&self, field: &'static str) -> Result<u64, WireError> {
        match self.get(field) {
            Some(Value::Num(raw)) => raw.parse::<u64>().map_err(|_| WireError::BadField {
                field,
                detail: format!("{raw:?} is not an unsigned 64-bit integer"),
            }),
            Some(_) => Err(WireError::BadField {
                field,
                detail: "expected an unsigned integer".to_string(),
            }),
            None => Err(WireError::BadField {
                field,
                detail: "required field missing".to_string(),
            }),
        }
    }
}

impl Request {
    /// Parse one request line into a [`Request`] or a typed error.
    /// Never panics, for any input.
    pub fn parse(line: &str) -> Result<Request, WireError> {
        let fields = Fields(parse_object(line)?);
        let op = fields.str_field("op").map_err(|_| WireError::Malformed {
            detail: "missing string field \"op\"".to_string(),
        })?;
        match op.as_str() {
            "submit" => {
                let id = fields.str_field("id")?;
                if id.is_empty() || id.len() > 256 {
                    return Err(WireError::BadField {
                        field: "id",
                        detail: "must be 1..=256 bytes".to_string(),
                    });
                }
                let reps = fields.u64_field("reps")?;
                if reps == 0 || reps as usize > MAX_REPS {
                    return Err(WireError::BadField {
                        field: "reps",
                        detail: format!("must be 1..={MAX_REPS}"),
                    });
                }
                Ok(Request::Submit(SubmitRequest {
                    id,
                    cell: fields.u64_field("cell")?,
                    link: fields.str_field("link")?,
                    train: fields.str_field("train")?,
                    tool: fields.str_field("tool")?,
                    reps: reps as usize,
                    seed: fields.u64_field("seed")?,
                }))
            }
            "poll" => Ok(Request::Poll {
                id: fields.str_field("id")?,
            }),
            "cancel" => Ok(Request::Cancel {
                id: fields.str_field("id")?,
            }),
            "drain" => Ok(Request::Drain),
            "metrics" => Ok(Request::Metrics),
            _ => Err(WireError::UnknownOp { op }),
        }
    }
}

/// Read one frame (up to and including the next newline) from `r`.
///
/// * `Ok(None)` — clean EOF before any byte of a new frame.
/// * `Ok(Some(Ok(line)))` — one complete line, newline stripped.
/// * `Ok(Some(Err(Oversized)))` — the frame exceeded [`MAX_FRAME`];
///   the rest of the line has been discarded, so the stream is
///   resynchronised for the next call.
/// * `Err(io)` — transport error.
///
/// Bytes that are not valid UTF-8 surface as a `Malformed` frame
/// rather than an I/O error: a binary-garbage client gets a typed
/// response, not a dropped connection.
pub fn read_frame(r: &mut impl BufRead) -> std::io::Result<Option<Result<String, WireError>>> {
    let mut buf: Vec<u8> = Vec::new();
    read_line_capped(r, &mut buf, MAX_FRAME)?;
    if buf.is_empty() {
        return Ok(None);
    }
    if !buf.ends_with(b"\n") && buf.len() >= MAX_FRAME {
        // Oversized: discard the rest of the line to resynchronise.
        let mut total = buf.len();
        let mut sink: Vec<u8> = Vec::new();
        loop {
            sink.clear();
            read_line_capped(r, &mut sink, MAX_FRAME)?;
            total += sink.len();
            if sink.is_empty() || sink.ends_with(b"\n") {
                break;
            }
        }
        return Ok(Some(Err(WireError::Oversized { len: total })));
    }
    while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Some(Ok(line))),
        Err(_) => Ok(Some(Err(WireError::Malformed {
            detail: "frame is not valid UTF-8".to_string(),
        }))),
    }
}

/// Append bytes from `r` to `buf` up to and including the next
/// newline, reading at most `cap - buf.len()` bytes. Stops early at
/// EOF. (`Read::take` consumes its reader, so the cap is enforced by
/// hand over `fill_buf`/`consume`.)
fn read_line_capped(r: &mut impl BufRead, buf: &mut Vec<u8>, cap: usize) -> std::io::Result<()> {
    while buf.len() < cap {
        let available = match r.fill_buf() {
            Ok(b) => b,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(()); // EOF
        }
        let room = cap - buf.len();
        if let Some(pos) = available.iter().take(room).position(|&b| b == b'\n') {
            buf.extend_from_slice(&available[..=pos]);
            r.consume(pos + 1);
            return Ok(());
        }
        let n = available.len().min(room);
        buf.extend_from_slice(&available[..n]);
        r.consume(n);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trip() {
        let line = "{\"op\":\"submit\",\"id\":\"s1\",\"cell\":4,\"link\":\"wired\",\
                    \"train\":\"short\",\"tool\":\"train\",\"reps\":64,\"seed\":18446744073709551615}";
        let req = Request::parse(line).unwrap();
        assert_eq!(
            req,
            Request::Submit(SubmitRequest {
                id: "s1".to_string(),
                cell: 4,
                link: "wired".to_string(),
                train: "short".to_string(),
                tool: "train".to_string(),
                reps: 64,
                seed: u64::MAX, // u64 seeds round-trip exactly (raw text, not f64)
            })
        );
    }

    #[test]
    fn simple_ops_parse() {
        assert_eq!(
            Request::parse("{\"op\":\"poll\",\"id\":\"x\"}").unwrap(),
            Request::Poll {
                id: "x".to_string()
            }
        );
        assert_eq!(
            Request::parse(" {\"op\":\"drain\"} ").unwrap(),
            Request::Drain
        );
        assert_eq!(
            Request::parse("{\"op\":\"metrics\"}").unwrap(),
            Request::Metrics
        );
    }

    #[test]
    fn typed_errors() {
        let code = |line: &str| Request::parse(line).unwrap_err().code();
        assert_eq!(code(""), "malformed_request");
        assert_eq!(code("{\"op\":\"submit\",\"id\":\"s"), "malformed_request"); // truncated
        assert_eq!(code("{\"op\":\"fly\"}"), "unknown_op");
        assert_eq!(code("{\"op\":\"poll\"}"), "bad_field");
        assert_eq!(code("{\"op\":\"poll\",\"id\":7}"), "bad_field");
        assert_eq!(code("[1,2]"), "malformed_request");
        assert_eq!(code("{\"op\":\"submit\",\"id\":\"a\",\"cell\":0,\"link\":\"wired\",\"train\":\"short\",\"tool\":\"train\",\"reps\":0,\"seed\":1}"), "bad_field");
        assert_eq!(
            code("{\"op\":\"poll\",\"id\":\"x\"} trailing"),
            "malformed_request"
        );
        assert_eq!(
            code("{\"op\":\"poll\",\"id\":\"x\",\"extra\":{\"nested\":1}}"),
            "malformed_request"
        );
    }

    #[test]
    fn string_escapes_and_unicode() {
        let req = Request::parse("{\"op\":\"poll\",\"id\":\"a\\\"b\\u00e9ç\"}").unwrap();
        assert_eq!(
            req,
            Request::Poll {
                id: "a\"béç".to_string()
            }
        );
        assert_eq!(
            Request::parse("{\"op\":\"poll\",\"id\":\"\\ud800\"}")
                .unwrap_err()
                .code(),
            "malformed_request"
        );
    }

    #[test]
    fn error_responses_are_parseable_json() {
        for err in [
            WireError::Oversized { len: 99999 },
            WireError::Malformed {
                detail: "x\"y".to_string(),
            },
            WireError::Draining,
            WireError::DuplicateId {
                id: "s\n1".to_string(),
            },
        ] {
            let line = err.to_json();
            assert!(line.starts_with("{\"ok\":false,\"error\":\""), "{line}");
            // Our own parser accepts every error line we emit.
            parse_object(&line).unwrap();
        }
    }

    #[test]
    fn read_frame_caps_and_resyncs() {
        use std::io::BufReader;
        let mut payload = vec![b'x'; MAX_FRAME * 2 + 10];
        payload.push(b'\n');
        payload.extend_from_slice(b"{\"op\":\"drain\"}\n");
        let mut r = BufReader::new(&payload[..]);
        match read_frame(&mut r).unwrap().unwrap() {
            Err(WireError::Oversized { len }) => assert!(len > MAX_FRAME),
            other => panic!("expected oversized, got {other:?}"),
        }
        // Resynchronised: the next frame parses normally.
        let line = read_frame(&mut r).unwrap().unwrap().unwrap();
        assert_eq!(Request::parse(&line).unwrap(), Request::Drain);
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn read_frame_handles_binary_garbage() {
        use std::io::BufReader;
        let payload = b"\xff\xfe\x00garbage\n{\"op\":\"metrics\"}\n";
        let mut r = BufReader::new(&payload[..]);
        match read_frame(&mut r).unwrap().unwrap() {
            Err(e) => assert_eq!(e.code(), "malformed_request"),
            Ok(l) => panic!("garbage accepted: {l:?}"),
        }
        let line = read_frame(&mut r).unwrap().unwrap().unwrap();
        assert_eq!(Request::parse(&line).unwrap(), Request::Metrics);
    }
}
