//! Live service counters and the `/metrics`-style text exposition.
//!
//! Counters are plain atomics bumped on the hot paths; the latency
//! quantiles are P² estimators behind one mutex, only touched once per
//! completed session. [`Metrics::render`] emits one
//! `csmaprobe_<name> <value>` line per metric — flat text, no labels,
//! stable names — so a scraper (or the CI smoke job's `curl`) can
//! parse it with `awk`.

use crate::session::ManagerCounts;
use csmaprobe_bench::report::json_f64;
use csmaprobe_desim::executor;
use csmaprobe_stats::P2Quantile;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Process-lifetime service metrics. One instance per server, shared
/// across connection threads and session-completion hooks.
pub struct Metrics {
    started: Instant,
    /// TCP connections accepted.
    pub connections: AtomicU64,
    /// Wire requests parsed and dispatched (any op).
    pub requests: AtomicU64,
    /// Requests answered with a typed error.
    pub errors: AtomicU64,
    /// Replication chunks folded across all sessions.
    pub chunks: AtomicU64,
    /// Replications folded across all sessions.
    pub reps: AtomicU64,
    /// Session-table rows persisted.
    pub rows_persisted: AtomicU64,
    latency: Mutex<Latency>,
}

struct Latency {
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
    n: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            reps: AtomicU64::new(0),
            rows_persisted: AtomicU64::new(0),
            latency: Mutex::new(Latency {
                p50: P2Quantile::new(0.5),
                p95: P2Quantile::new(0.95),
                p99: P2Quantile::new(0.99),
                n: 0,
            }),
        }
    }
}

impl Metrics {
    /// Record one session's submit→terminal latency.
    pub fn observe_session_latency(&self, seconds: f64) {
        let mut l = self.latency.lock().unwrap_or_else(|e| e.into_inner());
        l.p50.push(seconds);
        l.p95.push(seconds);
        l.p99.push(seconds);
        l.n += 1;
    }

    /// The flat-text exposition. `counts` comes from the session
    /// manager so the snapshot is taken at render time.
    pub fn render(&self, counts: ManagerCounts) -> String {
        let (p50, p95, p99, n) = {
            let l = self.latency.lock().unwrap_or_else(|e| e.into_inner());
            (l.p50.value(), l.p95.value(), l.p99.value(), l.n)
        };
        let mut out = String::with_capacity(1024);
        let mut put = |name: &str, value: String| {
            out.push_str("csmaprobe_");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value);
            out.push('\n');
        };
        put(
            "uptime_seconds",
            format!("{:.3}", self.started.elapsed().as_secs_f64()),
        );
        put("sessions_accepted", counts.accepted.to_string());
        put("sessions_done", counts.done.to_string());
        put("sessions_cancelled", counts.cancelled.to_string());
        put("sessions_in_flight", counts.in_flight.to_string());
        put(
            "connections_total",
            self.connections.load(Ordering::Relaxed).to_string(),
        );
        put(
            "requests_total",
            self.requests.load(Ordering::Relaxed).to_string(),
        );
        put(
            "request_errors_total",
            self.errors.load(Ordering::Relaxed).to_string(),
        );
        put(
            "chunks_total",
            self.chunks.load(Ordering::Relaxed).to_string(),
        );
        put("reps_total", self.reps.load(Ordering::Relaxed).to_string());
        put(
            "rows_persisted_total",
            self.rows_persisted.load(Ordering::Relaxed).to_string(),
        );
        put("executor_workers", executor::worker_limit().to_string());
        put("executor_active", executor::concurrency().to_string());
        put("session_latency_count", n.to_string());
        put("session_latency_p50_seconds", json_f64(p50));
        put("session_latency_p95_seconds", json_f64(p95));
        put("session_latency_p99_seconds", json_f64(p99));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_line_per_metric() {
        let m = Metrics::default();
        m.connections.fetch_add(3, Ordering::Relaxed);
        m.observe_session_latency(0.5);
        m.observe_session_latency(1.5);
        let text = m.render(ManagerCounts {
            accepted: 2,
            done: 1,
            cancelled: 1,
            in_flight: 0,
        });
        for line in text.lines() {
            assert!(line.starts_with("csmaprobe_"), "bad line: {line}");
            assert_eq!(line.split(' ').count(), 2, "bad line: {line}");
        }
        assert!(text.contains("csmaprobe_sessions_accepted 2\n"));
        assert!(text.contains("csmaprobe_connections_total 3\n"));
        assert!(text.contains("csmaprobe_session_latency_count 2\n"));
    }
}
