//! Per-session state and the session manager that schedules sessions
//! through the work-stealing executor.
//!
//! A session is one probe campaign: `reps` independent runs of one
//! tool against one link, replicated on the engine-wide
//! [`CHUNK`] grid. The manager owns a small pool of **driver
//! threads**; each driver takes one queued session at a time and
//! submits its chunks to [`executor::submit`], so chunk execution is
//! work-stolen across *all* live sessions (and any concurrent batch
//! work) while a session's own chunk accumulators always merge in
//! ascending chunk order into its shared state — which is what [`poll`]
//! reads mid-flight and what makes the final accumulator bit-identical
//! to the one-shot [`run_reduce`] reference ([`one_shot`]).
//!
//! [`poll`]: SessionManager::poll

use crate::wire::{json_f64, json_str, SubmitRequest, WireError};
use csmaprobe_bench::grid::{parse_links, parse_tools, parse_trains, LinkPoint, TrainPoint};
use csmaprobe_bench::grid::{GridTarget, TRAIN_TOOL_RATE_BPS};
use csmaprobe_bench::scenarios::FRAME;
use csmaprobe_desim::executor;
use csmaprobe_desim::replicate::{run_reduce, CHUNK};
use csmaprobe_desim::rng::derive_seed;
use csmaprobe_probe::tool::{ToolKind, ToolProbe};
use csmaprobe_stats::{Accumulate, OnlineStats, P2Quantile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A fully resolved session specification — the pure input its final
/// estimate is a function of.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Client-chosen id (the session table's row key).
    pub id: String,
    /// Client-chosen table cell index (the table's sort key).
    pub cell: u64,
    /// Link-axis point.
    pub link: &'static LinkPoint,
    /// Train-shape axis point.
    pub train: &'static TrainPoint,
    /// Tool family.
    pub tool: ToolKind,
    /// Independent tool runs.
    pub reps: usize,
    /// Master seed; replication `i` runs under `derive_seed(seed, i)`.
    pub seed: u64,
}

impl SessionSpec {
    /// Bind a wire submit's axis names to catalog (or inline-spec)
    /// points.
    pub fn resolve(req: &SubmitRequest) -> Result<SessionSpec, WireError> {
        let links = parse_links(&req.link).map_err(|e| WireError::BadField {
            field: "link",
            detail: e,
        })?;
        let trains = parse_trains(&req.train).map_err(|e| WireError::BadField {
            field: "train",
            detail: e,
        })?;
        let tools = parse_tools(&req.tool).map_err(|e| WireError::BadField {
            field: "tool",
            detail: e,
        })?;
        let one = |field: &'static str, n: usize| {
            if n == 1 {
                Ok(())
            } else {
                Err(WireError::BadField {
                    field,
                    detail: format!("expected exactly one axis point, got {n}"),
                })
            }
        };
        one("link", links.len())?;
        one("train", trains.len())?;
        one("tool", tools.len())?;
        Ok(SessionSpec {
            id: req.id.clone(),
            cell: req.cell,
            link: links[0],
            train: trains[0],
            tool: tools[0],
            reps: req.reps,
            seed: req.seed,
        })
    }

    /// The tool bound to this spec's train shape — same constants as
    /// the grid runner's cells, so a session is comparable to a grid
    /// row.
    pub fn tool_probe(&self) -> ToolProbe {
        ToolProbe::new(self.tool, self.train.n, FRAME, TRAIN_TOOL_RATE_BPS)
    }
}

/// The streaming per-session accumulator: across-replication estimate
/// statistics (exact), P² quantiles of the estimate distribution
/// (approximate but deterministically mergeable), and the failed-run
/// count. Merging a fresh accumulator is the bitwise identity, so the
/// ascending chunk-merge chain reproduces [`run_reduce`]'s result
/// exactly.
#[derive(Debug, Clone)]
pub struct SessionAcc {
    /// Finite estimates, bits/s.
    pub est: OnlineStats,
    /// Median estimate (P²).
    pub p50: P2Quantile,
    /// 95th-percentile estimate (P²).
    pub p95: P2Quantile,
    /// Tool runs that produced no estimate.
    pub failed: usize,
}

impl Default for SessionAcc {
    fn default() -> Self {
        SessionAcc {
            est: OnlineStats::new(),
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            failed: 0,
        }
    }
}

impl SessionAcc {
    /// Fold one tool-run estimate.
    pub fn observe(&mut self, est_bps: f64) {
        if est_bps.is_finite() {
            self.est.push(est_bps);
            self.p50.push(est_bps);
            self.p95.push(est_bps);
        } else {
            self.failed += 1;
        }
    }
}

impl Accumulate for SessionAcc {
    fn merge(&mut self, other: Self) {
        self.est.merge(&other.est);
        self.p50.merge(other.p50);
        self.p95.merge(other.p95);
        self.failed += other.failed;
    }
}

/// The one-shot batch reference: the session's final accumulator,
/// computed through [`run_reduce`] exactly as a non-resident caller
/// would. The resident path must (and does) reproduce this bitwise.
pub fn one_shot(spec: &SessionSpec) -> SessionAcc {
    let target = spec.link.build();
    let probe = spec.tool_probe();
    run_reduce(
        spec.reps,
        spec.seed,
        |_i, seed, acc: &mut SessionAcc| acc.observe(probe.estimate_once(&target, seed)),
        SessionAcc::default,
        Accumulate::merge,
    )
}

/// Serialize a finished session as one [`csmaprobe_bench::report::RowSink`]
/// row line (`"cell"` and `"key"` first, as the sink requires). Pure
/// function of `(spec, acc)` — the resident server and the one-shot
/// batch path share it, which is what makes their finalized tables
/// byte-comparable.
pub fn row_json(spec: &SessionSpec, acc: &SessionAcc) -> String {
    format!(
        "{{\"cell\":{},\"key\":{},\"link\":{},\"train\":{},\"tool\":{},\"n\":{},\"reps\":{},\
         \"seed\":\"{:016x}\",\"failed\":{},\"mean_bps\":{},\"sd_bps\":{},\"ci95_bps\":{},\
         \"p50_bps\":{},\"p95_bps\":{}}}",
        spec.cell,
        json_str(&spec.id),
        json_str(spec.link.name),
        json_str(spec.train.name),
        json_str(spec.tool.name()),
        spec.train.n,
        spec.reps,
        spec.seed,
        acc.failed,
        json_f64(acc.est.mean()),
        json_f64(acc.est.std_dev()),
        json_f64(acc.est.ci_half_width(0.95)),
        json_f64(acc.p50.value()),
        json_f64(acc.p95.value()),
    )
}

/// Where a session is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accepted, waiting for a driver.
    Queued,
    /// A driver is replicating its chunks.
    Running,
    /// All replications folded; the estimate is final.
    Done,
    /// Cancelled before completion; partial state retained, no row
    /// persisted.
    Cancelled,
}

impl Phase {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Cancelled => "cancelled",
        }
    }

    /// Finished (terminal)?
    pub fn terminal(self) -> bool {
        matches!(self, Phase::Done | Phase::Cancelled)
    }
}

/// Mutable session progress, read by `poll` mid-flight.
#[derive(Debug)]
struct Progress {
    phase: Phase,
    reps_done: usize,
    acc: SessionAcc,
    submitted: Instant,
    finished: Option<Instant>,
}

/// One accepted session.
pub struct Session {
    spec: SessionSpec,
    target: GridTarget,
    cancel: AtomicBool,
    progress: Mutex<Progress>,
}

impl Session {
    /// The resolved spec.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// A consistent snapshot for `poll` responses and tests.
    pub fn snapshot(&self) -> SessionSnapshot {
        let p = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        SessionSnapshot {
            id: self.spec.id.clone(),
            phase: p.phase,
            reps: self.spec.reps,
            reps_done: p.reps_done,
            acc: p.acc.clone(),
            elapsed_s: p
                .finished
                .map(|t| t.duration_since(p.submitted))
                .unwrap_or_else(|| p.submitted.elapsed())
                .as_secs_f64(),
        }
    }
}

/// What `poll` sees: phase, progress and the (possibly partial)
/// estimate statistics.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// Session id.
    pub id: String,
    /// Life-cycle phase.
    pub phase: Phase,
    /// Replication budget.
    pub reps: usize,
    /// Replications folded so far (chunk-granular).
    pub reps_done: usize,
    /// The accumulator as of the last merged chunk.
    pub acc: SessionAcc,
    /// Seconds since submission (to completion once terminal).
    pub elapsed_s: f64,
}

impl SessionSnapshot {
    /// The `{"ok":true,…}` poll response line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ok\":true,\"op\":\"poll\",\"id\":{},\"state\":{},\"reps\":{},\"reps_done\":{},\
             \"failed\":{},\"mean_bps\":{},\"sd_bps\":{},\"ci95_bps\":{},\"p50_bps\":{},\
             \"p95_bps\":{},\"elapsed_s\":{}}}",
            json_str(&self.id),
            json_str(self.phase.name()),
            self.reps,
            self.reps_done,
            self.acc.failed,
            json_f64(self.acc.est.mean()),
            json_f64(self.acc.est.std_dev()),
            json_f64(self.acc.est.ci_half_width(0.95)),
            json_f64(self.acc.p50.value()),
            json_f64(self.acc.p95.value()),
            json_f64(self.elapsed_s),
        )
    }
}

/// Counts the manager exposes (and the server's drain self-check
/// audits).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerCounts {
    /// Sessions accepted (submit acked).
    pub accepted: usize,
    /// Sessions completed with a final estimate.
    pub done: usize,
    /// Sessions cancelled before completion.
    pub cancelled: usize,
    /// Accepted sessions not yet terminal.
    pub in_flight: usize,
}

struct Table {
    by_id: BTreeMap<String, Arc<Session>>,
    cells: BTreeSet<u64>,
    queue: VecDeque<Arc<Session>>,
    counts: ManagerCounts,
    accepting: bool,
    shutdown: bool,
}

/// Completion hook: called once per session that reaches
/// [`Phase::Done`], from the driver thread, after the final chunk
/// merged — the server's persistence callback.
pub type OnDone = Box<dyn Fn(&Session) + Send + Sync>;

struct Inner {
    table: Mutex<Table>,
    /// Work available (or shutdown) — drivers wait here.
    work: Condvar,
    /// A session reached a terminal phase — drain waits here.
    settled: Condvar,
    /// The [`OnDone`] persistence hook, if any.
    on_done: Option<OnDone>,
}

/// The session manager: accepts sessions, drives them through the
/// executor on a bounded driver pool, and tracks life-cycle counts.
pub struct SessionManager {
    inner: Arc<Inner>,
    drivers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SessionManager {
    /// A manager with `drivers` driver threads (floored at 1) and an
    /// optional completion hook (the server's persistence callback).
    pub fn new(drivers: usize, on_done: Option<OnDone>) -> Self {
        let inner = Arc::new(Inner {
            table: Mutex::new(Table {
                by_id: BTreeMap::new(),
                cells: BTreeSet::new(),
                queue: VecDeque::new(),
                counts: ManagerCounts::default(),
                accepting: true,
                shutdown: false,
            }),
            work: Condvar::new(),
            settled: Condvar::new(),
            on_done,
        });
        let handles = (0..drivers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || driver_loop(&inner))
            })
            .collect();
        SessionManager {
            inner,
            drivers: Mutex::new(handles),
        }
    }

    /// Accept a session, or refuse it with a typed error (duplicate
    /// id/cell, draining).
    pub fn submit(&self, spec: SessionSpec) -> Result<(), WireError> {
        let session = Arc::new(Session {
            target: spec.link.build(),
            cancel: AtomicBool::new(false),
            progress: Mutex::new(Progress {
                phase: Phase::Queued,
                reps_done: 0,
                acc: SessionAcc::default(),
                submitted: Instant::now(),
                finished: None,
            }),
            spec,
        });
        let mut t = self.lock_table();
        if !t.accepting {
            return Err(WireError::Draining);
        }
        if t.by_id.contains_key(&session.spec.id) {
            return Err(WireError::DuplicateId {
                id: session.spec.id.clone(),
            });
        }
        if !t.cells.insert(session.spec.cell) {
            return Err(WireError::DuplicateCell {
                cell: session.spec.cell,
            });
        }
        t.by_id
            .insert(session.spec.id.clone(), Arc::clone(&session));
        t.queue.push_back(session);
        t.counts.accepted += 1;
        t.counts.in_flight += 1;
        drop(t);
        self.inner.work.notify_one();
        Ok(())
    }

    /// Snapshot a session's progress.
    pub fn poll(&self, id: &str) -> Result<SessionSnapshot, WireError> {
        let t = self.lock_table();
        match t.by_id.get(id) {
            Some(s) => Ok(s.snapshot()),
            None => Err(WireError::UnknownId { id: id.to_string() }),
        }
    }

    /// Request cancellation of a not-yet-complete session. The
    /// session settles as [`Phase::Cancelled`] once its driver
    /// observes the flag (a queued session settles without running).
    pub fn cancel(&self, id: &str) -> Result<(), WireError> {
        let t = self.lock_table();
        let Some(s) = t.by_id.get(id) else {
            return Err(WireError::UnknownId { id: id.to_string() });
        };
        let p = s.progress.lock().unwrap_or_else(|e| e.into_inner());
        if p.phase.terminal() {
            return Err(WireError::AlreadyComplete { id: id.to_string() });
        }
        s.cancel.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Block until every accepted session is terminal.
    pub fn drain(&self) {
        let mut t = self.lock_table();
        while t.counts.in_flight > 0 {
            t = self
                .inner
                .settled
                .wait(t)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Refuse new sessions from now on (`submit` → `draining`).
    pub fn close_submissions(&self) {
        self.lock_table().accepting = false;
    }

    /// Current life-cycle counts.
    pub fn counts(&self) -> ManagerCounts {
        self.lock_table().counts
    }

    /// Every accepted session, in id order (the server's shutdown
    /// audit walks this).
    pub fn sessions(&self) -> Vec<Arc<Session>> {
        self.lock_table().by_id.values().cloned().collect()
    }

    /// Close submissions, drain, and join the driver pool. The
    /// manager is unusable afterwards; counts remain readable.
    pub fn shutdown(&self) {
        self.close_submissions();
        self.drain();
        {
            let mut t = self.lock_table();
            t.shutdown = true;
        }
        self.inner.work.notify_all();
        let handles: Vec<_> = {
            let mut d = self.drivers.lock().unwrap_or_else(|e| e.into_inner());
            d.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }

    fn lock_table(&self) -> std::sync::MutexGuard<'_, Table> {
        self.inner.table.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        // Don't leave driver threads blocked forever if the owner
        // forgot to shut down; sessions still queued are abandoned.
        {
            let mut t = self.lock_table();
            t.accepting = false;
            t.shutdown = true;
        }
        self.inner.work.notify_all();
        let handles: Vec<_> = {
            let mut d = self.drivers.lock().unwrap_or_else(|e| e.into_inner());
            d.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Driver thread: take one queued session at a time and run it to a
/// terminal phase.
fn driver_loop(inner: &Inner) {
    loop {
        let session = {
            let mut t = inner.table.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(s) = t.queue.pop_front() {
                    break s;
                }
                if t.shutdown {
                    return;
                }
                t = inner.work.wait(t).unwrap_or_else(|e| e.into_inner());
            }
        };
        let done = drive(&session);
        if done {
            if let Some(hook) = &inner.on_done {
                hook(&session);
            }
        }
        {
            let mut t = inner.table.lock().unwrap_or_else(|e| e.into_inner());
            t.counts.in_flight -= 1;
            if done {
                t.counts.done += 1;
            } else {
                t.counts.cancelled += 1;
            }
        }
        inner.settled.notify_all();
    }
}

/// Replicate one session's chunks through the executor. Returns
/// whether the session completed (vs. was cancelled).
///
/// Bit-identity with [`one_shot`]: the chunk grid is the engine-wide
/// [`CHUNK`] grid over `0..reps`, each chunk folds its replications in
/// ascending index order (via [`ToolProbe::estimate_batch`], whose
/// contract is element-wise equality with `estimate_once`), and
/// [`executor::submit`] hands chunk outputs to `consume` in ascending
/// chunk order — the same merge tree [`run_reduce`] builds, starting
/// from an identity accumulator whose merge is bitwise-absorbing.
fn drive(session: &Session) -> bool {
    {
        let mut p = session.progress.lock().unwrap_or_else(|e| e.into_inner());
        if session.cancel.load(Ordering::SeqCst) {
            p.phase = Phase::Cancelled;
            p.finished = Some(Instant::now());
            return false;
        }
        p.phase = Phase::Running;
    }
    let spec = &session.spec;
    let probe = spec.tool_probe();
    let reps = spec.reps;
    let chunks = reps.div_ceil(CHUNK);
    executor::submit(
        chunks,
        usize::MAX,
        |c| {
            // A cancelled session's remaining chunks become cheap
            // no-ops; the partial prefix already merged stays valid.
            if session.cancel.load(Ordering::SeqCst) {
                return None;
            }
            let lo = c * CHUNK;
            let hi = ((c + 1) * CHUNK).min(reps);
            let seeds: Vec<u64> = (lo..hi).map(|i| derive_seed(spec.seed, i as u64)).collect();
            let mut acc = SessionAcc::default();
            for est in probe.estimate_batch(&session.target, &seeds) {
                acc.observe(est);
            }
            Some((hi - lo, acc))
        },
        |out| {
            if let Some((n, acc)) = out {
                let mut p = session.progress.lock().unwrap_or_else(|e| e.into_inner());
                p.acc.merge(acc);
                p.reps_done += n;
            }
        },
    );
    let mut p = session.progress.lock().unwrap_or_else(|e| e.into_inner());
    p.finished = Some(Instant::now());
    // A cancel raced with the final chunks: the session is complete
    // iff every replication actually folded.
    p.phase = if p.reps_done == reps {
        Phase::Done
    } else {
        Phase::Cancelled
    };
    p.phase == Phase::Done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::SubmitRequest;

    fn spec(i: u64, reps: usize) -> SessionSpec {
        SessionSpec::resolve(&SubmitRequest {
            id: format!("s{i}"),
            cell: i,
            link: "wired".to_string(),
            train: "short".to_string(),
            tool: "train".to_string(),
            reps,
            seed: 1000 + i,
        })
        .unwrap()
    }

    #[test]
    fn resolve_rejects_bad_axes() {
        let mut req = SubmitRequest {
            id: "x".to_string(),
            cell: 0,
            link: "wired".to_string(),
            train: "short".to_string(),
            tool: "train".to_string(),
            reps: 1,
            seed: 0,
        };
        req.link = "no_such_link".to_string();
        assert_eq!(SessionSpec::resolve(&req).unwrap_err().code(), "bad_field");
        req.link = "wired,wlan_mid".to_string(); // two points: not a session
        assert_eq!(SessionSpec::resolve(&req).unwrap_err().code(), "bad_field");
        req.link = "wired".to_string();
        req.tool = "pathload".to_string();
        assert_eq!(SessionSpec::resolve(&req).unwrap_err().code(), "bad_field");
    }

    #[test]
    fn inline_link_specs_resolve() {
        let req = SubmitRequest {
            id: "x".to_string(),
            cell: 0,
            link: "wired:capacity=8e6,cross=2e6".to_string(),
            train: "n=7".to_string(),
            tool: "train".to_string(),
            reps: 2,
            seed: 3,
        };
        let spec = SessionSpec::resolve(&req).unwrap();
        assert_eq!(spec.train.n, 7);
        assert!(!spec.link.is_wlan());
    }

    #[test]
    fn manager_runs_sessions_bit_identical_to_one_shot() {
        let mgr = SessionManager::new(2, None);
        let specs: Vec<SessionSpec> = (0..6).map(|i| spec(i, 40)).collect();
        for s in &specs {
            mgr.submit(s.clone()).unwrap();
        }
        mgr.drain();
        for s in &specs {
            let snap = mgr.poll(&s.id).unwrap();
            assert_eq!(snap.phase, Phase::Done);
            assert_eq!(snap.reps_done, s.reps);
            let reference = one_shot(s);
            assert_eq!(snap.acc.est.count(), reference.est.count());
            assert_eq!(
                snap.acc.est.mean().to_bits(),
                reference.est.mean().to_bits()
            );
            assert_eq!(
                snap.acc.p50.value().to_bits(),
                reference.p50.value().to_bits()
            );
            assert_eq!(
                snap.acc.p95.value().to_bits(),
                reference.p95.value().to_bits()
            );
            assert_eq!(snap.acc.failed, reference.failed);
        }
        let counts = mgr.counts();
        assert_eq!(counts.accepted, 6);
        assert_eq!(counts.done, 6);
        assert_eq!(counts.in_flight, 0);
        mgr.shutdown();
    }

    #[test]
    fn duplicate_ids_and_cells_are_refused() {
        let mgr = SessionManager::new(1, None);
        mgr.submit(spec(1, 1)).unwrap();
        assert_eq!(mgr.submit(spec(1, 1)).unwrap_err().code(), "duplicate_id");
        let mut other = spec(2, 1);
        other.cell = 1; // same cell, different id
        assert_eq!(mgr.submit(other).unwrap_err().code(), "duplicate_cell");
        mgr.shutdown();
    }

    #[test]
    fn cancel_semantics() {
        let mgr = SessionManager::new(1, None);
        assert_eq!(mgr.cancel("nope").unwrap_err().code(), "unknown_id");
        mgr.submit(spec(7, 24)).unwrap();
        // Cancel may land before or after completion depending on
        // timing; both outcomes are typed.
        match mgr.cancel("s7") {
            Ok(()) => {}
            Err(e) => assert_eq!(e.code(), "already_complete"),
        }
        mgr.drain();
        let snap = mgr.poll("s7").unwrap();
        assert!(snap.phase.terminal());
        // Cancel after terminal is always already_complete.
        assert_eq!(mgr.cancel("s7").unwrap_err().code(), "already_complete");
        let c = mgr.counts();
        assert_eq!(c.done + c.cancelled, 1);
        mgr.shutdown();
    }

    #[test]
    fn draining_refuses_new_sessions() {
        let mgr = SessionManager::new(1, None);
        mgr.close_submissions();
        assert_eq!(mgr.submit(spec(9, 1)).unwrap_err().code(), "draining");
        mgr.shutdown();
    }

    #[test]
    fn on_done_hook_fires_once_per_completed_session() {
        use std::sync::atomic::AtomicUsize;
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        let mgr = SessionManager::new(
            2,
            Some(Box::new(move |_s| {
                fired2.fetch_add(1, Ordering::SeqCst);
            })),
        );
        for i in 0..4 {
            mgr.submit(spec(20 + i, 8)).unwrap();
        }
        mgr.shutdown();
        assert_eq!(fired.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn row_json_is_rowsink_compatible() {
        let s = spec(3, 8);
        let acc = one_shot(&s);
        let line = row_json(&s, &acc);
        assert_eq!(csmaprobe_bench::report::row_key(&line), Some("s3"));
        assert_eq!(csmaprobe_bench::report::row_cell(&line), Some(3));
        assert!(line.contains("\"mean_bps\":"));
    }
}
