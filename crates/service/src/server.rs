//! The TCP front end: accept loop, per-connection protocol dispatch,
//! the `/metrics` text scrape, and the graceful-drain shutdown path.
//!
//! Shutdown contract (what the `service-smoke` CI job pins): on
//! SIGTERM (or SIGINT), the server stops accepting connections and
//! sessions, drains every *accepted* session to a terminal phase,
//! merges the shard files into the finalized session table, audits
//! `accepted == done + cancelled` and `persisted == done`, prints a
//! one-line summary, and exits 0 — so every session a client got an
//! `{"ok":true}` submit ack for is either complete (one table row) or
//! was explicitly cancelled. Connection threads still blocked on reads
//! are abandoned at exit; shard rows are written line-at-a-time to
//! unbuffered files, so no acknowledged state is lost.

use crate::metrics::Metrics;
use crate::session::{row_json, Session, SessionManager, SessionSpec};
use crate::wire::{json_str, read_frame, Request, WireError};
use csmaprobe_bench::report::RowSink;
use csmaprobe_desim::replicate::CHUNK;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// POSIX signal plumbing. The only unsafe in the crate: registering a
/// handler that stores to a static atomic (async-signal-safe). Gated
/// to unix; elsewhere shutdown is reachable only via
/// [`request_shutdown`].
#[cfg(unix)]
#[allow(unsafe_code)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" {
        // Provided by libc, which std already links. `sighandler_t`
        // is a function pointer — pointer-sized on every supported
        // target, so `usize` matches the ABI.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        // SAFETY: `signal` is the libc registration call; the handler
        // only stores to a static atomic, which is async-signal-safe.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::AtomicBool;

    pub static TERM: AtomicBool = AtomicBool::new(false);

    pub fn install() {}
}

/// Trip the shutdown flag from inside the process — what SIGTERM does,
/// callable from tests (and the only path on non-unix).
pub fn request_shutdown() {
    sig::TERM.store(true, Ordering::SeqCst);
}

/// Server configuration (the `csmaprobe serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see `port_file`).
    pub addr: String,
    /// Directory for shard files and the finalized table.
    pub out_dir: PathBuf,
    /// Session-table shard count (rows land in shard `cell % shards`).
    pub shards: usize,
    /// Finalized table path (default `<out_dir>/session_table.jsonl`).
    pub table: Option<PathBuf>,
    /// If set, the actual bound `host:port` is written here once
    /// listening — how scripts find a port-0 server.
    pub port_file: Option<PathBuf>,
    /// Session-driver threads (concurrent sessions in the executor).
    pub drivers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            out_dir: PathBuf::from("serve-out"),
            shards: 4,
            table: None,
            port_file: None,
            drivers: 2,
        }
    }
}

/// What a drained server reports back to `main`.
#[derive(Debug)]
pub struct ServeSummary {
    /// Sessions accepted over the server's lifetime.
    pub accepted: usize,
    /// Sessions that completed with a final estimate.
    pub done: usize,
    /// Sessions cancelled before completion.
    pub cancelled: usize,
    /// Session-table rows persisted.
    pub persisted: u64,
    /// Where the finalized table was written.
    pub table: PathBuf,
    /// Did the drain audit hold (`accepted == done + cancelled` and
    /// `persisted == done`)?
    pub consistent: bool,
}

struct Shared {
    mgr: SessionManager,
    metrics: Arc<Metrics>,
    sinks: Arc<Mutex<Vec<RowSink>>>,
    shards: usize,
}

/// Run the server until SIGTERM/SIGINT (or [`request_shutdown`]),
/// then drain and finalize. Returns the drain summary; the caller
/// maps `consistent` to the exit code.
pub fn serve(cfg: ServeConfig) -> std::io::Result<ServeSummary> {
    sig::install();
    std::fs::create_dir_all(&cfg.out_dir)?;
    let shards = cfg.shards.max(1);
    let shard_path = |i: usize| cfg.out_dir.join(format!("sessions-shard-{i:02}.jsonl"));
    let mut sink_vec = Vec::with_capacity(shards);
    for i in 0..shards {
        let p = shard_path(i);
        // Resume keeps rows from a previous (killed) server run, which
        // is what makes accepted-then-persisted sessions survive a
        // crash: their ids are refused as duplicates on resubmit.
        let sink = if p.exists() {
            RowSink::resume(&p)?
        } else {
            RowSink::create(&p)?
        };
        sink_vec.push(sink);
    }
    let sinks = Arc::new(Mutex::new(sink_vec));
    let metrics = Arc::new(Metrics::default());

    let hook: Box<dyn Fn(&Session) + Send + Sync> = {
        let sinks = Arc::clone(&sinks);
        let metrics = Arc::clone(&metrics);
        Box::new(move |s: &Session| {
            let snap = s.snapshot();
            let line = row_json(s.spec(), &snap.acc);
            let shard = (s.spec().cell % shards as u64) as usize;
            let mut sinks = sinks.lock().unwrap_or_else(|e| e.into_inner());
            if !sinks[shard].contains(&s.spec().id) {
                match sinks[shard].append(&line) {
                    Ok(()) => {
                        metrics.rows_persisted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => eprintln!(
                        "csmaprobe serve: failed to persist session {:?}: {e}",
                        s.spec().id
                    ),
                }
            }
            metrics
                .reps
                .fetch_add(snap.reps_done as u64, Ordering::Relaxed);
            metrics
                .chunks
                .fetch_add(snap.reps_done.div_ceil(CHUNK) as u64, Ordering::Relaxed);
            metrics.observe_session_latency(snap.elapsed_s);
        })
    };
    let shared = Arc::new(Shared {
        mgr: SessionManager::new(cfg.drivers, Some(hook)),
        metrics,
        sinks,
        shards,
    });

    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    if let Some(pf) = &cfg.port_file {
        std::fs::write(pf, format!("{local}\n"))?;
    }
    eprintln!("csmaprobe serve: listening on {local}");

    while !sig::TERM.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || handle_conn(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    drop(listener);

    // Graceful drain: no new sessions, run every accepted one to a
    // terminal phase (completion hooks persist the rows), then merge
    // the shards into the finalized table.
    eprintln!("csmaprobe serve: draining");
    shared.mgr.shutdown();
    let counts = shared.mgr.counts();
    let shard_paths: Vec<PathBuf> = (0..shards).map(shard_path).collect();
    let table = RowSink::finalize_merged(&shard_paths)?;
    let table_path = cfg
        .table
        .clone()
        .unwrap_or_else(|| cfg.out_dir.join("session_table.jsonl"));
    std::fs::write(&table_path, &table)?;
    let persisted = shared.metrics.rows_persisted.load(Ordering::Relaxed);
    let resumed: usize = {
        let sinks = shared.sinks.lock().unwrap_or_else(|e| e.into_inner());
        sinks.iter().map(|s| s.len()).sum::<usize>()
    };
    // `persisted` counts this process's appends; `resumed` is the
    // total row count including rows inherited from a previous run.
    let consistent = counts.accepted == counts.done + counts.cancelled
        && persisted == counts.done as u64
        && resumed >= persisted as usize;
    println!(
        "drained: accepted={} done={} cancelled={} persisted={} table={}",
        counts.accepted,
        counts.done,
        counts.cancelled,
        persisted,
        table_path.display()
    );
    Ok(ServeSummary {
        accepted: counts.accepted,
        done: counts.done,
        cancelled: counts.cancelled,
        persisted,
        table: table_path,
        consistent,
    })
}

/// One client connection: NDJSON request/response, or a one-shot
/// HTTP-ish `/metrics` scrape if the first bytes are `GET `.
fn handle_conn(stream: TcpStream, shared: &Shared) {
    shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Sniff a metrics scrape without consuming protocol bytes.
    if let Ok(buf) = reader.fill_buf() {
        if buf.starts_with(b"GET ") {
            let body = shared.metrics.render(shared.mgr.counts());
            let mut w = BufWriter::new(write_half);
            let _ = write!(
                w,
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            );
            let _ = w.flush();
            return;
        }
    }
    let mut writer = BufWriter::new(write_half);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => return, // EOF or transport error
        };
        shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let response = match frame {
            Ok(line) => dispatch(&line, shared),
            Err(e) => Err(e),
        };
        let line = match response {
            Ok(line) => line,
            Err(e) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                e.to_json()
            }
        };
        if writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

/// Execute one parsed-or-parseable request line.
fn dispatch(line: &str, shared: &Shared) -> Result<String, WireError> {
    match Request::parse(line)? {
        Request::Submit(req) => {
            let spec = SessionSpec::resolve(&req)?;
            // A row persisted by a previous run of this server owns
            // its id forever — resubmitting it is a duplicate, which
            // is what makes a killed-and-restarted campaign resumable
            // without double-running sessions.
            {
                let sinks = shared.sinks.lock().unwrap_or_else(|e| e.into_inner());
                let shard = (spec.cell % shared.shards as u64) as usize;
                if sinks[shard].contains(&spec.id) {
                    return Err(WireError::DuplicateId { id: spec.id });
                }
            }
            let id = spec.id.clone();
            shared.mgr.submit(spec)?;
            Ok(format!(
                "{{\"ok\":true,\"op\":\"submit\",\"id\":{},\"state\":\"queued\"}}",
                json_str(&id)
            ))
        }
        Request::Poll { id } => Ok(shared.mgr.poll(&id)?.to_json()),
        Request::Cancel { id } => {
            shared.mgr.cancel(&id)?;
            Ok(format!(
                "{{\"ok\":true,\"op\":\"cancel\",\"id\":{}}}",
                json_str(&id)
            ))
        }
        Request::Drain => {
            shared.mgr.drain();
            let c = shared.mgr.counts();
            Ok(format!(
                "{{\"ok\":true,\"op\":\"drain\",\"accepted\":{},\"done\":{},\"cancelled\":{}}}",
                c.accepted, c.done, c.cancelled
            ))
        }
        Request::Metrics => Ok(format!(
            "{{\"ok\":true,\"op\":\"metrics\",\"text\":{}}}",
            json_str(&shared.metrics.render(shared.mgr.counts()))
        )),
    }
}
