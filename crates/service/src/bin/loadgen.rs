//! Load generator for `csmaprobe serve` — and the one-shot batch
//! reference the served results are byte-compared against.
//!
//! Client mode opens `--conns` concurrent connections, submits a
//! deterministic mix of `--sessions` sessions (see
//! [`csmaprobe_service::mix`]), polls them to completion, and reports
//! submit/poll/complete latency percentiles plus sustained
//! sessions/sec. `--out` writes the two cost-shaped trend metrics in
//! the same `{"id":…,"elapsed_s":…}` shape the figure runners emit, so
//! `bench_trend` ingests them unchanged.
//!
//! `--batch --table <path>` skips the server entirely: it computes the
//! *same* session mix through one-shot `run_reduce` and finalizes one
//! session table. The `service-smoke` CI job byte-compares that file
//! against the drained server's table — the end-to-end determinism
//! gate.

use csmaprobe_bench::report::RowSink;
use csmaprobe_service::mix::{session_request, session_specs, MixConfig};
use csmaprobe_service::session::{one_shot, row_json};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT | --port-file PATH] [--sessions N] [--conns C]\n\
         \x20              [--reps R] [--seed S] [--out FILE.json]\n\
         \x20      loadgen --batch --table FILE.jsonl [--sessions N] [--reps R] [--seed S]\n\
         \n\
         Client mode drives a running `csmaprobe serve`; batch mode writes the\n\
         equivalent one-shot session table for byte-comparison."
    );
    std::process::exit(2);
}

struct Args {
    addr: Option<String>,
    port_file: Option<PathBuf>,
    sessions: u64,
    conns: usize,
    reps: usize,
    seed: u64,
    out: Option<PathBuf>,
    batch: bool,
    table: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        port_file: None,
        sessions: 200,
        conns: 4,
        reps: 32,
        seed: 2009,
        out: None,
        batch: false,
        table: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("loadgen: {name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(val("--addr")),
            "--port-file" => args.port_file = Some(PathBuf::from(val("--port-file"))),
            "--sessions" => args.sessions = val("--sessions").parse().unwrap_or_else(|_| usage()),
            "--conns" => args.conns = val("--conns").parse().unwrap_or_else(|_| usage()),
            "--reps" => args.reps = val("--reps").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = Some(PathBuf::from(val("--out"))),
            "--batch" => args.batch = true,
            "--table" => args.table = Some(PathBuf::from(val("--table"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("loadgen: unknown flag {other:?}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mix = MixConfig {
        reps: args.reps,
        ..MixConfig::default()
    };
    if args.batch {
        let Some(table) = &args.table else {
            eprintln!("loadgen: --batch needs --table");
            usage();
        };
        run_batch(&mix, args.seed, args.sessions, table);
        return;
    }
    let addr = resolve_addr(&args);
    run_client(&args, &mix, &addr);
}

/// Batch reference: same mix, one-shot `run_reduce` per session, one
/// finalized table.
fn run_batch(mix: &MixConfig, seed: u64, sessions: u64, table: &PathBuf) {
    let specs = match session_specs(mix, seed, sessions) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadgen: bad mix: {e}");
            std::process::exit(1);
        }
    };
    let tmp = table.with_extension("rows.tmp");
    let mut sink = RowSink::create(&tmp).unwrap_or_else(|e| {
        eprintln!("loadgen: cannot create {}: {e}", tmp.display());
        std::process::exit(1);
    });
    let t0 = Instant::now();
    for spec in &specs {
        let acc = one_shot(spec);
        if let Err(e) = sink.append(&row_json(spec, &acc)) {
            eprintln!("loadgen: append failed: {e}");
            std::process::exit(1);
        }
    }
    let text = sink.finalize().unwrap_or_else(|e| {
        eprintln!("loadgen: finalize failed: {e}");
        std::process::exit(1);
    });
    std::fs::write(table, &text).unwrap_or_else(|e| {
        eprintln!("loadgen: cannot write {}: {e}", table.display());
        std::process::exit(1);
    });
    let _ = std::fs::remove_file(&tmp);
    eprintln!(
        "loadgen: batch reference: {} sessions in {:.2}s -> {}",
        specs.len(),
        t0.elapsed().as_secs_f64(),
        table.display()
    );
}

/// Find the server: explicit --addr, or poll --port-file until the
/// server writes its bound address (it binds port 0 in CI).
fn resolve_addr(args: &Args) -> String {
    if let Some(a) = &args.addr {
        return a.clone();
    }
    let Some(pf) = &args.port_file else {
        eprintln!("loadgen: need --addr or --port-file");
        usage();
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(pf) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        if Instant::now() > deadline {
            eprintln!("loadgen: timed out waiting for {}", pf.display());
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Latencies one connection worker records (seconds).
#[derive(Default)]
struct Lats {
    submit: Vec<f64>,
    poll: Vec<f64>,
    complete: Vec<f64>,
    cancelled: usize,
}

fn run_client(args: &Args, mix: &MixConfig, addr: &str) {
    let conns = args.conns.max(1);
    let t0 = Instant::now();
    let workers: Vec<std::thread::JoinHandle<Lats>> = (0..conns)
        .map(|w| {
            let addr = addr.to_string();
            let mix = mix.clone();
            let seed = args.seed;
            let sessions = args.sessions;
            let conns = conns as u64;
            std::thread::spawn(move || {
                drive_connection(&addr, &mix, seed, sessions, w as u64, conns)
            })
        })
        .collect();
    let mut all = Lats::default();
    for w in workers {
        match w.join() {
            Ok(l) => {
                all.submit.extend(l.submit);
                all.poll.extend(l.poll);
                all.complete.extend(l.complete);
                all.cancelled += l.cancelled;
            }
            Err(_) => {
                eprintln!("loadgen: a connection worker panicked");
                std::process::exit(1);
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let done = all.complete.len();
    let rate = done as f64 / wall.max(1e-9);
    let pct = |v: &mut Vec<f64>, p: f64| -> f64 {
        if v.is_empty() {
            return f64::NAN;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
        v[idx]
    };
    let (sub50, sub99) = (pct(&mut all.submit, 0.50), pct(&mut all.submit, 0.99));
    let (poll50, poll99) = (pct(&mut all.poll, 0.50), pct(&mut all.poll, 0.99));
    let (cmp50, cmp99) = (pct(&mut all.complete, 0.50), pct(&mut all.complete, 0.99));
    println!(
        "loadgen: {done} sessions done, {} cancelled, {wall:.2}s wall",
        all.cancelled
    );
    println!("loadgen: throughput {rate:.1} sessions/s");
    println!(
        "loadgen: submit latency p50 {:.6}s p99 {:.6}s",
        sub50, sub99
    );
    println!(
        "loadgen: poll   latency p50 {:.6}s p99 {:.6}s",
        poll50, poll99
    );
    println!(
        "loadgen: complete       p50 {:.6}s p99 {:.6}s",
        cmp50, cmp99
    );
    if let Some(out) = &args.out {
        // Cost-shaped (lower = better), in the figure-runner timing
        // shape `parse_figure_timings` scans for.
        let json = format!(
            "[\n  {{\"id\":\"service_session_cost_s\",\"elapsed_s\":{}}},\n  \
             {{\"id\":\"service_poll_p99_s\",\"elapsed_s\":{}}}\n]\n",
            csmaprobe_bench::report::json_f64(wall / done.max(1) as f64),
            csmaprobe_bench::report::json_f64(poll99),
        );
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("loadgen: cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    if done as u64 != args.sessions {
        eprintln!("loadgen: only {done}/{} sessions completed", args.sessions);
        std::process::exit(1);
    }
}

/// One connection worker: submit its share of the mix (sessions with
/// `i % conns == w`), then poll round-robin until all are terminal.
fn drive_connection(
    addr: &str,
    mix: &MixConfig,
    seed: u64,
    sessions: u64,
    w: u64,
    conns: u64,
) -> Lats {
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("loadgen: connect {addr}: {e}");
        std::process::exit(1);
    });
    let write_half = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let mut rpc = move |line: &str| -> String {
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .unwrap_or_else(|e| {
                eprintln!("loadgen: write: {e}");
                std::process::exit(1);
            });
        let mut resp = String::new();
        match reader.read_line(&mut resp) {
            Ok(0) => {
                eprintln!("loadgen: server closed the connection");
                std::process::exit(1);
            }
            Ok(_) => resp.trim_end().to_string(),
            Err(e) => {
                eprintln!("loadgen: read: {e}");
                std::process::exit(1);
            }
        }
    };

    let mut lats = Lats::default();
    let mine: Vec<u64> = (0..sessions).filter(|i| i % conns == w).collect();
    let mut open: Vec<(String, Instant)> = Vec::with_capacity(mine.len());
    for &i in &mine {
        let req = session_request(mix, seed, i);
        let line = format!(
            "{{\"op\":\"submit\",\"id\":{},\"cell\":{},\"link\":{},\"train\":{},\"tool\":{},\"reps\":{},\"seed\":{}}}",
            csmaprobe_bench::report::json_str(&req.id),
            req.cell,
            csmaprobe_bench::report::json_str(&req.link),
            csmaprobe_bench::report::json_str(&req.train),
            csmaprobe_bench::report::json_str(&req.tool),
            req.reps,
            req.seed
        );
        let t = Instant::now();
        let resp = rpc(&line);
        lats.submit.push(t.elapsed().as_secs_f64());
        if !resp.starts_with("{\"ok\":true") {
            eprintln!("loadgen: submit {} refused: {resp}", req.id);
            std::process::exit(1);
        }
        open.push((req.id, t));
    }
    while !open.is_empty() {
        let mut still_open = Vec::with_capacity(open.len());
        for (id, t_submit) in open {
            let t = Instant::now();
            let resp = rpc(&format!(
                "{{\"op\":\"poll\",\"id\":{}}}",
                csmaprobe_bench::report::json_str(&id)
            ));
            lats.poll.push(t.elapsed().as_secs_f64());
            if resp.contains("\"state\":\"done\"") {
                lats.complete.push(t_submit.elapsed().as_secs_f64());
            } else if resp.contains("\"state\":\"cancelled\"") {
                lats.cancelled += 1;
            } else if resp.starts_with("{\"ok\":false") {
                eprintln!("loadgen: poll {id} failed: {resp}");
                std::process::exit(1);
            } else {
                still_open.push((id, t_submit));
            }
        }
        open = still_open;
        if !open.is_empty() {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    lats
}
