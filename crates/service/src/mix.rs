//! Deterministic load-generator session mixes.
//!
//! `loadgen` and the batch reference path both need the *same* list of
//! session specs from nothing but a master seed, so the byte-compare
//! in the `service-smoke` CI job has a pure-function source of truth:
//! session `i`'s axes are drawn from per-session RNG
//! `SimRng::new(derive_seed(master, i))` and its replication master
//! seed is a second derivation from the same stream. Nothing here
//! depends on wall-clock, host, or iteration order.

use crate::session::SessionSpec;
use crate::wire::SubmitRequest;
use csmaprobe_desim::rng::{derive_seed, RngCore, SimRng};

/// Axis pools a mix draws from. The defaults keep the bulk of the load
/// on the cheap wired link so a 200-session smoke run finishes in CI
/// time, while still exercising every tool family and the WLAN path.
#[derive(Debug, Clone)]
pub struct MixConfig {
    /// Link-axis names (weighted by repetition).
    pub links: Vec<String>,
    /// Train-axis names.
    pub trains: Vec<String>,
    /// Tool names.
    pub tools: Vec<String>,
    /// Replications per session.
    pub reps: usize,
}

impl Default for MixConfig {
    fn default() -> Self {
        MixConfig {
            // "wired" repeated to weight it: WLAN cells cost orders of
            // magnitude more, so they get a small deterministic share.
            links: vec![
                "wired".into(),
                "wired".into(),
                "wired".into(),
                "wired".into(),
                "wired".into(),
                "wired".into(),
                "wired".into(),
                "wlan_low".into(),
            ],
            trains: vec!["short".into(), "mid".into()],
            tools: vec![
                "train".into(),
                "slops".into(),
                "topp".into(),
                "chirp".into(),
            ],
            reps: 32,
        }
    }
}

/// The `i`-th session of the mix as a wire submit. `id` is `s<i>`
/// zero-padded (stable sort order), `cell` is `i`.
pub fn session_request(cfg: &MixConfig, master: u64, i: u64) -> SubmitRequest {
    let mut rng = SimRng::new(derive_seed(master, i));
    let pick = |rng: &mut SimRng, pool: &[String]| -> String {
        pool[rng.below(pool.len() as u64) as usize].clone()
    };
    let link = pick(&mut rng, &cfg.links);
    let train = pick(&mut rng, &cfg.trains);
    let tool = pick(&mut rng, &cfg.tools);
    SubmitRequest {
        id: format!("s{i:05}"),
        cell: i,
        link,
        train,
        tool,
        reps: cfg.reps,
        seed: rng.next_u64(),
    }
}

/// The whole mix, resolved — the batch reference path uses this.
pub fn session_specs(
    cfg: &MixConfig,
    master: u64,
    sessions: u64,
) -> Result<Vec<SessionSpec>, String> {
    (0..sessions)
        .map(|i| {
            let req = session_request(cfg, master, i);
            SessionSpec::resolve(&req).map_err(|e| format!("session {i}: {}", e.detail()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_resolvable() {
        let cfg = MixConfig::default();
        let a: Vec<SubmitRequest> = (0..50).map(|i| session_request(&cfg, 42, i)).collect();
        let b: Vec<SubmitRequest> = (0..50).map(|i| session_request(&cfg, 42, i)).collect();
        assert_eq!(a, b);
        let specs = session_specs(&cfg, 42, 50).unwrap();
        assert_eq!(specs.len(), 50);
        // Ids/cells are unique and ordered.
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.cell, i as u64);
            assert_eq!(s.id, format!("s{i:05}"));
        }
        // A different master seed produces a different mix.
        let c: Vec<SubmitRequest> = (0..50).map(|i| session_request(&cfg, 43, i)).collect();
        assert_ne!(a, c);
    }
}
