//! The serving layer: `csmaprobe serve` as a library.
//!
//! The paper's estimators run here as **resident probe sessions**
//! instead of one-shot binaries: a client submits a session (link ×
//! train × tool × replication budget × seed) over a newline-delimited
//! JSON protocol ([`wire`]), a session manager ([`session`]) schedules
//! its replication chunks through the process-wide work-stealing
//! executor ([`csmaprobe_desim::executor`]), streams partial estimates
//! into per-session [`csmaprobe_stats::Accumulate`] state, and persists
//! each finished session as one row of a sharded, crash-tolerant
//! session table ([`csmaprobe_bench::report::RowSink`]). The TCP
//! front end, graceful SIGTERM drain and the `/metrics` text endpoint
//! live in [`server`]; live counters in [`metrics`]; the deterministic
//! load-generator session mixes in [`mix`].
//!
//! **Determinism contract.** A session's final estimate is a pure
//! function of its spec: replication `i` runs
//! `estimate_once(target, derive_seed(spec.seed, i))`, chunks follow
//! the engine-wide [`csmaprobe_desim::replicate::CHUNK`] grid, and
//! chunk accumulators merge in ascending chunk order — exactly the
//! merge tree of a one-shot
//! [`csmaprobe_desim::replicate::run_reduce`]`(reps, seed, …)`. The
//! result is therefore **bit-identical** to the equivalent batch run
//! for any worker count, any number of concurrently running sessions,
//! and any interleaving of their chunks (pinned by
//! `tests/service_session.rs` and the `service-smoke` CI job).

pub mod metrics;
pub mod mix;
pub mod server;
pub mod session;
pub mod wire;
