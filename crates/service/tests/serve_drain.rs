//! End-to-end in-process server test: pipelined NDJSON requests over
//! real TCP, the `/metrics` scrape, and the graceful drain path
//! ([`request_shutdown`] is exactly what the SIGTERM handler does, so
//! this drives the same shutdown code the `service-smoke` CI job kills
//! with a real signal).
//!
//! Single `#[test]` on purpose: the shutdown flag is process-wide.

use csmaprobe_service::server::{request_shutdown, serve, ServeConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("csmaprobe-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn pipelined_protocol_and_graceful_drain() {
    let dir = temp_dir("drain");
    let port_file = dir.join("port");
    let cfg = ServeConfig {
        out_dir: dir.clone(),
        shards: 3,
        port_file: Some(port_file.clone()),
        drivers: 2,
        ..ServeConfig::default()
    };
    let server = std::thread::spawn(move || serve(cfg).expect("serve runs"));

    // Wait for the bound address.
    let deadline = Instant::now() + Duration::from_secs(20);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            let a = text.trim().to_string();
            if !a.is_empty() {
                break a;
            }
        }
        assert!(Instant::now() < deadline, "server never wrote its port");
        std::thread::sleep(Duration::from_millis(20));
    };

    // Pipeline a batch of requests in one write; responses must come
    // back one line each, in order, with typed errors inline.
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let submit = |id: &str, cell: u64| {
        format!(
            "{{\"op\":\"submit\",\"id\":\"{id}\",\"cell\":{cell},\"link\":\"wired\",\
             \"train\":\"short\",\"tool\":\"train\",\"reps\":8,\"seed\":9}}\n"
        )
    };
    let mut batch = String::new();
    batch.push_str(&submit("a", 0));
    batch.push_str(&submit("b", 1));
    batch.push_str(&submit("a", 2)); // duplicate id
    batch.push_str(&submit("c", 0)); // duplicate cell
    batch.push_str("{\"op\":\"fly\"}\n"); // unknown op
    batch.push_str("{\"op\":\"poll\",\"id\":\"nope\"}\n"); // unknown id
    batch.push_str("{\"op\":\"submit\",\"id\":\"t\n"); // malformed (torn line)
    batch.push_str("{\"op\":\"drain\"}\n");
    writer.write_all(batch.as_bytes()).unwrap();
    writer.flush().unwrap();

    let mut line = String::new();
    let mut next = || {
        line.clear();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    };
    assert!(next().starts_with("{\"ok\":true,\"op\":\"submit\""));
    assert!(next().starts_with("{\"ok\":true,\"op\":\"submit\""));
    assert!(next().contains("\"error\":\"duplicate_id\""));
    assert!(next().contains("\"error\":\"duplicate_cell\""));
    assert!(next().contains("\"error\":\"unknown_op\""));
    assert!(next().contains("\"error\":\"unknown_id\""));
    assert!(next().contains("\"error\":\"malformed_request\""));
    let drain = next();
    assert!(
        drain.contains("\"op\":\"drain\"") && drain.contains("\"done\":2"),
        "{drain}"
    );

    // Both sessions now poll as done, and cancel-after-complete is the
    // typed error.
    writer
        .write_all(b"{\"op\":\"poll\",\"id\":\"a\"}\n{\"op\":\"cancel\",\"id\":\"a\"}\n")
        .unwrap();
    let poll = next();
    assert!(
        poll.contains("\"state\":\"done\"") && poll.contains("\"reps_done\":8"),
        "{poll}"
    );
    assert!(next().contains("\"error\":\"already_complete\""));

    // Plain-text metrics scrape on a fresh connection.
    let mut scrape = TcpStream::connect(&addr).unwrap();
    scrape.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut text = String::new();
    scrape.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.0 200 OK"), "{text}");
    assert!(text.contains("csmaprobe_sessions_done 2"), "{text}");
    assert!(text.contains("csmaprobe_sessions_accepted 2"), "{text}");

    // Graceful drain: what SIGTERM triggers.
    request_shutdown();
    let summary = server.join().expect("server thread");
    assert!(summary.consistent, "drain audit failed: {summary:?}");
    assert_eq!(summary.accepted, 2);
    assert_eq!(summary.done, 2);
    assert_eq!(summary.persisted, 2);
    // The finalized table exists, has one row per completed session in
    // cell order, and survives a RowSink reload.
    let table = std::fs::read_to_string(&summary.table).unwrap();
    let keys: Vec<_> = table
        .lines()
        .map(|l| l.trim().trim_end_matches(','))
        .filter_map(csmaprobe_bench::report::row_key)
        .collect();
    assert_eq!(keys, ["a", "b"]);
    let _ = std::fs::remove_dir_all(&dir);
}
