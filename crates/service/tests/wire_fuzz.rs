//! Property/fuzz suite for the wire protocol and the session-slot
//! life cycle: arbitrary bytes, truncated frames, oversized payloads,
//! duplicate ids, cancel-after-complete and random pipelined op
//! sequences must always produce a typed error or a valid response —
//! never a panic, and never a session slot stuck non-terminal.

use csmaprobe_service::session::{SessionManager, SessionSpec};
use csmaprobe_service::wire::{read_frame, Request, SubmitRequest, WireError, MAX_FRAME};
use proptest::prelude::*;
use std::io::BufReader;

/// A valid submit line to mutate.
const VALID_SUBMIT: &str = "{\"op\":\"submit\",\"id\":\"s1\",\"cell\":1,\"link\":\"wired\",\
                            \"train\":\"short\",\"tool\":\"train\",\"reps\":8,\"seed\":7}";

const KNOWN_CODES: &[&str] = &[
    "oversized_frame",
    "malformed_request",
    "unknown_op",
    "bad_field",
    "duplicate_id",
    "duplicate_cell",
    "unknown_id",
    "already_complete",
    "draining",
];

fn assert_typed(err: &WireError) {
    assert!(
        KNOWN_CODES.contains(&err.code()),
        "unknown error code {:?}",
        err.code()
    );
    // Every error serializes to a parseable single-line response.
    let line = err.to_json();
    assert!(!line.contains('\n'));
    assert!(line.starts_with("{\"ok\":false,\"error\":\""));
}

proptest! {
    // Arbitrary bytes (lossily decoded) never panic the parser.
    #[test]
    fn parse_never_panics_on_garbage(bytes in prop::collection::vec(0u16..256, 0..160)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let text = String::from_utf8_lossy(&raw);
        if let Err(e) = Request::parse(&text) {
            assert_typed(&e);
        }
    }

    // Truncations and point mutations of a valid request are either
    // still valid or a typed error — truncated frames must not wedge.
    #[test]
    fn truncations_and_mutations_stay_typed(
        cut in 0usize..120,
        pos in 0usize..120,
        byte in 0u16..256,
    ) {
        let truncated = &VALID_SUBMIT[..cut.min(VALID_SUBMIT.len())];
        if let Err(e) = Request::parse(truncated) {
            assert_typed(&e);
        }
        let mut mutated = VALID_SUBMIT.as_bytes().to_vec();
        let at = pos.min(mutated.len() - 1);
        mutated[at] = byte as u8;
        let text = String::from_utf8_lossy(&mutated).into_owned();
        if let Err(e) = Request::parse(&text) {
            assert_typed(&e);
        }
    }

    // Random byte streams through the framer: every frame is Ok or a
    // typed error, the reader always terminates, and no accepted line
    // exceeds the cap.
    #[test]
    fn framer_survives_random_streams(bytes in prop::collection::vec(0u16..256, 0..4096)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let mut r = BufReader::new(&raw[..]);
        let mut frames = 0usize;
        while let Some(frame) = read_frame(&mut r).expect("memory reads cannot fail") {
            match frame {
                Ok(line) => assert!(line.len() <= MAX_FRAME),
                Err(e) => assert_typed(&e),
            }
            frames += 1;
            assert!(frames <= raw.len() + 1, "framer failed to make progress");
        }
    }

    // Oversized payloads: typed oversized_frame error, then the stream
    // resynchronises and the next pipelined request parses.
    #[test]
    fn oversized_payloads_resync(extra in 0usize..40_000, fill in 32u16..127) {
        let mut payload = vec![fill as u8; MAX_FRAME + extra];
        payload.push(b'\n');
        payload.extend_from_slice(VALID_SUBMIT.as_bytes());
        payload.push(b'\n');
        let mut r = BufReader::new(&payload[..]);
        match read_frame(&mut r).unwrap().unwrap() {
            Err(e) => assert_eq!(e.code(), "oversized_frame"),
            Ok(l) => panic!("oversized line accepted ({} bytes)", l.len()),
        }
        let line = read_frame(&mut r).unwrap().unwrap().unwrap();
        assert!(Request::parse(&line).is_ok());
        assert!(read_frame(&mut r).unwrap().is_none());
    }
}

/// Build a tiny resolvable spec (cheap wired sessions).
fn spec(id: u64, cell: u64) -> SessionSpec {
    SessionSpec::resolve(&SubmitRequest {
        id: format!("f{id}"),
        cell,
        link: "wired".to_string(),
        train: "short".to_string(),
        tool: "train".to_string(),
        reps: 4,
        seed: 0xF00D + id,
    })
    .expect("valid spec")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Random interleaved op sequences against a live manager: every
    // refusal is typed, and after a drain no slot is left non-terminal
    // (`accepted == done + cancelled` — the no-wedged-slot invariant).
    #[test]
    fn random_op_sequences_never_wedge_a_slot(ops in prop::collection::vec(0u64..6, 1..60)) {
        let mgr = SessionManager::new(2, None);
        let mut next = 0u64;
        let mut submitted: Vec<String> = Vec::new();
        for (step, op) in ops.iter().enumerate() {
            match op {
                0 | 1 => {
                    // Fresh submit.
                    let s = spec(next, next);
                    submitted.push(s.id.clone());
                    next += 1;
                    mgr.submit(s).expect("fresh id/cell must be accepted");
                }
                2 => {
                    // Duplicate id resubmit.
                    if let Some(id) = submitted.first() {
                        let dup_id = id.trim_start_matches('f').parse().unwrap();
                        let err = mgr.submit(spec(dup_id, 10_000 + step as u64)).unwrap_err();
                        assert_eq!(err.code(), "duplicate_id");
                    }
                }
                3 => {
                    // Duplicate cell under a fresh id.
                    if !submitted.is_empty() {
                        let err = mgr.submit(spec(20_000 + step as u64, 0)).unwrap_err();
                        assert_eq!(err.code(), "duplicate_cell");
                    }
                }
                4 => {
                    // Cancel something (maybe racing completion).
                    if let Some(id) = submitted.get(step % submitted.len().max(1)) {
                        match mgr.cancel(id) {
                            Ok(()) => {}
                            Err(e) => assert_eq!(e.code(), "already_complete"),
                        }
                    }
                    assert_eq!(mgr.cancel("missing").unwrap_err().code(), "unknown_id");
                }
                _ => {
                    // Poll everything; phases are always coherent.
                    for id in &submitted {
                        let snap = mgr.poll(id).expect("accepted ids poll");
                        assert!(snap.reps_done <= snap.reps);
                    }
                    assert_eq!(mgr.poll("missing").unwrap_err().code(), "unknown_id");
                }
            }
        }
        mgr.drain();
        let counts = mgr.counts();
        assert_eq!(counts.accepted, submitted.len());
        assert_eq!(
            counts.done + counts.cancelled,
            counts.accepted,
            "a session slot was left non-terminal"
        );
        assert_eq!(counts.in_flight, 0);
        // Every slot is individually terminal, and cancel-after-complete
        // is now always the typed already_complete error.
        for id in &submitted {
            let snap = mgr.poll(id).unwrap();
            assert!(snap.phase.terminal());
            assert_eq!(mgr.cancel(id).unwrap_err().code(), "already_complete");
        }
        mgr.shutdown();
    }
}
