//! The process-wide **work-stealing chunk executor** behind every
//! replication runner.
//!
//! One persistent pool of worker threads serves every concurrent
//! [`submit`] in the process. A submission is an ordered list of chunk
//! tasks (`make(chunk_index)`) whose outputs are handed to a `consume`
//! callback in **ascending chunk index order** through a bounded
//! reorder window. Pool workers steal chunks across *all* live
//! submissions, so when one submission runs out of work its workers
//! move to whatever else is in flight **mid-run** — there is no
//! acquire-at-spawn/release-at-end seam where cores sit idle while a
//! long submission still has chunks left.
//!
//! # Scheduling model
//!
//! * Every submitting thread works on its own submission too (and only
//!   on its own), so a submission always makes progress even when every
//!   pool worker is busy elsewhere — this is what makes a late-arriving
//!   small job finish promptly while a large grid saturates the pool,
//!   and what makes nested submissions (a scheduled figure running its
//!   own replication reduces) deadlock-free: the innermost chunk tasks
//!   never block, and every waiting thread drives its own work first.
//! * Pool workers scan live submissions round-robin and claim the next
//!   chunk of the first one with unclaimed chunks and a free `width`
//!   slot. Claimed chunks run to completion; nothing is preempted.
//! * `width` caps how many threads may execute one submission's chunks
//!   concurrently (used by the figure scheduler's `--jobs`); replication
//!   reduces submit with an unbounded width.
//!
//! # Concurrency ceiling
//!
//! The pool keeps [`concurrency`]`() − 1` workers live — one fewer than
//! the ceiling because each submitting thread executes chunks itself.
//! The ceiling is the explicit [`set_worker_limit`] /
//! `CSMAPROBE_WORKERS` value when set, else the hardware parallelism.
//! Lowering the limit parks excess workers (they re-check the target on
//! every wakeup); a limit of 1 makes every submission run inline on its
//! calling thread, with no pool interaction at all.
//!
//! # Determinism
//!
//! Results never depend on the worker count, the stealing order, or
//! which submissions happen to be in flight: chunk outputs are consumed
//! in ascending chunk order per submission, so any reduction whose
//! merge follows that order is a pure function of the submission alone.
//! The property suites in `tests/executor_property.rs` pin this for
//! concurrent submissions, not just solo ones.

use std::any::Any;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Explicit concurrency override; 0 means "auto" (hardware).
static WORKER_LIMIT: AtomicUsize = AtomicUsize::new(0);

/// Monotonic submission ids (registry membership is id-keyed).
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Pin the process-wide concurrency ceiling every subsequent submission
/// runs under (pool workers + submitting threads). `0` restores
/// automatic sizing (the hardware parallelism).
///
/// Results never depend on this — it exists for tests that prove that
/// claim and for controlled benchmarking. Excess pool workers park; a
/// raised limit takes effect at the next submission.
pub fn set_worker_limit(n: usize) {
    WORKER_LIMIT.store(n, Ordering::Relaxed);
    // Parked pool workers re-read the target on every wakeup.
    if let Some(reg) = REGISTRY.get() {
        reg.work_cv.notify_all();
    }
}

/// The `CSMAPROBE_WORKERS` environment variable at first use,
/// overridden by [`set_worker_limit`]; 0 means "auto".
pub fn worker_limit() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    let env = *ENV.get_or_init(|| {
        std::env::var("CSMAPROBE_WORKERS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    });
    let set = WORKER_LIMIT.load(Ordering::Relaxed);
    if set > 0 {
        set
    } else {
        env
    }
}

/// Hardware parallelism (≥ 1).
fn hardware_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The effective concurrency ceiling: the explicit limit when set, else
/// the hardware parallelism.
pub fn concurrency() -> usize {
    let limit = worker_limit();
    if limit > 0 {
        limit
    } else {
        hardware_workers()
    }
}

/// Live pool workers to aim for: one fewer than the ceiling, because
/// every submitting thread executes chunks of its own submission.
fn pool_target() -> usize {
    concurrency().saturating_sub(1)
}

/// Lock a mutex, riding through poisoning (a panicking chunk poisons
/// its submission's locks; the panic is re-thrown at the submitter, so
/// later lockers just need the data).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Type-independent scheduling state of one submission.
///
/// Termination protocol: every one of the `total` chunks is claimed
/// exactly once (`next` is a claim ticket counter) and every claimed
/// chunk bumps `finished` when its execution ends — **including after a
/// panic**, where remaining claims drain as no-ops instead of being cut
/// short. The submitter returns only when `finished == total`, so no
/// thread can still be inside (or about to enter) `make`/`consume` once
/// `submit` returns — the invariant the registry's lifetime erasure
/// rests on. (A claimed-then-counted scheme with an early-exit
/// predicate would race: a worker between "claim" and "count" is
/// invisible to the submitter.)
struct Control {
    id: u64,
    /// Total chunk count; `next >= total` means nothing left to claim.
    total: usize,
    /// Max threads executing this submission's chunks concurrently.
    width: usize,
    /// Next chunk index to claim (claims are always in ascending order;
    /// every index below `total` is claimed exactly once, panic or not).
    next: AtomicUsize,
    /// Threads currently executing a chunk of this submission.
    active: AtomicUsize,
    /// Completion state, guarded for `done_cv`.
    done: Mutex<Done>,
    done_cv: Condvar,
}

struct Done {
    /// Chunks whose execution has finished (drained no-ops included);
    /// the submission is complete exactly when this reaches `total`.
    finished: usize,
    /// A chunk panicked: later chunks skip `make`/`consume` and drain.
    /// (Plain bool under the `done` lock — `run_chunk` takes it anyway.)
    poisoned: bool,
    /// First panic payload raised by a chunk, re-thrown at the caller.
    panic: Option<Box<dyn Any + Send>>,
}

/// The reorder window: chunk outputs parked until their predecessors
/// have been consumed, so `consume` always sees ascending chunk order.
struct Sink<C, G> {
    next_emit: usize,
    pending: BTreeMap<usize, C>,
    consume: G,
}

/// Object-safe face of a typed submission, as stored in the registry.
trait Task: Send + Sync {
    fn control(&self) -> &Control;
    /// Execute chunk `idx`: run `make`, deliver through the reorder
    /// window, record completion (or the panic) on the control block.
    fn run_chunk(&self, idx: usize);
}

struct Submission<C, F, G> {
    control: Control,
    make: F,
    sink: Mutex<Sink<C, G>>,
}

impl<C, F, G> Task for Submission<C, F, G>
where
    C: Send,
    F: Fn(usize) -> C + Sync + Send,
    G: FnMut(C) + Send,
{
    fn control(&self) -> &Control {
        &self.control
    }

    fn run_chunk(&self, idx: usize) {
        if lock(&self.control.done).poisoned {
            // The submission already failed: this claim just drains so
            // `finished` still reaches `total` (parked outputs and the
            // remaining work are dropped; the submitter re-throws).
            self.finish_chunk(Ok(()));
            return;
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            let out = (self.make)(idx);
            let mut sink = lock(&self.sink);
            let Sink {
                next_emit,
                pending,
                consume,
            } = &mut *sink;
            if idx == *next_emit {
                consume(out);
                *next_emit += 1;
                loop {
                    let k = *next_emit;
                    match pending.remove(&k) {
                        Some(ready) => {
                            consume(ready);
                            *next_emit += 1;
                        }
                        None => break,
                    }
                }
            } else {
                pending.insert(idx, out);
            }
        }));
        self.finish_chunk(result);
    }
}

impl<C, F, G> Submission<C, F, G> {
    /// Record one chunk's end (success, drain, or panic) and wake the
    /// submitter.
    fn finish_chunk(&self, result: Result<(), Box<dyn Any + Send>>) {
        let c = &self.control;
        // Free the width slot BEFORE the wakeup, so a submitter woken by
        // this completion can immediately claim the freed slot — were the
        // order reversed, it could observe a full gate, re-sleep on
        // `done_cv`, and (with every pool worker parked by a lowered
        // limit) never be woken again.
        c.active.fetch_sub(1, Ordering::Release);
        let mut done = lock(&c.done);
        if let Err(payload) = result {
            done.poisoned = true;
            if done.panic.is_none() {
                done.panic = Some(payload);
            }
        }
        done.finished += 1;
        // Every completion wakes the submitter: completion itself, or a
        // freed width slot / late claimable chunk it should pick up.
        c.done_cv.notify_all();
    }
}

/// The pool registry: live submissions plus worker bookkeeping.
struct Registry {
    state: Mutex<RegState>,
    work_cv: Condvar,
}

struct RegState {
    subs: Vec<Arc<dyn Task>>,
    /// Round-robin scan cursor, so late submissions get workers as
    /// chunks finish instead of starving behind an early long one.
    cursor: usize,
    spawned: usize,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        state: Mutex::new(RegState {
            subs: Vec::new(),
            cursor: 0,
            spawned: 0,
        }),
        work_cv: Condvar::new(),
    })
}

/// Claim and execute one chunk of `task`. Returns `false` when nothing
/// was claimable (no chunks left, or the width gate is full).
fn try_run_one(task: &dyn Task) -> bool {
    let c = task.control();
    // Width gate: reserve an execution slot before claiming.
    loop {
        let a = c.active.load(Ordering::Acquire);
        if a >= c.width {
            return false;
        }
        if c.active
            .compare_exchange_weak(a, a + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            break;
        }
    }
    let idx = c.next.fetch_add(1, Ordering::SeqCst);
    if idx >= c.total {
        c.active.fetch_sub(1, Ordering::Release);
        return false;
    }
    // `run_chunk` always ends in `finish_chunk`, which releases the
    // width slot (before its wakeup) — not released here.
    task.run_chunk(idx);
    // A freed width slot (or the end of this submission) may unblock a
    // scanning worker.
    registry().work_cv.notify_all();
    true
}

/// One pool worker: scan for claimable work, execute one chunk, repeat.
/// Workers with an index at or beyond the current target park until the
/// limit rises again.
fn worker_loop(index: usize) {
    let reg = registry();
    loop {
        let task: Arc<dyn Task> = {
            let mut s = lock(&reg.state);
            loop {
                if index < pool_target() {
                    if let Some(t) = pick(&mut s) {
                        break t;
                    }
                }
                // The timeout is a belt-and-braces guard against missed
                // wakeups (notifies happen outside this lock); idle
                // workers re-scan a few times a second at worst.
                let (guard, _) = reg
                    .work_cv
                    .wait_timeout(s, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                s = guard;
            }
        };
        let _ = try_run_one(&*task);
    }
}

/// The next submission with claimable work, round-robin from the
/// cursor.
fn pick(s: &mut RegState) -> Option<Arc<dyn Task>> {
    let n = s.subs.len();
    for k in 0..n {
        let i = (s.cursor + k) % n;
        let c = s.subs[i].control();
        if c.next.load(Ordering::Relaxed) < c.total && c.active.load(Ordering::Relaxed) < c.width {
            s.cursor = (i + 1) % n;
            return Some(Arc::clone(&s.subs[i]));
        }
    }
    None
}

fn register(task: Arc<dyn Task>) {
    let reg = registry();
    let mut s = lock(&reg.state);
    s.subs.push(task);
    // Spawn lazily up to the current target; the pool never shrinks,
    // excess workers park via the index check in `worker_loop`.
    while s.spawned < pool_target() {
        let index = s.spawned;
        std::thread::Builder::new()
            .name(format!("csmaprobe-worker-{index}"))
            .spawn(move || worker_loop(index))
            .expect("spawn pool worker");
        s.spawned += 1;
    }
    drop(s);
    reg.work_cv.notify_all();
}

fn unregister(id: u64) {
    let mut s = lock(&registry().state);
    s.subs.retain(|t| t.control().id != id);
}

/// Run `chunks` chunk tasks through the shared pool: `make(idx)`
/// produces chunk `idx`'s output, `consume` receives the outputs in
/// **ascending chunk index order**. Blocks until every chunk has been
/// consumed; re-throws the first panic any chunk raised.
///
/// At most `width` threads execute this submission's chunks at once
/// (the calling thread included — it always works on its own
/// submission). Pool workers steal the rest, across every live
/// submission in the process.
pub fn submit<C, F, G>(chunks: usize, width: usize, make: F, mut consume: G)
where
    C: Send,
    F: Fn(usize) -> C + Sync + Send,
    G: FnMut(C) + Send,
{
    if chunks == 0 {
        return;
    }
    let width = width.max(1).min(chunks);
    // Inline path: a single chunk, a serial width, or a concurrency
    // ceiling of 1 all mean the caller just runs everything itself.
    if chunks == 1 || width == 1 || pool_target() == 0 {
        for idx in 0..chunks {
            consume(make(idx));
        }
        return;
    }

    let sub = Arc::new(Submission {
        control: Control {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            total: chunks,
            width,
            next: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            done: Mutex::new(Done {
                finished: 0,
                poisoned: false,
                panic: None,
            }),
            done_cv: Condvar::new(),
        },
        make,
        sink: Mutex::new(Sink {
            next_emit: 0,
            pending: BTreeMap::new(),
            consume,
        }),
    });

    {
        let erased: Arc<dyn Task + '_> = sub.clone();
        // SAFETY: the registry holds tasks as `'static`, but this
        // submission borrows the caller's stack. `submit` does not
        // return until `finished == total` — every chunk claimed and
        // run to its end (see the `Control` termination protocol) — so
        // no pool worker can be inside, or later reach, `make`/
        // `consume` — and thereby the borrowed data — after this frame
        // ends. Workers may retain the Arc briefly afterwards, but
        // only to fail a claim against the atomics in the (heap-owned)
        // control block and drop their reference.
        // The one unsafe block in the workspace: the scoped-task-on-
        // pool lifetime erasure every shared-pool executor needs (the
        // blocking contract above is what makes it sound).
        #[allow(unsafe_code)]
        let erased: Arc<dyn Task> =
            unsafe { std::mem::transmute::<Arc<dyn Task + '_>, Arc<dyn Task + 'static>>(erased) };
        register(erased);
    }

    let c = &sub.control;
    let panicked = loop {
        // Drive our own submission as hard as the width gate allows.
        while try_run_one(sub.as_ref()) {}
        let mut done = lock(&c.done);
        // Complete exactly when every chunk has been claimed AND run to
        // its finish_chunk — there is no window where a worker holds a
        // claim the predicate cannot see.
        if done.finished == c.total {
            break done.panic.take();
        }
        // Wait for any chunk of ours to finish, then try to help again
        // (a width slot or a late claimable chunk may have appeared).
        // Notifies happen under `done`, so re-checking the predicate
        // under the same lock cannot miss a wakeup.
        done = c.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        drop(done);
    };
    unregister(c.id);
    // Make this thread the one that drops the submission (the closures
    // and any parked chunk outputs — present after a panic): once
    // unregistered no new worker can pick it up, and a worker still
    // holding a clone from `pick` can only fail a claim and drop its
    // reference, so this wait is brief. Without it, a caller type whose
    // `Drop` touches borrowed data could run on a pool thread after
    // this frame ended.
    while Arc::strong_count(&sub) > 1 {
        std::thread::yield_now();
    }
    if let Some(payload) = panicked {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// Serialises tests that pin the global worker limit.
    fn limit_guard() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        lock(&GUARD)
    }

    #[test]
    fn outputs_arrive_in_ascending_chunk_order() {
        let _g = limit_guard();
        for limit in [1usize, 4] {
            set_worker_limit(limit);
            let mut seen = Vec::new();
            submit(97, usize::MAX, |i| i, |i| seen.push(i));
            set_worker_limit(0);
            assert_eq!(seen, (0..97).collect::<Vec<_>>(), "limit {limit}");
        }
    }

    #[test]
    fn width_caps_concurrent_executors() {
        let _g = limit_guard();
        set_worker_limit(8);
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        submit(
            40,
            3,
            |i| {
                let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                active.fetch_sub(1, Ordering::SeqCst);
                i
            },
            |_| {},
        );
        set_worker_limit(0);
        assert!(peak.load(Ordering::SeqCst) <= 3, "peak {:?}", peak);
    }

    #[test]
    fn panicking_chunk_propagates_to_submitter() {
        let _g = limit_guard();
        set_worker_limit(2);
        let hit = AtomicBool::new(false);
        let result = catch_unwind(AssertUnwindSafe(|| {
            submit(
                16,
                usize::MAX,
                |i| {
                    if i == 7 {
                        panic!("chunk 7 exploded");
                    }
                    i
                },
                |_| {
                    hit.store(true, Ordering::SeqCst);
                },
            );
        }));
        set_worker_limit(0);
        assert!(result.is_err(), "panic must reach the submitter");
        assert!(hit.load(Ordering::SeqCst), "chunks before the panic ran");
    }

    #[test]
    fn nested_submissions_complete() {
        let _g = limit_guard();
        set_worker_limit(4);
        let mut totals = Vec::new();
        submit(
            6,
            usize::MAX,
            |outer| {
                // Each outer chunk runs its own inner submission — the
                // figure-inside-scheduler shape.
                let inner = Mutex::new(0usize);
                submit(5, usize::MAX, |i| i + outer, |v| *lock(&inner) += v);
                let total = *lock(&inner);
                total
            },
            |t| totals.push(t),
        );
        set_worker_limit(0);
        let expect: Vec<usize> = (0..6).map(|o| (0..5).map(|i| i + o).sum()).collect();
        assert_eq!(totals, expect);
    }
}
