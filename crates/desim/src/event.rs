//! The event calendar: a time-ordered priority queue with FIFO
//! tie-breaking.
//!
//! [`EventQueue`] is deliberately minimal — it stores `(Time, E)` pairs
//! and pops them in non-decreasing time order. Ties are broken by
//! insertion order (a monotone sequence number), which makes simulations
//! deterministic even when many events share a timestamp: the behaviour
//! never depends on heap internals.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event calendar.
///
/// ```
/// use csmaprobe_desim::{event::EventQueue, time::Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_micros(20), "b");
/// q.push(Time::from_micros(10), "a");
/// q.push(Time::from_micros(20), "c"); // same time as "b": FIFO order
/// assert_eq!(q.pop(), Some((Time::from_micros(10), "a")));
/// assert_eq!(q.pop(), Some((Time::from_micros(20), "b")));
/// assert_eq!(q.pop(), Some((Time::from_micros(20), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// An empty calendar with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at absolute time `time`.
    pub fn push(&mut self, time: Time, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Borrow the earliest pending payload, if any.
    pub fn peek(&self) -> Option<(&E, Time)> {
        self.heap.peek().map(|e| (&e.payload, e.time))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let times = [50u64, 10, 30, 20, 40];
        for &t in &times {
            q.push(Time::from_micros(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_micros(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(5), 'x');
        assert_eq!(q.peek_time(), Some(Time::from_nanos(5)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Time::from_nanos(5), 'x')));
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        let mut now = Time::ZERO;
        q.push(Time::from_micros(10), 0u32);
        q.push(Time::from_micros(5), 1);
        let (t, v) = q.pop().unwrap();
        assert_eq!(v, 1);
        assert!(t >= now);
        now = t;
        // Push an event after current time, pop everything.
        q.push(now + Dur::from_micros(1), 2);
        let (t2, v2) = q.pop().unwrap();
        assert_eq!(v2, 2);
        assert!(t2 >= now);
        assert_eq!(q.pop().unwrap().1, 0);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(Time::from_nanos(i), i);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        q.push(Time::ZERO, 1);
        assert_eq!(q.pop(), Some((Time::ZERO, 1)));
    }
}
