//! Thread-parallel Monte-Carlo replication: the scenario engine's
//! streaming map-reduce spine.
//!
//! The paper's results are averages over very many independent
//! repetitions (80 testbed runs; 25 000 NS2 runs; 70 000 Matlab runs).
//! Three entry points share one chunked execution core:
//!
//! * [`run`] — materialise every per-replication output in replication
//!   order (for analyses that need raw samples).
//! * [`run_fold`] — fold per-replication outputs into an accumulator in
//!   replication order, without holding all outputs at once.
//! * [`run_reduce`] — fully streaming map-reduce: each worker folds its
//!   replications directly into a chunk accumulator and chunk
//!   accumulators are merged **in deterministic chunk order**, so peak
//!   memory is O(workers × accumulator) instead of O(reps × output).
//!
//! [`run_cells`] generalises the same core to a grid of independently
//! accumulated cells (one per sweep point), with per-cell results
//! bit-identical to a standalone [`run_reduce`] per cell;
//! [`run_cells_emit`] is its streaming form, handing each finished cell
//! to a consumer in ascending cell order so arbitrarily large grids
//! never materialise all their accumulators at once.
//!
//! Determinism: replication `i` always receives `derive_seed(master, i)`
//! and chunk accumulators are always merged in ascending chunk index,
//! regardless of which thread executes what. The result is a pure
//! function of `(master_seed, reps)` — bit-identical across repeated
//! runs and across differing worker counts.
//!
//! Execution: every runner submits its chunk tasks to the process-wide
//! **work-stealing chunk executor** ([`crate::executor`]). One pool of
//! workers serves every concurrent caller (figures scheduled by
//! `all_figures` via [`run_tasks`], sweeps, grids), stealing chunks
//! across all live submissions — so a figure that finishes hands its
//! cores to whatever is still running, mid-flight, and nested
//! parallelism never oversubscribes the machine. [`set_worker_limit`]
//! (or the `CSMAPROBE_WORKERS` environment variable) pins the
//! process-wide concurrency ceiling explicitly — useful for tests and
//! for reproducing scheduling-sensitive timings; results never depend
//! on it. The acquire/release worker-budget API this replaced is gone:
//! there is nothing to borrow or hand back any more.

use crate::executor;
use crate::rng::derive_seed;
use std::ops::Range;
use std::sync::Mutex;

/// Replications per chunk. The chunk grid is what makes streaming
/// reduction deterministic: merges always happen on chunk boundaries in
/// chunk order, so floating-point results do not depend on the worker
/// count. Smaller chunks increase scheduling overhead; larger chunks
/// reduce load-balance quality.
pub const CHUNK: usize = 32;

/// Pin the process-wide concurrency ceiling every subsequent
/// replication call runs under. `0` restores automatic sizing (the
/// hardware parallelism).
///
/// Results never depend on this — it exists for tests that prove that
/// claim and for controlled benchmarking. Delegates to
/// [`executor::set_worker_limit`].
pub fn set_worker_limit(n: usize) {
    executor::set_worker_limit(n);
}

/// The replication index range of chunk `c`.
fn chunk_range(c: usize, reps: usize) -> Range<usize> {
    let start = c * CHUNK;
    start..((start + CHUNK).min(reps))
}

/// Chunked execution core: produce one `C` per chunk of replication
/// indices and hand the chunk outputs to `consume` **in ascending chunk
/// order** — one submission to the process-wide work-stealing executor
/// ([`executor::submit`]).
///
/// `consume` runs under the submission's sink lock from whichever
/// worker completes the next-in-order chunk; out-of-order chunk outputs
/// are parked in a bounded reorder window (at most ~one entry per
/// worker in practice).
fn run_chunks<C, F, G>(reps: usize, make: F, consume: G)
where
    C: Send,
    F: Fn(Range<usize>) -> C + Sync + Send,
    G: FnMut(C) + Send,
{
    if reps == 0 {
        return;
    }
    let chunks = reps.div_ceil(CHUNK);
    executor::submit(chunks, usize::MAX, |c| make(chunk_range(c, reps)), consume);
}

/// Run `tasks` as one executor submission — the figure-level scheduling
/// primitive behind `all_figures` — returning each task's output **in
/// task order**.
///
/// At most `width` tasks execute concurrently (the `--jobs` knob); the
/// calling thread always works on its own tasks, and pool workers steal
/// the rest across every live submission, so a finished task's core
/// immediately moves to other tasks *or into the replication chunks of
/// tasks still running* — the mid-flight hand-back that retired the old
/// acquire/release worker budget. Panics from tasks propagate to the
/// caller after in-flight tasks finish.
pub fn run_tasks<T, F>(width: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let mut out: Vec<T> = Vec::with_capacity(n);
    executor::submit(
        n,
        width,
        |i| {
            let task = slots[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("each task is claimed exactly once");
            task()
        },
        |t| out.push(t),
    );
    out
}

/// Streaming map-reduce over a **grid of cells** — the scheduling
/// primitive behind `csmaprobe_core::sweep`.
///
/// `cells[c]` is the replication count of cell `c` (e.g. one cell per
/// probing rate of a rate-response sweep). Every `(cell, replication)`
/// pair becomes one unit of work on the shared worker pool, so a sweep
/// of 20 × 1 one-replication cells parallelises exactly as well as one
/// 20-replication cell — this is what gives sweep figures intra-figure
/// parallelism instead of serialising their rate points.
///
/// `map(c, r, &mut acc)` folds replication `r` of cell `c` into that
/// cell's accumulator (created by `identity(c)`); per-cell accumulators
/// are combined with `merge` and the finished cells are returned in
/// cell order. Seed derivation is the caller's job (`map` receives the
/// raw `(c, r)` pair), which lets a ported sweep reproduce the exact
/// seeds its hand-rolled loop used.
///
/// **Bit-compatibility contract:** each cell's index range is padded to
/// a [`CHUNK`] boundary, so cell-local chunk boundaries — and therefore
/// the merge tree — are identical to a standalone
/// [`run_reduce`]`(cells[c], …)` over the same replications. The result
/// for cell `c` is bit-identical to that standalone reduce, for any
/// worker count and any surrounding grid.
///
/// ```
/// use csmaprobe_desim::replicate;
///
/// // Three cells with different replication budgets; each counts its
/// // own replications.
/// let counts = replicate::run_cells(
///     &[5, 0, 70],
///     |_c, _r, acc: &mut u64| *acc += 1,
///     |_c| 0u64,
///     |a, b| *a += b,
/// );
/// assert_eq!(counts, vec![5, 0, 70]);
/// ```
pub fn run_cells<A, F, I, M>(cells: &[usize], map: F, identity: I, merge: M) -> Vec<A>
where
    A: Send,
    F: Fn(usize, usize, &mut A) + Sync,
    I: Fn(usize) -> A + Sync,
    M: Fn(&mut A, A) + Send + Sync,
{
    let mut out: Vec<A> = Vec::with_capacity(cells.len());
    run_cells_emit(cells, map, identity, merge, |cell, acc| {
        debug_assert_eq!(out.len(), cell, "cells emitted in ascending order");
        out.push(acc);
    });
    out
}

/// [`run_cells`] with **streaming emission**: each cell's fully-reduced
/// accumulator is handed to `emit(cell, acc)` in ascending cell order,
/// as soon as its last chunk has merged — instead of materialising one
/// accumulator per cell for the whole grid.
///
/// This is the primitive behind incremental grid persistence
/// (`csmaprobe_core::grid`): a huge grid holds O(workers) in-flight
/// chunk accumulators plus at most one pending cell, never the full
/// cell space, and a crash loses only cells not yet emitted.
///
/// Reduction is identical to [`run_cells`] — same chunk grid, same
/// ascending-chunk merge order — so every emitted accumulator is
/// bit-identical to the corresponding [`run_cells`] (and standalone
/// [`run_reduce`]) result, for any worker count. Zero-replication cells
/// emit `identity(cell)` at their position in the order.
pub fn run_cells_emit<A, F, I, M, E>(cells: &[usize], map: F, identity: I, merge: M, mut emit: E)
where
    A: Send,
    F: Fn(usize, usize, &mut A) + Sync,
    I: Fn(usize) -> A + Sync,
    M: Fn(&mut A, A) + Send + Sync,
    E: FnMut(usize, A) + Send,
{
    // Chunk-count prefix sums: cell `c` owns global chunks
    // `chunk_offset[c] .. chunk_offset[c + 1]`, each padded range fully
    // inside one cell so the cell-local chunk grid matches run_reduce's.
    let mut chunk_offset = Vec::with_capacity(cells.len() + 1);
    let mut total_chunks = 0usize;
    chunk_offset.push(0);
    for &reps in cells {
        total_chunks += reps.div_ceil(CHUNK);
        chunk_offset.push(total_chunks);
    }

    // Chunk outputs arrive in ascending global-chunk order (the
    // run_chunks contract) and each cell's chunks are contiguous, so
    // incoming cell indices are non-decreasing: one pending cell
    // suffices. `next_cell` is the lowest not-yet-emitted cell;
    // zero-rep cells produce no chunks and are emitted as identities
    // when the stream steps past them.
    let mut pending: Option<(usize, A)> = None;
    let mut next_cell = 0usize;
    {
        let mut flush_through = |upto: usize, pending: &mut Option<(usize, A)>, emit: &mut E| {
            if let Some((c, acc)) = pending.take() {
                debug_assert_eq!(c, next_cell);
                emit(c, acc);
                next_cell = c + 1;
            }
            while next_cell < upto {
                debug_assert_eq!(cells[next_cell], 0, "non-empty cell skipped");
                emit(next_cell, identity(next_cell));
                next_cell += 1;
            }
        };
        run_chunks(
            total_chunks * CHUNK,
            |range| {
                let gchunk = range.start / CHUNK;
                // The owning cell: last offset <= gchunk. Zero-rep cells
                // contribute no chunks and are skipped by partition_point.
                let cell = chunk_offset.partition_point(|&o| o <= gchunk) - 1;
                let base = chunk_offset[cell] * CHUNK;
                let mut acc = identity(cell);
                for g in range {
                    let r = g - base;
                    if r < cells[cell] {
                        map(cell, r, &mut acc);
                    }
                }
                (cell, acc)
            },
            |(cell, acc)| match &mut pending {
                Some((c, g)) if *c == cell => merge(g, acc),
                _ => {
                    flush_through(cell, &mut pending, &mut emit);
                    pending = Some((cell, acc));
                }
            },
        );
        flush_through(cells.len(), &mut pending, &mut emit);
    }
}

/// Run `reps` independent replications of `f` in parallel.
///
/// `f` is called with `(replication_index, seed)` where `seed` is derived
/// deterministically from `master_seed`. Results are returned in index
/// order.
///
/// ```
/// use csmaprobe_desim::replicate;
///
/// // Estimate E[U] for U ~ Uniform[0,1) with 1000 replications.
/// let xs = replicate::run(1000, 42, |_, seed| {
///     let mut rng = csmaprobe_desim::rng::SimRng::new(seed);
///     rng.f64()
/// });
/// let mean = xs.iter().sum::<f64>() / xs.len() as f64;
/// assert!((mean - 0.5).abs() < 0.05);
/// ```
pub fn run<T, F>(reps: usize, master_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    let mut out: Vec<T> = Vec::with_capacity(reps);
    run_chunks(
        reps,
        |range| {
            range
                .map(|i| f(i, derive_seed(master_seed, i as u64)))
                .collect::<Vec<T>>()
        },
        |chunk| out.extend(chunk),
    );
    out
}

/// Run `reps` replications and fold the per-replication outputs into an
/// accumulator, in replication order.
///
/// Streaming: only one chunk of outputs ([`CHUNK`] replications) is
/// buffered per worker, never the whole result set.
pub fn run_fold<T, A, F, G>(reps: usize, master_seed: u64, f: F, init: A, mut fold: G) -> A
where
    T: Send,
    A: Send,
    F: Fn(usize, u64) -> T + Sync,
    G: FnMut(A, T) -> A + Send,
{
    let mut acc = Some(init);
    run_chunks(
        reps,
        |range| {
            range
                .map(|i| f(i, derive_seed(master_seed, i as u64)))
                .collect::<Vec<T>>()
        },
        |chunk| {
            let mut a = acc.take().expect("fold accumulator present");
            for t in chunk {
                a = fold(a, t);
            }
            acc = Some(a);
        },
    );
    acc.expect("fold accumulator present")
}

/// Fully streaming map-reduce over `reps` replications.
///
/// Each worker folds replications straight into a chunk accumulator
/// (`map(i, seed, &mut acc)`) created by `identity()`; chunk
/// accumulators are merged with `merge` in **deterministic chunk
/// order**. Nothing per-replication is ever materialised, so peak
/// memory is O(workers × accumulator) — this is the hot path behind
/// every transient experiment.
///
/// The result is bit-identical across worker counts because the chunk
/// grid ([`CHUNK`]) and the merge order are fixed.
///
/// ```
/// use csmaprobe_desim::replicate;
///
/// // Streaming mean over 10_000 replications, no Vec of outputs.
/// let (n, sum) = replicate::run_reduce(
///     10_000,
///     42,
///     |_, seed, acc: &mut (u64, f64)| {
///         let mut rng = csmaprobe_desim::rng::SimRng::new(seed);
///         acc.0 += 1;
///         acc.1 += rng.f64();
///     },
///     || (0u64, 0.0f64),
///     |a, b| {
///         a.0 += b.0;
///         a.1 += b.1;
///     },
/// );
/// assert_eq!(n, 10_000);
/// assert!((sum / n as f64 - 0.5).abs() < 0.02);
/// ```
pub fn run_reduce<A, F, I, M>(reps: usize, master_seed: u64, map: F, identity: I, merge: M) -> A
where
    A: Send,
    F: Fn(usize, u64, &mut A) + Sync,
    I: Fn() -> A + Sync,
    M: Fn(&mut A, A) + Send + Sync,
{
    let mut global: Option<A> = None;
    run_chunks(
        reps,
        |range| {
            let mut acc = identity();
            for i in range {
                map(i, derive_seed(master_seed, i as u64), &mut acc);
            }
            acc
        },
        |chunk| match &mut global {
            None => global = Some(chunk),
            Some(g) => merge(g, chunk),
        },
    );
    global.unwrap_or_else(identity)
}

/// [`run_reduce`] with **chunk-granular mapping**: `map_chunk` receives
/// a whole chunk's replication index range plus the per-replication
/// seeds (`seeds[k]` belongs to replication `range.start + k`, derived
/// exactly as [`run_reduce`] derives them) and folds all of them into
/// the chunk accumulator in one call.
///
/// This is the seam a replication-**batched** kernel plugs into: when
/// the engine tier for a cell has a batched implementation, one
/// `map_chunk` call runs the whole [`CHUNK`]-lane kernel instead of
/// [`CHUNK`] scalar event loops. The chunk grid and ascending-chunk
/// merge order are identical to [`run_reduce`], so as long as
/// `map_chunk` folds replications in ascending index order (which a
/// bit-identical batched kernel does by construction), the result is
/// bit-identical to the scalar path for any worker count.
pub fn run_reduce_chunked<A, F, I, M>(
    reps: usize,
    master_seed: u64,
    map_chunk: F,
    identity: I,
    merge: M,
) -> A
where
    A: Send,
    F: Fn(Range<usize>, &[u64], &mut A) + Sync,
    I: Fn() -> A + Sync,
    M: Fn(&mut A, A) + Send + Sync,
{
    let mut global: Option<A> = None;
    run_chunks(
        reps,
        |range| {
            let seeds: Vec<u64> = range
                .clone()
                .map(|i| derive_seed(master_seed, i as u64))
                .collect();
            let mut acc = identity();
            map_chunk(range, &seeds, &mut acc);
            acc
        },
        |chunk| match &mut global {
            None => global = Some(chunk),
            Some(g) => merge(g, chunk),
        },
    );
    global.unwrap_or_else(identity)
}

/// [`run_cells_emit`] with **chunk-granular mapping** — the grid-shaped
/// counterpart of [`run_reduce_chunked`].
///
/// `map_chunk(cell, range, &mut acc)` folds the cell-local replication
/// index range `range` (always inside one [`CHUNK`]-aligned chunk of
/// that cell) into the chunk accumulator; seed derivation stays with
/// the caller, exactly as in [`run_cells_emit`]. Cells whose tier has
/// no batched kernel simply loop over `range` one replication at a
/// time inside `map_chunk` — bit-identical to the per-replication form
/// by the same chunk-grid argument.
pub fn run_cells_emit_chunked<A, F, I, M, E>(
    cells: &[usize],
    map_chunk: F,
    identity: I,
    merge: M,
    mut emit: E,
) where
    A: Send,
    F: Fn(usize, Range<usize>, &mut A) + Sync,
    I: Fn(usize) -> A + Sync,
    M: Fn(&mut A, A) + Send + Sync,
    E: FnMut(usize, A) + Send,
{
    let mut chunk_offset = Vec::with_capacity(cells.len() + 1);
    let mut total_chunks = 0usize;
    chunk_offset.push(0);
    for &reps in cells {
        total_chunks += reps.div_ceil(CHUNK);
        chunk_offset.push(total_chunks);
    }

    let mut pending: Option<(usize, A)> = None;
    let mut next_cell = 0usize;
    {
        let mut flush_through = |upto: usize, pending: &mut Option<(usize, A)>, emit: &mut E| {
            if let Some((c, acc)) = pending.take() {
                debug_assert_eq!(c, next_cell);
                emit(c, acc);
                next_cell = c + 1;
            }
            while next_cell < upto {
                debug_assert_eq!(cells[next_cell], 0, "non-empty cell skipped");
                emit(next_cell, identity(next_cell));
                next_cell += 1;
            }
        };
        run_chunks(
            total_chunks * CHUNK,
            |range| {
                let gchunk = range.start / CHUNK;
                let cell = chunk_offset.partition_point(|&o| o <= gchunk) - 1;
                let base = chunk_offset[cell] * CHUNK;
                let lo = range.start - base;
                let hi = (range.end - base).min(cells[cell]);
                let mut acc = identity(cell);
                if lo < hi {
                    map_chunk(cell, lo..hi, &mut acc);
                }
                (cell, acc)
            },
            |(cell, acc)| match &mut pending {
                Some((c, g)) if *c == cell => merge(g, acc),
                _ => {
                    flush_through(cell, &mut pending, &mut emit);
                    pending = Some((cell, acc));
                }
            },
        );
        flush_through(cells.len(), &mut pending, &mut emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngCore;
    use crate::rng::SimRng;

    #[test]
    fn results_in_replication_order() {
        let out = run(257, 7, |i, _| i * 2);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let a = run(100, 99, |_, seed| SimRng::new(seed).next_u64());
        let b = run(100, 99, |_, seed| SimRng::new(seed).next_u64());
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential() {
        // Force the sequential path by reps=1 comparisons of per-index seeds.
        let par = run(64, 5, |i, seed| (i, seed));
        for (i, (idx, seed)) in par.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*seed, derive_seed(5, i as u64));
        }
    }

    #[test]
    fn zero_reps_is_empty() {
        let out: Vec<u64> = run(0, 1, |_, s| s);
        assert!(out.is_empty());
        let folded = run_fold(0, 1, |_, s| s, 17u64, |a, b| a + b);
        assert_eq!(folded, 17);
        let reduced = run_reduce(0, 1, |_, _, a: &mut u64| *a += 1, || 0u64, |a, b| *a += b);
        assert_eq!(reduced, 0);
    }

    #[test]
    fn run_fold_accumulates_in_order() {
        let s = run_fold(
            10,
            3,
            |i, _| i as u64,
            Vec::new(),
            |mut acc, v| {
                acc.push(v);
                acc
            },
        );
        assert_eq!(s, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn run_reduce_counts_every_replication() {
        let n = run_reduce(
            1000,
            1,
            |_, _, acc: &mut u64| *acc += 1,
            || 0u64,
            |a, b| *a += b,
        );
        assert_eq!(n, 1000);
    }

    #[test]
    fn run_reduce_sees_correct_seeds_in_chunk_order() {
        // Accumulate (index, seed) pairs; deterministic chunk-ordered
        // merge must reconstruct exact replication order.
        let pairs = run_reduce(
            150,
            11,
            |i, s, acc: &mut Vec<(usize, u64)>| acc.push((i, s)),
            Vec::new,
            |a, b| a.extend(b),
        );
        assert_eq!(pairs.len(), 150);
        for (i, (idx, seed)) in pairs.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*seed, derive_seed(11, i as u64));
        }
    }

    #[test]
    fn run_reduce_bit_identical_across_worker_counts() {
        // Floating-point accumulation is merge-order sensitive; the
        // chunk grid must make the result independent of worker count.
        let job = || {
            run_reduce(
                500,
                0xD15C,
                |_, seed, acc: &mut (f64, f64)| {
                    let x = SimRng::new(seed).f64();
                    acc.0 += x;
                    acc.1 += x * x;
                },
                || (0.0f64, 0.0f64),
                |a, b| {
                    a.0 += b.0;
                    a.1 += b.1;
                },
            )
        };
        set_worker_limit(1);
        let solo = job();
        set_worker_limit(4);
        let quad = job();
        set_worker_limit(0);
        assert_eq!(solo.0.to_bits(), quad.0.to_bits());
        assert_eq!(solo.1.to_bits(), quad.1.to_bits());
    }

    #[test]
    fn run_cells_counts_and_orders_every_cell() {
        let cells = [5usize, 0, 70, 1];
        let out = run_cells(
            &cells,
            |c, r, acc: &mut Vec<(usize, usize)>| acc.push((c, r)),
            |_| Vec::new(),
            |a, b| a.extend(b),
        );
        assert_eq!(out.len(), 4);
        for (c, pairs) in out.iter().enumerate() {
            assert_eq!(pairs.len(), cells[c], "cell {c}");
            for (i, &(pc, pr)) in pairs.iter().enumerate() {
                assert_eq!(pc, c);
                assert_eq!(pr, i, "cell {c} replication order");
            }
        }
    }

    #[test]
    fn run_cells_matches_standalone_run_reduce_bitwise() {
        // The contract core::sweep relies on: a cell embedded in any
        // grid reduces bit-identically to its own run_reduce, because
        // the cell-local chunk grid and merge order are preserved.
        let cell_reps = [7usize, 33, 100, 64];
        let standalone: Vec<(f64, f64)> = cell_reps
            .iter()
            .enumerate()
            .map(|(c, &reps)| {
                run_reduce(
                    reps,
                    derive_seed(0xCE11, c as u64),
                    |_, seed, acc: &mut (f64, f64)| {
                        let x = SimRng::new(seed).f64();
                        acc.0 += x;
                        acc.1 += x * x;
                    },
                    || (0.0f64, 0.0f64),
                    |a, b| {
                        a.0 += b.0;
                        a.1 += b.1;
                    },
                )
            })
            .collect();
        for workers in [1usize, 3] {
            set_worker_limit(workers);
            let grid = run_cells(
                &cell_reps,
                |c, r, acc: &mut (f64, f64)| {
                    let seed = derive_seed(derive_seed(0xCE11, c as u64), r as u64);
                    let x = SimRng::new(seed).f64();
                    acc.0 += x;
                    acc.1 += x * x;
                },
                |_| (0.0f64, 0.0f64),
                |a, b| {
                    a.0 += b.0;
                    a.1 += b.1;
                },
            );
            set_worker_limit(0);
            for (c, (g, s)) in grid.iter().zip(&standalone).enumerate() {
                assert_eq!(
                    g.0.to_bits(),
                    s.0.to_bits(),
                    "cell {c} sum, {workers} workers"
                );
                assert_eq!(
                    g.1.to_bits(),
                    s.1.to_bits(),
                    "cell {c} sumsq, {workers} workers"
                );
            }
        }
    }

    #[test]
    fn run_cells_emit_streams_in_cell_order() {
        // Zero-rep cells at the head, middle and tail must all emit
        // their identity at the right position.
        let cells = [0usize, 40, 0, 0, 7, 0];
        for workers in [1usize, 4] {
            set_worker_limit(workers);
            let mut emitted: Vec<(usize, u64)> = Vec::new();
            run_cells_emit(
                &cells,
                |_c, _r, acc: &mut u64| *acc += 1,
                |c| (c as u64) << 32,
                |a, b| *a += b & 0xFFFF_FFFF,
                |cell, acc| emitted.push((cell, acc)),
            );
            set_worker_limit(0);
            assert_eq!(emitted.len(), cells.len());
            for (i, &(cell, acc)) in emitted.iter().enumerate() {
                assert_eq!(cell, i, "ascending emission order");
                assert_eq!(acc >> 32, i as u64, "identity tagged with its cell");
                assert_eq!(acc & 0xFFFF_FFFF, cells[i] as u64, "replication count");
            }
        }
    }

    #[test]
    fn run_cells_emit_matches_run_cells_bitwise() {
        let cells = [33usize, 0, 100, 64, 1];
        let reference = run_cells(
            &cells,
            |c, r, acc: &mut (f64, f64)| {
                let x = SimRng::new(derive_seed(c as u64, r as u64)).f64();
                acc.0 += x;
                acc.1 += x * x;
            },
            |_| (0.0f64, 0.0f64),
            |a, b| {
                a.0 += b.0;
                a.1 += b.1;
            },
        );
        for workers in [1usize, 3] {
            set_worker_limit(workers);
            let mut streamed = Vec::new();
            run_cells_emit(
                &cells,
                |c, r, acc: &mut (f64, f64)| {
                    let x = SimRng::new(derive_seed(c as u64, r as u64)).f64();
                    acc.0 += x;
                    acc.1 += x * x;
                },
                |_| (0.0f64, 0.0f64),
                |a, b| {
                    a.0 += b.0;
                    a.1 += b.1;
                },
                |_, acc| streamed.push(acc),
            );
            set_worker_limit(0);
            for (c, (s, r)) in streamed.iter().zip(&reference).enumerate() {
                assert_eq!(
                    s.0.to_bits(),
                    r.0.to_bits(),
                    "cell {c} sum, {workers} workers"
                );
                assert_eq!(
                    s.1.to_bits(),
                    r.1.to_bits(),
                    "cell {c} sumsq, {workers} workers"
                );
            }
        }
    }

    #[test]
    fn run_cells_empty_grid_is_empty() {
        let out: Vec<u64> = run_cells(&[], |_, _, _| {}, |_| 0, |a, b| *a += b);
        assert!(out.is_empty());
    }

    #[test]
    fn run_tasks_returns_in_task_order() {
        for limit in [1usize, 4] {
            set_worker_limit(limit);
            let tasks: Vec<_> = (0..23).map(|i| move || i * i).collect();
            let out = run_tasks(3, tasks);
            set_worker_limit(0);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_tasks_nests_replication_calls() {
        // The figure-scheduler shape: tasks that themselves run
        // reduces on the same executor.
        set_worker_limit(4);
        let tasks: Vec<_> = (0..5u64)
            .map(|t| {
                move || {
                    run_reduce(
                        100,
                        t,
                        |_, seed, acc: &mut u64| *acc ^= SimRng::new(seed).next_u64(),
                        || 0u64,
                        |a, b| *a ^= b,
                    )
                }
            })
            .collect();
        let nested = run_tasks(2, tasks);
        set_worker_limit(1);
        let solo: Vec<u64> = (0..5u64)
            .map(|t| {
                run_reduce(
                    100,
                    t,
                    |_, seed, acc: &mut u64| *acc ^= SimRng::new(seed).next_u64(),
                    || 0u64,
                    |a, b| *a ^= b,
                )
            })
            .collect();
        set_worker_limit(0);
        assert_eq!(nested, solo);
    }

    #[test]
    fn run_reduce_chunked_matches_per_replication_form() {
        // The batched-kernel seam: folding a whole chunk at once (in
        // ascending index order) must reproduce run_reduce bit-wise,
        // for ragged tails and any worker count.
        for reps in [0usize, 1, 31, 32, 33, 150] {
            let reference = run_reduce(
                reps,
                0xBA7C,
                |i, seed, acc: &mut (f64, Vec<(usize, u64)>)| {
                    acc.0 += SimRng::new(seed).f64();
                    acc.1.push((i, seed));
                },
                || (0.0f64, Vec::new()),
                |a, b| {
                    a.0 += b.0;
                    a.1.extend(b.1);
                },
            );
            for workers in [1usize, 4] {
                set_worker_limit(workers);
                let chunked = run_reduce_chunked(
                    reps,
                    0xBA7C,
                    |range: Range<usize>, seeds: &[u64], acc: &mut (f64, Vec<(usize, u64)>)| {
                        assert_eq!(seeds.len(), range.len());
                        for (k, i) in range.enumerate() {
                            acc.0 += SimRng::new(seeds[k]).f64();
                            acc.1.push((i, seeds[k]));
                        }
                    },
                    || (0.0f64, Vec::new()),
                    |a, b| {
                        a.0 += b.0;
                        a.1.extend(b.1);
                    },
                );
                set_worker_limit(0);
                assert_eq!(chunked.0.to_bits(), reference.0.to_bits(), "reps {reps}");
                assert_eq!(chunked.1, reference.1, "reps {reps}, {workers} workers");
            }
        }
    }

    #[test]
    fn run_cells_emit_chunked_matches_per_replication_form() {
        let cells = [33usize, 0, 100, 64, 1];
        let mut reference = Vec::new();
        run_cells_emit(
            &cells,
            |c, r, acc: &mut (f64, f64)| {
                let x = SimRng::new(derive_seed(c as u64, r as u64)).f64();
                acc.0 += x;
                acc.1 += x * x;
            },
            |_| (0.0f64, 0.0f64),
            |a, b| {
                a.0 += b.0;
                a.1 += b.1;
            },
            |_, acc| reference.push(acc),
        );
        for workers in [1usize, 3] {
            set_worker_limit(workers);
            let mut streamed = Vec::new();
            run_cells_emit_chunked(
                &cells,
                |c, range: Range<usize>, acc: &mut (f64, f64)| {
                    for r in range {
                        let x = SimRng::new(derive_seed(c as u64, r as u64)).f64();
                        acc.0 += x;
                        acc.1 += x * x;
                    }
                },
                |_| (0.0f64, 0.0f64),
                |a, b| {
                    a.0 += b.0;
                    a.1 += b.1;
                },
                |_, acc| streamed.push(acc),
            );
            set_worker_limit(0);
            assert_eq!(streamed.len(), reference.len());
            for (c, (s, r)) in streamed.iter().zip(&reference).enumerate() {
                assert_eq!(s.0.to_bits(), r.0.to_bits(), "cell {c}, {workers} workers");
                assert_eq!(s.1.to_bits(), r.1.to_bits(), "cell {c}, {workers} workers");
            }
        }
    }

    #[test]
    fn run_bit_identical_across_worker_counts() {
        let job = || run(300, 77, |_, seed| SimRng::new(seed).next_u64());
        set_worker_limit(1);
        let solo = job();
        set_worker_limit(3);
        let tri = job();
        set_worker_limit(0);
        assert_eq!(solo, tri);
    }
}
