//! Thread-parallel Monte-Carlo replication.
//!
//! The paper's results are averages over very many independent
//! repetitions (80 testbed runs; 25 000 NS2 runs; 70 000 Matlab runs).
//! [`run`] executes `reps` independent replications of a closure across
//! all available cores and returns the results **in replication order**,
//! so downstream statistics are identical to a sequential run.
//!
//! Determinism: replication `i` always receives `derive_seed(master, i)`
//! regardless of which thread executes it, so the result set is a pure
//! function of `(master_seed, reps)`.

use crate::rng::derive_seed;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use: the available parallelism, capped so
/// tiny jobs do not pay thread spawn cost.
fn worker_count(reps: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(reps).max(1)
}

/// Run `reps` independent replications of `f` in parallel.
///
/// `f` is called with `(replication_index, seed)` where `seed` is derived
/// deterministically from `master_seed`. Results are returned in index
/// order.
///
/// ```
/// use csmaprobe_desim::replicate;
///
/// // Estimate E[U] for U ~ Uniform[0,1) with 1000 replications.
/// let xs = replicate::run(1000, 42, |_, seed| {
///     let mut rng = csmaprobe_desim::rng::SimRng::new(seed);
///     rng.f64()
/// });
/// let mean = xs.iter().sum::<f64>() / xs.len() as f64;
/// assert!((mean - 0.5).abs() < 0.05);
/// ```
pub fn run<T, F>(reps: usize, master_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    if reps == 0 {
        return Vec::new();
    }
    let workers = worker_count(reps);
    if workers == 1 {
        return (0..reps)
            .map(|i| f(i, derive_seed(master_seed, i as u64)))
            .collect();
    }

    let mut slots: Vec<Option<T>> = Vec::with_capacity(reps);
    slots.resize_with(reps, || None);
    let slots = Mutex::new(slots);
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Batch of locally-completed results to amortise locking.
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= reps {
                        break;
                    }
                    local.push((i, f(i, derive_seed(master_seed, i as u64))));
                    if local.len() >= 64 {
                        let mut guard = slots.lock().unwrap();
                        for (idx, v) in local.drain(..) {
                            guard[idx] = Some(v);
                        }
                    }
                }
                if !local.is_empty() {
                    let mut guard = slots.lock().unwrap();
                    for (idx, v) in local.drain(..) {
                        guard[idx] = Some(v);
                    }
                }
            });
        }
    });

    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|s| s.expect("replication slot not filled"))
        .collect()
}

/// Run `reps` replications and fold the per-replication outputs into an
/// accumulator, in replication order.
///
/// Convenience wrapper over [`run`] for the common "average something
/// across replications" pattern.
pub fn run_fold<T, A, F, G>(reps: usize, master_seed: u64, f: F, init: A, mut fold: G) -> A
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
    G: FnMut(A, T) -> A,
{
    let results = run(reps, master_seed, f);
    let mut acc = init;
    for r in results {
        acc = fold(acc, r);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::rng::RngCore;

    #[test]
    fn results_in_replication_order() {
        let out = run(257, 7, |i, _| i * 2);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let a = run(100, 99, |_, seed| SimRng::new(seed).next_u64());
        let b = run(100, 99, |_, seed| SimRng::new(seed).next_u64());
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential() {
        // Force the sequential path by reps=1 comparisons of per-index seeds.
        let par = run(64, 5, |i, seed| (i, seed));
        for (i, (idx, seed)) in par.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*seed, derive_seed(5, i as u64));
        }
    }

    #[test]
    fn zero_reps_is_empty() {
        let out: Vec<u64> = run(0, 1, |_, s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn run_fold_accumulates_in_order() {
        let s = run_fold(10, 3, |i, _| i as u64, Vec::new(), |mut acc, v| {
            acc.push(v);
            acc
        });
        assert_eq!(s, (0..10).collect::<Vec<u64>>());
    }
}
