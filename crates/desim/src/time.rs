//! Integer simulation time.
//!
//! The engine keeps all time in **unsigned 64-bit nanoseconds**. Floating
//! point never enters scheduling decisions, which keeps simulations
//! bit-reproducible and immune to accumulation error over long runs
//! (2^64 ns ≈ 584 years of simulated time).
//!
//! Two newtypes are provided:
//!
//! * [`Time`] — an absolute instant on the simulation clock (ns since the
//!   start of the run).
//! * [`Dur`] — a span between two instants.
//!
//! Arithmetic between them is closed in the obvious way
//! (`Time + Dur = Time`, `Time - Time = Dur`, `Dur * u64 = Dur`, …) and
//! saturating variants are provided where underflow is a legitimate
//! possibility in measurement code.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in nanoseconds since the
/// beginning of the simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A duration (span between two [`Time`] instants), in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);
    /// The largest representable instant. Used as an "infinitely far in
    /// the future" sentinel when scheduling.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from integer nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Time(us * NANOS_PER_MICRO)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * NANOS_PER_MILLI)
    }

    /// Construct from (possibly fractional) seconds, rounding to the
    /// nearest nanosecond. Panics in debug builds if `secs` is negative
    /// or non-finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        Time((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in seconds (lossy above 2^53 ns).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This instant expressed in microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    /// Duration elapsed since `earlier`. Panics in debug builds if
    /// `earlier` is after `self`.
    #[inline]
    pub fn since(self, earlier: Time) -> Dur {
        debug_assert!(self >= earlier, "time went backwards: {self} < {earlier}");
        Dur(self.0 - earlier.0)
    }

    /// Duration since `earlier`, or [`Dur::ZERO`] if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);
    /// The largest representable duration.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Construct from integer nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Dur(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Dur(us * NANOS_PER_MICRO)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Dur(ms * NANOS_PER_MILLI)
    }

    /// Construct from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * NANOS_PER_SEC)
    }

    /// Construct from (possibly fractional) seconds, rounding to the
    /// nearest nanosecond.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        Dur((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in seconds (lossy above 2^53 ns).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The duration in microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    /// `self - other`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// `self * num / den` in 128-bit intermediate precision, rounding
    /// down. Useful for scaling durations without overflow.
    #[inline]
    pub fn mul_div(self, num: u64, den: u64) -> Dur {
        debug_assert!(den != 0);
        Dur((self.0 as u128 * num as u128 / den as u128) as u64)
    }

    /// How many whole `unit`s fit in this duration.
    #[inline]
    pub fn div_dur(self, unit: Dur) -> u64 {
        debug_assert!(unit.0 != 0);
        self.0 / unit.0
    }

    /// How many `unit`s are needed to cover this duration (ceiling).
    #[inline]
    pub fn div_ceil_dur(self, unit: Dur) -> u64 {
        debug_assert!(unit.0 != 0);
        self.0.div_ceil(unit.0)
    }

    /// The shorter of two durations.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign<Dur> for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Rem<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn rem(self, rhs: Dur) -> Dur {
        Dur(self.0 % rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < NANOS_PER_MICRO {
            write!(f, "{}ns", self.0)
        } else if self.0 < NANOS_PER_SEC {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Time::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Time::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Dur::from_secs(1).as_nanos(), NANOS_PER_SEC);
        assert_eq!(Dur::from_micros(20).as_nanos(), 20_000);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(Time::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(Dur::from_secs_f64(0.5).as_nanos(), NANOS_PER_SEC / 2);
        // 1.5 ns rounds to 2 ns
        assert_eq!(Dur::from_secs_f64(1.5e-9).as_nanos(), 2);
    }

    #[test]
    fn arithmetic_is_closed() {
        let t = Time::from_micros(100);
        let d = Dur::from_micros(30);
        assert_eq!(t + d, Time::from_micros(130));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, Time::from_micros(70));
        assert_eq!(d * 3, Dur::from_micros(90));
        assert_eq!(d / 2, Dur::from_micros(15));
    }

    #[test]
    fn since_and_saturating() {
        let a = Time::from_micros(10);
        let b = Time::from_micros(25);
        assert_eq!(b.since(a), Dur::from_micros(15));
        assert_eq!(a.saturating_since(b), Dur::ZERO);
        assert_eq!(
            Dur::from_micros(5).saturating_sub(Dur::from_micros(9)),
            Dur::ZERO
        );
    }

    #[test]
    fn div_and_mul_div() {
        let slot = Dur::from_micros(20);
        assert_eq!(Dur::from_micros(65).div_dur(slot), 3);
        assert_eq!(Dur::from_micros(65).div_ceil_dur(slot), 4);
        assert_eq!(Dur::from_micros(60).div_ceil_dur(slot), 3);
        // (u64::MAX / 2) * 2 / 2 does not overflow thanks to u128 math.
        let big = Dur(u64::MAX / 2);
        assert_eq!(big.mul_div(2, 2), big);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Time::from_nanos(5);
        let b = Time::from_nanos(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Dur(3).max(Dur(8)), Dur(8));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Dur::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Dur::from_micros(20)), "20.000us");
        assert_eq!(format!("{}", Dur::from_secs(2)), "2.000000s");
    }
}
