//! Deterministic random number generation.
//!
//! Every simulation in this workspace takes an explicit `u64` seed and
//! produces bit-identical results for the same seed, independent of
//! thread scheduling. Two pieces make that possible:
//!
//! * [`split_mix64`] — the SplitMix64 mixing function, used to derive
//!   independent per-replication / per-source seeds from a master seed.
//! * [`SimRng`] — a xoshiro256++ generator implementing the local
//!   [`RngCore`] trait (a drop-in subset of `rand::RngCore`, defined
//!   here so the workspace builds with no external dependencies).
//!   xoshiro256++ is the generator recommended by its authors for
//!   general simulation work: 256-bit state, 1.17 ns/word, passes
//!   BigCrush.
//!
//! We implement the generator in ~40 lines rather than depending on a
//! specific `rand_xoshiro` release so that stream reproducibility is
//! pinned by this crate, not by a third-party version bump.

/// The subset of `rand::RngCore` the workspace uses, defined locally so
/// no external crate is required. Signatures match `rand` 0.8, so a
/// future `rand` dependency can replace this trait without touching
/// call sites.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// One step of the SplitMix64 sequence starting at `state`, returning the
/// mixed output. Also the recommended way to seed other generators.
///
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators", OOPSLA 2014 (public-domain reference implementation).
#[inline]
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derive the `index`-th child seed from a master seed.
///
/// Children are decorrelated by running SplitMix64 `index + 1` steps from
/// the master; this is cheap (a few ns) for the index ranges used by the
/// replication runner.
#[inline]
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut s = master ^ 0xA076_1D64_78BD_642F; // avoid the all-zero fixed point
    let mut out = 0;
    // Mix the index into the stream position: jump by index using one
    // multiply-xor, then one SplitMix64 step for avalanche.
    s = s.wrapping_add(index.wrapping_mul(0x9E3779B97F4A7C15));
    out ^= split_mix64(&mut s);
    out ^ split_mix64(&mut s)
}

/// A xoshiro256++ pseudorandom generator.
///
/// Implements the local [`RngCore`] trait (signature-compatible with
/// `rand::RngCore`). Construct with [`SimRng::new`] from a 64-bit seed
/// (the 256-bit internal state is expanded with SplitMix64, per the
/// authors' recommendation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = split_mix64(&mut sm);
        }
        // The all-zero state is invalid for xoshiro; SplitMix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        SimRng { s }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.step() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An exponentially distributed `f64` with the given mean.
    ///
    /// Uses inversion on `1 - U` so the argument of `ln` is never zero.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        -mean * (1.0 - self.f64()).ln()
    }

    /// A uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.step();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Fork an independent child generator; the child stream is derived
    /// from the parent's next output so parent and child remain
    /// decorrelated.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.step() ^ 0x6A09_E667_F3BC_C909)
    }
}

impl RngCore for SimRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.step().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.step().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: running the authors' C code with state expanded by
        // SplitMix64 from seed 0 gives these first outputs.
        let mut sm = 0u64;
        let s: Vec<u64> = (0..4).map(|_| split_mix64(&mut sm)).collect();
        let mut rng = SimRng {
            s: [s[0], s[1], s[2], s[3]],
        };
        // First output of xoshiro256++: rotl(s0 + s3, 23) + s0.
        let expected = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        assert_eq!(rng.next_u64(), expected);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut rng = SimRng::new(11);
        let n = 200_000;
        let mean = 3.5;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let got = sum / n as f64;
        assert!((got - mean).abs() < 0.05, "sample mean {got} vs {mean}");
    }

    #[test]
    fn below_is_unbiased_and_in_range() {
        let mut rng = SimRng::new(5);
        let bound = 7u64;
        let mut counts = [0u64; 7];
        let n = 140_000;
        for _ in 0..n {
            let v = rng.below(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i} deviates {dev}");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = SimRng::new(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            let v = rng.range_inclusive(3, 5);
            assert!((3..=5).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 5;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn derive_seed_decorrelates() {
        let a = derive_seed(99, 0);
        let b = derive_seed(99, 1);
        let c = derive_seed(100, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Streams from adjacent derived seeds must not collide early.
        let mut ra = SimRng::new(a);
        let mut rb = SimRng::new(b);
        let same = (0..64).filter(|_| ra.next_u64() == rb.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::new(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = SimRng::new(21);
        let mut child = parent.fork();
        let same = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(same, 0);
    }
}
