//! # csmaprobe-desim
//!
//! Discrete-event simulation substrate for the `csmaprobe` workspace
//! (reproduction of *"Impact of Transient CSMA/CA Access Delays on
//! Active Bandwidth Measurements"*, IMC 2009).
//!
//! This crate contains nothing about 802.11 — it is the neutral engine
//! the protocol models are built on:
//!
//! * [`time`] — integer-nanosecond [`time::Time`] / [`time::Dur`]
//!   newtypes. No floating point in scheduling.
//! * [`event`] — a deterministic event calendar with FIFO tie-breaking.
//! * [`rng`] — seeded, reproducible xoshiro256++ streams and SplitMix64
//!   seed derivation.
//! * [`executor`] — the process-wide work-stealing chunk executor: one
//!   worker pool serving every concurrent submission, with ascending
//!   chunk-order delivery (the determinism backbone).
//! * [`replicate`] — the Monte-Carlo replication runners built on it,
//!   whose output is bit-identical to a sequential run.
//!
//! Design note: per the workspace guides, CPU-bound simulation is kept
//! off async runtimes entirely; parallelism is a plain thread pool over
//! independent replication chunks.

pub mod event;
pub mod executor;
pub mod replicate;
pub mod rng;
pub mod time;

pub use event::EventQueue;
pub use rng::{derive_seed, split_mix64, RngCore, SimRng};
pub use time::{Dur, Time};
