//! The engine's bit-reproducibility contract, pinned in CI: a full
//! `all_figures` run is a pure function of `(scale, seed)` — the
//! `experiments.json` payload is byte-identical across runs, across
//! **worker counts** (`CSMAPROBE_WORKERS`, including oversubscribed
//! ones), and across figure-level concurrency (`--jobs`, which turns
//! every figure into a task on the shared work-stealing executor) —
//! modulo the wall-clock `elapsed_s` fields.
//!
//! This is the executable form of what README/rustdoc promise in
//! prose: chunk-gridded reduction makes floating-point results
//! independent of scheduling — plain replications, sweeps, the
//! two-phase MSER passes, and cross-submission work stealing alike.

use std::path::Path;
use std::process::Command;

/// Run the `all_figures` binary in `dir` with `workers` pinned and
/// `jobs` figures scheduled concurrently, and return the
/// `experiments.json` payload it wrote.
fn run_all_figures(dir: &Path, workers: usize, jobs: usize) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_all_figures"))
        .args([
            "--scale",
            "0.05",
            "--seed",
            "42",
            "--jobs",
            &jobs.to_string(),
        ])
        .env("CSMAPROBE_WORKERS", workers.to_string())
        .current_dir(dir)
        .output()
        .expect("spawn all_figures");
    // Check outcomes are part of the compared payload, so a failed
    // check (possible at smoke scale) must not abort the test — only a
    // crash should.
    assert!(
        out.status.code().is_some(),
        "all_figures killed by signal: {:?}",
        out.status
    );
    std::fs::read_to_string(dir.join("experiments.json")).expect("experiments.json written")
}

/// Drop every `"elapsed_s":<number>` field (the one legitimately
/// non-deterministic value in a report).
fn strip_elapsed(payload: &str) -> String {
    let mut out = String::with_capacity(payload.len());
    let mut rest = payload;
    while let Some(at) = rest.find(",\"elapsed_s\":") {
        out.push_str(&rest[..at]);
        let tail = &rest[at + ",\"elapsed_s\":".len()..];
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

#[test]
fn experiments_json_identical_across_worker_counts() {
    let base = std::env::temp_dir().join(format!("csmaprobe-determinism-{}", std::process::id()));
    // Both ends of the worker range plus an oversubscribed point (8
    // workers on whatever the CI runner has), with figures scheduled
    // concurrently under the last two — the executor must reduce every
    // figure bit-identically no matter what else is stealing from it.
    let configs: [(usize, usize); 3] = [(1, 1), (4, 4), (8, 8)];
    let payloads: Vec<String> = configs
        .iter()
        .map(|&(workers, jobs)| {
            let dir = base.join(format!("workers{workers}jobs{jobs}"));
            std::fs::create_dir_all(&dir).expect("create run dir");
            let payload = run_all_figures(&dir, workers, jobs);
            assert!(
                payload.contains("\"id\":\"fig13\"") && payload.contains("\"id\":\"fig17\""),
                "payload looks truncated ({} bytes)",
                payload.len()
            );
            payload
        })
        .collect();
    let golden = strip_elapsed(&payloads[0]);
    for (i, payload) in payloads.iter().enumerate().skip(1) {
        let stripped = strip_elapsed(payload);
        assert!(
            golden == stripped,
            "experiments.json differs between {:?} and {:?} (modulo elapsed_s): \
             {} vs {} bytes",
            configs[0],
            configs[i],
            golden.len(),
            stripped.len()
        );
    }
    // elapsed_s was actually present and stripped — guard against the
    // field being renamed and the test silently comparing nothing.
    assert!(payloads[0].contains("elapsed_s"), "elapsed_s field gone?");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn strip_elapsed_removes_only_the_timing_field() {
    let raw = r#"{"id":"a","elapsed_s":1.25e0}|{"id":"b","checks":[],"elapsed_s":0.5}"#;
    // Note: the field always follows another field in real payloads,
    // hence the leading comma in the pattern.
    let cooked = strip_elapsed(&raw.replace("\",\"elapsed_s\"", "\",\"x\":0,\"elapsed_s\""));
    assert!(!cooked.contains("elapsed_s"));
    assert!(cooked.contains("\"id\":\"a\""));
    assert!(cooked.contains("\"checks\":[]"));
}
