//! The engine's bit-reproducibility contract, pinned in CI: a full
//! `all_figures` run is a pure function of `(scale, seed)` — the
//! `experiments.json` payload is byte-identical across runs, across
//! **worker counts** (`CSMAPROBE_WORKERS`, including oversubscribed
//! ones), and across figure-level concurrency (`--jobs`, which turns
//! every figure into a task on the shared work-stealing executor) —
//! modulo the wall-clock `elapsed_s` and `wallclock` fields. A second
//! leg pins the engine router across all three policies:
//! `CSMAPROBE_ENGINE=analytic` reproduces the auto payload byte for
//! byte (auto promotes exactly what the tier certifies), and
//! `CSMAPROBE_ENGINE=event` reproduces it on every figure except the
//! analytic-promoted rate-response sweep (`fig01`), which must differ
//! — the fixed point replacing the simulation there is the point.
//!
//! This is the executable form of what README/rustdoc promise in
//! prose: chunk-gridded reduction makes floating-point results
//! independent of scheduling — plain replications, sweeps, the
//! two-phase MSER passes, and cross-submission work stealing alike.

use std::path::Path;
use std::process::Command;

/// Run the `all_figures` binary in `dir` with `workers` pinned and
/// `jobs` figures scheduled concurrently, and return the
/// `experiments.json` payload it wrote. `engine` pins
/// `CSMAPROBE_ENGINE` (`None` leaves routing on auto).
fn run_all_figures(dir: &Path, workers: usize, jobs: usize, engine: Option<&str>) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_all_figures"));
    cmd.args([
        "--scale",
        "0.05",
        "--seed",
        "42",
        "--jobs",
        &jobs.to_string(),
    ])
    .env("CSMAPROBE_WORKERS", workers.to_string())
    .current_dir(dir);
    match engine {
        Some(tier) => cmd.env("CSMAPROBE_ENGINE", tier),
        None => cmd.env_remove("CSMAPROBE_ENGINE"),
    };
    let out = cmd.output().expect("spawn all_figures");
    // Check outcomes are part of the compared payload, so a failed
    // check (possible at smoke scale) must not abort the test — only a
    // crash should.
    assert!(
        out.status.code().is_some(),
        "all_figures killed by signal: {:?}",
        out.status
    );
    std::fs::read_to_string(dir.join("experiments.json")).expect("experiments.json written")
}

/// Drop every `"elapsed_s":<number>` field and every
/// `"wallclock":[[..]..]` array (the two sanctioned non-deterministic
/// channels of a report — see `FigureReport::wallclock`).
fn strip_elapsed(payload: &str) -> String {
    let mut out = String::with_capacity(payload.len());
    let mut rest = payload;
    while let Some(at) = rest.find(",\"elapsed_s\":") {
        out.push_str(&rest[..at]);
        let tail = &rest[at + ",\"elapsed_s\":".len()..];
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    let payload = out;

    let mut out = String::with_capacity(payload.len());
    let mut rest = payload.as_str();
    while let Some(at) = rest.find(",\"wallclock\":[") {
        out.push_str(&rest[..at]);
        let tail = &rest[at + ",\"wallclock\":".len()..];
        // The value is a JSON array of [name, number] pairs with no
        // nested strings containing brackets: bracket depth suffices.
        let mut depth = 0usize;
        let mut end = tail.len();
        for (i, b) in tail.bytes().enumerate() {
            match b {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

#[test]
fn experiments_json_identical_across_worker_counts() {
    let base = std::env::temp_dir().join(format!("csmaprobe-determinism-{}", std::process::id()));
    // Both ends of the worker range plus an oversubscribed point (8
    // workers on whatever the CI runner has), with figures scheduled
    // concurrently under the last two — the executor must reduce every
    // figure bit-identically no matter what else is stealing from it.
    let configs: [(usize, usize); 3] = [(1, 1), (4, 4), (8, 8)];
    let payloads: Vec<String> = configs
        .iter()
        .map(|&(workers, jobs)| {
            let dir = base.join(format!("workers{workers}jobs{jobs}"));
            std::fs::create_dir_all(&dir).expect("create run dir");
            let payload = run_all_figures(&dir, workers, jobs, None);
            assert!(
                payload.contains("\"id\":\"fig13\"") && payload.contains("\"id\":\"fig17\""),
                "payload looks truncated ({} bytes)",
                payload.len()
            );
            payload
        })
        .collect();
    let golden = strip_elapsed(&payloads[0]);
    for (i, payload) in payloads.iter().enumerate().skip(1) {
        let stripped = strip_elapsed(payload);
        assert!(
            golden == stripped,
            "experiments.json differs between {:?} and {:?} (modulo elapsed_s): \
             {} vs {} bytes",
            configs[0],
            configs[i],
            golden.len(),
            stripped.len()
        );
    }
    // elapsed_s was actually present and stripped — guard against the
    // field being renamed and the test silently comparing nothing.
    assert!(payloads[0].contains("elapsed_s"), "elapsed_s field gone?");
    let _ = std::fs::remove_dir_all(&base);
}

/// Split a stripped payload into per-figure lines keyed by `"id"` —
/// `reports_to_json` writes one report object per line, so a line-wise
/// split is exact for this crate's own serialisation.
fn figure_lines(payload: &str) -> Vec<(String, String)> {
    payload
        .lines()
        .filter_map(|line| {
            let at = line.find("\"id\":\"")?;
            let rest = &line[at + "\"id\":\"".len()..];
            let end = rest.find('"')?;
            Some((rest[..end].to_string(), line.to_string()))
        })
        .collect()
}

/// Engine-routing transparency, end to end, across all three policies:
///
/// * **auto vs forced-analytic**: byte-identical (modulo timing
///   fields) on the *whole* payload — auto promotes exactly the cells
///   the analytic tier certifies, and the slotted kernel serving the
///   rest is trajectory-exact, so forcing `analytic` is a provable
///   no-op against auto.
/// * **auto vs forced-event**: byte-identical on every figure except
///   `fig01` — the paper's rate-response sweep, whose Poisson
///   finite-load cells the non-saturated fixed point now certifies, so
///   auto takes the whole curve off the simulators. That figure MUST
///   differ (the promotion being a silent no-op would mean the fixed
///   point never engaged); its own 5 % tolerance gates live in the
///   oracle tests and the `tier_equivalence` figure, not here.
#[test]
fn experiments_json_identical_with_forced_engines() {
    let base = std::env::temp_dir().join(format!("csmaprobe-engine-{}", std::process::id()));
    let legs: [(&str, Option<&str>); 3] = [
        ("auto", None),
        ("event", Some("event")),
        ("analytic", Some("analytic")),
    ];
    let payloads: Vec<String> = legs
        .iter()
        .map(|&(label, engine)| {
            let dir = base.join(label);
            std::fs::create_dir_all(&dir).expect("create run dir");
            let payload = run_all_figures(&dir, 4, 4, engine);
            assert!(
                payload.contains("\"id\":\"tier_equivalence\""),
                "payload looks truncated ({} bytes)",
                payload.len()
            );
            payload
        })
        .collect();
    // The wallclock channel must exist (the speedup figure always
    // records it) and must be the *only* difference besides elapsed_s.
    assert!(payloads[0].contains("\"wallclock\":["), "wallclock gone?");
    let auto = strip_elapsed(&payloads[0]);
    let event = strip_elapsed(&payloads[1]);
    let analytic = strip_elapsed(&payloads[2]);
    assert_eq!(
        auto, analytic,
        "forcing the analytic tier changed the payload: auto promotion \
         and the forced tier disagree on some cell"
    );
    let auto_figs = figure_lines(&auto);
    let event_figs = figure_lines(&event);
    assert_eq!(auto_figs.len(), event_figs.len(), "figure sets differ");
    let mut promoted_differs = false;
    for ((id_a, line_a), (id_e, line_e)) in auto_figs.iter().zip(&event_figs) {
        assert_eq!(id_a, id_e, "figure order differs between legs");
        if id_a == "fig01" {
            promoted_differs = line_a != line_e;
        } else {
            assert_eq!(
                line_a, line_e,
                "{id_a}: auto run differs from the forced-event oracle on a \
                 figure with no analytic-promoted cells"
            );
        }
    }
    assert!(
        promoted_differs,
        "fig01 is byte-identical to the forced-event run: the finite-load \
         promotion never engaged on the rate-response sweep"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn strip_elapsed_removes_only_the_timing_field() {
    let raw = r#"{"id":"a","elapsed_s":1.25e0}|{"id":"b","checks":[],"elapsed_s":0.5}"#;
    // Note: the field always follows another field in real payloads,
    // hence the leading comma in the pattern.
    let cooked = strip_elapsed(&raw.replace("\",\"elapsed_s\"", "\",\"x\":0,\"elapsed_s\""));
    assert!(!cooked.contains("elapsed_s"));
    assert!(cooked.contains("\"id\":\"a\""));
    assert!(cooked.contains("\"checks\":[]"));
}

#[test]
fn strip_elapsed_removes_the_wallclock_array() {
    let raw = concat!(
        r#"{"id":"tier_speedup","rows":[[1,2]],"#,
        r#""wallclock":[["a_event_s",0.52],["a_speedup",1.3e1]],"elapsed_s":0.9}"#,
        r#"|{"id":"b","checks":[]}"#
    );
    let cooked = strip_elapsed(raw);
    assert!(!cooked.contains("wallclock"));
    assert!(!cooked.contains("elapsed_s"));
    assert!(cooked.contains(r#""rows":[[1,2]]"#), "{cooked}");
    assert!(cooked.contains(r#"{"id":"b","checks":[]}"#));
}
