//! CLI contract tests for the `grid` binary: exit codes for malformed
//! flags (the `--max-cells 0` regression in particular), the
//! shard-fingerprint resume gate, and the end-to-end sharded-campaign
//! flow — two shards plus `--merge` must reproduce the unsharded
//! table byte for byte, with the shard row files left untouched.
//!
//! Exit-code convention under test: 0 done, 2 usage/configuration
//! error, 3 interrupted (cells or shards still pending).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A per-test scratch directory (fresh on every run).
fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("csmaprobe-grid-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run the `grid` bin in `dir` with a pinned worker count (the output
/// contract is worker-count-invariant; pinning just keeps CI quiet).
fn grid(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_grid"))
        .current_dir(dir)
        .env("CSMAPROBE_WORKERS", "2")
        .args(args)
        .output()
        .expect("spawn grid")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("grid terminated by signal")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The cheap 2-cell campaign every end-to-end test below sweeps.
const AXES: [&str; 6] = [
    "--links",
    "wired",
    "--trains",
    "short,mid",
    "--tools",
    "train",
];

#[test]
fn zero_max_cells_is_a_usage_error_not_a_silent_no_op() {
    let dir = scratch("maxcells0");
    let out = grid(&dir, &["--max-cells", "0"]);
    assert_eq!(code(&out), 2, "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("--max-cells 0"), "names the flag: {err}");
    assert!(err.contains("usage:"), "shows usage: {err}");
    assert!(
        !dir.join("grid_rows.jsonl").exists(),
        "a usage error must not touch the row file"
    );
}

#[test]
fn malformed_flag_values_exit_2() {
    let dir = scratch("badflags");
    for args in [
        &["--max-cells", "nope"][..],
        &["--jobs", "0"][..],
        &["--scale", "abc"][..],
        &["--shard", "2/2"][..],
        &["--shard", "0/0"][..],
        &["--shard", "x"][..],
        &["--shard", "1"][..],
        &["--links", "no_such_link"][..],
    ] {
        let out = grid(&dir, args);
        assert_eq!(code(&out), 2, "args {args:?}; stderr: {}", stderr(&out));
    }
}

#[test]
fn list_audits_the_shard_partition() {
    let dir = scratch("list");
    let mut args = AXES.to_vec();
    args.extend(["--shard", "0/2", "--list"]);
    let out = grid(&dir, &args);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    // Name-keyed order: wired/mid/train sorts before wired/short/train,
    // so shard 0 owns mid and shard 1 owns short.
    assert!(
        text.contains("0/2\tpending\twired/mid/train"),
        "owned cell listed pending: {text}"
    );
    assert!(
        text.contains("1/2\tother\twired/short/train"),
        "foreign cell carries its owning shard: {text}"
    );
}

#[test]
fn resume_refuses_a_row_file_from_a_different_shard_spec() {
    let dir = scratch("shardgate");
    let shard0: Vec<&str> = AXES
        .iter()
        .copied()
        .chain([
            "--shard",
            "0/2",
            "--out",
            "s0.jsonl",
            "--manifest",
            "m.json",
        ])
        .collect();
    let out = grid(&dir, &shard0);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));

    let mut wrong = AXES.to_vec();
    wrong.extend([
        "--shard",
        "1/2",
        "--out",
        "s0.jsonl",
        "--manifest",
        "m.json",
        "--resume",
    ]);
    let out = grid(&dir, &wrong);
    assert_eq!(code(&out), 2, "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(
        err.contains("different --shard"),
        "gate names the shard spec: {err}"
    );
}

#[test]
fn sharded_campaign_merges_byte_identical_to_the_unsharded_run() {
    let dir = scratch("merge");

    // The unsharded golden table.
    let full: Vec<&str> = AXES
        .iter()
        .copied()
        .chain(["--out", "full.jsonl", "--table", "full.json"])
        .collect();
    let out = grid(&dir, &full);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));

    // Shard 0 of 2, then a premature merge (campaign incomplete -> 3).
    let shard0: Vec<&str> = AXES
        .iter()
        .copied()
        .chain([
            "--shard",
            "0/2",
            "--out",
            "s0.jsonl",
            "--manifest",
            "m.json",
        ])
        .collect();
    let out = grid(&dir, &shard0);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let out = grid(
        &dir,
        &["--merge", "--manifest", "m.json", "--table", "merged.json"],
    );
    assert_eq!(code(&out), 3, "incomplete campaign: {}", stderr(&out));

    // Shard 1 of 2, then the real merge.
    let shard1: Vec<&str> = AXES
        .iter()
        .copied()
        .chain([
            "--shard",
            "1/2",
            "--out",
            "s1.jsonl",
            "--manifest",
            "m.json",
        ])
        .collect();
    let out = grid(&dir, &shard1);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));

    let s0_before = std::fs::read(dir.join("s0.jsonl")).unwrap();
    let s1_before = std::fs::read(dir.join("s1.jsonl")).unwrap();
    let out = grid(
        &dir,
        &["--merge", "--manifest", "m.json", "--table", "merged.json"],
    );
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));

    let full_table = std::fs::read(dir.join("full.json")).unwrap();
    let merged_table = std::fs::read(dir.join("merged.json")).unwrap();
    assert_eq!(
        full_table, merged_table,
        "merged table must be byte-identical to the unsharded run"
    );
    assert_eq!(
        std::fs::read(dir.join("s0.jsonl")).unwrap(),
        s0_before,
        "merge must leave shard files untouched"
    );
    assert_eq!(
        std::fs::read(dir.join("s1.jsonl")).unwrap(),
        s1_before,
        "merge must leave shard files untouched"
    );
}
