//! The link × train × tool scenario grid: named axis catalogs, the
//! [`BiasGrid`] scenario they compose into, and the JSONL row format
//! the `grid` binary persists.
//!
//! This is the paper's experiment matrix as one schedulable object:
//! every cell is "run tool T with train shape N over link L", the axes
//! are independently enumerable (and CLI-selectable by name), and the
//! flattened cell space runs through [`csmaprobe_core::grid`] with the
//! engine's per-cell bit-identity — so any subset of cells (a resumed
//! run) reproduces exactly the rows of an uninterrupted run.

use crate::report::{json_f64, json_str};
use crate::scaled;
use crate::scenarios::{self, FRAME};
use csmaprobe_core::engine;
use csmaprobe_core::grid::{shard_members, GridScenario, GridShape, ShardSpec};
use csmaprobe_core::link::{LinkConfig, ProbeTarget, TrainObservation, WiredLink, WlanLink};
use csmaprobe_desim::rng::derive_seed;
use csmaprobe_desim::time::Dur;
use csmaprobe_probe::tool::{ToolKind, ToolProbe};
use csmaprobe_stats::accumulate::Accumulate;
use csmaprobe_stats::online::OnlineStats;

/// Probing rate of the plain train tool, bits/s: saturating, so its
/// dispersion reads the achievable throughput (§5.2).
pub const TRAIN_TOOL_RATE_BPS: f64 = 10e6;

/// A link either tool family can probe (the link axis currency).
#[derive(Clone)]
pub enum GridTarget {
    /// Classic FIFO path.
    Wired(WiredLink),
    /// CSMA/CA WLAN link.
    Wlan(WlanLink),
}

impl ProbeTarget for GridTarget {
    fn probe_train(
        &self,
        train: csmaprobe_traffic::probe::ProbeTrain,
        seed: u64,
    ) -> TrainObservation {
        match self {
            GridTarget::Wired(l) => l.probe_train(train, seed),
            GridTarget::Wlan(l) => l.probe_train(train, seed),
        }
    }

    fn probe_train_batch(
        &self,
        train: csmaprobe_traffic::probe::ProbeTrain,
        seeds: &[u64],
    ) -> Vec<TrainObservation> {
        // Forward so a WLAN link's batched slotted kernel serves whole
        // chunks (the trait default would loop the scalar path).
        match self {
            GridTarget::Wired(l) => l.probe_train_batch(train, seeds),
            GridTarget::Wlan(l) => l.probe_train_batch(train, seeds),
        }
    }

    fn probe_sequence(&self, offsets: &[Dur], bytes: u32, seed: u64) -> TrainObservation {
        match self {
            GridTarget::Wired(l) => l.probe_sequence(offsets, bytes, seed),
            GridTarget::Wlan(l) => l.probe_sequence(offsets, bytes, seed),
        }
    }

    fn probe_bytes(&self) -> u32 {
        match self {
            GridTarget::Wired(l) => l.probe_bytes(),
            GridTarget::Wlan(l) => l.probe_bytes(),
        }
    }
}

/// How a [`LinkPoint`] builds its target.
#[derive(Debug, Clone, Copy)]
enum LinkKind {
    Wired { capacity_bps: f64, cross_bps: f64 },
    Wlan { contending_bps: f64, fifo_bps: f64 },
}

/// One named point of the link axis.
#[derive(Debug, Clone, Copy)]
pub struct LinkPoint {
    /// Catalog name (what `--links` matches).
    pub name: &'static str,
    /// One-line description.
    pub title: &'static str,
    kind: LinkKind,
}

impl LinkPoint {
    /// Build the runnable target.
    pub fn build(&self) -> GridTarget {
        match self.kind {
            LinkKind::Wired {
                capacity_bps,
                cross_bps,
            } => GridTarget::Wired(WiredLink::new(capacity_bps, cross_bps)),
            LinkKind::Wlan {
                contending_bps,
                fifo_bps,
            } => {
                let mut cfg = LinkConfig::default().contending_bps(contending_bps);
                if fifo_bps > 0.0 {
                    cfg = cfg.fifo_cross_bps(fifo_bps);
                }
                GridTarget::Wlan(WlanLink::new(cfg))
            }
        }
    }

    /// The true available bandwidth `A = C − cross` of this link,
    /// bits/s (measured stand-alone capacity for WLAN links).
    pub fn available_bps(&self) -> f64 {
        match self.kind {
            LinkKind::Wired {
                capacity_bps,
                cross_bps,
            } => (capacity_bps - cross_bps).max(0.0),
            LinkKind::Wlan {
                contending_bps,
                fifo_bps,
            } => (scenarios::capacity_bps(FRAME) - contending_bps - fifo_bps).max(0.0),
        }
    }

    /// CSMA/CA link (access delays, fair-share bias)?
    pub fn is_wlan(&self) -> bool {
        matches!(self.kind, LinkKind::Wlan { .. })
    }
}

/// The link-axis catalog: the paper's FIFO baseline plus CSMA/CA
/// links at increasing contention, and the Fig 4 "complete picture"
/// variant with FIFO cross-traffic in the probe queue.
pub const LINKS: &[LinkPoint] = &[
    LinkPoint {
        name: "wired",
        title: "FIFO path, C = 10, cross 4 Mb/s (A = 6)",
        kind: LinkKind::Wired {
            capacity_bps: 10e6,
            cross_bps: 4e6,
        },
    },
    LinkPoint {
        name: "wlan_low",
        title: "802.11b, one contender at 2 Mb/s",
        kind: LinkKind::Wlan {
            contending_bps: 2e6,
            fifo_bps: 0.0,
        },
    },
    LinkPoint {
        name: "wlan_mid",
        title: "802.11b, one contender at 4.5 Mb/s (the Fig 1 link)",
        kind: LinkKind::Wlan {
            contending_bps: scenarios::FIG1_CROSS_BPS,
            fifo_bps: 0.0,
        },
    },
    LinkPoint {
        name: "wlan_fifo",
        title: "802.11b, contender 3 Mb/s + FIFO cross 1.5 Mb/s (Fig 4)",
        kind: LinkKind::Wlan {
            contending_bps: 3e6,
            fifo_bps: 1.5e6,
        },
    },
];

/// One named point of the train-shape axis.
#[derive(Debug, Clone, Copy)]
pub struct TrainPoint {
    /// Catalog name (what `--trains` matches).
    pub name: &'static str,
    /// Packets per train.
    pub n: usize,
}

/// The train-shape catalog: the short trains real tools send (and the
/// transient bites hardest on), up to trains long enough to wash the
/// transient out (§5.3).
pub const TRAINS: &[TrainPoint] = &[
    TrainPoint {
        name: "short",
        n: 5,
    },
    TrainPoint { name: "mid", n: 20 },
    TrainPoint {
        name: "long",
        n: 100,
    },
];

/// Look up a link-axis point by name.
pub fn find_link(name: &str) -> Option<&'static LinkPoint> {
    LINKS
        .iter()
        .find(|l| l.name.eq_ignore_ascii_case(name.trim()))
}

/// Look up a train-axis point by name.
pub fn find_train(name: &str) -> Option<&'static TrainPoint> {
    TRAINS
        .iter()
        .find(|t| t.name.eq_ignore_ascii_case(name.trim()))
}

/// Parse one `key=value` bits/s parameter of an inline link spec.
fn parse_bps(what: &str, part: &str) -> Result<(String, f64), String> {
    let (key, value) = part
        .split_once('=')
        .ok_or_else(|| format!("malformed {what} parameter {part:?} (expected key=value)"))?;
    let bps: f64 = value
        .trim()
        .parse()
        .map_err(|_| format!("{what} parameter {key}={value:?} is not a number"))?;
    if !bps.is_finite() || bps < 0.0 {
        return Err(format!("{what} parameter {key}={bps} out of range"));
    }
    Ok((key.trim().to_ascii_lowercase(), bps))
}

/// An inline link spec under construction: `wlan:cross=6e6,fifo=1e6` or
/// `wired:capacity=10e6,cross=4e6` (the comma-separated parameters
/// arrive as separate CSV parts; see [`parse_links`]).
struct InlineLink {
    kind: String,
    params: Vec<(String, f64)>,
}

impl InlineLink {
    fn apply(&mut self, part: &str) -> Result<(), String> {
        let (key, bps) = parse_bps("link", part)?;
        let allowed: &[&str] = match self.kind.as_str() {
            "wlan" => &["cross", "fifo"],
            "wired" => &["capacity", "cross"],
            _ => unreachable!("kind validated at construction"),
        };
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown {} parameter {key:?}; allowed: {}",
                self.kind,
                allowed.join(", ")
            ));
        }
        if self.params.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate {} parameter {key:?}", self.kind));
        }
        self.params.push((key, bps));
        Ok(())
    }

    fn get(&self, key: &str, default: f64) -> f64 {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or(default)
    }

    /// Build the (leaked, CLI-lifetime) catalog point. The name is
    /// **canonical** — every parameter spelled out from its parsed
    /// value — so the same spec in any notation (`6e6` vs `6000000`)
    /// names the same cell, seeds the same replications, and
    /// fingerprints the same run configuration.
    fn build(self) -> Result<&'static LinkPoint, String> {
        let (name, kind) = match self.kind.as_str() {
            "wlan" => {
                let cross = self.get("cross", 0.0);
                let fifo = self.get("fifo", 0.0);
                (
                    format!("wlan:cross={cross},fifo={fifo}"),
                    LinkKind::Wlan {
                        contending_bps: cross,
                        fifo_bps: fifo,
                    },
                )
            }
            "wired" => {
                let capacity = self.get("capacity", 10e6);
                let cross = self.get("cross", 0.0);
                if cross >= capacity {
                    return Err(format!(
                        "wired cross {cross} must be below capacity {capacity}"
                    ));
                }
                (
                    format!("wired:capacity={capacity},cross={cross}"),
                    LinkKind::Wired {
                        capacity_bps: capacity,
                        cross_bps: cross,
                    },
                )
            }
            other => {
                return Err(format!(
                    "unknown inline link kind {other:?}; use wlan: or wired:"
                ))
            }
        };
        Ok(&*Box::leak(Box::new(LinkPoint {
            name: Box::leak(name.into_boxed_str()),
            title: "inline spec",
            kind,
        })))
    }
}

/// Parse a `--links` comma list: catalog names ([`LINKS`]) and **inline
/// specs** — `wlan:cross=<bps>,fifo=<bps>` or
/// `wired:capacity=<bps>,cross=<bps>` — freely mixed. A `kind:` part
/// opens an inline spec; bare `key=value` parts extend the one being
/// built; anything else is a catalog name. Inline points get canonical
/// parameter-spelling names, so they fold into the run-config
/// fingerprint (and the cells' seed derivation) exactly like catalog
/// points — resume rejects a mismatched spec the same way it rejects a
/// changed axis selection.
/// Shared scaffolding of the `--links`/`--trains`/`--tools` CSV axes:
/// split the comma list, hand each non-empty part to `parse_part`
/// (which pushes the points it yields), run `finish` (e.g. flushing a
/// trailing inline spec), and apply the common empty-axis error.
fn parse_axis<T>(
    what: &str,
    csv: &str,
    catalog: &[&str],
    mut parse_part: impl FnMut(&str, &mut Vec<T>) -> Result<(), String>,
    finish: impl FnOnce(&mut Vec<T>) -> Result<(), String>,
) -> Result<Vec<T>, String> {
    let mut out = Vec::new();
    for part in csv.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        parse_part(part, &mut out)?;
    }
    finish(&mut out)?;
    if out.is_empty() {
        return Err(format!(
            "empty {what} axis; catalog: {}",
            catalog.join(", ")
        ));
    }
    Ok(out)
}

/// The shared unknown-point error (`hint` names the inline-spec form,
/// when the axis has one).
fn unknown_axis_point(what: &str, part: &str, catalog: &[&str], hint: &str) -> String {
    format!(
        "unknown {what} {part:?}; catalog: {}{hint}",
        catalog.join(", ")
    )
}

pub fn parse_links(csv: &str) -> Result<Vec<&'static LinkPoint>, String> {
    let catalog: Vec<&str> = LINKS.iter().map(|l| l.name).collect();
    // The inline spec being built, shared by the per-part closure and
    // the end-of-axis flush.
    let open: std::cell::RefCell<Option<InlineLink>> = std::cell::RefCell::new(None);
    let flush = |out: &mut Vec<&'static LinkPoint>| -> Result<(), String> {
        if let Some(spec) = open.borrow_mut().take() {
            out.push(spec.build()?);
        }
        Ok(())
    };
    parse_axis(
        "link",
        csv,
        &catalog,
        |part, out| {
            if let Some((kind, first)) = part.split_once(':') {
                flush(out)?;
                let kind = kind.trim().to_ascii_lowercase();
                if kind != "wlan" && kind != "wired" {
                    return Err(format!(
                        "unknown inline link kind {kind:?}; use wlan: or wired:"
                    ));
                }
                let mut spec = InlineLink {
                    kind,
                    params: Vec::new(),
                };
                if !first.trim().is_empty() {
                    spec.apply(first)?;
                }
                *open.borrow_mut() = Some(spec);
                Ok(())
            } else if part.contains('=') {
                match open.borrow_mut().as_mut() {
                    Some(spec) => spec.apply(part),
                    None => Err(format!(
                        "link parameter {part:?} outside an inline spec \
                         (start one with wlan: or wired:)"
                    )),
                }
            } else {
                flush(out)?;
                match find_link(part) {
                    Some(p) => {
                        out.push(p);
                        Ok(())
                    }
                    None => Err(unknown_axis_point(
                        "link",
                        part,
                        &catalog,
                        " (or inline wlan:/wired: specs)",
                    )),
                }
            }
        },
        flush,
    )
}

/// Parse a `--trains` comma list: catalog names ([`TRAINS`]) and inline
/// `n=<packets>` specs, freely mixed. Inline points are named
/// canonically (`n=50`), so they participate in seeds and the
/// run-config fingerprint like catalog points.
pub fn parse_trains(csv: &str) -> Result<Vec<&'static TrainPoint>, String> {
    let catalog: Vec<&str> = TRAINS.iter().map(|t| t.name).collect();
    parse_axis(
        "train",
        csv,
        &catalog,
        |part, out| {
            if let Some(value) = part.strip_prefix("n=") {
                let n: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("train packet count n={value:?} is not an integer"))?;
                if n == 0 {
                    return Err("train packet count n=0 is empty".to_string());
                }
                out.push(&*Box::leak(Box::new(TrainPoint {
                    name: Box::leak(format!("n={n}").into_boxed_str()),
                    n,
                })));
                Ok(())
            } else {
                match find_train(part) {
                    Some(p) => {
                        out.push(p);
                        Ok(())
                    }
                    None => Err(unknown_axis_point(
                        "train",
                        part,
                        &catalog,
                        " (or inline n=<packets>)",
                    )),
                }
            }
        },
        |_| Ok(()),
    )
}

/// Parse a `--tools` comma list against [`ToolKind::ALL`].
pub fn parse_tools(csv: &str) -> Result<Vec<ToolKind>, String> {
    let catalog: Vec<&str> = ToolKind::ALL.iter().map(|t| t.name()).collect();
    parse_axis(
        "tool",
        csv,
        &catalog,
        |part, out| match ToolKind::parse(part) {
            Some(t) => {
                out.push(t);
                Ok(())
            }
            None => Err(unknown_axis_point("tool", part, &catalog, "")),
        },
        |_| Ok(()),
    )
}

/// FNV-1a hash of a string — a stable 64-bit fingerprint for cell
/// names and run configurations (no `std::hash` — `DefaultHasher` is
/// not guaranteed stable across releases, and these values end up in
/// seeds and persisted files).
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Streaming accumulator of one grid cell: across-replication
/// statistics of the tool estimate, plus failed-run count.
#[derive(Debug, Clone, Default)]
pub struct EstimateAcc {
    /// Finite estimates, bits/s.
    pub est: OnlineStats,
    /// Tool runs that produced no estimate (non-finite).
    pub failed: usize,
}

impl Accumulate for EstimateAcc {
    fn merge(&mut self, other: Self) {
        OnlineStats::merge(&mut self.est, &other.est);
        self.failed += other.failed;
    }
}

/// One finished grid cell: tool × train × link, with the estimate
/// statistics and the link's ground truth.
#[derive(Debug, Clone)]
pub struct GridRow {
    /// Flat (row-major) cell index in the scheduled grid.
    pub cell: usize,
    /// Link-axis point name.
    pub link: &'static str,
    /// Train-axis point name.
    pub train: &'static str,
    /// Tool family.
    pub tool: ToolKind,
    /// Packets per train.
    pub n: usize,
    /// Replications (independent tool runs) attempted.
    pub reps: usize,
    /// Runs that produced no estimate.
    pub failed: usize,
    /// Mean estimate, bits/s (NaN when every run failed).
    pub mean_bps: f64,
    /// Across-run standard deviation, bits/s.
    pub sd_bps: f64,
    /// 95% confidence half-width of the mean, bits/s.
    pub ci95_bps: f64,
    /// True available bandwidth of the link, bits/s.
    pub available_bps: f64,
    /// Engine-tier provenance: which engine served this cell's probes
    /// (`event`/`slotted`/`analytic` for WLAN links as resolved by the
    /// router, `fifo` for wired links, which have no DCF engine).
    pub tier: &'static str,
    /// The producing run's configuration fingerprint
    /// ([`BiasGrid::fingerprint`]): resume refuses to mix rows from a
    /// different grid configuration — including rows produced under a
    /// different engine policy or tier resolution. Campaign-level: the
    /// same for every shard of a campaign, so merged tables match the
    /// unsharded run's.
    pub run: u64,
    /// Shard provenance token ([`BiasGrid::shard_token`],
    /// `i/n:<shard fingerprint>`): resume refuses rows written under a
    /// different `--shard` spec. Bookkeeping, not data — stripped by
    /// both finalize flavours, so the campaign table never shows it.
    pub shard: String,
}

impl GridRow {
    /// The unique cell key (`link/train/tool`) the row sink indexes by.
    pub fn cell_key(link: &str, train: &str, tool: ToolKind) -> String {
        format!("{link}/{train}/{tool}")
    }

    /// This row's key.
    pub fn key(&self) -> String {
        GridRow::cell_key(self.link, self.train, self.tool)
    }

    /// The `"run"` fingerprint of a persisted row line, if present.
    pub fn run_of(line: &str) -> Option<u64> {
        crate::report::row_run(line)
    }

    /// The `"shard"` provenance token of a persisted row line, if
    /// present.
    pub fn shard_of(line: &str) -> Option<&str> {
        crate::report::row_shard(line)
    }

    /// Serialize as one [`crate::report::RowSink`] JSONL line
    /// (`"cell"` and `"key"` first, as the sink requires). The
    /// `"shard"` field is placed where [`crate::report::strip_shard`]
    /// removes it at finalize time.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cell\":{},\"key\":{},\"run\":\"{:016x}\",\"shard\":{},\"link\":{},\"train\":{},\
             \"tool\":{},\"tier\":{},\"n\":{},\"reps\":{},\"failed\":{},\"mean_bps\":{},\
             \"sd_bps\":{},\"ci95_bps\":{},\"available_bps\":{}}}",
            self.cell,
            json_str(&self.key()),
            self.run,
            json_str(&self.shard),
            json_str(self.link),
            json_str(self.train),
            json_str(self.tool.name()),
            json_str(self.tier),
            self.n,
            self.reps,
            self.failed,
            json_f64(self.mean_bps),
            json_f64(self.sd_bps),
            json_f64(self.ci95_bps),
            json_f64(self.available_bps),
        )
    }
}

/// The link × train × tool grid as a [`GridScenario`]: one cell per
/// coordinate, one independent tool run per replication.
pub struct BiasGrid {
    links: Vec<&'static LinkPoint>,
    trains: Vec<&'static TrainPoint>,
    tools: Vec<ToolKind>,
    targets: Vec<GridTarget>,
    available: Vec<f64>,
    scale: f64,
    seed: u64,
    shard: ShardSpec,
}

impl BiasGrid {
    /// Compose the axes (builds each link's target once). The grid is
    /// unsharded (`0/1`) until [`BiasGrid::with_shard`].
    pub fn new(
        links: Vec<&'static LinkPoint>,
        trains: Vec<&'static TrainPoint>,
        tools: Vec<ToolKind>,
        scale: f64,
        seed: u64,
    ) -> Self {
        let targets = links.iter().map(|l| l.build()).collect();
        let available = links.iter().map(|l| l.available_bps()).collect();
        BiasGrid {
            links,
            trains,
            tools,
            targets,
            available,
            scale,
            seed,
            shard: ShardSpec::solo(),
        }
    }

    /// Restrict this process to one shard of the campaign's cell space
    /// (see [`BiasGrid::shard_cells`]). Sharding never changes a cell's
    /// data — seeds chain cell *names* — only which cells this process
    /// owns and the shard provenance its rows carry.
    pub fn with_shard(mut self, shard: ShardSpec) -> Self {
        assert!(shard.index < shard.count, "invalid shard spec");
        self.shard = shard;
        self
    }

    /// The shard this grid instance runs as (`0/1` when unsharded).
    pub fn shard(&self) -> ShardSpec {
        self.shard
    }

    /// The flat cell indices this shard owns, ascending: round-robin
    /// over the **name-keyed** cell order
    /// ([`csmaprobe_core::grid::shard_members`]), so membership depends
    /// only on the campaign's cell-name set — two shards of one
    /// campaign partition the same space no matter how each operator
    /// spelled the axis lists.
    pub fn shard_cells(&self) -> Vec<usize> {
        shard_members(self.shape().len(), self.shard, |f| self.key_of(f))
    }

    /// The axes, in coordinate order (link, train, tool — tool fastest).
    pub fn axes(&self) -> (&[&'static LinkPoint], &[&'static TrainPoint], &[ToolKind]) {
        (&self.links, &self.trains, &self.tools)
    }

    /// The cell key of the flat cell `flat` (what the persisted row
    /// will carry) — lets a resuming caller enumerate expected keys
    /// without running anything.
    pub fn key_of(&self, flat: usize) -> String {
        let coord = self.shape().unflatten(flat);
        GridRow::cell_key(
            self.links[coord[0]].name,
            self.trains[coord[1]].name,
            self.tools[coord[2]],
        )
    }

    /// Fingerprint of this grid's full configuration — axis selection
    /// *and order* (cell indices depend on both), scale and seed, the
    /// active engine policy, and the tier each link's cells resolve to
    /// under it. Persisted in every row; resume refuses a file whose
    /// rows carry a different fingerprint instead of silently mixing
    /// populations — including rows produced under a different engine
    /// policy (or different routing rules), which would otherwise be
    /// statistically indistinguishable in the file.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.config_desc())
    }

    /// Fingerprint of this grid's configuration **plus its shard spec**
    /// — what [`GridRow::shard`] embeds. Campaign-identical shards with
    /// different `i/n` get different values, so `--resume` can refuse a
    /// row file written under a different `--shard` spec even when the
    /// persisted keys happen to overlap this shard's cells.
    pub fn shard_fingerprint(&self) -> u64 {
        fnv1a(&format!("{};shard={}", self.config_desc(), self.shard))
    }

    /// The shard provenance token persisted in every row:
    /// `i/n:<shard fingerprint>`.
    pub fn shard_token(&self) -> String {
        format!("{}:{:016x}", self.shard, self.shard_fingerprint())
    }

    /// The canonical configuration description behind
    /// [`BiasGrid::fingerprint`] (shard-independent: a campaign is the
    /// same campaign however it is partitioned).
    fn config_desc(&self) -> String {
        let mut desc = format!("scale={};seed={}", self.scale.to_bits(), self.seed);
        for l in &self.links {
            desc.push_str(";link=");
            desc.push_str(l.name);
        }
        for t in &self.trains {
            desc.push_str(";train=");
            desc.push_str(t.name);
        }
        for t in &self.tools {
            desc.push_str(";tool=");
            desc.push_str(t.name());
        }
        desc.push_str(";engine=");
        desc.push_str(engine::policy_token());
        desc.push_str(";router=");
        desc.push_str(engine::ROUTER_REVISION);
        for i in 0..self.links.len() {
            desc.push_str(";tier=");
            desc.push_str(self.link_tier(i));
        }
        desc
    }

    /// The engine tier serving the probes of link `link_idx`'s cells:
    /// the router's train-tier resolution for WLAN links, `fifo` for
    /// wired links (no DCF engine involved).
    fn link_tier(&self, link_idx: usize) -> &'static str {
        match &self.targets[link_idx] {
            GridTarget::Wired(_) => "fifo",
            GridTarget::Wlan(l) => engine::train_tier(l.config()).token(),
        }
    }

    /// Engine-tier provenance of the cell at `coord` (see
    /// [`GridRow::tier`]).
    pub fn cell_tier(&self, coord: &[usize]) -> &'static str {
        self.link_tier(coord[0])
    }

    fn tool_probe(&self, coord: &[usize]) -> ToolProbe {
        ToolProbe::new(
            self.tools[coord[2]],
            self.trains[coord[1]].n,
            FRAME,
            TRAIN_TOOL_RATE_BPS,
        )
    }
}

impl GridScenario for BiasGrid {
    type Acc = EstimateAcc;
    type Row = GridRow;

    fn name(&self) -> &str {
        "bias_grid"
    }

    fn shape(&self) -> GridShape {
        GridShape::new(vec![self.links.len(), self.trains.len(), self.tools.len()])
    }

    fn reps(&self, coord: &[usize]) -> usize {
        // Budget per tool family: single trains are cheap, a searching
        // tool run is dozens of trains.
        // Floors keep smoke-scale grids statistically meaningful: a
        // single train is ~ms of simulation, so 24 of them is still
        // the cheapest cell by far.
        match self.tools[coord[2]] {
            ToolKind::Train => scaled(40, self.scale, 24),
            ToolKind::Chirp => scaled(20, self.scale, 8),
            ToolKind::Slops | ToolKind::Topp => scaled(4, self.scale, 1),
        }
    }

    fn identity(&self, _coord: &[usize]) -> EstimateAcc {
        EstimateAcc::default()
    }

    fn replicate(&self, coord: &[usize], rep: usize, acc: &mut EstimateAcc) {
        // Pure function of (cell *identity*, rep): the seed chains the
        // cell's name key, not its positional coordinate, so the same
        // named cell produces the same data no matter which other axis
        // points were selected or in what order.
        let s = derive_seed(self.seed, fnv1a(&self.key_of(self.shape().flatten(coord))));
        let est = self
            .tool_probe(coord)
            .estimate_once(&self.targets[coord[0]], derive_seed(s, rep as u64));
        if est.is_finite() {
            acc.est.push(est);
        } else {
            acc.failed += 1;
        }
    }

    fn replicate_chunk(
        &self,
        coord: &[usize],
        range: std::ops::Range<usize>,
        acc: &mut EstimateAcc,
    ) {
        // Same seed chain as `replicate`, a whole chunk at a time: train
        // cells forward to [`ToolProbe::estimate_batch`], so a slotted
        // WLAN cell runs its chunk as one batched-kernel call. The
        // contract (element k ≡ `estimate_once(seeds[k])`) plus the
        // ascending fold keeps rows bit-identical to the scalar path.
        let s = derive_seed(self.seed, fnv1a(&self.key_of(self.shape().flatten(coord))));
        let seeds: Vec<u64> = range.map(|rep| derive_seed(s, rep as u64)).collect();
        for est in self
            .tool_probe(coord)
            .estimate_batch(&self.targets[coord[0]], &seeds)
        {
            if est.is_finite() {
                acc.est.push(est);
            } else {
                acc.failed += 1;
            }
        }
    }

    fn finish(&self, coord: &[usize], acc: EstimateAcc) -> GridRow {
        GridRow {
            cell: self.shape().flatten(coord),
            link: self.links[coord[0]].name,
            train: self.trains[coord[1]].name,
            tool: self.tools[coord[2]],
            n: self.trains[coord[1]].n,
            tier: self.cell_tier(coord),
            reps: self.reps(coord),
            failed: acc.failed,
            mean_bps: if acc.est.count() > 0 {
                acc.est.mean()
            } else {
                f64::NAN
            },
            sd_bps: acc.est.std_dev(),
            ci95_bps: acc.est.ci_half_width(0.95),
            available_bps: self.available[coord[0]],
            run: self.fingerprint(),
            shard: self.shard_token(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::row_key;
    use csmaprobe_core::grid::run_grid;

    #[test]
    fn catalogs_parse_and_reject() {
        let links = parse_links("wired, WLAN_MID").unwrap();
        assert_eq!(links.len(), 2);
        assert_eq!(links[1].name, "wlan_mid");
        assert!(parse_links("wired,ethernet").is_err());
        assert!(parse_links(" , ").is_err());
        let trains = parse_trains("short,long").unwrap();
        assert_eq!(trains[1].n, 100);
        assert!(parse_trains("huge").is_err());
        let tools = parse_tools("train,slops").unwrap();
        assert_eq!(tools, vec![ToolKind::Train, ToolKind::Slops]);
        assert!(parse_tools("pathload").is_err());
    }

    #[test]
    fn inline_link_specs_parse_mixed_with_catalog_names() {
        // The ROADMAP example, plus a catalog name on either side.
        let links = parse_links("wired,wlan:cross=6e6,fifo=1e6,wlan_mid").unwrap();
        assert_eq!(links.len(), 3);
        assert_eq!(links[0].name, "wired");
        assert_eq!(links[1].name, "wlan:cross=6000000,fifo=1000000");
        assert!(links[1].is_wlan());
        assert_eq!(links[2].name, "wlan_mid");
        // Canonical naming: notation does not matter.
        let again = parse_links("wlan:cross=6000000,fifo=1000000").unwrap();
        assert_eq!(again[0].name, links[1].name);
        // Defaults fill in, in canonical order.
        let bare = parse_links("wlan:cross=2e6").unwrap();
        assert_eq!(bare[0].name, "wlan:cross=2000000,fifo=0");
        // Wired inline specs compute their ground truth.
        let wired = parse_links("wired:capacity=10e6,cross=4e6").unwrap();
        assert_eq!(wired[0].available_bps(), 6e6);
        assert!(!wired[0].is_wlan());
    }

    #[test]
    fn inline_link_specs_reject_nonsense() {
        assert!(parse_links("fiber:cross=1e6").is_err(), "unknown kind");
        assert!(
            parse_links("cross=1e6").is_err(),
            "parameter without a spec"
        );
        assert!(parse_links("wlan:speed=1e6").is_err(), "unknown parameter");
        assert!(parse_links("wlan:cross=fast").is_err(), "non-numeric");
        assert!(parse_links("wlan:cross=-1").is_err(), "negative");
        assert!(parse_links("wlan:cross=inf").is_err(), "non-finite");
        assert!(
            parse_links("wlan:cross=1e6,cross=2e6").is_err(),
            "duplicate"
        );
        assert!(
            parse_links("wired:capacity=1e6,cross=2e6").is_err(),
            "cross above capacity"
        );
    }

    #[test]
    fn inline_train_specs_parse_and_reject() {
        let trains = parse_trains("short,n=50,long").unwrap();
        assert_eq!(trains.len(), 3);
        assert_eq!(trains[1].name, "n=50");
        assert_eq!(trains[1].n, 50);
        assert!(parse_trains("n=0").is_err());
        assert!(parse_trains("n=five").is_err());
    }

    #[test]
    fn inline_specs_fold_into_the_run_fingerprint() {
        let grid_of = |links: &str| {
            BiasGrid::new(
                parse_links(links).unwrap(),
                vec![find_train("short").unwrap()],
                vec![ToolKind::Train],
                0.05,
                42,
            )
        };
        let a = grid_of("wlan:cross=6e6,fifo=1e6");
        let b = grid_of("wlan:cross=6000000,fifo=1000000");
        let c = grid_of("wlan:cross=6e6,fifo=2e6");
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "canonical spelling ⇒ same run configuration"
        );
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "a changed parameter must be rejected on resume"
        );
        // And inline cells produce data like any catalog cell.
        let rows = run_grid(&grid_of("wlan:cross=2e6"));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].link, "wlan:cross=2000000,fifo=0");
        assert!(rows[0].mean_bps.is_finite());
    }

    #[test]
    fn link_truths_are_sane() {
        let wired = find_link("wired").unwrap();
        assert_eq!(wired.available_bps(), 6e6);
        assert!(!wired.is_wlan());
        let mid = find_link("wlan_mid").unwrap();
        assert!(mid.is_wlan());
        // C ≈ 6.2 Mb/s, cross 4.5 ⇒ A ≈ 1.7 Mb/s.
        let a = mid.available_bps();
        assert!((1.2e6..2.2e6).contains(&a), "A = {a}");
    }

    #[test]
    fn small_grid_rows_are_complete_and_keyed() {
        let grid = BiasGrid::new(
            vec![find_link("wired").unwrap()],
            vec![find_train("short").unwrap(), find_train("mid").unwrap()],
            vec![ToolKind::Train],
            0.05,
            42,
        );
        let rows = run_grid(&grid);
        assert_eq!(rows.len(), 2);
        let mut keys = std::collections::BTreeSet::new();
        for (flat, row) in rows.iter().enumerate() {
            assert_eq!(row.cell, flat);
            assert_eq!(row.key(), grid.key_of(flat));
            assert!(keys.insert(row.key()), "duplicate key {}", row.key());
            assert!(row.mean_bps.is_finite(), "wired trains always complete");
            assert_eq!(row.failed, 0);
            let line = row.to_json();
            assert_eq!(row_key(&line), Some(row.key().as_str()), "sink format");
        }
    }

    #[test]
    fn cell_data_independent_of_axis_selection() {
        // The wired/short/train cell must produce identical data
        // whether it sits at coord [0,0,0] or [1,0,0]: seeds chain the
        // cell's *name*, not its position.
        let solo = BiasGrid::new(
            vec![find_link("wired").unwrap()],
            vec![find_train("short").unwrap()],
            vec![ToolKind::Train],
            0.05,
            42,
        );
        let moved = BiasGrid::new(
            vec![find_link("wlan_low").unwrap(), find_link("wired").unwrap()],
            vec![find_train("short").unwrap()],
            vec![ToolKind::Train],
            0.05,
            42,
        );
        let a = &run_grid(&solo)[0];
        let b = &run_grid(&moved)[1];
        assert_eq!(a.key(), b.key());
        assert_eq!(a.mean_bps.to_bits(), b.mean_bps.to_bits());
        assert_eq!(a.sd_bps.to_bits(), b.sd_bps.to_bits());
    }

    #[test]
    fn fingerprint_tracks_configuration_and_round_trips() {
        let base = || {
            BiasGrid::new(
                vec![find_link("wired").unwrap()],
                vec![find_train("short").unwrap()],
                vec![ToolKind::Train],
                0.05,
                42,
            )
        };
        let a = base();
        assert_eq!(a.fingerprint(), base().fingerprint(), "stable");
        let other_seed = BiasGrid::new(
            vec![find_link("wired").unwrap()],
            vec![find_train("short").unwrap()],
            vec![ToolKind::Train],
            0.05,
            43,
        );
        assert_ne!(a.fingerprint(), other_seed.fingerprint());
        let other_axis = BiasGrid::new(
            vec![find_link("wired").unwrap()],
            vec![find_train("mid").unwrap()],
            vec![ToolKind::Train],
            0.05,
            42,
        );
        assert_ne!(a.fingerprint(), other_axis.fingerprint());
        // The fingerprint lands in every row and parses back out.
        let row = &run_grid(&a)[0];
        assert_eq!(row.run, a.fingerprint());
        assert_eq!(GridRow::run_of(&row.to_json()), Some(a.fingerprint()));
    }

    #[test]
    fn fingerprint_tracks_engine_policy_and_rows_carry_tier() {
        use csmaprobe_core::engine::{test_guard, EnginePolicy, EngineTier};
        let make = || {
            BiasGrid::new(
                vec![find_link("wired").unwrap(), find_link("wlan_low").unwrap()],
                vec![find_train("short").unwrap()],
                vec![ToolKind::Train],
                0.05,
                42,
            )
        };
        let (auto_fp, auto_rows) = {
            let _g = test_guard(EnginePolicy::Auto);
            (make().fingerprint(), run_grid(&make()))
        };
        let (event_fp, event_rows) = {
            let _g = test_guard(EnginePolicy::Forced(EngineTier::Event));
            (make().fingerprint(), run_grid(&make()))
        };
        // wlan_low is a certified FIFO-free cell: auto promotes its
        // trains to the slotted kernel, forced-event pins the oracle.
        // The rows record that provenance, and the run fingerprint
        // splits — resume refuses to mix the two populations even
        // though the kernel is trajectory-exact.
        assert_ne!(
            auto_fp, event_fp,
            "engine policy must split the fingerprint"
        );
        assert_eq!(auto_rows[0].tier, "fifo");
        assert_eq!(auto_rows[1].tier, "slotted");
        assert_eq!(event_rows[1].tier, "event");
        for row in &auto_rows {
            assert!(
                row.to_json()
                    .contains(&format!("\"tier\":\"{}\"", row.tier)),
                "tier column missing from {}",
                row.to_json()
            );
        }
        // Provenance, not data: the promoted kernel is bit-exact.
        assert_eq!(
            auto_rows[1].mean_bps.to_bits(),
            event_rows[1].mean_bps.to_bits()
        );
        // The routing-rules revision is part of the fingerprinted
        // config: rows written under an older router (same policy
        // token, different coverage rules) can never resume into this
        // one.
        assert!(
            make().config_desc().contains(&format!(
                ";router={}",
                csmaprobe_core::engine::ROUTER_REVISION
            )),
            "router revision missing from the run-config description"
        );
    }

    #[test]
    fn shard_fingerprint_splits_on_the_spec_but_run_fingerprint_does_not() {
        let make = || {
            BiasGrid::new(
                vec![find_link("wired").unwrap()],
                vec![find_train("short").unwrap(), find_train("mid").unwrap()],
                vec![ToolKind::Train],
                0.05,
                42,
            )
        };
        let solo = make();
        let s0 = make().with_shard(ShardSpec { index: 0, count: 2 });
        let s1 = make().with_shard(ShardSpec { index: 1, count: 2 });
        // The campaign is the same campaign however it is partitioned —
        // that is what makes merged tables byte-identical.
        assert_eq!(solo.fingerprint(), s0.fingerprint());
        assert_eq!(s0.fingerprint(), s1.fingerprint());
        // But the shard provenance splits on every spec.
        assert_ne!(solo.shard_fingerprint(), s0.shard_fingerprint());
        assert_ne!(s0.shard_fingerprint(), s1.shard_fingerprint());
        assert!(s0.shard_token().starts_with("0/2:"));
        assert!(solo.shard_token().starts_with("0/1:"));
        // Rows carry the token, and it parses back out.
        let rows = run_grid(&solo);
        assert_eq!(rows[0].shard, solo.shard_token());
        assert_eq!(
            GridRow::shard_of(&rows[0].to_json()),
            Some(solo.shard_token().as_str())
        );
    }

    #[test]
    fn shard_partition_covers_disjointly_and_ignores_axis_order() {
        let grid_with = |links: &str, shard: ShardSpec| {
            BiasGrid::new(
                parse_links(links).unwrap(),
                vec![find_train("short").unwrap(), find_train("long").unwrap()],
                vec![ToolKind::Train, ToolKind::Slops],
                0.05,
                42,
            )
            .with_shard(shard)
        };
        // Disjoint cover of the full cell space.
        let total = grid_with("wired,wlan_mid", ShardSpec::solo()).shape().len();
        let mut seen = vec![false; total];
        for index in 0..3 {
            let g = grid_with("wired,wlan_mid", ShardSpec { index, count: 3 });
            for f in g.shard_cells() {
                assert!(!seen[f], "cell {f} in two shards");
                seen[f] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "shards must cover every cell");
        // Membership by *name*: swapping the link-axis order moves flat
        // indices but never moves a named cell to another shard.
        let owner_by_key = |links: &str| -> std::collections::BTreeMap<String, usize> {
            let mut owners = std::collections::BTreeMap::new();
            for index in 0..3 {
                let g = grid_with(links, ShardSpec { index, count: 3 });
                for f in g.shard_cells() {
                    owners.insert(g.key_of(f), index);
                }
            }
            owners
        };
        assert_eq!(
            owner_by_key("wired,wlan_mid"),
            owner_by_key("wlan_mid,wired"),
            "shard membership must be independent of axis selection order"
        );
    }

    #[test]
    fn sharded_rows_merge_to_the_unsharded_table_byte_for_byte() {
        use crate::report::RowSink;
        let make = || {
            BiasGrid::new(
                vec![find_link("wired").unwrap()],
                vec![find_train("short").unwrap(), find_train("mid").unwrap()],
                vec![ToolKind::Train, ToolKind::Slops],
                0.05,
                42,
            )
        };
        let dir = std::env::temp_dir();
        let full_path = dir.join(format!("csmaprobe-shardmerge-full-{}", std::process::id()));
        let full_table = {
            let mut sink = RowSink::create(&full_path).unwrap();
            let grid = make();
            let cells: Vec<usize> = (0..grid.shape().len()).collect();
            csmaprobe_core::grid::GridRunner::new().run_cells_with(&grid, &cells, |_, row| {
                sink.append(&row.to_json()).unwrap();
            });
            sink.finalize().unwrap()
        };
        let shard_paths: Vec<std::path::PathBuf> = (0..2)
            .map(|i| dir.join(format!("csmaprobe-shardmerge-{i}-{}", std::process::id())))
            .collect();
        for (i, path) in shard_paths.iter().enumerate() {
            let grid = make().with_shard(ShardSpec { index: i, count: 2 });
            let mut sink = RowSink::create(path).unwrap();
            csmaprobe_core::grid::GridRunner::new().run_cells_with(
                &grid,
                &grid.shard_cells(),
                |_, row| sink.append(&row.to_json()).unwrap(),
            );
        }
        let merged = RowSink::finalize_merged(&shard_paths).unwrap();
        assert_eq!(
            merged, full_table,
            "merged shard tables must be byte-identical to the unsharded run"
        );
        let _ = std::fs::remove_file(&full_path);
        for p in &shard_paths {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn grid_rows_deterministic_across_runs() {
        let make = || {
            BiasGrid::new(
                vec![find_link("wired").unwrap()],
                vec![find_train("short").unwrap()],
                vec![ToolKind::Train, ToolKind::Slops],
                0.05,
                7,
            )
        };
        let a = run_grid(&make());
        let b = run_grid(&make());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_json(), y.to_json());
        }
    }
}
