//! §6 bounds validation (extra experiment E12): evaluate the
//! eqs (29)/(30) — (33)/(34) without FIFO cross-traffic — dispersion
//! bounds from the *measured* per-index mean access delays and compare
//! them with the *measured* mean output dispersion.
//!
//! Because the two bound families hold under different decompositions
//! (see `csmaprobe_core::bounds`), the check is containment of E\[gO\]
//! within `[min(lower, upper) − tol, max(lower, upper) + tol]` per
//! rate, plus the §6.2 regional predictions: exactness below the knee
//! and high-rate over-estimation.

use crate::report::FigureReport;
use crate::scaled;
use crate::scenarios::{self, TrainCell, TrainSweep, FRAME};
use csmaprobe_core::bounds::dispersion_bounds;
use csmaprobe_core::sweep::run_sweep;
use csmaprobe_desim::rng::derive_seed;
use csmaprobe_probe::train::TrainProbe;

/// Run the experiment. All per-rate train measurements (plus the final
/// long steady-state train) run as one [`TrainSweep`] through the
/// sweep engine, concurrently on the shared work-stealing executor.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "bounds_check",
        "Measured E[gO] vs the §6 transient dispersion bounds (no FIFO cross-traffic)",
        "E[gO] lies within the eq (33)/(34) band; bounds coincide (eq 27) below the \
         knee and bracket the measured dispersion above it",
        &[
            "ri_mbps",
            "gI_ms",
            "measured_gO_ms",
            "lower_bound_ms",
            "upper_bound_ms",
            "exact_region",
        ],
    );

    let link = scenarios::fig1_link();
    let n = 25;
    let reps = scaled(600, scale, 120);
    let rates = scenarios::rate_sweep_mbps(1.0, 10.0, 1.0);

    // One cell per rate, plus the long steady-state train at the end.
    let mut cells: Vec<TrainCell> = rates
        .iter()
        .enumerate()
        .map(|(k, &ri)| TrainCell {
            probe: TrainProbe::new(n, FRAME, ri),
            reps,
            seed: derive_seed(seed, k as u64),
        })
        .collect();
    cells.push(TrainCell {
        probe: TrainProbe::new(1200, FRAME, 10e6),
        reps: scaled(5, scale, 3),
        seed: derive_seed(seed, 999),
    });
    let mut measurements = run_sweep(&TrainSweep {
        name: "bounds_check",
        target: &link,
        cells,
    });
    let steady_m = measurements.pop().expect("steady-state cell present");

    let mut contained = 0usize;
    let mut exact_ok = 0usize;
    let mut exact_total = 0usize;
    for (&ri, m) in rates.iter().zip(&measurements) {
        let e_mu = m.mean_mu_profile();
        let g_i = m.train.gap.as_secs_f64();
        let b = dispersion_bounds(&e_mu, g_i, 0.0);
        let go = m.mean_output_gap_s();
        let lo = b.lower.min(b.upper);
        let hi = b.lower.max(b.upper);
        let tol = 0.08 * go;
        if go >= lo - tol && go <= hi + tol {
            contained += 1;
        }
        if let Some(exact) = b.exact {
            exact_total += 1;
            if (go - exact).abs() / exact < 0.08 {
                exact_ok += 1;
            }
        }
        rep.row(vec![
            ri / 1e6,
            g_i * 1e3,
            go * 1e3,
            b.lower * 1e3,
            b.upper * 1e3,
            if b.exact.is_some() { 1.0 } else { 0.0 },
        ]);
    }

    rep.check(
        "measured dispersion within the bound band",
        contained == rates.len(),
        format!("{contained}/{} rates contained", rates.len()),
    );
    rep.check(
        "eq (27) exact in the saturated region",
        exact_total > 0 && exact_ok == exact_total,
        format!("{exact_ok}/{exact_total} saturated rates within 8% of eq (27)"),
    );

    // High-rate over-estimation (§6.2.2): at the highest rates the
    // dispersion-inferred output rate exceeds the steady-state value.
    let steady = steady_m.output_rate_bps();
    let top = rep.rows.last().unwrap();
    let short_rate = FRAME as f64 * 8.0 / (top[2] / 1e3);
    rep.check(
        "short trains optimistic at high rate",
        short_rate > steady,
        format!(
            "25-pkt inferred {:.2} vs steady {:.2} Mb/s",
            short_rate / 1e6,
            steady / 1e6
        ),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn bounds_hold_at_small_scale() {
        let rep = super::run(0.3, 53);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
