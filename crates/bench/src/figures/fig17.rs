//! Fig 17 — MSER-2-based measurement: rate response of 20-packet
//! trains, raw versus MSER-2-truncated, against the steady-state
//! response.
//!
//! Expected shape: removing the packets MSER-2 flags as transient moves
//! the 20-packet curve onto the steady-state curve — without sending
//! longer trains.

use crate::report::FigureReport;
use crate::scaled;
use crate::scenarios::{self, TrainCell, TrainSweep, FRAME};
use csmaprobe_core::sweep::run_sweep;
use csmaprobe_desim::rng::derive_seed;
use csmaprobe_probe::mser::{measure_rate_sweep, MserCell, MserProbe};
use csmaprobe_probe::train::TrainProbe;

/// Run the experiment.
///
/// Both curves flow through the sweep engine: the steady-state points
/// as one [`TrainSweep`], the MSER measurements as the two-phase
/// [`measure_rate_sweep`] — every `(rate × replication)` cell runs
/// concurrently on the shared work-stealing executor.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "fig17",
        "MSER-2 corrected 20-packet-train rate response",
        "the MSER-2 curve lies closer to the steady-state response than the raw \
         20-packet curve, especially beyond the knee",
        &[
            "ri_mbps",
            "steady_mbps",
            "train20_mbps",
            "train20_mser2_mbps",
        ],
    );

    let link = scenarios::fig1_link();
    let rates = scenarios::rate_sweep_mbps(1.0, 10.0, 1.0);

    let steady_rates = run_sweep(&TrainSweep {
        name: "fig17_steady",
        target: &link,
        cells: rates
            .iter()
            .enumerate()
            .map(|(k, &ri)| TrainCell {
                probe: TrainProbe::new(1200, FRAME, ri),
                reps: scaled(5, scale, 3),
                seed: derive_seed(seed, 300 + k as u64),
            })
            .collect(),
    });
    let mser_cells: Vec<MserCell> = rates
        .iter()
        .enumerate()
        .map(|(k, &ri)| MserCell {
            probe: MserProbe::new(20, FRAME, ri, 2),
            reps: scaled(400, scale, 80),
            seed: derive_seed(seed, 400 + k as u64),
        })
        .collect();
    let shorts = measure_rate_sweep(&mser_cells, &link);

    let mut raw_err_sum = 0.0;
    let mut mser_err_sum = 0.0;
    let mut beyond = 0usize;
    for ((&ri, steady_m), short) in rates.iter().zip(&steady_rates).zip(&shorts) {
        let steady = steady_m.output_rate_bps();
        let raw = short.raw_rate_bps();
        let corrected = short.corrected_rate_bps();
        rep.row(vec![ri / 1e6, steady / 1e6, raw / 1e6, corrected / 1e6]);
        // Accumulate error beyond the knee, where the bias lives.
        if ri >= 4e6 {
            raw_err_sum += (raw - steady).abs();
            mser_err_sum += (corrected - steady).abs();
            beyond += 1;
        }
    }

    rep.scalar("mean_raw_error_mbps", raw_err_sum / beyond as f64 / 1e6);
    rep.scalar("mean_mser_error_mbps", mser_err_sum / beyond as f64 / 1e6);

    rep.check(
        "MSER-2 closer to steady state beyond the knee",
        mser_err_sum < raw_err_sum,
        format!(
            "sum |err| beyond 4 Mb/s: raw {:.3} vs MSER {:.3} Mb/s",
            raw_err_sum / 1e6,
            mser_err_sum / 1e6
        ),
    );

    // The raw 20-packet curve over-estimates at high rates.
    let top = rep.rows.iter().filter(|r| r[0] >= 7.0).collect::<Vec<_>>();
    let raw_over = top.iter().filter(|r| r[2] > r[1]).count();
    rep.check(
        "raw 20-packet trains over-estimate at high rates",
        raw_over as f64 >= 0.7 * top.len() as f64,
        format!("{raw_over}/{} high-rate points above steady", top.len()),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig17_shape_holds_at_small_scale() {
        let rep = super::run(0.3, 52);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
