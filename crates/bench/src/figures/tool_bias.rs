//! §7.2 demonstration (extra experiment E13): available-bandwidth
//! tools designed for FIFO paths, run unchanged on both link types.
//!
//! Three tool families are tested — an iterative SLoPS/pathload-style
//! search, TOPP's rate-response regression, and a pathChirp-style
//! excursion analysis. On the wired link they find the available
//! bandwidth `A` (TOPP also the capacity `C`); on the CSMA/CA link
//! every one of them converges to the achievable throughput `B`
//! instead — reproducing the paper's claim (and its reading of
//! Bredel & Fidler's tool survey) across tool families.

use crate::report::FigureReport;
use crate::scaled;
use crate::scenarios::{self, FRAME};
use csmaprobe_core::link::{LinkConfig, WiredLink, WlanLink};
use csmaprobe_desim::rng::derive_seed;
use csmaprobe_probe::chirp::ChirpProbe;
use csmaprobe_probe::slops::SlopsEstimator;
use csmaprobe_probe::topp::ToppEstimator;

/// Run the experiment.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "tool_bias",
        "Available-bandwidth tools: A on FIFO vs achievable throughput B on CSMA/CA",
        "every FIFO-era tool (SLoPS-style, TOPP, pathChirp-style) ≈ A on the wired \
         link and ≈ B (≫ A) on the CSMA/CA link; TOPP's C estimate also collapses to B",
        &[
            "link_kind",
            "true_A_mbps",
            "fair_share_B_mbps",
            "slops_mbps",
            "topp_A_mbps",
            "topp_C_mbps",
            "chirp_mbps",
        ],
    );

    let slops = SlopsEstimator {
        n: 150,
        reps: scaled(8, scale, 4),
        ..Default::default()
    };
    let topp = ToppEstimator {
        n: 150,
        reps: scaled(8, scale, 4),
        ..Default::default()
    };
    let chirp = ChirpProbe {
        n: 80,
        chirps: scaled(40, scale, 15),
        ..Default::default()
    };

    // Wired: C = 10 Mb/s, cross 4 Mb/s => A = 6 Mb/s.
    let wired = WiredLink::new(10e6, 4e6);
    let w_slops = slops.run(&wired, derive_seed(seed, 1)).estimate_bps;
    let w_topp = topp.run(&wired, derive_seed(seed, 2)).expect("congestion");
    let w_chirp = chirp.measure(&wired, derive_seed(seed, 3)).estimate_bps();
    rep.row(vec![
        0.0,
        wired.available_bps() / 1e6,
        f64::NAN,
        w_slops / 1e6,
        w_topp.available_bps / 1e6,
        w_topp.capacity_bps / 1e6,
        w_chirp / 1e6,
    ]);

    // WLAN: C ≈ 6.2, cross 4.5 Mb/s => A ≈ 1.7, B ≈ 3.3 Mb/s.
    let c = scenarios::capacity_bps(FRAME);
    let wlan = WlanLink::new(LinkConfig::default().contending_bps(scenarios::FIG1_CROSS_BPS));
    let a_wlan = c - scenarios::FIG1_CROSS_BPS;
    let b_wlan = csmaprobe_probe::train::TrainProbe::new(1000, FRAME, 10e6)
        .measure(&wlan, scaled(6, scale, 3), derive_seed(seed, 4))
        .output_rate_bps();
    let l_slops = slops.run(&wlan, derive_seed(seed, 5)).estimate_bps;
    let l_topp = topp.run(&wlan, derive_seed(seed, 6)).expect("congestion");
    let l_chirp = chirp.measure(&wlan, derive_seed(seed, 7)).estimate_bps();
    rep.row(vec![
        1.0,
        a_wlan / 1e6,
        b_wlan / 1e6,
        l_slops / 1e6,
        l_topp.available_bps / 1e6,
        l_topp.capacity_bps / 1e6,
        l_chirp / 1e6,
    ]);

    rep.check(
        "wired SLoPS finds A",
        (w_slops - wired.available_bps()).abs() / wired.available_bps() < 0.18,
        format!(
            "{:.2} vs A {:.2} Mb/s",
            w_slops / 1e6,
            wired.available_bps() / 1e6
        ),
    );
    rep.check(
        "wired TOPP finds A and C",
        (w_topp.available_bps - 6e6).abs() / 6e6 < 0.2
            && (w_topp.capacity_bps - 10e6).abs() / 10e6 < 0.15,
        format!(
            "A {:.2}, C {:.2} Mb/s",
            w_topp.available_bps / 1e6,
            w_topp.capacity_bps / 1e6
        ),
    );
    rep.check(
        "wired chirp finds A",
        (w_chirp - 6e6).abs() / 6e6 < 0.35,
        format!("{:.2} vs A 6.00 Mb/s", w_chirp / 1e6),
    );
    rep.check(
        "wlan SLoPS finds B, not A",
        (l_slops - b_wlan).abs() / b_wlan < 0.2 && l_slops > 1.4 * a_wlan,
        format!(
            "{:.2} vs B {:.2}, A {:.2} Mb/s",
            l_slops / 1e6,
            b_wlan / 1e6,
            a_wlan / 1e6
        ),
    );
    rep.check(
        "wlan TOPP collapses A and C onto B",
        l_topp.available_bps > 1.3 * a_wlan
            && l_topp.capacity_bps < 0.8 * c
            && (l_topp.capacity_bps - l_topp.available_bps).abs() / l_topp.capacity_bps < 0.3,
        format!(
            "A-est {:.2}, C-est {:.2} (true A {:.2}, C {:.2}, B {:.2})",
            l_topp.available_bps / 1e6,
            l_topp.capacity_bps / 1e6,
            a_wlan / 1e6,
            c / 1e6,
            b_wlan / 1e6
        ),
    );
    rep.check(
        "wlan chirp exceeds A, stays near B",
        l_chirp > 1.3 * a_wlan && l_chirp < 0.9 * c,
        format!(
            "{:.2} vs A {:.2}, B {:.2} Mb/s",
            l_chirp / 1e6,
            a_wlan / 1e6,
            b_wlan / 1e6
        ),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn tool_bias_holds_at_small_scale() {
        let rep = super::run(0.5, 54);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
