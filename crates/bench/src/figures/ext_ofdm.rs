//! Extension E14 — the paper's claim that its findings "not only apply
//! to wireless environments, but also to any CSMA/CA-based system":
//! rerun the core transient + short-train experiments on an 802.11g
//! OFDM PHY (54 Mb/s, 9 µs slots), a very different timing point of the
//! same CSMA/CA family.
//!
//! Expected: the same qualitative picture — accelerated first packets,
//! short trains over-estimating the steady-state achievable throughput
//! — at OFDM scales.

use crate::report::FigureReport;
use crate::scaled;
use crate::scenarios::FRAME;
use csmaprobe_core::link::{LinkConfig, WlanLink};
use csmaprobe_core::transient::TransientExperiment;
use csmaprobe_desim::rng::derive_seed;
use csmaprobe_mac::measured_standalone_capacity_bps;
use csmaprobe_phy::Phy;
use csmaprobe_probe::train::TrainProbe;
use csmaprobe_traffic::probe::ProbeTrain;

/// Run the extension experiment.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "ext_ofdm",
        "Transient and short-train bias on an 802.11g OFDM channel (54 Mb/s)",
        "the CSMA/CA transient and the short-train optimism are not 802.11b \
         artifacts: both reproduce at OFDM timing",
        &["packet_index", "mean_access_delay_us"],
    );

    let phy = Phy::ofdm_g(54_000_000);
    let c = measured_standalone_capacity_bps(&phy, FRAME, 3000, seed ^ 0x0FD);
    rep.scalar("capacity_mbps", c / 1e6);

    // Contending cross-traffic at ~70% of capacity; probe at ~80%.
    let link = WlanLink::new(
        LinkConfig::default()
            .phy(phy.clone())
            .contending_bps(0.7 * c),
    );
    let exp = TransientExperiment {
        link: link.clone(),
        train: ProbeTrain::from_rate(200, FRAME, 0.8 * c),
        reps: scaled(1500, scale, 250),
        seed,
    };
    let data = exp.run();
    let profile = data.mean_profile();
    let steady = data.steady_mean(100);
    rep.scalar("steady_mean_us", steady * 1e6);
    for (i, &mean_us) in profile.iter().take(60).enumerate() {
        rep.row(vec![(i + 1) as f64, mean_us * 1e6]);
    }

    rep.check(
        "first packet accelerated on OFDM too",
        profile[0] < 0.92 * steady,
        format!(
            "mu_1 = {:.1} us vs steady {:.1} us",
            profile[0] * 1e6,
            steady * 1e6
        ),
    );

    // Short-train optimism at saturating rate.
    let steady_rate = TrainProbe::new(1000, FRAME, 1.2 * c)
        .measure(&link, scaled(6, scale, 3), derive_seed(seed, 1))
        .output_rate_bps();
    let short_rate = TrainProbe::new(5, FRAME, 1.2 * c)
        .measure(&link, scaled(600, scale, 120), derive_seed(seed, 2))
        .output_rate_bps();
    rep.scalar("steady_B_mbps", steady_rate / 1e6);
    rep.scalar("train5_mbps", short_rate / 1e6);
    rep.check(
        "short trains over-estimate on OFDM too",
        short_rate > 1.05 * steady_rate,
        format!(
            "5-pkt {:.2} vs steady {:.2} Mb/s",
            short_rate / 1e6,
            steady_rate / 1e6
        ),
    );

    // The OFDM capacity itself is far below the nominal 54 Mb/s (MAC
    // overhead dominates) — the classic 802.11 efficiency observation.
    rep.check(
        "DCF overhead dominates at 54 Mb/s",
        c < 0.6 * 54e6,
        format!("C = {:.1} Mb/s of nominal 54", c / 1e6),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn ofdm_extension_holds_at_small_scale() {
        let rep = super::run(0.3, 56);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
