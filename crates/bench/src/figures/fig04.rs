//! Fig 4 — "the complete picture": rate response when the probe shares
//! its transmission queue with FIFO cross-traffic *and* contends with
//! another station, with the eq (4) model overlaid.
//!
//! Expected shape: the probe follows the identity until the aggregate
//! probe + FIFO cross-traffic hits the station's fair share; beyond
//! that, the probe gains queue share at the expense of the FIFO
//! cross-traffic (which declines), while the contending flow keeps its
//! own fair share.

use crate::report::FigureReport;
use crate::scenarios::{self, FRAME};
use csmaprobe_core::rate_response::complete_rate_response;
use csmaprobe_desim::time::Dur;
use csmaprobe_probe::train::TrainProbe;

/// Run the experiment. The rate sweep runs as a
/// [`csmaprobe_core::sweep::RateResponseSweep`] (via
/// [`csmaprobe_core::link::WlanLink::rate_response_curve`]), so its
/// rate points are scheduled concurrently over the shared worker
/// budget.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "fig04",
        "Complete rate response with FIFO + contending cross-traffic",
        "probe deviates when probe+FIFO aggregate reaches the fair share; FIFO \
         cross-traffic throughput declines as ri grows; contending flow keeps its share",
        &[
            "ri_mbps",
            "ro_mbps",
            "contending_mbps",
            "fifo_cross_mbps",
            "eq4_model_mbps",
        ],
    );

    let link = scenarios::fig4_link();
    let fifo_rate = link.config().fifo_cross.unwrap().rate_bps;

    // Bf: the probe's fair share against the contender with NO FIFO
    // cross-traffic — measured with a long saturating train.
    let bf_link = csmaprobe_core::link::WlanLink::new(
        csmaprobe_core::link::LinkConfig::default().contending(link.config().contending[0]),
    );
    let bf = TrainProbe::new(800, FRAME, 10e6)
        .measure(
            &bf_link,
            (6.0 * scale).round().max(3.0) as usize,
            seed ^ 0xBF,
        )
        .output_rate_bps();
    // Each FIFO cross-traffic packet holds the queue head for ~L/Bf, so
    // u_fifo ≈ rate/Bf.
    let u_fifo = (fifo_rate / bf).min(0.95);
    rep.scalar("bf_mbps", bf / 1e6);
    rep.scalar("u_fifo", u_fifo);
    let b = bf * (1.0 - u_fifo);
    rep.scalar("b_mbps", b / 1e6);

    let duration = Dur::from_secs_f64((6.0 * scale).clamp(3.0, 60.0));
    let rates = scenarios::rate_sweep_mbps(0.5, 10.0, 0.5);
    let points = link.rate_response_curve(&rates, duration, seed);

    let mut max_model_err: f64 = 0.0;
    for p in &points {
        let model = complete_rate_response(p.input_rate_bps, bf, u_fifo);
        let err = (p.output_rate_bps - model).abs() / model;
        max_model_err = max_model_err.max(err);
        rep.row(vec![
            p.input_rate_bps / 1e6,
            p.output_rate_bps / 1e6,
            p.contending_bps[0] / 1e6,
            p.fifo_cross_bps / 1e6,
            model / 1e6,
        ]);
    }

    // Check 1: identity region below B.
    let below = points.iter().filter(|p| p.input_rate_bps < 0.8 * b);
    let identity_ok = below
        .map(|p| (p.output_rate_bps / p.input_rate_bps - 1.0).abs())
        .fold(0.0, f64::max);
    rep.check(
        "identity below B",
        identity_ok < 0.08,
        format!("max |ro/ri - 1| below 0.8B = {identity_ok:.3}"),
    );

    // Check 2: FIFO cross-traffic declines as the probe rate grows.
    let fifo_low = points[0].fifo_cross_bps;
    let fifo_high = points.last().unwrap().fifo_cross_bps;
    rep.check(
        "FIFO cross-traffic squeezed out",
        fifo_high < 0.8 * fifo_low,
        format!(
            "fifo tput {:.2} -> {:.2} Mb/s over the sweep",
            fifo_low / 1e6,
            fifo_high / 1e6
        ),
    );

    // Check 3: eq (4) tracks the measured curve. The fluid model is
    // least accurate right at the knee (finite trains, Poisson cross
    // bursts), so allow 20% there; typical errors elsewhere are < 5%.
    rep.check(
        "eq (4) matches measurement",
        max_model_err < 0.20,
        format!("max relative error {max_model_err:.3}"),
    );

    // Check 4: contending station's throughput stays within its fair
    // share band over the whole sweep (it never collapses).
    let cmin = points
        .iter()
        .map(|p| p.contending_bps[0])
        .fold(f64::INFINITY, f64::min);
    rep.check(
        "contending flow keeps its share",
        cmin > 1.5e6,
        format!("min contending tput {:.2} Mb/s", cmin / 1e6),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig04_shape_holds_at_small_scale() {
        let rep = super::run(0.5, 43);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
