//! Fig 8 — KS-test evolution of the per-packet access-delay
//! distribution against steady state (top) and the mean queue size of
//! the contending node (bottom).
//!
//! Setting: probe 8 Mb/s, contending cross-traffic 2 Mb/s, 1000-packet
//! trains. The KS statistic starts above the 95 % threshold and decays
//! below it after ~10 packets, tracking the time the contending queue
//! takes to reach its stationary size.

use crate::report::FigureReport;
use crate::scaled;
use crate::scenarios::{self, FRAME};
use csmaprobe_core::transient::TransientExperiment;
use csmaprobe_stats::ks::two_sample_ks;
use csmaprobe_traffic::probe::ProbeTrain;

/// Run the experiment.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "fig08",
        "KS test vs steady state + contending queue size (probe 8 Mb/s, cross 2 Mb/s)",
        "KS statistic above the 95% threshold for the first packets, decaying below it \
         within ~10 packets; contending queue size stabilises on the same horizon",
        &[
            "packet_index",
            "ks_value",
            "ks_threshold_95",
            "mean_contending_queue",
            "p95_access_delay_ms",
        ],
    );

    let n = 1000;
    let exp = TransientExperiment {
        link: scenarios::fig8_link(),
        train: ProbeTrain::from_rate(n, FRAME, 8e6),
        reps: scaled(1000, scale, 150),
        seed,
    };
    // Dense mode: the KS profile needs raw per-index samples.
    let data = exp.run_dense(scenarios::DENSE_SAMPLE_CAP);

    // Steady-state reference: the pooled delays of the last 500
    // indices, strided down so each per-index KS test stays cheap.
    let pooled = data.steady_sample(500);
    let stride = (pooled.len() / 20_000).max(1);
    let reference: Vec<f64> = pooled.iter().step_by(stride).cloned().collect();

    let queue_profile = data.queue_profile();
    let p95 = data.p95_profile();
    let show = 100;
    let mut first_below: Option<usize> = None;
    for (i, &queued) in queue_profile.iter().take(show).enumerate() {
        let ks = two_sample_ks(data.delays.sample(i), &reference, 0.05);
        if first_below.is_none() && !ks.reject {
            first_below = Some(i + 1);
        }
        rep.row(vec![
            (i + 1) as f64,
            ks.statistic,
            ks.threshold,
            queued,
            p95[i] * 1e3,
        ]);
    }

    rep.scalar(
        "first_packet_below_threshold",
        first_below.map(|v| v as f64).unwrap_or(f64::NAN),
    );

    // Check 1: packet 1 rejected.
    let ks1 = two_sample_ks(data.delays.sample(0), &reference, 0.05);
    rep.check(
        "first packet off steady state",
        ks1.reject,
        format!("KS_1 = {:.4} > {:.4}", ks1.statistic, ks1.threshold),
    );

    // Check 2: the transient ends within tens of packets.
    rep.check(
        "KS decays below threshold within 30 packets",
        first_below.map(|v| v <= 30).unwrap_or(false),
        format!("first below at {:?}", first_below),
    );

    // Check 4: the streamed p95 access-delay tail rises from the first
    // packets to its stationary level on the same horizon the KS test
    // sees (the transient is a tail effect too, not just a mean shift).
    let p95_plateau = p95[40..show].iter().sum::<f64>() / (show - 40) as f64;
    rep.check(
        "streamed p95 access delay rises to its plateau",
        p95[0] < p95_plateau,
        format!(
            "p95_1 = {:.3} ms vs p95_40..100 = {:.3} ms",
            p95[0] * 1e3,
            p95_plateau * 1e3
        ),
    );

    // Check 3: contending queue grows to a stationary plateau.
    let early_q = queue_profile[0];
    let plateau: f64 = queue_profile[40..100].iter().sum::<f64>() / 60.0;
    let mid: f64 = queue_profile[10..20].iter().sum::<f64>() / 10.0;
    rep.check(
        "contending queue rises to a plateau",
        plateau > early_q && (mid - plateau).abs() / plateau < 0.35,
        format!("q_1 = {early_q:.2}, q_10..20 = {mid:.2}, plateau = {plateau:.2}"),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig08_shape_holds_at_small_scale() {
        let rep = super::run(0.25, 46);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
