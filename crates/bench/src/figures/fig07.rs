//! Fig 7 — histogram of the access delay seen by the first and by the
//! 500th probe packet.
//!
//! Same scenario as Fig 6 (probe 5 Mb/s vs 4 Mb/s contending). The
//! first packet's delay distribution is concentrated at small values;
//! the 500th packet's is shifted right with a heavier tail — the two
//! distributions differ visibly.

use crate::report::FigureReport;
use csmaprobe_stats::histogram::Histogram;
use csmaprobe_stats::ks::two_sample_ks;

/// Run the experiment.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "fig07",
        "Access-delay histograms: packet 1 vs packet 500",
        "the 500th packet's distribution is shifted to larger delays with a heavier \
         tail than the first packet's",
        &["delay_ms", "count_first", "count_500th"],
    );

    let n = 520;
    let data = super::fig06::experiment_dense(scale, seed, n);
    let first = data.delays.sample(0).to_vec();
    let late = data.delays.sample(499).to_vec();

    // Common binning across both samples.
    let lo = first
        .iter()
        .chain(&late)
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let hi = first
        .iter()
        .chain(&late)
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let bins = 40;
    let mut h1 = Histogram::new(lo, hi * 1.000001, bins);
    let mut h2 = Histogram::new(lo, hi * 1.000001, bins);
    for &x in &first {
        h1.add(x);
    }
    for &x in &late {
        h2.add(x);
    }
    for i in 0..bins {
        rep.row(vec![
            h1.bin_center(i) * 1e3,
            h1.counts()[i] as f64,
            h2.counts()[i] as f64,
        ]);
    }

    let mean1: f64 = first.iter().sum::<f64>() / first.len() as f64;
    let mean2: f64 = late.iter().sum::<f64>() / late.len() as f64;
    rep.scalar("mean_first_ms", mean1 * 1e3);
    rep.scalar("mean_500th_ms", mean2 * 1e3);

    rep.check(
        "500th packet slower on average",
        mean2 > 1.05 * mean1,
        format!("{:.3} ms vs {:.3} ms", mean2 * 1e3, mean1 * 1e3),
    );

    let ks = two_sample_ks(&first, &late, 0.05);
    rep.scalar("ks_statistic", ks.statistic);
    rep.check(
        "distributions significantly different (KS)",
        ks.reject,
        format!("KS = {:.4} > threshold {:.4}", ks.statistic, ks.threshold),
    );

    // The first packet's mode sits at a lower delay than the 500th's.
    rep.check(
        "mode shifts right",
        h1.mode() <= h2.mode(),
        format!(
            "mode_1 = {:.3} ms, mode_500 = {:.3} ms",
            h1.mode() * 1e3,
            h2.mode() * 1e3
        ),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig07_shape_holds_at_small_scale() {
        let rep = super::run(0.2, 45);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
