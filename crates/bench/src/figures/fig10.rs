//! Fig 10 — estimated duration of the transitory (in packets) versus
//! offered cross-traffic load, at tolerances 0.1 and 0.01, with the
//! probing flow offering 1 Erlang.
//!
//! Tolerance interpretation: the paper states "the first packet whose
//! average access delay is within 0.1 or 0.01 of the steady-state
//! average value" with access delays on a millisecond scale; we read
//! the tolerances as **absolute milliseconds**, which reproduces the
//! paper's magnitudes (~150-packet peak at 0.1). A relative reading
//! (10 %/1 %) yields the same shape at much smaller values; both
//! readings are reported (columns 2-3 absolute ms, 4-5 relative).
//!
//! Expected shape: the transient length peaks when the cross-traffic
//! load approaches its fair share (~0.5 Erlang with one contender,
//! where the contending queue is critically loaded and relaxes the
//! slowest), the 0.01 curve sits far above the 0.1 curve, and the
//! 0.1-tolerance length stays within ~150 packets.

use crate::report::FigureReport;
use crate::scaled;
use crate::scenarios::{self, FRAME};
use csmaprobe_core::link::{LinkConfig, WlanLink};
use csmaprobe_core::transient::TransientExperiment;
use csmaprobe_desim::rng::derive_seed;
use csmaprobe_traffic::probe::ProbeTrain;

/// Run the experiment.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "fig10",
        "Transitory length vs offered cross-traffic load (probe at 1 Erlang)",
        "length peaks near the cross-traffic fair share; tolerance 0.01 lies far above \
         0.1; at 0.1 (ms) tolerance the transient stays within ~150 packets",
        &[
            "cross_load_erlang",
            "len_0.1ms_pkts",
            "len_0.01ms_pkts",
            "len_rel10pct_pkts",
            "len_rel1pct_pkts",
        ],
    );

    let c = scenarios::capacity_bps(FRAME);
    rep.scalar("capacity_mbps", c / 1e6);
    let n = 1000;
    let reps = scaled(1000, scale, 150);

    let loads: Vec<f64> = (1..=10).map(|k| k as f64 * 0.1).collect();
    let mut peak = (0.0f64, 0.0f64); // (load, length at 0.1 ms)
    for (k, &load) in loads.iter().enumerate() {
        let link = WlanLink::new(LinkConfig::default().contending_bps(load * c));
        let exp = TransientExperiment {
            link,
            train: ProbeTrain::from_rate(n, FRAME, c), // 1 Erlang offered probe load
            reps,
            seed: derive_seed(seed, k as u64),
        };
        let data = exp.run();
        let len = |est: csmaprobe_stats::transient::TransientEstimate| {
            est.first_within.map(|v| (v + 1) as f64).unwrap_or(n as f64)
        };
        let abs01 = len(data.transient_length_abs(n / 4, 0.1e-3));
        let abs001 = len(data.transient_length_abs(n / 4, 0.01e-3));
        let rel10 = len(data.transient_length(n / 4, 0.1));
        let rel1 = len(data.transient_length(n / 4, 0.01));
        if abs01 > peak.1 {
            peak = (load, abs01);
        }
        rep.row(vec![load, abs01, abs001, rel10, rel1]);
    }

    rep.scalar("peak_load_tol0.1ms", peak.0);
    rep.scalar("peak_length_tol0.1ms", peak.1);

    // Check 1: 0.1 ms tolerance transient bounded by ~150 packets (the
    // paper's §4.1 bound), allowing Monte-Carlo noise headroom.
    let max01 = rep.rows.iter().map(|r| r[1]).fold(0.0f64, f64::max);
    rep.check(
        "tolerance 0.1 (ms) bounded by ~150 packets",
        max01 <= 200.0,
        format!("max length {max01}"),
    );

    // Check 2: tighter tolerance needs longer transients.
    let mean01: f64 = rep.rows.iter().map(|r| r[1]).sum::<f64>() / rep.rows.len() as f64;
    let mean001: f64 = rep.rows.iter().map(|r| r[2]).sum::<f64>() / rep.rows.len() as f64;
    rep.check(
        "0.01 tolerance needs longer transients",
        mean001 > 1.5 * mean01,
        format!("mean length {mean001:.1} (0.01 ms) vs {mean01:.1} (0.1 ms)"),
    );

    // Check 3: the transient peaks at an intermediate load (the
    // fair-share maximisation property), clearly above the extremes.
    let light = rep.rows[0][1];
    let heavy = rep.rows.last().unwrap()[1];
    rep.check(
        "transient maximal near the fair share",
        (0.3..=0.8).contains(&peak.0) && peak.1 >= light && peak.1 >= heavy,
        format!(
            "peak {} pkts at {} Erlang (vs {} at 0.1 E, {} at 1.0 E)",
            peak.1, peak.0, light, heavy
        ),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig10_shape_holds_at_small_scale() {
        let rep = super::run(0.15, 48);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
