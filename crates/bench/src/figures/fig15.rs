//! Fig 15 — experimental rate-response curves of short trains for the
//! **complete system** (FIFO cross-traffic reintroduced).
//!
//! Same qualitative deviations as Fig 13, with the FIFO cross-traffic
//! adding variability: the measured curve leaves the steady-state one
//! before the achievable throughput, and short trains keep
//! over-estimating at high rates regardless of the FIFO traffic.

use crate::report::FigureReport;
use crate::scenarios;

/// Run the experiment. The `(rate × train-length)` grid runs through
/// the sweep engine via [`super::fig13::sweep`] (one
/// [`crate::scenarios::TrainSweep`]), so its cells are scheduled
/// concurrently on the shared work-stealing executor.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "fig15",
        "Rate response of 3/10/50-packet trains, complete system (FIFO cross-traffic)",
        "short-train deviations persist with FIFO cross-traffic; high-rate \
         over-estimation remains, ordered 3 > 10 > 50",
        &[
            "ri_mbps",
            "steady_mbps",
            "train3_mbps",
            "train10_mbps",
            "train50_mbps",
        ],
    );

    let link = scenarios::fig4_link();
    let rates = scenarios::rate_sweep_mbps(1.0, 10.0, 1.0);
    let rows = super::fig13::sweep(&link, &rates, &[3, 10, 50], scale, seed);
    for row in &rows {
        rep.row(row.clone());
    }
    super::fig13::shape_checks(&mut rep, &rows);

    // Extra check: the FIFO cross-traffic lowers the steady-state
    // plateau relative to the no-FIFO link of Fig 13 (B = Bf(1-u)).
    let plateau_here = rows
        .iter()
        .filter(|r| r[0] >= 8.0)
        .map(|r| r[1])
        .sum::<f64>()
        / rows.iter().filter(|r| r[0] >= 8.0).count() as f64;
    rep.scalar("steady_plateau_mbps", plateau_here);
    rep.check(
        "plateau below the no-FIFO fair share",
        plateau_here < 3.6,
        format!("plateau {plateau_here:.2} Mb/s"),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig15_shape_holds_at_small_scale() {
        let rep = super::run(0.3, 50);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
