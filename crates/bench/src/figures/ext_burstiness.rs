//! Extension E17 — the §6.3.2 burstiness claim: "As the burstiness of
//! cross-traffic flow increases so will do the variability of
//! dispersion measures, thus leading to higher deviations from the
//! steady-state behavior."
//!
//! Fixed mean FIFO cross-traffic rate, increasing burstiness (Poisson →
//! exponential on/off → Pareto on/off), 20-packet trains probing below
//! the steady-state achievable throughput. The across-replication
//! standard deviation of the output gap must grow with burstiness.

use crate::report::FigureReport;
use crate::scaled;
use crate::scenarios::FRAME;
use csmaprobe_core::link::{CrossShape, CrossSpec, LinkConfig, WlanLink};
use csmaprobe_desim::rng::derive_seed;
use csmaprobe_probe::train::TrainProbe;

/// Run the extension experiment.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "ext_burstiness",
        "Dispersion variability vs FIFO cross-traffic burstiness (§6.3)",
        "at identical mean load, burstier FIFO cross-traffic inflates the standard \
         deviation of dispersion measurements (Poisson < exp on/off < Pareto on/off)",
        &["shape", "mean_gO_ms", "std_gO_ms", "output_rate_mbps"],
    );

    let fifo_rate = 1_500_000.0;
    let shapes: Vec<(&str, CrossShape)> = vec![
        ("poisson", CrossShape::Poisson),
        ("exp_onoff_d25", CrossShape::ExpOnOff { duty: 0.25 }),
        (
            "pareto_onoff_a1.3_d25",
            CrossShape::ParetoOnOff {
                alpha: 1.3,
                duty: 0.25,
            },
        ),
    ];

    // Probe below B = Bf(1-u) ≈ 3.5·(1−0.43) ≈ 2.0 Mb/s, where §6.3
    // says bursty deviations are largest.
    let ri = 1.5e6;
    let reps = scaled(500, scale, 100);
    let mut stds = Vec::new();
    for (k, (_name, shape)) in shapes.iter().enumerate() {
        let link = WlanLink::new(
            LinkConfig::default()
                .contending_bps(3_000_000.0)
                .fifo_cross(CrossSpec::shaped(fifo_rate, *shape)),
        );
        let m = TrainProbe::new(20, FRAME, ri).measure(&link, reps, derive_seed(seed, k as u64));
        let std = m.output_gap.std_dev();
        stds.push(std);
        rep.row(vec![
            k as f64,
            m.mean_output_gap_s() * 1e3,
            std * 1e3,
            m.output_rate_bps() / 1e6,
        ]);
    }

    rep.check(
        "exp on/off burstier than Poisson",
        stds[1] > stds[0],
        format!("std {:.4} ms vs {:.4} ms", stds[1] * 1e3, stds[0] * 1e3),
    );
    rep.check(
        "Pareto on/off burstiest",
        stds[2] > stds[1],
        format!("std {:.4} ms vs {:.4} ms", stds[2] * 1e3, stds[1] * 1e3),
    );
    // Mean output rates stay near ri (below B the identity holds on
    // average; burstiness moves the variance, not the mean).
    let rates: Vec<f64> = rep.rows.iter().map(|r| r[3]).collect();
    let max_dev = rates
        .iter()
        .map(|r| (r - ri / 1e6).abs() / (ri / 1e6))
        .fold(0.0, f64::max);
    rep.check(
        "mean response stays near the identity below B",
        max_dev < 0.15,
        format!("max mean deviation {max_dev:.3}"),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn burstiness_ordering_holds_at_small_scale() {
        let rep = super::run(0.4, 58);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
