//! One module per data figure of the paper (plus two extra
//! model-validation experiments). Each exposes
//! `run(scale: f64, seed: u64) -> FigureReport`.
//!
//! | module | paper figure | what it regenerates |
//! |---|---|---|
//! | [`fig01`] | Fig 1 | steady-state rate response vs one contender |
//! | [`fig04`] | Fig 4 | complete picture with FIFO cross-traffic |
//! | [`fig06`] | Fig 6 | mean access delay vs probe packet number |
//! | [`fig07`] | Fig 7 | access-delay histograms, packet 1 vs 500 |
//! | [`fig08`] | Fig 8 | KS profile + contending queue size |
//! | [`fig09`] | Fig 9 | KS profile, 4-station complex case |
//! | [`fig10`] | Fig 10 | transient length vs offered cross load |
//! | [`fig13`] | Fig 13 | short-train rate response, no FIFO cross |
//! | [`fig15`] | Fig 15 | short-train rate response, complete system |
//! | [`fig16`] | Fig 16 | packet-pair inference vs fluid response |
//! | [`fig17`] | Fig 17 | MSER-2 corrected 20-packet trains |
//! | [`bounds_check`] | §6 eqs (29)/(30)/(33)/(34) | measured E\[gO\] vs bounds |
//! | [`tool_bias`] | §7.2 | SLoPS-style tool on FIFO vs CSMA/CA |
//! | [`ablation_access`] | (ablation) | immediate-access share of the transient |
//! | [`ext_ofdm`] | (extension) | same phenomena on 802.11g OFDM |
//! | [`ext_impairments`] | (extension) | frame errors + RTS/CTS effects |
//! | [`ext_burstiness`] | §6.3 claim | dispersion variability vs cross burstiness |

pub mod ablation_access;
pub mod bounds_check;
pub mod ext_burstiness;
pub mod ext_impairments;
pub mod ext_ofdm;
pub mod fig01;
pub mod fig04;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig13;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod tool_bias;
