//! One module per data figure of the paper (plus two extra
//! model-validation experiments). Each exposes
//! `run(scale: f64, seed: u64) -> FigureReport`.
//!
//! | module | paper figure | what it regenerates |
//! |---|---|---|
//! | [`fig01`] | Fig 1 | steady-state rate response vs one contender |
//! | [`fig04`] | Fig 4 | complete picture with FIFO cross-traffic |
//! | [`fig06`] | Fig 6 | mean access delay vs probe packet number |
//! | [`fig07`] | Fig 7 | access-delay histograms, packet 1 vs 500 |
//! | [`fig08`] | Fig 8 | KS profile + contending queue size |
//! | [`fig09`] | Fig 9 | KS profile, 4-station complex case |
//! | [`fig10`] | Fig 10 | transient length vs offered cross load |
//! | [`fig13`] | Fig 13 | short-train rate response, no FIFO cross |
//! | [`fig15`] | Fig 15 | short-train rate response, complete system |
//! | [`fig16`] | Fig 16 | packet-pair inference vs fluid response |
//! | [`fig17`] | Fig 17 | MSER-2 corrected 20-packet trains |
//! | [`bounds_check`] | §6 eqs (29)/(30)/(33)/(34) | measured E\[gO\] vs bounds |
//! | [`tool_bias`] | §7.2 | SLoPS-style tool on FIFO vs CSMA/CA |
//! | [`grid_bias`] | §7.2 (grid) | tool bias across link × train × tool |
//! | [`ablation_access`] | (ablation) | immediate-access share of the transient |
//! | [`ext_ofdm`] | (extension) | same phenomena on 802.11g OFDM |
//! | [`ext_impairments`] | (extension) | frame errors + RTS/CTS effects |
//! | [`ext_burstiness`] | §6.3 claim | dispersion variability vs cross burstiness |
//! | [`tier_equivalence`] | (engine) | fast tiers vs the event-core oracle |
//! | [`tier_speedup`] | (engine) | wall-clock gain of the fast tiers |

pub mod ablation_access;
pub mod bounds_check;
pub mod ext_burstiness;
pub mod ext_impairments;
pub mod ext_ofdm;
pub mod fig01;
pub mod fig04;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig13;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod grid_bias;
pub mod tier_equivalence;
pub mod tier_speedup;
pub mod tool_bias;

use crate::report::FigureReport;

/// One registry entry: a runnable figure experiment.
pub struct FigureDef {
    /// Identifier, e.g. `"fig06"` — what `--only` matches.
    pub id: &'static str,
    /// One-line description (shown by `--list`).
    pub title: &'static str,
    /// The experiment: `run(scale, seed)`.
    pub run: fn(f64, u64) -> FigureReport,
    /// Rough relative cost at scale 1 (10 ≈ 0.1 s). The scheduler
    /// starts expensive figures first so short ones fill the tail
    /// instead of long ones serialising behind them.
    pub weight: u32,
}

/// Every figure experiment, in report order (the order
/// `experiments.json` and `EXPERIMENTS.md` present them). The
/// `all_figures` scheduler runs entries concurrently by descending
/// [`FigureDef::weight`], then reassembles this order.
pub const REGISTRY: &[FigureDef] = &[
    FigureDef {
        id: "fig01",
        title: "steady-state rate response vs one contender",
        run: fig01::run,
        weight: 4,
    },
    FigureDef {
        id: "fig04",
        title: "complete picture with FIFO cross-traffic",
        run: fig04::run,
        weight: 4,
    },
    FigureDef {
        id: "fig06",
        title: "mean access delay vs probe packet number",
        run: fig06::run,
        weight: 40,
    },
    FigureDef {
        id: "fig07",
        title: "access-delay histograms, packet 1 vs 500",
        run: fig07::run,
        weight: 55,
    },
    FigureDef {
        id: "fig08",
        title: "KS profile + contending queue size",
        run: fig08::run,
        weight: 40,
    },
    FigureDef {
        id: "fig09",
        title: "KS profile, 4-station complex case",
        run: fig09::run,
        weight: 220,
    },
    FigureDef {
        id: "fig10",
        title: "transient length vs offered cross load",
        run: fig10::run,
        weight: 250,
    },
    FigureDef {
        id: "fig13",
        title: "short-train rate response, no FIFO cross",
        run: fig13::run,
        weight: 35,
    },
    FigureDef {
        id: "fig15",
        title: "short-train rate response, complete system",
        run: fig15::run,
        weight: 35,
    },
    FigureDef {
        id: "fig16",
        title: "packet-pair inference vs fluid response",
        run: fig16::run,
        weight: 15,
    },
    FigureDef {
        id: "fig17",
        title: "MSER-2 corrected 20-packet trains",
        run: fig17::run,
        weight: 15,
    },
    FigureDef {
        id: "bounds_check",
        title: "measured E[gO] vs the §6 dispersion bounds",
        run: bounds_check::run,
        weight: 20,
    },
    FigureDef {
        id: "tool_bias",
        title: "SLoPS-style tool on FIFO vs CSMA/CA",
        run: tool_bias::run,
        weight: 8,
    },
    FigureDef {
        id: "grid_bias",
        title: "tool bias across the link x train x tool grid",
        run: grid_bias::run,
        weight: 30,
    },
    FigureDef {
        id: "ablation_access",
        title: "immediate-access share of the transient",
        run: ablation_access::run,
        weight: 40,
    },
    FigureDef {
        id: "ext_ofdm",
        title: "same phenomena on 802.11g OFDM",
        run: ext_ofdm::run,
        weight: 80,
    },
    FigureDef {
        id: "ext_impairments",
        title: "frame errors + RTS/CTS effects",
        run: ext_impairments::run,
        weight: 4,
    },
    FigureDef {
        id: "ext_burstiness",
        title: "dispersion variability vs cross burstiness",
        run: ext_burstiness::run,
        weight: 8,
    },
    FigureDef {
        id: "tier_equivalence",
        title: "engine tiers vs the event-core oracle",
        run: tier_equivalence::run,
        weight: 30,
    },
    FigureDef {
        id: "tier_speedup",
        title: "wall-clock speedup of the fast engine tiers",
        run: tier_speedup::run,
        weight: 30,
    },
];

/// Look up a registry entry by id.
pub fn find(id: &str) -> Option<&'static FigureDef> {
    REGISTRY.iter().find(|d| d.id == id)
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_findable() {
        let mut seen = std::collections::BTreeSet::new();
        for d in REGISTRY {
            assert!(seen.insert(d.id), "duplicate id {}", d.id);
            assert!(find(d.id).is_some());
            assert!(d.weight > 0, "{} needs a scheduling weight", d.id);
        }
        assert_eq!(REGISTRY.len(), 20);
        assert!(find("nope").is_none());
    }
}
