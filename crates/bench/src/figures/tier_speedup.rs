//! Tier speedup — what the tiered engine buys: wall-clock time of the
//! event core vs the slot-quantised kernel vs the analytic tier on
//! representative steady-state cells.
//!
//! Timings go into the report's non-deterministic `wallclock` channel
//! (and, via the scheduler's `elapsed_s`, into `BENCH_history.jsonl`),
//! never into the deterministic rows: `tests/determinism.rs` compares
//! `experiments.json` byte-for-byte modulo exactly those fields. The
//! pass/fail checks only assert *robust* margins — the analytic tier
//! replaces a multi-second simulation with a fixed-point solve, so its
//! ≥10× margin holds on any host; the slotted kernel's gain is
//! reported but only required not to regress the result itself.
//!
//! The **batched leg** times a whole replication chunk (CHUNK = 32
//! lanes, the grid engine's chunk width) of probe trains through one
//! [`BatchedSlottedSim`](csmaprobe_mac::BatchedSlottedSim) call
//! against the same chunk as 32 scalar slotted kernel calls. Its hard
//! gates are deterministic — bit-identity (every lane equals its
//! scalar run) and full regime coverage; the measured chunk speedup —
//! bounded well below the naive "32 event loops collapse into one"
//! intuition, because a bit-identical kernel still pays every lane's
//! mandatory RNG draws and queue operations — is reported **only** in
//! the wallclock channel (EXPERIMENTS.md derives the ~2× per-event
//! floor). Check outcomes are part of the byte-compared deterministic
//! payload, so no check may gate on a timing: a sub-millisecond margin
//! flips under the determinism suite's 8× oversubscribed leg. The
//! perf trajectory (`BENCH_history.jsonl` via `elapsed_s`, which
//! includes this leg) is what watches for wall-clock regressions.

use crate::report::FigureReport;
use crate::tier::regime_matrix;
use csmaprobe_core::engine::{self, EngineTier};
use csmaprobe_core::link::{LinkConfig, SteadyPoint, TrainObservation, WlanLink};
use csmaprobe_desim::time::Dur;
use csmaprobe_traffic::probe::ProbeTrain;

/// Lanes per batched chunk — the grid engine's replication chunk width.
const CHUNK: usize = 32;

/// Bit-level equality of two train observations (no `PartialEq` on the
/// type: f64 fields compare by bits here, NaN-safe).
fn obs_bits_equal(a: &TrainObservation, b: &TrainObservation) -> bool {
    a.arrivals == b.arrivals
        && a.rx_times == b.rx_times
        && a.g_i == b.g_i
        && a.bytes == b.bytes
        && match (&a.access_delays, &b.access_delays) {
            (Some(x), Some(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
            }
            (None, None) => true,
            _ => false,
        }
}

/// Run the experiment. `scale` multiplies measurement duration.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "tier_speedup",
        "Wall-clock speedup of the fast engine tiers over the event core",
        "analytic tier >= 10x faster than the event core on saturated cells \
         (the 10-100x tiering claim); slotted kernel faster at equal output",
        &["contenders", "ri_mbps", "event_mbps", "fast_tier_mbps"],
    );

    let duration = Dur::from_secs_f64((6.0 * scale).clamp(0.6, 30.0));
    let mut analytic_speedup_min = f64::INFINITY;
    let mut slotted_speedup = f64::NAN;
    let mut outputs_match = true;

    for r in regime_matrix() {
        // Each cell's fast tier is the cheapest covered one — exactly
        // what the router would pick in Auto mode.
        let fast = if r.covered_by(EngineTier::Analytic) {
            EngineTier::Analytic
        } else {
            EngineTier::Slotted
        };
        if !r.covered_by(fast) {
            continue;
        }
        let (event, event_s) = r
            .timed_steady(EngineTier::Event, duration, seed)
            .expect("event tier covers everything");
        let (point, fast_s) = r.timed_steady(fast, duration, seed).expect("covered");

        let speedup = event_s / fast_s.max(1e-9);
        rep.wallclock(&format!("{}_event_s", r.name), event_s);
        rep.wallclock(&format!("{}_fast_s", r.name), fast_s);
        rep.wallclock(&format!("{}_speedup", r.name), speedup);

        match fast {
            EngineTier::Analytic => {
                // Only the saturated cells enter the gated minimum: there
                // the event core must simulate seconds of a fully loaded
                // channel, so the 100-200x margin is structural. The
                // finite-load cells simulate mostly idle air — the event
                // core finishes them in fractions of a millisecond, and
                // their 0.3-10x factors are trajectory data (wallclock
                // channel), not a robust gate.
                if engine::saturation_covers(r.link.config(), r.ri_bps) {
                    analytic_speedup_min = analytic_speedup_min.min(speedup);
                }
            }
            EngineTier::Slotted => {
                // One representative slotted cell is enough for the
                // trend record; keep the first (the matrix orders it
                // light-to-heavy).
                if slotted_speedup.is_nan() {
                    slotted_speedup = speedup;
                }
                if point.output_rate_bps != event.output_rate_bps {
                    outputs_match = false;
                }
            }
            EngineTier::Event => unreachable!(),
        }

        rep.row(vec![
            r.contenders as f64,
            r.ri_bps / 1e6,
            event.output_rate_bps / 1e6,
            point.output_rate_bps / 1e6,
        ]);
    }

    rep.wallclock("slotted_speedup", slotted_speedup);

    // ---- batched leg: one CHUNK-wide kernel call vs CHUNK scalar
    // slotted calls, on every slotted-covered multi-replication cell ----
    let train = ProbeTrain::from_rate((40.0 * scale).clamp(12.0, 120.0) as usize, 1500, 8e6);
    let mut chunks_identical = true;
    let mut chunks_compared = 0usize;
    let mut batch_worst_ratio = 0.0f64;
    for r in regime_matrix() {
        if r.covered_by(EngineTier::Analytic) || !r.covered_by(EngineTier::Slotted) {
            // The analytic cells have no multi-replication simulation
            // to batch; everything else in the matrix is slotted-covered.
            continue;
        }
        let seeds: Vec<u64> = (0..CHUNK as u64).map(|l| seed ^ (l << 32) | l).collect();
        let (scalar_obs, scalar_s) = r
            .timed_train_chunk(train, &seeds, false)
            .expect("slotted-covered");
        let (batch_obs, batch_s) = r
            .timed_train_chunk(train, &seeds, true)
            .expect("slotted-covered");
        if scalar_obs.len() != batch_obs.len()
            || !scalar_obs
                .iter()
                .zip(&batch_obs)
                .all(|(a, b)| obs_bits_equal(a, b))
        {
            chunks_identical = false;
        }
        chunks_compared += 1;
        batch_worst_ratio = batch_worst_ratio.max(batch_s / scalar_s.max(1e-9));
        rep.wallclock(&format!("{}_chunk_scalar_s", r.name), scalar_s);
        rep.wallclock(&format!("{}_chunk_batch_s", r.name), batch_s);
        rep.wallclock(
            &format!("{}_chunk_speedup", r.name),
            scalar_s / batch_s.max(1e-9),
        );
    }
    // Worst batch/scalar ratio across the batched regimes — trajectory
    // data only. Gating a check on this flips under oversubscription
    // (sub-millisecond legs, 8 workers on 2 cores) and would break the
    // byte-compared determinism contract on the check outcome.
    rep.wallclock("chunk_batch_worst_ratio", batch_worst_ratio);

    // ---- finite-load rate-response sweep leg: the paper's Fig 1 curve
    // across the knee (probe 0.5–6 Mb/s vs one 4.5 Mb/s Poisson
    // contender), forced-event vs the analytic route the auto policy
    // takes on these cells. Hard gates are deterministic: every swept
    // cell must carry the fixed point's convergence certificate, and
    // the analytic points must be bit-reproducible run-to-run. The
    // sweep speedup itself is wallclock-channel data only: light
    // finite-load cells simulate mostly idle air, so the event core is
    // fast there and the measured factor is host-dependent — gating on
    // it would violate the deterministic-check doctrine above. ----
    let sweep_link = WlanLink::new(LinkConfig::default().contending_bps(4_500_000.0));
    let sweep_rates: Vec<f64> = (1..=12).map(|k| k as f64 * 500_000.0).collect();
    let mut sweep_certified = true;
    let t0 = std::time::Instant::now();
    let event_pts: Vec<SteadyPoint> = sweep_rates
        .iter()
        .map(|&ri| sweep_link.steady_state_event(ri, duration, seed))
        .collect();
    let sweep_event_s = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let auto_pts: Vec<SteadyPoint> = sweep_rates
        .iter()
        .map(|&ri| {
            sweep_certified &= engine::analytic_covers(sweep_link.config(), ri);
            sweep_link.steady_state_analytic(ri)
        })
        .collect();
    let sweep_analytic_s = t0.elapsed().as_secs_f64();
    let sweep_speedup = sweep_event_s / sweep_analytic_s.max(1e-9);
    rep.wallclock("nonsat_sweep_event_s", sweep_event_s);
    rep.wallclock("nonsat_sweep_analytic_s", sweep_analytic_s);
    rep.wallclock("nonsat_sweep_speedup", sweep_speedup);
    let sweep_repro = sweep_rates.iter().zip(&auto_pts).all(|(&ri, p)| {
        let again = sweep_link.steady_state_analytic(ri);
        again.output_rate_bps.to_bits() == p.output_rate_bps.to_bits()
            && again.contending_bps.len() == p.contending_bps.len()
            && again
                .contending_bps
                .iter()
                .zip(&p.contending_bps)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    });
    for (ri, (e, a)) in sweep_rates.iter().zip(event_pts.iter().zip(&auto_pts)) {
        rep.row(vec![
            1.0,
            ri / 1e6,
            e.output_rate_bps / 1e6,
            a.output_rate_bps / 1e6,
        ]);
    }
    rep.check(
        "analytic tier at least 10x faster than event core",
        analytic_speedup_min >= 10.0,
        "margin is structural on the saturated cells (fixed-point solve vs seconds \
         of fully loaded channel simulation; measured 100-200x); finite-load cell \
         and knee-sweep factors are host-dependent and live in the wallclock field \
         only"
            .into(),
    );
    rep.check(
        "fast tiers preserve the probe output",
        outputs_match,
        "slotted cells bit-identical to the event core".into(),
    );
    rep.check(
        "batched chunk bit-identical to scalar slotted lanes",
        chunks_identical,
        format!("{CHUNK}-lane kernel call vs {CHUNK} scalar runs, every field compared by bits"),
    );
    rep.check(
        "batched leg covers every slotted-only regime",
        chunks_compared == 2,
        format!(
            "{chunks_compared} regimes batched (the matrix's 2 slotted-covered, \
             non-analytic cells — `fifo-1` and `mixed-2`; the finite-load tier now \
             serves the old light/knee cells); the measured ~1.2-1.9x chunk speedup \
             lives in the wallclock field only — a bit-identical kernel's per-event \
             cost is RNG- and queue-bound, capping the win near 2x (EXPERIMENTS.md)"
        ),
    );
    rep.check(
        "knee sweep: every finite-load cell carries the convergence certificate",
        sweep_certified,
        format!(
            "{} rate points across the knee, all analytic-covered \
             (auto routes the whole curve off the simulators)",
            sweep_rates.len()
        ),
    );
    rep.check(
        "knee sweep: analytic points bit-reproducible",
        sweep_repro,
        "fixed point re-solved per cell, outputs compared by bits".into(),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn tier_speedup_holds_at_small_scale() {
        let rep = super::run(0.25, 9);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
