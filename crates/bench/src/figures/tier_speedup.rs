//! Tier speedup — what the tiered engine buys: wall-clock time of the
//! event core vs the slot-quantised kernel vs the analytic tier on
//! representative steady-state cells.
//!
//! Timings go into the report's non-deterministic `wallclock` channel
//! (and, via the scheduler's `elapsed_s`, into `BENCH_history.jsonl`),
//! never into the deterministic rows: `tests/determinism.rs` compares
//! `experiments.json` byte-for-byte modulo exactly those fields. The
//! pass/fail checks only assert *robust* margins — the analytic tier
//! replaces a multi-second simulation with a fixed-point solve, so its
//! ≥10× margin holds on any host; the slotted kernel's gain is
//! reported but only required not to regress the result itself.

use crate::report::FigureReport;
use crate::tier::regime_matrix;
use csmaprobe_core::engine::EngineTier;
use csmaprobe_desim::time::Dur;

/// Run the experiment. `scale` multiplies measurement duration.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "tier_speedup",
        "Wall-clock speedup of the fast engine tiers over the event core",
        "analytic tier >= 10x faster than the event core on saturated cells \
         (the 10-100x tiering claim); slotted kernel faster at equal output",
        &["contenders", "ri_mbps", "event_mbps", "fast_tier_mbps"],
    );

    let duration = Dur::from_secs_f64((6.0 * scale).clamp(0.6, 30.0));
    let mut analytic_speedup_min = f64::INFINITY;
    let mut slotted_speedup = f64::NAN;
    let mut outputs_match = true;

    for r in regime_matrix() {
        // Each cell's fast tier is the cheapest covered one — exactly
        // what the router would pick in Auto mode.
        let fast = if r.covered_by(EngineTier::Analytic) {
            EngineTier::Analytic
        } else {
            EngineTier::Slotted
        };
        if !r.covered_by(fast) {
            continue;
        }
        let (event, event_s) = r
            .timed_steady(EngineTier::Event, duration, seed)
            .expect("event tier covers everything");
        let (point, fast_s) = r.timed_steady(fast, duration, seed).expect("covered");

        let speedup = event_s / fast_s.max(1e-9);
        rep.wallclock(&format!("{}_event_s", r.name), event_s);
        rep.wallclock(&format!("{}_fast_s", r.name), fast_s);
        rep.wallclock(&format!("{}_speedup", r.name), speedup);

        match fast {
            EngineTier::Analytic => {
                analytic_speedup_min = analytic_speedup_min.min(speedup);
            }
            EngineTier::Slotted => {
                // One representative slotted cell is enough for the
                // trend record; keep the first (the matrix orders it
                // light-to-heavy).
                if slotted_speedup.is_nan() {
                    slotted_speedup = speedup;
                }
                if point.output_rate_bps != event.output_rate_bps {
                    outputs_match = false;
                }
            }
            EngineTier::Event => unreachable!(),
        }

        rep.row(vec![
            r.contenders as f64,
            r.ri_bps / 1e6,
            event.output_rate_bps / 1e6,
            point.output_rate_bps / 1e6,
        ]);
    }

    rep.check(
        "analytic tier at least 10x faster than event core",
        analytic_speedup_min >= 10.0,
        "margin is structural (fixed-point solve vs full simulation); \
         measured factors live in the wallclock field"
            .into(),
    );
    rep.check(
        "fast tiers preserve the probe output",
        outputs_match,
        "slotted cells bit-identical to the event core".into(),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn tier_speedup_holds_at_small_scale() {
        let rep = super::run(0.25, 9);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
