//! Extension E15 — what the paper deliberately left out: channel
//! impairments. "Other effects appearing as a consequence of wireless
//! channel impairments are not dealt with in this paper."
//!
//! With the frame-error and RTS/CTS switches of
//! [`csmaprobe_mac::MacOptions`], this experiment quantifies how (a)
//! random frame corruption and (b) RTS/CTS protection shift the
//! steady-state achievable throughput and the packet-pair estimate —
//! the first things a tool designer would ask after reading the paper.

use crate::report::FigureReport;
use crate::scaled;
use crate::scenarios::FRAME;
use csmaprobe_core::link::{LinkConfig, WlanLink};
use csmaprobe_desim::rng::derive_seed;
use csmaprobe_mac::MacOptions;
use csmaprobe_probe::pair::PacketPairProbe;
use csmaprobe_probe::train::TrainProbe;

/// Run the extension experiment.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "ext_impairments",
        "Achievable throughput and packet-pair bias under frame errors / RTS-CTS",
        "frame errors lower B (retransmissions burn airtime) and widen the \
         packet-pair bias; RTS/CTS lowers B via handshake overhead",
        &["config", "steady_B_mbps", "packet_pair_mbps", "pair_over_B"],
    );

    let cross = 3_000_000.0;
    let configs: Vec<(&str, MacOptions)> = vec![
        ("baseline", MacOptions::default()),
        (
            "fer_5pct",
            MacOptions::default().with_frame_error_rate(0.05),
        ),
        (
            "fer_20pct",
            MacOptions::default().with_frame_error_rate(0.20),
        ),
        ("rts_cts", MacOptions::default().with_rts_cts(500)),
    ];

    let mut b_values = Vec::new();
    for (k, (_name, mac)) in configs.iter().enumerate() {
        let link = WlanLink::new(
            LinkConfig::default()
                .contending_bps(cross)
                .mac_options(*mac),
        );
        let b = TrainProbe::new(800, FRAME, 10e6)
            .measure(&link, scaled(6, scale, 3), derive_seed(seed, k as u64))
            .output_rate_bps();
        let pair = PacketPairProbe::new(FRAME, scaled(300, scale, 60))
            .measure(&link, derive_seed(seed, 100 + k as u64))
            .rate_from_mean_bps();
        b_values.push(b);
        rep.row(vec![k as f64, b / 1e6, pair / 1e6, (pair - b) / 1e6]);
    }

    let baseline = b_values[0];
    rep.check(
        "5% frame errors cost a few percent of B",
        b_values[1] < baseline && b_values[1] > 0.85 * baseline,
        format!("B {:.2} -> {:.2} Mb/s", baseline / 1e6, b_values[1] / 1e6),
    );
    rep.check(
        "20% frame errors cost much more",
        b_values[2] < b_values[1],
        format!("B(20%) = {:.2} Mb/s", b_values[2] / 1e6),
    );
    rep.check(
        "RTS/CTS overhead lowers B",
        b_values[3] < 0.95 * baseline,
        format!("B(rts) = {:.2} Mb/s", b_values[3] / 1e6),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn impairments_extension_holds_at_small_scale() {
        let rep = super::run(0.3, 57);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
