//! Fig 16 — packet-pair inference versus the actual fluid (steady
//! state) achievable throughput, as a function of the contending
//! cross-traffic rate. Capacity fixed (no channel errors).
//!
//! Expected shape: the packet-pair estimate tracks the achievable
//! throughput — NOT the constant capacity — and over-estimates it at
//! every non-zero cross-traffic level; the two touch only with no
//! contending traffic.

use crate::report::FigureReport;
use crate::scaled;
use crate::scenarios::{self, FRAME};
use csmaprobe_core::link::{LinkConfig, WlanLink};
use csmaprobe_desim::rng::derive_seed;
use csmaprobe_probe::pair::PacketPairProbe;
use csmaprobe_probe::train::TrainProbe;

/// Run the experiment.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "fig16",
        "Packet-pair inference vs actual achievable throughput",
        "pair estimate tracks (and over-estimates) the achievable throughput; equals \
         the DCF capacity only with zero cross-traffic; far from the constant capacity \
         otherwise",
        &["cross_mbps", "fluid_B_mbps", "packet_pair_mbps"],
    );

    let c = scenarios::capacity_bps(FRAME);
    rep.scalar("capacity_mbps", c / 1e6);

    let mut over = 0usize;
    let mut total = 0usize;
    let mut first_pair = f64::NAN;
    let mut last_pair = f64::NAN;
    for k in 0..=10 {
        let cross = k as f64 * 1e6;
        let link = if cross > 0.0 {
            WlanLink::new(LinkConfig::default().contending_bps(cross))
        } else {
            WlanLink::new(LinkConfig::default())
        };
        // Fluid achievable throughput: long saturating train.
        let fluid = TrainProbe::new(1000, FRAME, 10.5e6)
            .measure(&link, scaled(6, scale, 3), derive_seed(seed, 100 + k))
            .output_rate_bps();
        let pair = PacketPairProbe::new(FRAME, scaled(400, scale, 60))
            .measure(&link, derive_seed(seed, 200 + k))
            .rate_from_mean_bps();
        if k == 0 {
            first_pair = pair;
        }
        last_pair = pair;
        if cross > 0.0 {
            total += 1;
            if pair > fluid {
                over += 1;
            }
        }
        rep.row(vec![cross / 1e6, fluid / 1e6, pair / 1e6]);
    }

    // Check 1: with no cross-traffic the pair reads the DCF capacity.
    rep.check(
        "pair = capacity at zero cross-traffic",
        (first_pair - c).abs() / c < 0.08,
        format!("pair {:.2} vs C {:.2} Mb/s", first_pair / 1e6, c / 1e6),
    );

    // Check 2: with contention the pair over-estimates the achievable
    // throughput in (almost) all settings.
    rep.check(
        "pair over-estimates achievable throughput",
        over as f64 >= 0.8 * total as f64,
        format!("pair > fluid in {over}/{total} non-zero cross levels"),
    );

    // Check 3: the pair estimate declines with cross-traffic — it does
    // NOT report the (constant) capacity.
    rep.check(
        "pair tracks contention, not capacity",
        last_pair < 0.8 * first_pair,
        format!(
            "pair at 10 Mb/s cross = {:.2} vs {:.2} at zero",
            last_pair / 1e6,
            first_pair / 1e6
        ),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig16_shape_holds_at_small_scale() {
        let rep = super::run(0.25, 51);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
