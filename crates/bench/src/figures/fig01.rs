//! Fig 1 — experimental steady-state rate response of probe traffic in
//! a WLAN, versus the throughput of the contending cross-traffic flow.
//!
//! Paper values: C = 6.5 Mb/s, A ≈ 2 Mb/s, B ≈ 3.4 Mb/s. The probe
//! curve follows the identity **through** A with no deviation and only
//! flattens at the fair share B; the cross-traffic throughput starts
//! declining once the probe rate exceeds A.

use crate::report::FigureReport;
use crate::scenarios::{self, FRAME};
use csmaprobe_core::rate_response::achievable_from_curve;
use csmaprobe_desim::time::Dur;

/// Run the experiment. `scale` multiplies measurement duration.
///
/// The sweep runs as a [`csmaprobe_core::sweep::RateResponseSweep`]
/// (via [`rate_response_curve`]): the 20 rate points are scheduled
/// concurrently on the shared work-stealing executor instead of serialising
/// on one thread.
///
/// [`rate_response_curve`]: csmaprobe_core::link::WlanLink::rate_response_curve
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "fig01",
        "Steady-state rate response vs contending cross-traffic",
        "probe follows ri past A (~2 Mb/s), flattens at fair share B (~3.4 Mb/s); \
         cross throughput declines once ri > A",
        &["ri_mbps", "ro_mbps", "cross_mbps"],
    );

    let c = scenarios::capacity_bps(FRAME);
    rep.scalar("capacity_mbps", c / 1e6);
    let a = c - scenarios::FIG1_CROSS_BPS;
    rep.scalar("available_mbps", a / 1e6);

    let link = scenarios::fig1_link();
    let duration = Dur::from_secs_f64((6.0 * scale).clamp(3.0, 60.0));
    let rates = scenarios::rate_sweep_mbps(0.5, 10.0, 0.5);
    let points = link.rate_response_curve(&rates, duration, seed);

    let mut curve = Vec::new();
    for p in &points {
        rep.row(vec![
            p.input_rate_bps / 1e6,
            p.output_rate_bps / 1e6,
            p.contending_bps[0] / 1e6,
        ]);
        curve.push((p.input_rate_bps, p.output_rate_bps));
    }

    let b = achievable_from_curve(&curve, 0.06);
    rep.scalar("achievable_mbps", b / 1e6);

    // Check 1: the probe curve still follows the identity just above A
    // (no knee at the available bandwidth).
    let just_above_a = points
        .iter()
        .find(|p| p.input_rate_bps > a * 1.1 && p.input_rate_bps < b * 0.9);
    if let Some(p) = just_above_a {
        let ratio = p.output_rate_bps / p.input_rate_bps;
        rep.check(
            "identity holds past A",
            ratio > 0.93,
            format!(
                "ri {:.2} Mb/s (> A {:.2}): ro/ri = {ratio:.3}",
                p.input_rate_bps / 1e6,
                a / 1e6
            ),
        );
    } else {
        rep.check(
            "identity holds past A",
            false,
            "no sample between A and B".into(),
        );
    }

    // Check 2: B is well above A and in the fair-share band.
    rep.check(
        "knee at fair share, not at A",
        b > 1.3 * a && (2.6e6..4.2e6).contains(&b),
        format!("B = {:.2} Mb/s vs A = {:.2} Mb/s", b / 1e6, a / 1e6),
    );

    // Check 3: cross-traffic throughput declines once ri > A.
    let cross_low = points
        .iter()
        .filter(|p| p.input_rate_bps < 0.8 * a)
        .map(|p| p.contending_bps[0])
        .fold(f64::NAN, f64::max);
    let cross_high = points
        .iter()
        .filter(|p| p.input_rate_bps > 8e6)
        .map(|p| p.contending_bps[0])
        .fold(f64::NAN, f64::min);
    rep.check(
        "cross-traffic degrades beyond A",
        cross_high < 0.9 * cross_low,
        format!(
            "cross at low ri {:.2} Mb/s -> at high ri {:.2} Mb/s",
            cross_low / 1e6,
            cross_high / 1e6
        ),
    );

    // Check 4: probe output saturates (flat) at high rates.
    let ro_8 = points
        .iter()
        .find(|p| (p.input_rate_bps - 8e6).abs() < 1.0)
        .map(|p| p.output_rate_bps)
        .unwrap_or(f64::NAN);
    let ro_10 = points
        .iter()
        .find(|p| (p.input_rate_bps - 10e6).abs() < 1.0)
        .map(|p| p.output_rate_bps)
        .unwrap_or(f64::NAN);
    rep.check(
        "probe flat beyond B",
        (ro_8 - ro_10).abs() / ro_8 < 0.1,
        format!(
            "ro(8) = {:.2}, ro(10) = {:.2} Mb/s",
            ro_8 / 1e6,
            ro_10 / 1e6
        ),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig01_shape_holds_at_small_scale() {
        let rep = super::run(0.5, 42);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
