//! Fig 6 — mean access delay versus probe packet number.
//!
//! NS2 setting: 1000-probe trains at 5 Mb/s against 4 Mb/s contending
//! cross-traffic, 25 000 repetitions; the figure plots the mean access
//! delay of packets 1..150. The first packets see clearly lower delays
//! (≈2.9 ms in the paper) than the steady plateau (≈3.7 ms).

use crate::report::FigureReport;
use crate::scaled;
use crate::scenarios::{self, FRAME};
use csmaprobe_core::transient::TransientExperiment;
use csmaprobe_traffic::probe::ProbeTrain;

/// The Fig 6/7 experiment definition (shared scenario).
fn experiment_def(scale: f64, seed: u64, n: usize) -> TransientExperiment {
    TransientExperiment {
        link: scenarios::fig6_link(),
        train: ProbeTrain::from_rate(n, FRAME, 5e6),
        reps: scaled(2000, scale, 200),
        seed,
    }
}

/// Run the Fig 6/7 experiment in streaming-summary mode (per-index
/// moments, O(train length) memory).
pub fn experiment(scale: f64, seed: u64, n: usize) -> csmaprobe_core::transient::TransientSummary {
    experiment_def(scale, seed, n).run()
}

/// Shared with fig07: the dense variant retaining raw per-index samples
/// (capped at [`scenarios::DENSE_SAMPLE_CAP`]).
pub fn experiment_dense(
    scale: f64,
    seed: u64,
    n: usize,
) -> csmaprobe_core::transient::TransientData {
    experiment_def(scale, seed, n).run_dense(scenarios::DENSE_SAMPLE_CAP)
}

/// Run the experiment.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "fig06",
        "Mean access delay vs probe packet number",
        "mean access delay of the first packets is clearly below the steady plateau, \
         rising over the first tens of packets (paper: ~2.9 ms -> ~3.7 ms); the \
         streamed p95 tail shows the same transient above the mean",
        &[
            "packet_index",
            "mean_access_delay_ms",
            "p95_access_delay_ms",
        ],
    );

    let data = experiment(scale, seed, 400);
    let profile = data.mean_profile();
    let p95 = data.p95_profile();
    let steady = data.steady_mean(200);
    rep.scalar("steady_mean_ms", steady * 1e3);
    let steady_p95 = p95[200..].iter().sum::<f64>() / (p95.len() - 200) as f64;
    rep.scalar("steady_p95_ms", steady_p95 * 1e3);

    for (i, (mu, q)) in profile.iter().zip(&p95).take(150).enumerate() {
        rep.row(vec![(i + 1) as f64, mu * 1e3, q * 1e3]);
    }

    // Check 1: the first packet is accelerated.
    rep.check(
        "first packet below steady state",
        profile[0] < 0.92 * steady,
        format!(
            "mu_1 = {:.3} ms vs steady {:.3} ms",
            profile[0] * 1e3,
            steady * 1e3
        ),
    );

    // Check 2: monotone-ish rise over the first packets (packet 1 below
    // the level of packets 10-20).
    let early_plateau =
        profile[9..20.min(profile.len())].iter().sum::<f64>() / (20.min(profile.len()) - 9) as f64;
    rep.check(
        "delay rises over first packets",
        profile[0] < early_plateau,
        format!(
            "mu_1 = {:.3} ms vs mu_10..20 = {:.3} ms",
            profile[0] * 1e3,
            early_plateau * 1e3
        ),
    );

    // Check 3: packets beyond ~50 sit at the plateau.
    let late = profile[50..150].iter().sum::<f64>() / 100.0;
    rep.check(
        "plateau reached within 50 packets",
        (late - steady).abs() / steady < 0.05,
        format!(
            "mean mu_50..150 = {:.3} ms vs steady {:.3} ms",
            late * 1e3,
            steady * 1e3
        ),
    );

    // Check 4: the streamed p95 column is a real tail (above the mean
    // at steady state) and shows the same acceleration on packet 1.
    rep.check(
        "streamed p95 tail above mean and accelerated early",
        steady_p95 > steady && p95[0] < steady_p95,
        format!(
            "p95_1 = {:.3} ms, steady p95 = {:.3} ms (mean {:.3} ms)",
            p95[0] * 1e3,
            steady_p95 * 1e3,
            steady * 1e3
        ),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig06_shape_holds_at_small_scale() {
        let rep = super::run(0.2, 44);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
