//! Ablation A1 — where does the first-packet acceleration come from?
//!
//! DESIGN.md calls out the DCF *immediate-access* rule (transmit after
//! DIFS when the medium is idle at arrival, no backoff) as one of the
//! mechanisms behind §4's accelerated first packets; the other is the
//! contention/queue build-up of the cross-traffic. This ablation reruns
//! the Fig 6 experiment with immediate access disabled
//! ([`csmaprobe_mac::MacOptions::without_immediate_access`]): the
//! first-packet dip must shrink (the backoff-draw component disappears)
//! but NOT vanish (the cross-traffic build-up remains).

use crate::report::FigureReport;
use crate::scaled;
use crate::scenarios::FRAME;
use csmaprobe_core::link::{LinkConfig, WlanLink};
use csmaprobe_core::transient::TransientExperiment;
use csmaprobe_mac::MacOptions;
use csmaprobe_traffic::probe::ProbeTrain;

/// Run the ablation.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "ablation_access",
        "Immediate-access ablation of the Fig 6 transient",
        "disabling immediate access removes part of the first-packet acceleration \
         (the missing backoff) but the cross-traffic build-up transient remains",
        &["packet_index", "mu_immediate_ms", "mu_always_backoff_ms"],
    );

    let reps = scaled(1500, scale, 250);
    let run_with = |mac: MacOptions, seed: u64| {
        let exp = TransientExperiment {
            link: WlanLink::new(
                LinkConfig::default()
                    .contending_bps(4_000_000.0)
                    .mac_options(mac),
            ),
            train: ProbeTrain::from_rate(200, FRAME, 5e6),
            reps,
            seed,
        };
        exp.run()
    };

    let with_ia = run_with(MacOptions::default(), seed);
    let without_ia = run_with(MacOptions::default().without_immediate_access(), seed ^ 1);

    let prof_ia = with_ia.mean_profile();
    let prof_no = without_ia.mean_profile();
    for i in 0..60 {
        rep.row(vec![(i + 1) as f64, prof_ia[i] * 1e3, prof_no[i] * 1e3]);
    }

    let steady_ia = with_ia.steady_mean(100);
    let steady_no = without_ia.steady_mean(100);
    let dip_ia = (steady_ia - prof_ia[0]) / steady_ia;
    let dip_no = (steady_no - prof_no[0]) / steady_no;
    rep.scalar("first_packet_dip_immediate", dip_ia);
    rep.scalar("first_packet_dip_always_backoff", dip_no);

    // Expected contribution of immediate access: the first packet
    // skips E[backoff] ≈ 310 µs only when the medium is idle at its
    // arrival (≈1/3 of the time at this load) — a ~3-percentage-point
    // deepening of the dip. The rest is cross-traffic build-up.
    rep.check(
        "immediate access deepens the first-packet dip",
        dip_ia > dip_no + 0.01,
        format!("dip {dip_ia:.3} (immediate) vs {dip_no:.3} (always backoff)"),
    );
    rep.check(
        "cross-traffic build-up dominates the transient",
        dip_no > 0.5 * dip_ia,
        format!("residual dip {dip_no:.3} is the majority of the total {dip_ia:.3}"),
    );
    // Steady states agree: the ablation only affects the transient
    // (in steady contention, immediate access almost never fires).
    rep.check(
        "steady state unaffected",
        (steady_ia - steady_no).abs() / steady_ia < 0.05,
        format!(
            "steady {:.3} ms vs {:.3} ms",
            steady_ia * 1e3,
            steady_no * 1e3
        ),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablation_holds_at_small_scale() {
        let rep = super::run(0.3, 55);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
