//! Fig 13 — experimental rate-response curves of short trains over a
//! CSMA/CA link **without** FIFO cross-traffic, against the
//! steady-state response.
//!
//! Expected shape (§6.2): short-train curves follow the steady curve at
//! low rates, dip below it approaching the knee (their knee sits above
//! the steady-state B), and **over-estimate** the steady-state response
//! at high rates, ordered 3 > 10 > 50 packets.

use crate::report::FigureReport;
use crate::scaled;
use crate::scenarios::{self, TrainCell, TrainSweep, FRAME};
use csmaprobe_core::link::WlanLink;
use csmaprobe_core::sweep::run_sweep;
use csmaprobe_desim::rng::derive_seed;
use csmaprobe_probe::train::TrainProbe;

/// Shared with fig15: sweep `rates` with trains of each length in
/// `train_lens` plus a long steady-state train; returns rows of
/// `[ri, steady, len1, len2, ...]` in Mb/s.
///
/// Runs as one [`TrainSweep`] through the sweep engine — every
/// `(rate × train-length)` cell is scheduled concurrently, with the
/// exact per-cell seeds (and therefore bit-identical rates) of the
/// historical per-point loop.
pub fn sweep(
    link: &WlanLink,
    rates: &[f64],
    train_lens: &[usize],
    scale: f64,
    seed: u64,
) -> Vec<Vec<f64>> {
    let mut cells = Vec::with_capacity(rates.len() * (1 + train_lens.len()));
    for (k, &ri) in rates.iter().enumerate() {
        cells.push(TrainCell {
            probe: TrainProbe::new(1200, FRAME, ri),
            reps: scaled(5, scale, 3),
            seed: derive_seed(seed, 1000 + k as u64),
        });
        for (j, &n) in train_lens.iter().enumerate() {
            // Budget: keep total probe packets per point roughly equal.
            cells.push(TrainCell {
                probe: TrainProbe::new(n, FRAME, ri),
                reps: scaled(3000 / n.max(1), scale, 30),
                seed: derive_seed(seed, (j * rates.len() + k) as u64),
            });
        }
    }
    let measurements = run_sweep(&TrainSweep {
        name: "short_train_rate_sweep",
        target: link,
        cells,
    });
    let per_rate = 1 + train_lens.len();
    rates
        .iter()
        .zip(measurements.chunks(per_rate))
        .map(|(&ri, cells)| {
            let mut row = vec![ri / 1e6];
            row.extend(cells.iter().map(|m| m.output_rate_bps() / 1e6));
            row
        })
        .collect()
}

/// Shared check battery for Figs 13/15.
pub fn shape_checks(rep: &mut FigureReport, rows: &[Vec<f64>]) {
    // Column layout: [ri, steady, n3, n10, n50].
    let hi_rows: Vec<&Vec<f64>> = rows.iter().filter(|r| r[0] >= 7.0).collect();
    let avg =
        |idx: usize| -> f64 { hi_rows.iter().map(|r| r[idx]).sum::<f64>() / hi_rows.len() as f64 };
    let steady = avg(1);
    let n3 = avg(2);
    let n10 = avg(3);
    let n50 = avg(4);
    rep.check(
        "short trains over-estimate at high rates",
        n3 > steady && n10 > steady,
        format!("at ri>=7: steady {steady:.2}, n3 {n3:.2}, n10 {n10:.2} Mb/s"),
    );
    rep.check(
        "over-estimation shrinks with train length",
        n3 > n10 && n10 > n50 && n50 >= steady * 0.97,
        format!("n3 {n3:.2} > n10 {n10:.2} > n50 {n50:.2} >= steady {steady:.2}"),
    );
    // Low-rate agreement: all curves on the identity at 1 Mb/s.
    let low = rows.iter().find(|r| (r[0] - 1.0).abs() < 1e-9).unwrap();
    let max_dev = low[1..]
        .iter()
        .map(|v| (v - low[0]).abs() / low[0])
        .fold(0.0, f64::max);
    rep.check(
        "all curves follow identity at low rate",
        max_dev < 0.08,
        format!("max deviation at 1 Mb/s = {max_dev:.3}"),
    );
}

/// Run the experiment.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "fig13",
        "Rate response of 3/10/50-packet trains, no FIFO cross-traffic",
        "short trains dip below the steady curve near the knee and over-estimate beyond \
         it, ordered 3 > 10 > 50",
        &[
            "ri_mbps",
            "steady_mbps",
            "train3_mbps",
            "train10_mbps",
            "train50_mbps",
        ],
    );

    let link = scenarios::fig1_link();
    let rates = scenarios::rate_sweep_mbps(1.0, 10.0, 1.0);
    let rows = sweep(&link, &rates, &[3, 10, 50], scale, seed);
    for row in &rows {
        rep.row(row.clone());
    }
    shape_checks(&mut rep, &rows);
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig13_shape_holds_at_small_scale() {
        let rep = super::run(0.3, 49);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
