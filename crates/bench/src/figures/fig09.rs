//! Fig 9 — KS-test evolution in the complex case: probe at 0.5 Mb/s
//! against four contending stations with heterogeneous packet sizes
//! {40, 576, 1000, 1500} B and rates {0.1, 0.5, 0.75, 2} Mb/s.
//!
//! This mix offers ≈0.87 Erlang of channel airtime before the probe
//! starts, so the system operates near saturation and the probe's
//! extra load builds up slowly: a transitory regime of tens of packets
//! appears even at this low probing rate. The KS magnitude we measure
//! is smaller than the paper's (see EXPERIMENTS.md), so beyond the
//! significance test the checks also assert the scale-robust shape:
//! the first packet is the farthest from steady state and the KS
//! profile decays with the packet index.

use crate::report::FigureReport;
use crate::scaled;
use crate::scenarios::{self, FRAME};
use csmaprobe_core::transient::TransientExperiment;
use csmaprobe_stats::ks::two_sample_ks;
use csmaprobe_traffic::probe::ProbeTrain;

/// Run the experiment.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "fig09",
        "KS test vs steady state, 4 heterogeneous contending stations (probe 0.5 Mb/s)",
        "a transient of tens of packets exists even at low probe rate in a complex \
         multi-station mix; the first packet is the farthest from steady state",
        &["packet_index", "ks_value", "ks_threshold_95"],
    );

    let n = 200;
    let reps = scaled(4000, scale, 600);
    let exp = TransientExperiment {
        link: scenarios::fig9_link(),
        train: ProbeTrain::from_rate(n, FRAME, 0.5e6),
        reps,
        seed,
    };
    // Dense mode: the KS profile needs raw per-index samples.
    let data = exp.run_dense(scenarios::DENSE_SAMPLE_CAP);

    let pooled = data.steady_sample(100);
    let stride = (pooled.len() / 20_000).max(1);
    let reference: Vec<f64> = pooled.iter().step_by(stride).cloned().collect();

    let show = 50;
    let mut ks_values = Vec::with_capacity(show);
    for i in 0..show {
        let ks = two_sample_ks(data.delays.sample(i), &reference, 0.05);
        ks_values.push(ks);
        rep.row(vec![(i + 1) as f64, ks.statistic, ks.threshold]);
    }

    let profile = data.mean_profile();
    let steady = data.steady_mean(100);
    rep.scalar("mu_first_ms", profile[0] * 1e3);
    rep.scalar("steady_mean_ms", steady * 1e3);
    rep.scalar("ks_first", ks_values[0].statistic);
    rep.scalar("reps", reps as f64);

    // Check 1: the first packet's mean access delay is accelerated.
    rep.check(
        "first packet accelerated",
        profile[0] < 0.97 * steady,
        format!(
            "mu_1 = {:.3} ms vs steady {:.3} ms",
            profile[0] * 1e3,
            steady * 1e3
        ),
    );

    // Check 2: the KS profile decays — early indices farther from
    // steady state than late ones.
    let early: f64 = ks_values[..3].iter().map(|k| k.statistic).sum::<f64>() / 3.0;
    let late: f64 = ks_values[show - 10..]
        .iter()
        .map(|k| k.statistic)
        .sum::<f64>()
        / 10.0;
    rep.check(
        "KS decays with packet index",
        early > late,
        format!("mean KS first 3 = {early:.4} vs last 10 shown = {late:.4}"),
    );

    // Check 3: statistical significance of the first packet's
    // deviation. The effect is smaller than in the paper's plot, so
    // detecting it needs replications; with enough of them, demand a
    // proper rejection, otherwise demand the first packet dominate the
    // profile.
    if reps >= 2500 {
        rep.check(
            "first packet off steady state (95% KS)",
            ks_values[0].reject,
            format!(
                "KS_1 = {:.4} vs threshold {:.4} at {reps} reps",
                ks_values[0].statistic, ks_values[0].threshold
            ),
        );
    } else {
        // At few hundred reps every statistic carries ~√(1/reps) noise,
        // and the max over 40 late indices is extreme-value inflated —
        // comparing against it is a coin flip. Demand instead that the
        // first packet clear the late-index noise *floor* (their mean),
        // the scale-robust form of "farthest from steady state".
        let late = &ks_values[10..];
        let mean_late = late.iter().map(|k| k.statistic).sum::<f64>() / late.len() as f64;
        rep.check(
            "first packet farthest from steady state",
            ks_values[0].statistic > 1.1 * mean_late,
            format!(
                "KS_1 = {:.4} vs mean KS_11.. = {mean_late:.4} ({reps} reps; \
                 significance requires scale >= 0.7)",
                ks_values[0].statistic
            ),
        );
    }

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig09_shape_holds_at_small_scale() {
        let rep = super::run(0.25, 47);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
