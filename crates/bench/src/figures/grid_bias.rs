//! Cross-tool grid experiment (extra experiment E14): the paper's
//! §7.2 tool-bias comparison as **one** link × train × tool grid
//! invocation — 3 links × 3 train shapes × 2 tools through
//! `core::grid`, instead of one hand-written experiment per pairing.
//!
//! The claims it pins, per axis:
//! * on the wired link both tools read the FIFO quantities they were
//!   designed for (SLoPS ≈ A; train dispersion ≈ the eq (1) saturated
//!   output rate);
//! * on the high-contention CSMA/CA link every tool reads the
//!   achievable throughput `B ≫ A` — the bias exists across tool
//!   families, not just one;
//! * shorter trains push the estimate further up on CSMA/CA links (the
//!   §5.3 transient inflation), while wired estimates barely move with
//!   train length.

use crate::grid::{find_link, find_train, BiasGrid, GridRow};
use crate::report::FigureReport;
use csmaprobe_core::grid::run_grid;
use csmaprobe_probe::tool::ToolKind;

/// Run the experiment.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "grid_bias",
        "Tool bias across the link × train × tool grid",
        "FIFO-era tools read A (SLoPS) or the eq (1) saturated rate (trains) on the \
         wired link, but the achievable throughput B >> A on the high-contention \
         CSMA/CA link, with short trains inflating the estimate further",
        &[
            "link_idx",
            "train_n",
            "tool_idx",
            "est_mbps",
            "ci95_mbps",
            "true_A_mbps",
            "failed",
        ],
    );

    let links = vec![
        find_link("wired").expect("catalog"),
        find_link("wlan_low").expect("catalog"),
        find_link("wlan_mid").expect("catalog"),
    ];
    let trains = vec![
        find_train("short").expect("catalog"),
        find_train("mid").expect("catalog"),
        find_train("long").expect("catalog"),
    ];
    let tools = vec![ToolKind::Train, ToolKind::Slops];
    let grid = BiasGrid::new(links.clone(), trains, tools, scale, seed);
    let rows = run_grid(&grid);

    for row in &rows {
        let coord = [
            links.iter().position(|l| l.name == row.link).unwrap(),
            row.n,
            if row.tool == ToolKind::Train { 0 } else { 1 },
        ];
        rep.row(vec![
            coord[0] as f64,
            coord[1] as f64,
            coord[2] as f64,
            row.mean_bps / 1e6,
            row.ci95_bps / 1e6,
            row.available_bps / 1e6,
            row.failed as f64,
        ]);
    }
    for l in &links {
        rep.scalar(&format!("A_{}_mbps", l.name), l.available_bps() / 1e6);
    }

    // Row lookup by (link, train, tool).
    let cell = |link: &str, train: &str, tool: ToolKind| -> &GridRow {
        rows.iter()
            .find(|r| r.link == link && r.train == train && r.tool == tool)
            .expect("cell present")
    };
    let a_wired = find_link("wired").unwrap().available_bps();
    let a_mid = find_link("wlan_mid").unwrap().available_bps();

    let w_slops = cell("wired", "long", ToolKind::Slops).mean_bps;
    rep.check(
        "wired SLoPS finds A",
        (w_slops - a_wired).abs() / a_wired < 0.3,
        format!("{:.2} vs A {:.2} Mb/s", w_slops / 1e6, a_wired / 1e6),
    );

    // Saturating 10 Mb/s trains on the wired link: eq (1) gives
    // ro = C·ri/(ri + C − A) = 10·10/14 ≈ 7.1 Mb/s — above A, below C.
    let w_train = cell("wired", "long", ToolKind::Train).mean_bps;
    rep.check(
        "wired trains read the eq (1) saturated rate, not A",
        (6.2e6..8.2e6).contains(&w_train) && w_train > 1.05 * a_wired,
        format!("{:.2} Mb/s vs A {:.2}", w_train / 1e6, a_wired / 1e6),
    );

    // The §7.2 core claim, across both tool families: on the Fig 1
    // CSMA/CA link (A ≈ 1.7 Mb/s) every estimate lands far above A.
    for tool in [ToolKind::Train, ToolKind::Slops] {
        let est = cell("wlan_mid", "long", tool).mean_bps;
        rep.check(
            &format!("wlan_mid {tool} reads B, far above A"),
            est > 1.3 * a_mid && est < 5.5e6,
            format!("{:.2} vs A {:.2} Mb/s", est / 1e6, a_mid / 1e6),
        );
    }

    // §5.3: the access-delay transient inflates short-train dispersion
    // estimates on CSMA/CA links; wired estimates barely move.
    for link in ["wlan_low", "wlan_mid"] {
        let short = cell(link, "short", ToolKind::Train).mean_bps;
        let long = cell(link, "long", ToolKind::Train).mean_bps;
        rep.check(
            &format!("{link} short trains overestimate long trains"),
            short > 1.05 * long,
            format!("short {:.2} vs long {:.2} Mb/s", short / 1e6, long / 1e6),
        );
    }
    let w_short = cell("wired", "short", ToolKind::Train).mean_bps;
    let w_long = cell("wired", "long", ToolKind::Train).mean_bps;
    rep.check(
        "wired train estimate shape-stable in train length",
        (w_short - w_long).abs() / w_long < 0.25,
        format!(
            "short {:.2} vs long {:.2} Mb/s",
            w_short / 1e6,
            w_long / 1e6
        ),
    );

    rep.check(
        "every cell produced an estimate",
        rows.iter().all(|r| r.mean_bps.is_finite()),
        format!(
            "{} failed runs across {} cells",
            rows.iter().map(|r| r.failed).sum::<usize>(),
            rows.len()
        ),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn grid_bias_holds_at_small_scale() {
        let rep = super::run(0.3, 54);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
