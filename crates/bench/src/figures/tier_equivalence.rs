//! Tier equivalence — the engine-stack contract, as a figure: across
//! the steady-state regime matrix the slot-quantised kernel reproduces
//! the event core **bit for bit** (same seed, same trajectory), and the
//! analytic Bianchi tier lands within its documented 5 % band on the
//! saturated cells it covers.
//!
//! This is the cheap, always-regenerated companion of the KS harness in
//! `tests/tier_equivalence.rs`: the harness proves distributional
//! equivalence on disjoint seed sets; this figure pins trajectory
//! equivalence per regime and publishes the per-regime deltas into
//! `EXPERIMENTS.md`.

use crate::report::FigureReport;
use crate::tier::{regime_matrix, TierRegime};
use csmaprobe_core::engine::EngineTier;
use csmaprobe_desim::time::Dur;

fn total_mbps(p: &csmaprobe_core::link::SteadyPoint) -> f64 {
    (p.output_rate_bps + p.contending_bps.iter().sum::<f64>() + p.fifo_cross_bps) / 1e6
}

/// Run the experiment. `scale` multiplies measurement duration.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "tier_equivalence",
        "Engine tiers vs the event-core oracle across the regime matrix",
        "slotted kernel bit-identical to the event core on every covered regime; \
         analytic tier within 5% of the event core on saturated symmetric cells",
        &[
            "contenders",
            "ri_mbps",
            "event_mbps",
            "slotted_mbps",
            "analytic_mbps",
            "analytic_rel_err",
        ],
    );

    let duration = Dur::from_secs_f64((4.0 * scale).clamp(0.4, 30.0));
    let regimes = regime_matrix();

    let mut slotted_exact = true;
    let mut slotted_detail = String::from("all covered regimes bit-identical");
    let mut analytic_ok = true;
    let mut analytic_worst = 0.0f64;

    for r in &regimes {
        let event = r
            .steady_with_tier(EngineTier::Event, duration, seed)
            .expect("event tier covers everything");
        let slotted = r.steady_with_tier(EngineTier::Slotted, duration, seed);
        let analytic = r.steady_with_tier(EngineTier::Analytic, duration, seed);

        if let Some(s) = &slotted {
            let exact = s.output_rate_bps == event.output_rate_bps
                && s.contending_bps == event.contending_bps
                && s.fifo_cross_bps == event.fifo_cross_bps;
            if !exact && slotted_exact {
                slotted_exact = false;
                slotted_detail = format!(
                    "{}: slotted {:.6} vs event {:.6} Mb/s",
                    r.name,
                    total_mbps(s),
                    total_mbps(&event)
                );
            }
        }
        let analytic_rel = analytic.as_ref().map(|a| {
            let rel = (total_mbps(a) - total_mbps(&event)).abs() / total_mbps(&event);
            if rel > analytic_worst {
                analytic_worst = rel;
            }
            if rel >= 0.05 {
                analytic_ok = false;
            }
            rel
        });

        rep.row(vec![
            r.contenders as f64,
            r.ri_bps / 1e6,
            total_mbps(&event),
            slotted.as_ref().map(total_mbps).unwrap_or(f64::NAN),
            analytic.as_ref().map(total_mbps).unwrap_or(f64::NAN),
            analytic_rel.unwrap_or(f64::NAN),
        ]);
    }

    let slotted_count = regimes
        .iter()
        .filter(|r: &&TierRegime| r.covered_by(EngineTier::Slotted))
        .count();
    rep.scalar("regimes", regimes.len() as f64);
    rep.scalar("slotted_covered", slotted_count as f64);
    rep.scalar("analytic_worst_rel_err", analytic_worst);

    rep.check(
        "slotted tier bit-identical to event core",
        slotted_exact,
        slotted_detail,
    );
    rep.check(
        "analytic tier within 5% on saturated cells",
        analytic_ok,
        format!("worst relative error {analytic_worst:.4}"),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn tier_equivalence_holds_at_small_scale() {
        let rep = super::run(0.25, 7);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
