//! Tier equivalence — the engine-stack contract, as a figure: across
//! the steady-state regime matrix the slot-quantised kernel reproduces
//! the event core **bit for bit** (same seed, same trajectory), and the
//! analytic tier lands within its documented 5 % band — the Bianchi
//! model on saturated symmetric cells, the non-saturated fixed point on
//! the certified finite-load cells.
//!
//! The analytic comparison for finite-load cells runs a seed-averaged
//! event mean: a fixed point is a long-run expectation, while one
//! finite Poisson window carries several percent of arrival noise, so
//! gating on a single seed would measure the oracle's variance rather
//! than the model's error.
//!
//! This is the cheap, always-regenerated companion of the KS harness in
//! `tests/tier_equivalence.rs`: the harness proves distributional
//! equivalence on disjoint seed sets; this figure pins trajectory
//! equivalence per regime and publishes the per-regime deltas into
//! `EXPERIMENTS.md`.

use crate::report::FigureReport;
use crate::tier::{regime_matrix, TierRegime};
use csmaprobe_core::engine::{self, EngineTier};
use csmaprobe_desim::time::Dur;

fn total_mbps(p: &csmaprobe_core::link::SteadyPoint) -> f64 {
    (p.output_rate_bps + p.contending_bps.iter().sum::<f64>() + p.fifo_cross_bps) / 1e6
}

/// Event seeds averaged into the analytic comparison on finite-load
/// cells (the first one is also the trajectory-compare seed).
const EVENT_REPS: u64 = 8;

/// Run the experiment. `scale` multiplies measurement duration.
pub fn run(scale: f64, seed: u64) -> FigureReport {
    let mut rep = FigureReport::new(
        "tier_equivalence",
        "Engine tiers vs the event-core oracle across the regime matrix",
        "slotted kernel bit-identical to the event core on every covered regime; \
         analytic tier within 5% of the event core on saturated symmetric cells \
         and certified finite-load cells (seed-averaged event mean)",
        &[
            "contenders",
            "ri_mbps",
            "event_mbps",
            "slotted_mbps",
            "analytic_mbps",
            "analytic_rel_err",
        ],
    );

    let duration = Dur::from_secs_f64((4.0 * scale).clamp(0.4, 30.0));
    let regimes = regime_matrix();

    let mut slotted_exact = true;
    let mut slotted_detail = String::from("all covered regimes bit-identical");
    let mut sat_ok = true;
    let mut sat_worst = 0.0f64;
    let mut nonsat_ok = true;
    let mut nonsat_worst = 0.0f64;

    for r in &regimes {
        let event = r
            .steady_with_tier(EngineTier::Event, duration, seed)
            .expect("event tier covers everything");
        let slotted = r.steady_with_tier(EngineTier::Slotted, duration, seed);
        let analytic = r.steady_with_tier(EngineTier::Analytic, duration, seed);

        if let Some(s) = &slotted {
            let exact = s.output_rate_bps == event.output_rate_bps
                && s.contending_bps == event.contending_bps
                && s.fifo_cross_bps == event.fifo_cross_bps;
            if !exact && slotted_exact {
                slotted_exact = false;
                slotted_detail = format!(
                    "{}: slotted {:.6} vs event {:.6} Mb/s",
                    r.name,
                    total_mbps(s),
                    total_mbps(&event)
                );
            }
        }
        // Which analytic model serves this cell decides the event
        // reference: saturated cells are load-independent (one seed is
        // representative); finite-load cells compare against a
        // seed-averaged event mean.
        let saturated = engine::saturation_covers(r.link.config(), r.ri_bps);
        let event_ref = if analytic.is_some() && !saturated {
            let mut acc = total_mbps(&event);
            for k in 1..EVENT_REPS {
                let p = r
                    .steady_with_tier(EngineTier::Event, duration, seed + k)
                    .expect("event tier covers everything");
                acc += total_mbps(&p);
            }
            acc / EVENT_REPS as f64
        } else {
            total_mbps(&event)
        };
        let analytic_rel = analytic.as_ref().map(|a| {
            let rel = (total_mbps(a) - event_ref).abs() / event_ref;
            if saturated {
                sat_worst = sat_worst.max(rel);
                sat_ok &= rel < 0.05;
            } else {
                nonsat_worst = nonsat_worst.max(rel);
                nonsat_ok &= rel < 0.05;
            }
            rel
        });

        rep.row(vec![
            r.contenders as f64,
            r.ri_bps / 1e6,
            event_ref,
            slotted.as_ref().map(total_mbps).unwrap_or(f64::NAN),
            analytic.as_ref().map(total_mbps).unwrap_or(f64::NAN),
            analytic_rel.unwrap_or(f64::NAN),
        ]);
    }

    let slotted_count = regimes
        .iter()
        .filter(|r: &&TierRegime| r.covered_by(EngineTier::Slotted))
        .count();
    rep.scalar("regimes", regimes.len() as f64);
    rep.scalar("slotted_covered", slotted_count as f64);
    rep.scalar("analytic_worst_rel_err", sat_worst.max(nonsat_worst));
    rep.scalar("nonsat_worst_rel_err", nonsat_worst);

    rep.check(
        "slotted tier bit-identical to event core",
        slotted_exact,
        slotted_detail,
    );
    rep.check(
        "analytic tier within 5% on saturated cells",
        sat_ok,
        format!("worst relative error {sat_worst:.4}"),
    );
    rep.check(
        "finite-load fixed point within 5% of the seed-averaged event mean",
        nonsat_ok,
        format!("worst relative error {nonsat_worst:.4}"),
    );

    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn tier_equivalence_holds_at_small_scale() {
        let rep = super::run(0.25, 7);
        assert!(rep.all_passed(), "{}", rep.render());
    }
}
