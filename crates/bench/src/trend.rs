//! The BENCH_* performance **trajectory**: per-figure `elapsed_s`
//! history as JSONL, and the variance-aware regression gate the
//! `bench_trend` binary applies to it.
//!
//! PR 3's trend check diffed one run against one checked-in baseline
//! with a fixed 2× factor — blind to runner-to-runner variance (a noisy
//! figure trips it; a quietly creeping one never does). This module
//! stores one JSONL line per CI run (`BENCH_history.jsonl`, carried
//! between runs as a cache/artifact) and flags a figure only when its
//! current time exceeds `median + k·MAD` over the last `window` runs —
//! the standard robust outlier rule, self-calibrating per figure.

use crate::report::{json_f64, json_str};

/// One run's per-figure timings, as recorded in the history file.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Free-form run label (commit SHA, date, …).
    pub label: String,
    /// Hardware fingerprint of the runner that produced the timings
    /// ([`host_fingerprint`]); `None` on entries recorded before the
    /// field existed.
    pub host: Option<String>,
    /// The run's **parent commit** — lets the gate (or a human
    /// bisecting a creeping regression) walk the stored window as a
    /// commit chain and tell "runner got slower" from "code got
    /// slower".
    pub parent: Option<String>,
    /// `(figure id, elapsed_s)` pairs.
    pub figures: Vec<(String, f64)>,
}

impl HistoryEntry {
    /// Serialize as one history JSONL line.
    pub fn to_json(&self) -> String {
        let figs: Vec<String> = self
            .figures
            .iter()
            .map(|(id, t)| format!("[{},{}]", json_str(id), json_f64(*t)))
            .collect();
        let mut out = format!("{{\"label\":{}", json_str(&self.label));
        if let Some(host) = &self.host {
            out.push_str(&format!(",\"host\":{}", json_str(host)));
        }
        if let Some(parent) = &self.parent {
            out.push_str(&format!(",\"parent\":{}", json_str(parent)));
        }
        out.push_str(&format!(",\"figures\":[{}]}}", figs.join(",")));
        out
    }

    /// This run's time for figure `id`.
    pub fn elapsed(&self, id: &str) -> Option<f64> {
        self.figures.iter().find(|(f, _)| f == id).map(|&(_, t)| t)
    }

    /// Could this entry's timings have come from `host`? Entries with
    /// no recorded fingerprint (pre-fingerprint history) calibrate
    /// everywhere; known fingerprints only calibrate their own host.
    pub fn same_host(&self, host: Option<&str>) -> bool {
        match (&self.host, host) {
            (Some(mine), Some(current)) => mine == current,
            _ => true,
        }
    }
}

/// The hardware fingerprint recorded with each history entry:
/// `<logical cores>x<arch>` — coarse on purpose (it must be stable
/// across reboots of the same runner class), but enough to separate a
/// 2-core shared runner from an 8-core one.
pub fn host_fingerprint() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!("{cores}x{}", std::env::consts::ARCH)
}

/// Parse a history file (one [`HistoryEntry`] JSON object per line;
/// malformed lines are skipped — a torn tail from a killed CI run must
/// not poison the trajectory).
pub fn parse_history(jsonl: &str) -> Vec<HistoryEntry> {
    jsonl.lines().filter_map(parse_entry).collect()
}

/// Strict variant of [`parse_history`]: every non-blank line must
/// parse, and a malformed or torn line is reported as
/// `(1-based line number, description)` instead of being silently
/// dropped.
///
/// This is what CI runs: a corrupted cache entry silently shrinking
/// the calibration window *looks* like a healthy trajectory while the
/// gate quietly loses its history, so the malformation must fail the
/// job loudly. Local/exploratory runs can keep the lenient behaviour
/// (`bench_trend --lenient`).
pub fn parse_history_checked(jsonl: &str) -> Result<Vec<HistoryEntry>, Vec<(usize, String)>> {
    let mut entries = Vec::new();
    let mut bad = Vec::new();
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_entry(line) {
            Some(e) => entries.push(e),
            None => {
                let shown: String = line.chars().take(80).collect();
                let what = if line.trim_start().starts_with("{\"label\":\"") {
                    "torn or truncated history entry"
                } else {
                    "not a history entry"
                };
                bad.push((i + 1, format!("{what}: {shown:?}")));
            }
        }
    }
    if bad.is_empty() {
        Ok(entries)
    } else {
        Err(bad)
    }
}

/// The string value of a `"key":"value"` field in `json`, if present
/// before `upto` (fields live between the label and the figure array).
fn string_field(json: &str, key: &str, upto: usize) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = json[..upto].find(&pat)?;
    let rest = &json[at + pat.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

fn parse_entry(line: &str) -> Option<HistoryEntry> {
    let line = line.trim();
    if !line.starts_with("{\"label\":\"") || !line.ends_with('}') {
        return None;
    }
    let rest = &line["{\"label\":\"".len()..];
    let label_end = rest.find('"')?;
    let label = rest[..label_end].to_string();
    let figs_at = rest.find("\"figures\":[")?;
    let host = string_field(rest, "host", figs_at);
    let parent = string_field(rest, "parent", figs_at);
    let mut figures = Vec::new();
    let mut tail = &rest[figs_at + "\"figures\":[".len()..];
    while let Some(open) = tail.find("[\"") {
        tail = &tail[open + 2..];
        let id_end = tail.find('"')?;
        let id = tail[..id_end].to_string();
        let num = tail[id_end..].strip_prefix("\",")?;
        let num_end = num
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(num.len());
        let t: f64 = num[..num_end].parse().ok()?;
        figures.push((id, t));
        tail = &num[num_end..];
    }
    Some(HistoryEntry {
        label,
        host,
        parent,
        figures,
    })
}

/// Median and MAD (median absolute deviation) of `xs`; `(NaN, NaN)`
/// when empty.
pub fn median_mad(xs: &[f64]) -> (f64, f64) {
    fn median(sorted: &[f64]) -> f64 {
        let n = sorted.len();
        if n == 0 {
            return f64::NAN;
        }
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        }
    }
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let med = median(&sorted);
    let mut dev: Vec<f64> = sorted.iter().map(|v| (v - med).abs()).collect();
    dev.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (med, median(&dev))
}

/// The robust trend gate: `current > median + k·MAD` over the recent
/// window flags a regression.
#[derive(Debug, Clone, Copy)]
pub struct TrendGate {
    /// How many most-recent history entries to calibrate on.
    pub window: usize,
    /// MAD multiplier (the `k` of `median + k·MAD`).
    pub k: f64,
    /// Figures faster than this (seconds) are never flagged — timer
    /// granularity noise dominates below it.
    pub min_elapsed: f64,
    /// MAD floor, seconds: an all-identical window has MAD 0, which
    /// would flag any change at all.
    pub mad_floor: f64,
}

impl Default for TrendGate {
    fn default() -> Self {
        TrendGate {
            window: 10,
            k: 5.0,
            min_elapsed: 0.1,
            mad_floor: 0.02,
        }
    }
}

/// One figure's verdict against the trajectory.
#[derive(Debug, Clone)]
pub struct TrendFinding {
    /// Figure id.
    pub id: String,
    /// This run's time, seconds.
    pub current: f64,
    /// Median over the calibration window (NaN with no history).
    pub median: f64,
    /// MAD over the calibration window (NaN with no history).
    pub mad: f64,
    /// The threshold applied (NaN with no history).
    pub threshold: f64,
    /// History entries that carried this figure.
    pub samples: usize,
    /// Over the threshold?
    pub regressed: bool,
}

impl TrendGate {
    /// Assess `current` per-figure timings against `history` (oldest
    /// first; only the last [`TrendGate::window`] entries calibrate).
    /// Figures with fewer than 3 historical samples are never flagged —
    /// the trajectory needs a few runs before MAD means anything.
    ///
    /// When `host` is given, only entries that could have come from the
    /// same hardware ([`HistoryEntry::same_host`]) calibrate: a move to
    /// a slower runner class shows up as "calibrating" instead of a
    /// storm of false regressions, and a real code slowdown is judged
    /// against same-hardware history — the gate separates "runner got
    /// slower" from "code got slower".
    pub fn assess(
        &self,
        history: &[HistoryEntry],
        current: &[(String, f64)],
        host: Option<&str>,
    ) -> Vec<TrendFinding> {
        let comparable: Vec<&HistoryEntry> = history.iter().filter(|e| e.same_host(host)).collect();
        let recent = &comparable[comparable.len().saturating_sub(self.window)..];
        current
            .iter()
            .map(|(id, cur)| {
                let samples: Vec<f64> = recent.iter().filter_map(|e| e.elapsed(id)).collect();
                let (median, mad) = median_mad(&samples);
                let threshold = median + self.k * mad.max(self.mad_floor);
                let regressed = samples.len() >= 3
                    && *cur > self.min_elapsed
                    && threshold.is_finite()
                    && *cur > threshold;
                TrendFinding {
                    id: id.clone(),
                    current: *cur,
                    median,
                    mad,
                    threshold,
                    samples: samples.len(),
                    regressed,
                }
            })
            .collect()
    }
}

/// Cap a history to its most recent `keep` entries (the file rides in a
/// CI cache; it must not grow without bound).
pub fn trim_history(mut history: Vec<HistoryEntry>, keep: usize) -> Vec<HistoryEntry> {
    let excess = history.len().saturating_sub(keep);
    history.drain(..excess);
    history
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, times: &[(&str, f64)]) -> HistoryEntry {
        HistoryEntry {
            label: label.to_string(),
            host: None,
            parent: None,
            figures: times.iter().map(|&(id, t)| (id.to_string(), t)).collect(),
        }
    }

    fn entry_on(host: &str, label: &str, times: &[(&str, f64)]) -> HistoryEntry {
        HistoryEntry {
            host: Some(host.to_string()),
            ..entry(label, times)
        }
    }

    #[test]
    fn history_round_trips_through_jsonl() {
        let entries = vec![
            entry("abc123", &[("fig01", 1.25), ("fig10", 0.5)]),
            entry("def456", &[("fig01", 1.5)]),
        ];
        let jsonl: String = entries
            .iter()
            .map(|e| format!("{}\n", e.to_json()))
            .collect();
        assert_eq!(parse_history(&jsonl), entries);
    }

    #[test]
    fn torn_and_garbage_lines_are_skipped() {
        let good = entry("ok", &[("fig01", 1.0)]);
        let jsonl = format!("not json\n{}\n{{\"label\":\"torn", good.to_json());
        let parsed = parse_history(&jsonl);
        assert_eq!(parsed, vec![good]);
    }

    #[test]
    fn checked_parse_reports_torn_lines_with_numbers() {
        let good = entry("ok", &[("fig01", 1.0)]);
        let clean = format!("{}\n\n{}\n", good.to_json(), good.to_json());
        assert_eq!(
            parse_history_checked(&clean).unwrap(),
            vec![good.clone(), good.clone()],
            "blank lines are not errors"
        );
        let jsonl = format!("not json\n{}\n{{\"label\":\"torn", good.to_json());
        let errs = parse_history_checked(&jsonl).unwrap_err();
        assert_eq!(errs.len(), 2);
        assert_eq!(errs[0].0, 1);
        assert!(errs[0].1.contains("not a history entry"), "{}", errs[0].1);
        assert_eq!(errs[1].0, 3);
        assert!(errs[1].1.contains("torn or truncated"), "{}", errs[1].1);
        // The lenient parser still accepts the same input.
        assert_eq!(parse_history(&jsonl), vec![good]);
    }

    #[test]
    fn median_mad_basics() {
        let (m, d) = median_mad(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(m, 3.0);
        assert_eq!(d, 1.0);
        let (m, d) = median_mad(&[2.0, 4.0]);
        assert_eq!(m, 3.0);
        assert_eq!(d, 1.0);
        let (m, _) = median_mad(&[]);
        assert!(m.is_nan());
        let (m, _) = median_mad(&[f64::NAN, 5.0]);
        assert_eq!(m, 5.0, "non-finite samples ignored");
    }

    #[test]
    fn gate_flags_only_with_enough_history() {
        let gate = TrendGate::default();
        let history: Vec<HistoryEntry> = (0..6)
            .map(|i| entry(&format!("r{i}"), &[("fig01", 1.0 + 0.02 * i as f64)]))
            .collect();
        // Way over median + 5·MAD.
        let findings = gate.assess(&history, &[("fig01".to_string(), 3.0)], None);
        assert!(findings[0].regressed, "{:?}", findings[0]);
        // Inside the band.
        let findings = gate.assess(&history, &[("fig01".to_string(), 1.08)], None);
        assert!(!findings[0].regressed, "{:?}", findings[0]);
        // Two samples only: never flagged.
        let findings = gate.assess(&history[..2], &[("fig01".to_string(), 50.0)], None);
        assert!(!findings[0].regressed);
        assert_eq!(findings[0].samples, 2);
        // Below the absolute floor: never flagged.
        let findings = gate.assess(&history, &[("fig01".to_string(), 0.09)], None);
        assert!(!findings[0].regressed);
    }

    #[test]
    fn gate_survives_identical_window_via_mad_floor() {
        let gate = TrendGate::default();
        let history: Vec<HistoryEntry> = (0..5)
            .map(|i| entry(&format!("r{i}"), &[("a", 1.0)]))
            .collect();
        // MAD is 0; the floor keeps a 5% wobble unflagged...
        let findings = gate.assess(&history, &[("a".to_string(), 1.05)], None);
        assert!(!findings[0].regressed);
        // ...but a real jump still trips.
        let findings = gate.assess(&history, &[("a".to_string(), 2.0)], None);
        assert!(findings[0].regressed);
    }

    #[test]
    fn window_limits_calibration() {
        let gate = TrendGate {
            window: 3,
            ..Default::default()
        };
        // Old slow era, recent fast era: calibration must use only the
        // recent window, so a return to the old time IS a regression.
        let mut history: Vec<HistoryEntry> = (0..5)
            .map(|i| entry(&format!("s{i}"), &[("a", 10.0)]))
            .collect();
        history.extend((0..4).map(|i| entry(&format!("f{i}"), &[("a", 1.0)])));
        let findings = gate.assess(&history, &[("a".to_string(), 10.0)], None);
        assert!(findings[0].regressed, "{:?}", findings[0]);
    }

    #[test]
    fn host_and_parent_round_trip_and_tolerate_legacy_lines() {
        let modern = HistoryEntry {
            label: "abc".to_string(),
            host: Some("2xx86_64".to_string()),
            parent: Some("deadbeef".to_string()),
            figures: vec![("fig01".to_string(), 1.25)],
        };
        let legacy = entry("old", &[("fig01", 1.0)]);
        let jsonl = format!("{}\n{}\n", modern.to_json(), legacy.to_json());
        let parsed = parse_history(&jsonl);
        assert_eq!(parsed, vec![modern, legacy]);
    }

    #[test]
    fn gate_calibrates_per_host() {
        let gate = TrendGate::default();
        // Five fast runs on an 8-core runner, five slow on a 2-core.
        let mut history: Vec<HistoryEntry> = (0..5)
            .map(|i| entry_on("8xx86_64", &format!("f{i}"), &[("a", 1.0)]))
            .collect();
        history.extend((0..5).map(|i| entry_on("2xx86_64", &format!("s{i}"), &[("a", 3.0)])));
        // On the slow host, 3.1 s is in-band (judged against the 3.0 s
        // same-host history, not the mixed median).
        let f = gate.assess(&history, &[("a".to_string(), 3.1)], Some("2xx86_64"));
        assert!(!f[0].regressed, "{:?}", f[0]);
        assert_eq!(f[0].samples, 5, "only same-host entries calibrate");
        // On the fast host, the same 3.1 s IS a regression.
        let f = gate.assess(&history, &[("a".to_string(), 3.1)], Some("8xx86_64"));
        assert!(f[0].regressed, "{:?}", f[0]);
        // Legacy (host-less) entries calibrate everywhere.
        let mixed = vec![
            entry("l0", &[("a", 1.0)]),
            entry_on("8xx86_64", "f0", &[("a", 1.0)]),
            entry_on("8xx86_64", "f1", &[("a", 1.0)]),
        ];
        let f = gate.assess(&mixed, &[("a".to_string(), 5.0)], Some("8xx86_64"));
        assert_eq!(f[0].samples, 3);
        assert!(f[0].regressed);
    }

    #[test]
    fn host_fingerprint_is_stable_and_shaped() {
        let a = host_fingerprint();
        assert_eq!(a, host_fingerprint());
        let (cores, arch) = a.split_once('x').expect("cores x arch");
        assert!(cores.parse::<usize>().unwrap() >= 1);
        assert!(!arch.is_empty());
    }

    #[test]
    fn trim_keeps_most_recent() {
        let history: Vec<HistoryEntry> = (0..10).map(|i| entry(&format!("r{i}"), &[])).collect();
        let trimmed = trim_history(history, 3);
        assert_eq!(trimmed.len(), 3);
        assert_eq!(trimmed[0].label, "r7");
        assert_eq!(trimmed[2].label, "r9");
    }
}
