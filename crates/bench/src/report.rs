//! Figure reports: the common output format of every experiment.

use std::fmt::Write as _;

/// One qualitative reproduction check ("shape" assertion).
#[derive(Debug, Clone)]
pub struct Check {
    /// Short name of the property checked.
    pub name: String,
    /// Whether the regenerated data satisfies it.
    pub passed: bool,
    /// Human-readable evidence (numbers involved).
    pub detail: String,
}

/// The regenerated data behind one figure of the paper.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Identifier, e.g. `"fig06"`.
    pub id: String,
    /// Title, e.g. `"Mean access delay vs probe packet number"`.
    pub title: String,
    /// What the paper's version of the figure shows (expected shape).
    pub paper_expectation: String,
    /// Column names of `rows`.
    pub columns: Vec<String>,
    /// The regenerated series.
    pub rows: Vec<Vec<f64>>,
    /// Scalar summary values (measured capacities, knees, …).
    pub scalars: Vec<(String, f64)>,
    /// Qualitative checks with outcomes.
    pub checks: Vec<Check>,
    /// Wall-clock seconds the figure took to regenerate (recorded by
    /// the `all_figures` scheduler; `None` when run standalone). The
    /// only non-deterministic field of a report: consumers comparing
    /// `experiments.json` across runs should ignore it.
    pub elapsed_s: Option<f64>,
}

impl FigureReport {
    /// An empty report skeleton.
    pub fn new(id: &str, title: &str, paper_expectation: &str, columns: &[&str]) -> Self {
        FigureReport {
            id: id.to_string(),
            title: title.to_string(),
            paper_expectation: paper_expectation.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            scalars: Vec::new(),
            checks: Vec::new(),
            elapsed_s: None,
        }
    }

    /// Append one data row (must match `columns` in length).
    pub fn row(&mut self, values: Vec<f64>) {
        debug_assert_eq!(values.len(), self.columns.len());
        self.rows.push(values);
    }

    /// Record a named scalar (measured capacity, knee position, …).
    pub fn scalar(&mut self, name: &str, value: f64) {
        self.scalars.push((name.to_string(), value));
    }

    /// Record a qualitative check.
    pub fn check(&mut self, name: &str, passed: bool, detail: String) {
        self.checks.push(Check {
            name: name.to_string(),
            passed,
            detail,
        });
    }

    /// All checks passed?
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Render as TSV + check summary (what the figure binaries print).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# paper: {}", self.paper_expectation);
        for (name, v) in &self.scalars {
            let _ = writeln!(out, "# {name} = {v:.6}");
        }
        let _ = writeln!(out, "{}", self.columns.join("\t"));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:.6}")).collect();
            let _ = writeln!(out, "{}", cells.join("\t"));
        }
        for c in &self.checks {
            let _ = writeln!(
                out,
                "# CHECK [{}] {} — {}",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            );
        }
        out
    }

    /// Print the rendered report to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Serialize to a JSON object (hand-rolled; the build environment has
    /// no `serde`). Field names and layout match what a
    /// `#[derive(Serialize)]` on this struct would produce.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{");
        let _ = write!(o, "\"id\":{}", json_str(&self.id));
        let _ = write!(o, ",\"title\":{}", json_str(&self.title));
        let _ = write!(
            o,
            ",\"paper_expectation\":{}",
            json_str(&self.paper_expectation)
        );
        let cols: Vec<String> = self.columns.iter().map(|c| json_str(c)).collect();
        let _ = write!(o, ",\"columns\":[{}]", cols.join(","));
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|v| json_f64(*v)).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        let _ = write!(o, ",\"rows\":[{}]", rows.join(","));
        let scalars: Vec<String> = self
            .scalars
            .iter()
            .map(|(name, v)| format!("[{},{}]", json_str(name), json_f64(*v)))
            .collect();
        let _ = write!(o, ",\"scalars\":[{}]", scalars.join(","));
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "{{\"name\":{},\"passed\":{},\"detail\":{}}}",
                    json_str(&c.name),
                    c.passed,
                    json_str(&c.detail)
                )
            })
            .collect();
        let _ = write!(o, ",\"checks\":[{}]", checks.join(","));
        if let Some(t) = self.elapsed_s {
            let _ = write!(o, ",\"elapsed_s\":{}", json_f64(t));
        }
        o.push('}');
        o
    }
}

/// Serialize a slice of reports as a pretty-ish JSON array (one report
/// object per line), suitable for `experiments.json`.
pub fn reports_to_json(reports: &[FigureReport]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.to_json());
        if i + 1 < reports.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// Extract `(id, elapsed_s)` pairs from an `experiments.json` payload
/// (this crate's own serialisation; entries without an `elapsed_s`
/// field are skipped). The inverse of [`reports_to_json`] for exactly
/// the two fields the timing-trend check needs — a full JSON parser
/// would be overkill for the hand-rolled writer's fixed layout.
pub fn parse_figure_timings(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("{\"id\":\"") {
        rest = &rest[at + "{\"id\":\"".len()..];
        let Some(id_end) = rest.find('"') else { break };
        let id = &rest[..id_end];
        // elapsed_s is the last field of its report object; stop the
        // search at the next report's id so a missing field cannot
        // steal the neighbour's timing.
        let scope_end = rest.find("{\"id\":\"").unwrap_or(rest.len());
        if let Some(e) = rest[..scope_end].find("\"elapsed_s\":") {
            let tail = &rest[e + "\"elapsed_s\":".len()..scope_end];
            let num_end = tail
                .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                .unwrap_or(tail.len());
            if let Ok(v) = tail[..num_end].parse::<f64>() {
                out.push((id.to_string(), v));
            }
        }
        rest = &rest[id_end..];
    }
    out
}

/// JSON string literal with the escapes required by RFC 8259.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number for an `f64`. JSON has no NaN/Infinity; encode them as
/// null so the output always parses.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{v:?}` round-trips f64 exactly and always includes a decimal
        // point or exponent, so the value re-parses as a float.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_everything() {
        let mut r = FigureReport::new("figX", "Title", "expected shape", &["a", "b"]);
        r.row(vec![1.0, 2.0]);
        r.scalar("c_mbps", 6.2);
        r.check("knee", true, "at 3.3".into());
        let text = r.render();
        assert!(text.contains("figX"));
        assert!(text.contains("a\tb"));
        assert!(text.contains("1.000000\t2.000000"));
        assert!(text.contains("c_mbps"));
        assert!(text.contains("CHECK [PASS] knee"));
        assert!(r.all_passed());
    }

    #[test]
    fn failed_check_flips_all_passed() {
        let mut r = FigureReport::new("f", "t", "p", &["x"]);
        r.check("bad", false, "nope".into());
        assert!(!r.all_passed());
        assert!(r.render().contains("CHECK [FAIL]"));
    }

    #[test]
    fn serializes_to_json() {
        let mut r = FigureReport::new("f", "t", "p", &["x"]);
        r.row(vec![4.25]);
        let j = r.to_json();
        assert!(j.contains("\"id\":\"f\""));
        assert!(j.contains("4.25"));
    }

    #[test]
    fn json_escapes_and_non_finite() {
        let mut r = FigureReport::new("f", "quote \" tab \t", "p", &["x"]);
        r.row(vec![f64::NAN]);
        r.check("c", true, "line\nbreak".into());
        let j = r.to_json();
        assert!(j.contains("quote \\\" tab \\t"));
        assert!(j.contains("line\\nbreak"));
        assert!(j.contains("null"));
        assert!(!j.contains("NaN"));
    }

    #[test]
    fn elapsed_is_serialized_only_when_recorded() {
        let mut r = FigureReport::new("f", "t", "p", &["x"]);
        assert!(!r.to_json().contains("elapsed_s"));
        r.elapsed_s = Some(1.25);
        assert!(r.to_json().contains("\"elapsed_s\":1.25"));
    }

    #[test]
    fn parse_figure_timings_round_trips() {
        let mut a = FigureReport::new("fig01", "t", "p", &["x"]);
        a.elapsed_s = Some(1.25);
        let mut b = FigureReport::new("fig02", "t", "p", &["x"]);
        b.elapsed_s = Some(0.5);
        let untimed = FigureReport::new("fig03", "t", "p", &["x"]);
        let json = reports_to_json(&[a, b, untimed]);
        let timings = parse_figure_timings(&json);
        assert_eq!(
            timings,
            vec![("fig01".to_string(), 1.25), ("fig02".to_string(), 0.5)]
        );
    }

    #[test]
    fn parse_figure_timings_survives_string_noise() {
        // ids embedded in titles/details must not confuse the scan.
        let mut r = FigureReport::new("figX", "has \"elapsed_s\": in title", "p", &["x"]);
        r.check("c", true, "{\"id\":\"fake\" inside a detail".into());
        r.elapsed_s = Some(2.0);
        let json = reports_to_json(&[r]);
        let timings = parse_figure_timings(&json);
        assert_eq!(timings.len(), 1);
        assert_eq!(timings[0].0, "figX");
        assert_eq!(timings[0].1, 2.0);
    }

    #[test]
    fn reports_array_is_wrapped_and_comma_separated() {
        let a = FigureReport::new("a", "t", "p", &["x"]);
        let b = FigureReport::new("b", "t", "p", &["x"]);
        let j = reports_to_json(&[a, b]);
        assert!(j.trim_start().starts_with('['));
        assert!(j.trim_end().ends_with(']'));
        assert!(j.contains("\"id\":\"a\""));
        assert!(j.contains("\"id\":\"b\""));
        assert_eq!(j.matches("},\n").count(), 1);
    }
}
