//! Figure reports: the common output format of every experiment — plus
//! [`RowSink`], the incremental, crash-tolerant JSONL persister behind
//! the scenario grid runner.

use std::fmt::Write as _;
use std::io::{Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};

/// One qualitative reproduction check ("shape" assertion).
#[derive(Debug, Clone)]
pub struct Check {
    /// Short name of the property checked.
    pub name: String,
    /// Whether the regenerated data satisfies it.
    pub passed: bool,
    /// Human-readable evidence (numbers involved).
    pub detail: String,
}

/// The regenerated data behind one figure of the paper.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Identifier, e.g. `"fig06"`.
    pub id: String,
    /// Title, e.g. `"Mean access delay vs probe packet number"`.
    pub title: String,
    /// What the paper's version of the figure shows (expected shape).
    pub paper_expectation: String,
    /// Column names of `rows`.
    pub columns: Vec<String>,
    /// The regenerated series.
    pub rows: Vec<Vec<f64>>,
    /// Scalar summary values (measured capacities, knees, …).
    pub scalars: Vec<(String, f64)>,
    /// Qualitative checks with outcomes.
    pub checks: Vec<Check>,
    /// Named wall-clock measurements taken *inside* the figure (the
    /// tier-speedup experiment times its engine tiers). Like
    /// [`elapsed_s`](Self::elapsed_s) these are non-deterministic:
    /// consumers comparing `experiments.json` across runs must ignore
    /// the `wallclock` field.
    pub wallclocks: Vec<(String, f64)>,
    /// Wall-clock seconds the figure took to regenerate (recorded by
    /// the `all_figures` scheduler; `None` when run standalone).
    /// Non-deterministic, like [`wallclocks`](Self::wallclocks):
    /// consumers comparing `experiments.json` across runs should
    /// ignore it.
    pub elapsed_s: Option<f64>,
}

impl FigureReport {
    /// An empty report skeleton.
    pub fn new(id: &str, title: &str, paper_expectation: &str, columns: &[&str]) -> Self {
        FigureReport {
            id: id.to_string(),
            title: title.to_string(),
            paper_expectation: paper_expectation.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            scalars: Vec::new(),
            checks: Vec::new(),
            wallclocks: Vec::new(),
            elapsed_s: None,
        }
    }

    /// Record a named wall-clock measurement (seconds). Serialized into
    /// the non-deterministic `wallclock` field, never into `scalars`,
    /// so timing noise cannot break the bit-reproducibility contract
    /// pinned by `tests/determinism.rs`.
    pub fn wallclock(&mut self, name: &str, seconds: f64) {
        self.wallclocks.push((name.to_string(), seconds));
    }

    /// Append one data row (must match `columns` in length).
    pub fn row(&mut self, values: Vec<f64>) {
        debug_assert_eq!(values.len(), self.columns.len());
        self.rows.push(values);
    }

    /// Record a named scalar (measured capacity, knee position, …).
    pub fn scalar(&mut self, name: &str, value: f64) {
        self.scalars.push((name.to_string(), value));
    }

    /// Record a qualitative check.
    pub fn check(&mut self, name: &str, passed: bool, detail: String) {
        self.checks.push(Check {
            name: name.to_string(),
            passed,
            detail,
        });
    }

    /// All checks passed?
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Render as TSV + check summary (what the figure binaries print).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# paper: {}", self.paper_expectation);
        for (name, v) in &self.scalars {
            let _ = writeln!(out, "# {name} = {v:.6}");
        }
        let _ = writeln!(out, "{}", self.columns.join("\t"));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:.6}")).collect();
            let _ = writeln!(out, "{}", cells.join("\t"));
        }
        for c in &self.checks {
            let _ = writeln!(
                out,
                "# CHECK [{}] {} — {}",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            );
        }
        out
    }

    /// Print the rendered report to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Serialize to a JSON object (hand-rolled; the build environment has
    /// no `serde`). Field names and layout match what a
    /// `#[derive(Serialize)]` on this struct would produce.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{");
        let _ = write!(o, "\"id\":{}", json_str(&self.id));
        let _ = write!(o, ",\"title\":{}", json_str(&self.title));
        let _ = write!(
            o,
            ",\"paper_expectation\":{}",
            json_str(&self.paper_expectation)
        );
        let cols: Vec<String> = self.columns.iter().map(|c| json_str(c)).collect();
        let _ = write!(o, ",\"columns\":[{}]", cols.join(","));
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|v| json_f64(*v)).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        let _ = write!(o, ",\"rows\":[{}]", rows.join(","));
        let scalars: Vec<String> = self
            .scalars
            .iter()
            .map(|(name, v)| format!("[{},{}]", json_str(name), json_f64(*v)))
            .collect();
        let _ = write!(o, ",\"scalars\":[{}]", scalars.join(","));
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "{{\"name\":{},\"passed\":{},\"detail\":{}}}",
                    json_str(&c.name),
                    c.passed,
                    json_str(&c.detail)
                )
            })
            .collect();
        let _ = write!(o, ",\"checks\":[{}]", checks.join(","));
        if !self.wallclocks.is_empty() {
            let ws: Vec<String> = self
                .wallclocks
                .iter()
                .map(|(name, v)| format!("[{},{}]", json_str(name), json_f64(*v)))
                .collect();
            let _ = write!(o, ",\"wallclock\":[{}]", ws.join(","));
        }
        if let Some(t) = self.elapsed_s {
            let _ = write!(o, ",\"elapsed_s\":{}", json_f64(t));
        }
        o.push('}');
        o
    }
}

/// Serialize a slice of reports as a pretty-ish JSON array (one report
/// object per line), suitable for `experiments.json`.
pub fn reports_to_json(reports: &[FigureReport]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.to_json());
        if i + 1 < reports.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// Extract `(id, elapsed_s)` pairs from an `experiments.json` payload
/// (this crate's own serialisation; entries without an `elapsed_s`
/// field are skipped). The inverse of [`reports_to_json`] for exactly
/// the two fields the timing-trend check needs — a full JSON parser
/// would be overkill for the hand-rolled writer's fixed layout.
pub fn parse_figure_timings(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("{\"id\":\"") {
        rest = &rest[at + "{\"id\":\"".len()..];
        let Some(id_end) = rest.find('"') else { break };
        let id = &rest[..id_end];
        // elapsed_s is the last field of its report object; stop the
        // search at the next report's id so a missing field cannot
        // steal the neighbour's timing.
        let scope_end = rest.find("{\"id\":\"").unwrap_or(rest.len());
        if let Some(e) = rest[..scope_end].find("\"elapsed_s\":") {
            let tail = &rest[e + "\"elapsed_s\":".len()..scope_end];
            let num_end = tail
                .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                .unwrap_or(tail.len());
            if let Ok(v) = tail[..num_end].parse::<f64>() {
                out.push((id.to_string(), v));
            }
        }
        rest = &rest[id_end..];
    }
    out
}

/// Append-only JSONL row store with crash-tolerant resume: the
/// persistence layer of the grid runner (`bin/grid`).
///
/// Each row is one line, a JSON object whose **first two fields are**
/// `"cell":<flat index>` and `"key":"<unique cell key>"` (the rest is
/// free-form). Rows are flushed line-by-line, so an interrupted run
/// loses at most the line being written. [`RowSink::resume`] scans an
/// existing file, keeps the longest prefix of complete rows, truncates
/// any torn tail (a kill mid-`write` leaves a partial last line), and
/// reports the persisted keys so the caller can schedule only the
/// missing cells.
///
/// [`RowSink::finalize`] assembles the rows — sorted by cell index, so
/// the output is independent of completion or resume order — into an
/// `experiments.json`-style JSON array.
#[derive(Debug)]
pub struct RowSink {
    path: PathBuf,
    file: std::fs::File,
    keys: std::collections::BTreeSet<String>,
    rows: usize,
}

/// The `"key"` field of a complete JSONL row line, if the line is one.
///
/// A line qualifies when it starts with `{"cell":`, carries a
/// `"key":"…"` field, and closes its object (`}`): the format
/// [`RowSink::append`] enforces and [`RowSink::resume`] trusts.
pub fn row_key(line: &str) -> Option<&str> {
    let line = line.trim_end_matches('\r');
    if !line.starts_with("{\"cell\":") || !line.ends_with('}') {
        return None;
    }
    let at = line.find(",\"key\":\"")?;
    let rest = &line[at + ",\"key\":\"".len()..];
    rest.find('"').map(|end| &rest[..end])
}

/// The `"cell"` field of a complete JSONL row line.
pub fn row_cell(line: &str) -> Option<u64> {
    let rest = line.strip_prefix("{\"cell\":")?;
    let end = rest.find(|c: char| !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

/// The `"run"` fingerprint (16 hex digits) of a row line, if present.
pub fn row_run(line: &str) -> Option<u64> {
    let at = line.find(",\"run\":\"")?;
    let rest = &line[at + ",\"run\":\"".len()..];
    u64::from_str_radix(rest.get(..16)?, 16).ok()
}

/// The `"shard"` provenance field of a row line, if present.
pub fn row_shard(line: &str) -> Option<&str> {
    let at = line.find(",\"shard\":\"")?;
    let rest = &line[at + ",\"shard\":\"".len()..];
    rest.find('"').map(|end| &rest[..end])
}

/// Remove the `"shard"` provenance field from a row line, if present.
///
/// The shard field is resume-time bookkeeping (which `--shard i/n`
/// spec produced the row); the finalized table is campaign-level, so
/// [`RowSink::finalize`] and [`RowSink::finalize_merged`] both strip it
/// — that is what makes a merged shard table byte-identical to the
/// unsharded run's.
pub fn strip_shard(line: &str) -> String {
    if let Some(at) = line.find(",\"shard\":\"") {
        let value_start = at + ",\"shard\":\"".len();
        if let Some(end) = line[value_start..].find('"') {
            let mut out = String::with_capacity(line.len());
            out.push_str(&line[..at]);
            out.push_str(&line[value_start + end + 1..]);
            return out;
        }
    }
    line.to_string()
}

/// The longest complete-row prefix of a row file's bytes: its byte
/// length, the rows, and their keys. A malformed or duplicate-key line
/// ends the prefix — the writer produces neither, so nothing after it
/// is trustworthy.
struct ScannedPrefix {
    good: usize,
    rows: Vec<String>,
    keys: std::collections::BTreeSet<String>,
}

fn scan_complete_prefix(bytes: &[u8]) -> ScannedPrefix {
    let mut keys = std::collections::BTreeSet::new();
    let mut rows = Vec::new();
    let mut good = 0usize;
    let mut start = 0usize;
    while let Some(nl) = bytes[start..].iter().position(|&b| b == b'\n') {
        let line = match std::str::from_utf8(&bytes[start..start + nl]) {
            Ok(l) => l,
            Err(_) => break,
        };
        match row_key(line) {
            Some(key) if keys.insert(key.to_string()) => {
                rows.push(line.to_string());
                start += nl + 1;
                good = start;
            }
            _ => break,
        }
    }
    ScannedPrefix { good, rows, keys }
}

/// A **read-only** snapshot of a row file: the longest complete-row
/// prefix, loaded without opening the file for writing and without
/// truncating a torn tail (contrast [`RowSink::resume`], which owns the
/// file and repairs it in place). This is what the merge and listing
/// paths use — merging N shard files must never mutate its inputs, and
/// it works on files the process has no write permission to.
#[derive(Debug)]
pub struct RowFile {
    path: PathBuf,
    rows: Vec<String>,
    keys: std::collections::BTreeSet<String>,
}

impl RowFile {
    /// The complete rows, in file order.
    pub fn rows(&self) -> &[String] {
        &self.rows
    }

    /// Number of complete rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// No complete rows?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Has a row with this key?
    pub fn contains(&self, key: &str) -> bool {
        self.keys.contains(key)
    }

    /// The file the rows were loaded from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl RowSink {
    /// Open `path` fresh, discarding any existing content.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<RowSink> {
        let path = path.into();
        let file = std::fs::File::create(&path)?;
        Ok(RowSink {
            path,
            file,
            keys: Default::default(),
            rows: 0,
        })
    }

    /// Open `path` for resuming **writes**: keep the longest prefix of
    /// complete rows, truncate everything after it (torn tail line or
    /// trailing garbage), and load the persisted keys. A missing file
    /// resumes from nothing.
    ///
    /// This opens the file read-write and repairs it in place — it is
    /// the path for a run that will append more rows. Callers that only
    /// want to *read* rows (merging shard files, listing pending cells)
    /// must use [`RowSink::load`] instead, which never mutates the file.
    pub fn resume(path: impl Into<PathBuf>) -> std::io::Result<RowSink> {
        let path = path.into();
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let scanned = scan_complete_prefix(&bytes);
        if scanned.good < bytes.len() {
            file.set_len(scanned.good as u64)?;
        }
        file.seek(std::io::SeekFrom::Start(scanned.good as u64))?;
        Ok(RowSink {
            path,
            file,
            keys: scanned.keys,
            rows: scanned.rows.len(),
        })
    }

    /// Load `path` **read-only**: the longest complete-row prefix, with
    /// a torn tail *ignored* rather than truncated. The file is opened
    /// without write access and its bytes are never touched, so this
    /// works on inputs the caller must not (or cannot — `chmod 444`)
    /// mutate: the shard files of [`RowSink::finalize_merged`] and the
    /// `--list` audit path.
    pub fn load(path: impl Into<PathBuf>) -> std::io::Result<RowFile> {
        let path = path.into();
        let bytes = std::fs::read(&path)?;
        let scanned = scan_complete_prefix(&bytes);
        Ok(RowFile {
            path,
            rows: scanned.rows,
            keys: scanned.keys,
        })
    }

    /// Number of persisted rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// No rows yet?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Has a row with this key already been persisted?
    pub fn contains(&self, key: &str) -> bool {
        self.keys.contains(key)
    }

    /// The path rows are persisted to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one row line (a complete JSON object, no newline) and
    /// flush it to disk.
    ///
    /// # Panics
    /// If `line` is not in the sink's row format ([`row_key`] must
    /// accept it), contains a newline, or repeats a persisted key.
    pub fn append(&mut self, line: &str) -> std::io::Result<()> {
        assert!(!line.contains('\n'), "row must be a single line");
        let key = row_key(line).expect("row line must carry cell and key fields");
        assert!(!self.keys.contains(key), "duplicate row key {key}");
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.keys.insert(key.to_string());
        self.rows += 1;
        Ok(())
    }

    /// Read the persisted rows back (complete lines, file order).
    pub fn read_rows(&self) -> std::io::Result<Vec<String>> {
        let text = std::fs::read_to_string(&self.path)?;
        Ok(text
            .lines()
            .filter(|l| row_key(l).is_some())
            .map(String::from)
            .collect())
    }

    /// Assemble the persisted rows into an `experiments.json`-style
    /// JSON array, **sorted by cell index** so the table is identical
    /// for interrupted-and-resumed and uninterrupted runs.
    ///
    /// A duplicate cell key (impossible through [`RowSink::append`],
    /// but a file edited or concatenated outside the sink can carry
    /// one) keeps the **last** row and logs the collision — in a
    /// single file the later row is the later re-run. Shard provenance
    /// fields are stripped ([`strip_shard`]): the table is
    /// campaign-level.
    pub fn finalize(&self) -> std::io::Result<String> {
        let rows = self.read_rows()?;
        let mut latest: std::collections::BTreeMap<String, &String> = Default::default();
        for line in &rows {
            let key = row_key(line).unwrap_or_default().to_string();
            if latest.insert(key.clone(), line).is_some() {
                eprintln!(
                    "warning: duplicate cell key {key} in {}; keeping the last row",
                    self.path.display()
                );
            }
        }
        let mut rows: Vec<&String> = latest.into_values().collect();
        rows.sort_by_key(|l| row_cell(l).unwrap_or(u64::MAX));
        Ok(assemble_table(rows.into_iter()))
    }

    /// Assemble the rows of N **shard files** into the byte-identical
    /// table the unsharded run would have produced with
    /// [`RowSink::finalize`].
    ///
    /// Every input is loaded read-only via [`RowSink::load`] — merging
    /// never truncates a torn tail or otherwise mutates a shard file
    /// (torn tails are ignored; re-run the shard with `--resume` to
    /// repair and complete it). Before assembling, the merge verifies:
    ///
    /// - **one campaign**: every row carrying a `"run"` fingerprint
    ///   carries the same one (and files with and without fingerprints
    ///   don't mix);
    /// - **pairwise-disjoint coverage**: no cell key and no cell index
    ///   appears in two inputs — a duplicate here means two shards ran
    ///   overlapping specs (or one file was merged twice), and unlike
    ///   the single-file case there is no "later re-run" to prefer, so
    ///   it is a hard error.
    ///
    /// Shard provenance fields are stripped exactly as in
    /// [`RowSink::finalize`].
    pub fn finalize_merged(paths: &[impl AsRef<Path>]) -> std::io::Result<String> {
        let corrupt = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut all: Vec<String> = Vec::new();
        let mut key_owner: std::collections::BTreeMap<String, PathBuf> = Default::default();
        let mut cell_owner: std::collections::BTreeMap<u64, PathBuf> = Default::default();
        let mut run: Option<Option<u64>> = None;
        for path in paths {
            let file = RowSink::load(path.as_ref())?;
            for line in file.rows() {
                let this_run = row_run(line);
                match run {
                    None => run = Some(this_run),
                    Some(first) if first != this_run => {
                        return Err(corrupt(format!(
                            "{}: row fingerprint {:016x} does not match the other \
                             shards' {:016x} — the inputs come from different campaigns",
                            file.path().display(),
                            this_run.unwrap_or(0),
                            first.unwrap_or(0),
                        )));
                    }
                    Some(_) => {}
                }
                let key = row_key(line).unwrap_or_default().to_string();
                if let Some(prev) = key_owner.insert(key.clone(), file.path().to_path_buf()) {
                    return Err(corrupt(format!(
                        "cell key {key} appears in both {} and {} — shard coverage \
                         must be pairwise disjoint",
                        prev.display(),
                        file.path().display(),
                    )));
                }
                if let Some(cell) = row_cell(line) {
                    if let Some(prev) = cell_owner.insert(cell, file.path().to_path_buf()) {
                        return Err(corrupt(format!(
                            "cell index {cell} appears in both {} and {} — shard \
                             coverage must be pairwise disjoint",
                            prev.display(),
                            file.path().display(),
                        )));
                    }
                }
                all.push(line.clone());
            }
        }
        all.sort_by_key(|l| row_cell(l).unwrap_or(u64::MAX));
        Ok(assemble_table(all.iter()))
    }
}

/// Wrap cell-sorted rows as the finalized JSON array (shard provenance
/// stripped) — the one serialisation behind both finalize flavours.
fn assemble_table<S: AsRef<str>>(rows: impl ExactSizeIterator<Item = S>) -> String {
    let n = rows.len();
    let mut out = String::from("[\n");
    for (i, r) in rows.enumerate() {
        out.push_str("  ");
        out.push_str(&strip_shard(r.as_ref()));
        if i + 1 < n {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// JSON string literal with the escapes required by RFC 8259.
///
/// Public because every layer that writes [`RowSink`]-compatible rows
/// (the grid runner here, the serving layer in `csmaprobe-service`)
/// must serialize fields identically for finalized tables to be
/// byte-comparable.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number for an `f64`. JSON has no NaN/Infinity; encode them as
/// null so the output always parses. Public for the same
/// byte-compatibility reason as [`json_str`].
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{v:?}` round-trips f64 exactly and always includes a decimal
        // point or exponent, so the value re-parses as a float.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_everything() {
        let mut r = FigureReport::new("figX", "Title", "expected shape", &["a", "b"]);
        r.row(vec![1.0, 2.0]);
        r.scalar("c_mbps", 6.2);
        r.check("knee", true, "at 3.3".into());
        let text = r.render();
        assert!(text.contains("figX"));
        assert!(text.contains("a\tb"));
        assert!(text.contains("1.000000\t2.000000"));
        assert!(text.contains("c_mbps"));
        assert!(text.contains("CHECK [PASS] knee"));
        assert!(r.all_passed());
    }

    #[test]
    fn failed_check_flips_all_passed() {
        let mut r = FigureReport::new("f", "t", "p", &["x"]);
        r.check("bad", false, "nope".into());
        assert!(!r.all_passed());
        assert!(r.render().contains("CHECK [FAIL]"));
    }

    #[test]
    fn serializes_to_json() {
        let mut r = FigureReport::new("f", "t", "p", &["x"]);
        r.row(vec![4.25]);
        let j = r.to_json();
        assert!(j.contains("\"id\":\"f\""));
        assert!(j.contains("4.25"));
    }

    #[test]
    fn json_escapes_and_non_finite() {
        let mut r = FigureReport::new("f", "quote \" tab \t", "p", &["x"]);
        r.row(vec![f64::NAN]);
        r.check("c", true, "line\nbreak".into());
        let j = r.to_json();
        assert!(j.contains("quote \\\" tab \\t"));
        assert!(j.contains("line\\nbreak"));
        assert!(j.contains("null"));
        assert!(!j.contains("NaN"));
    }

    #[test]
    fn elapsed_is_serialized_only_when_recorded() {
        let mut r = FigureReport::new("f", "t", "p", &["x"]);
        assert!(!r.to_json().contains("elapsed_s"));
        r.elapsed_s = Some(1.25);
        assert!(r.to_json().contains("\"elapsed_s\":1.25"));
    }

    #[test]
    fn wallclock_is_serialized_only_when_recorded() {
        let mut r = FigureReport::new("f", "t", "p", &["x"]);
        assert!(!r.to_json().contains("wallclock"));
        r.wallclock("event_s", 0.5);
        r.wallclock("slotted_s", 0.25);
        let j = r.to_json();
        assert!(j.contains("\"wallclock\":[[\"event_s\",0.5],[\"slotted_s\",0.25]]"));
        // It must never leak into the deterministic scalar channel.
        assert!(j.contains("\"scalars\":[]"));
    }

    #[test]
    fn parse_figure_timings_round_trips() {
        let mut a = FigureReport::new("fig01", "t", "p", &["x"]);
        a.elapsed_s = Some(1.25);
        let mut b = FigureReport::new("fig02", "t", "p", &["x"]);
        b.elapsed_s = Some(0.5);
        let untimed = FigureReport::new("fig03", "t", "p", &["x"]);
        let json = reports_to_json(&[a, b, untimed]);
        let timings = parse_figure_timings(&json);
        assert_eq!(
            timings,
            vec![("fig01".to_string(), 1.25), ("fig02".to_string(), 0.5)]
        );
    }

    #[test]
    fn parse_figure_timings_survives_string_noise() {
        // ids embedded in titles/details must not confuse the scan.
        let mut r = FigureReport::new("figX", "has \"elapsed_s\": in title", "p", &["x"]);
        r.check("c", true, "{\"id\":\"fake\" inside a detail".into());
        r.elapsed_s = Some(2.0);
        let json = reports_to_json(&[r]);
        let timings = parse_figure_timings(&json);
        assert_eq!(timings.len(), 1);
        assert_eq!(timings[0].0, "figX");
        assert_eq!(timings[0].1, 2.0);
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("csmaprobe-rowsink-{}-{name}", std::process::id()))
    }

    fn row_line(cell: u64, key: &str, v: f64) -> String {
        format!(
            "{{\"cell\":{cell},\"key\":{},\"v\":{}}}",
            json_str(key),
            json_f64(v)
        )
    }

    #[test]
    fn row_key_and_cell_accept_only_complete_rows() {
        let line = row_line(4, "a/b", 1.5);
        assert_eq!(row_key(&line), Some("a/b"));
        assert_eq!(row_cell(&line), Some(4));
        assert_eq!(row_key(&line[..line.len() - 3]), None, "torn line");
        assert_eq!(row_key("{\"v\":1}"), None, "missing cell/key");
        assert_eq!(row_key(""), None);
    }

    #[test]
    fn sink_appends_flushes_and_finalizes_sorted() {
        let p = tmp("basic");
        let mut sink = RowSink::create(&p).unwrap();
        // Out-of-cell-order appends (a resumed run does this).
        sink.append(&row_line(2, "c", 3.0)).unwrap();
        sink.append(&row_line(0, "a", 1.0)).unwrap();
        sink.append(&row_line(1, "b", 2.0)).unwrap();
        assert_eq!(sink.len(), 3);
        assert!(sink.contains("b") && !sink.contains("d"));
        let table = sink.finalize().unwrap();
        let a = table.find("\"key\":\"a\"").unwrap();
        let b = table.find("\"key\":\"b\"").unwrap();
        let c = table.find("\"key\":\"c\"").unwrap();
        assert!(a < b && b < c, "finalize sorts by cell index");
        assert!(table.trim_start().starts_with('[') && table.trim_end().ends_with(']'));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn resume_truncates_torn_tail_and_skips_done_cells() {
        let p = tmp("resume");
        {
            let mut sink = RowSink::create(&p).unwrap();
            sink.append(&row_line(0, "a", 1.0)).unwrap();
            sink.append(&row_line(1, "b", 2.0)).unwrap();
        }
        // Simulate a kill mid-write: a torn third line.
        let mut bytes = std::fs::read(&p).unwrap();
        bytes.extend_from_slice(b"{\"cell\":2,\"key\":\"c\",\"v\":3");
        std::fs::write(&p, &bytes).unwrap();

        let mut sink = RowSink::resume(&p).unwrap();
        assert_eq!(sink.len(), 2, "torn tail dropped");
        assert!(sink.contains("a") && sink.contains("b") && !sink.contains("c"));
        sink.append(&row_line(2, "c", 3.0)).unwrap();
        let rows = sink.read_rows().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(row_key(&rows[2]), Some("c"));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn resume_of_missing_file_starts_empty() {
        let p = tmp("fresh");
        let _ = std::fs::remove_file(&p);
        let sink = RowSink::resume(&p).unwrap();
        assert!(sink.is_empty());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    #[should_panic(expected = "duplicate row key")]
    fn duplicate_keys_are_rejected() {
        let p = tmp("dup");
        let mut sink = RowSink::create(&p).unwrap();
        sink.append(&row_line(0, "a", 1.0)).unwrap();
        let _ = std::fs::remove_file(&p);
        sink.append(&row_line(1, "a", 2.0)).unwrap();
    }

    fn shard_row_line(cell: u64, key: &str, v: f64, shard: &str) -> String {
        format!(
            "{{\"cell\":{cell},\"key\":{},\"run\":\"00000000deadbeef\",\"shard\":{},\"v\":{}}}",
            json_str(key),
            json_str(shard),
            json_f64(v)
        )
    }

    #[test]
    fn row_run_and_shard_parse_and_strip() {
        let line = shard_row_line(3, "a/b", 1.5, "1/2:0123456789abcdef");
        assert_eq!(row_run(&line), Some(0xdead_beef));
        assert_eq!(row_shard(&line), Some("1/2:0123456789abcdef"));
        let stripped = strip_shard(&line);
        assert!(!stripped.contains("shard"));
        assert_eq!(row_key(&stripped), Some("a/b"));
        assert_eq!(row_run(&stripped), Some(0xdead_beef));
        // Rows without the fields are untouched.
        let bare = row_line(0, "k", 1.0);
        assert_eq!(row_run(&bare), None);
        assert_eq!(row_shard(&bare), None);
        assert_eq!(strip_shard(&bare), bare);
    }

    #[test]
    fn load_is_read_only_and_ignores_torn_tail() {
        let p = tmp("load");
        {
            let mut sink = RowSink::create(&p).unwrap();
            sink.append(&row_line(0, "a", 1.0)).unwrap();
            sink.append(&row_line(1, "b", 2.0)).unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        bytes.extend_from_slice(b"{\"cell\":2,\"key\":\"c\",\"v\":3");
        std::fs::write(&p, &bytes).unwrap();

        let loaded = RowSink::load(&p).unwrap();
        assert_eq!(loaded.len(), 2, "torn tail excluded from the rows");
        assert!(loaded.contains("a") && loaded.contains("b") && !loaded.contains("c"));
        assert_eq!(row_key(&loaded.rows()[1]), Some("b"));
        // Crucially: the file bytes were NOT repaired.
        assert_eq!(std::fs::read(&p).unwrap(), bytes, "load must not truncate");
        let _ = std::fs::remove_file(&p);
    }

    #[cfg(unix)]
    #[test]
    fn readonly_shard_files_merge_successfully() {
        let paths = [tmp("ro-merge-0"), tmp("ro-merge-1")];
        for (i, p) in paths.iter().enumerate() {
            let mut sink = RowSink::create(p).unwrap();
            for cell in [i as u64, (i + 2) as u64] {
                sink.append(&shard_row_line(
                    cell,
                    &format!("cell-{cell}"),
                    cell as f64,
                    &format!("{i}/2:{i:016x}"),
                ))
                .unwrap();
            }
            let mut perms = std::fs::metadata(p).unwrap().permissions();
            perms.set_readonly(true);
            std::fs::set_permissions(p, perms).unwrap();
        }
        let before: Vec<Vec<u8>> = paths.iter().map(|p| std::fs::read(p).unwrap()).collect();
        let table = RowSink::finalize_merged(&paths).unwrap();
        for key in ["cell-0", "cell-1", "cell-2", "cell-3"] {
            assert!(table.contains(key), "{key} missing from merged table");
        }
        assert!(!table.contains("shard"), "shard provenance stripped");
        for (p, bytes) in paths.iter().zip(&before) {
            assert_eq!(&std::fs::read(p).unwrap(), bytes, "merge input mutated");
            let mut perms = std::fs::metadata(p).unwrap().permissions();
            #[allow(clippy::permissions_set_readonly_false)]
            perms.set_readonly(false);
            std::fs::set_permissions(p, perms).unwrap();
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn merged_table_is_byte_identical_to_the_unsharded_finalize() {
        // One "campaign" of 5 cells persisted unsharded, and the same
        // rows split round-robin over 2 shard files: finalize vs
        // finalize_merged must agree byte-for-byte (shard provenance
        // differs per file, so only stripping makes this possible).
        let full_path = tmp("merge-full");
        let shard_paths = [tmp("merge-s0"), tmp("merge-s1")];
        let mut full = RowSink::create(&full_path).unwrap();
        let mut shards: Vec<RowSink> = shard_paths
            .iter()
            .map(|p| RowSink::create(p).unwrap())
            .collect();
        for cell in 0..5u64 {
            let key = format!("cell-{cell}");
            let owner = (cell % 2) as usize;
            full.append(&shard_row_line(
                cell,
                &key,
                cell as f64,
                "0/1:aaaaaaaaaaaaaaaa",
            ))
            .unwrap();
            shards[owner]
                .append(&shard_row_line(
                    cell,
                    &key,
                    cell as f64,
                    &format!("{owner}/2:{owner:016x}"),
                ))
                .unwrap();
        }
        let unsharded = full.finalize().unwrap();
        let merged = RowSink::finalize_merged(&shard_paths).unwrap();
        assert_eq!(
            unsharded, merged,
            "merge must reproduce the unsharded table"
        );
        let _ = std::fs::remove_file(&full_path);
        for p in &shard_paths {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn finalize_keeps_the_last_duplicate_row() {
        // append() forbids duplicates, so plant one behind the sink's
        // back — the way a concatenated or re-run file would carry it.
        let p = tmp("dup-last");
        let mut sink = RowSink::create(&p).unwrap();
        sink.append(&row_line(0, "a", 1.0)).unwrap();
        sink.append(&row_line(1, "b", 2.0)).unwrap();
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
            writeln!(f, "{}", row_line(0, "a", 99.0)).unwrap();
        }
        let table = sink.finalize().unwrap();
        assert_eq!(table.matches("\"key\":\"a\"").count(), 1, "deduplicated");
        assert!(table.contains("\"v\":99.0"), "last row wins");
        assert!(!table.contains("\"v\":1.0"), "first row dropped");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn finalize_merged_rejects_overlapping_coverage() {
        let paths = [tmp("ovl-0"), tmp("ovl-1")];
        let mut a = RowSink::create(&paths[0]).unwrap();
        a.append(&row_line(0, "a", 1.0)).unwrap();
        let mut b = RowSink::create(&paths[1]).unwrap();
        b.append(&row_line(1, "a", 2.0)).unwrap();
        let err = RowSink::finalize_merged(&paths).unwrap_err();
        assert!(err.to_string().contains("pairwise disjoint"), "{err}");
        for p in &paths {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn finalize_merged_rejects_mixed_campaign_fingerprints() {
        let paths = [tmp("fp-0"), tmp("fp-1")];
        let mut a = RowSink::create(&paths[0]).unwrap();
        a.append(&shard_row_line(0, "a", 1.0, "0/2:0000000000000000"))
            .unwrap();
        let mut b = RowSink::create(&paths[1]).unwrap();
        // Different "run" fingerprint: hand-written line.
        b.append("{\"cell\":1,\"key\":\"b\",\"run\":\"00000000cafecafe\",\"v\":2.0}")
            .unwrap();
        let err = RowSink::finalize_merged(&paths).unwrap_err();
        assert!(err.to_string().contains("different campaigns"), "{err}");
        // A fingerprinted file must not mix with a fingerprint-less one
        // either.
        let mut c = RowSink::create(&paths[1]).unwrap();
        c.append(&row_line(1, "b", 2.0)).unwrap();
        let err = RowSink::finalize_merged(&paths).unwrap_err();
        assert!(err.to_string().contains("different campaigns"), "{err}");
        for p in &paths {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn reports_array_is_wrapped_and_comma_separated() {
        let a = FigureReport::new("a", "t", "p", &["x"]);
        let b = FigureReport::new("b", "t", "p", &["x"]);
        let j = reports_to_json(&[a, b]);
        assert!(j.trim_start().starts_with('['));
        assert!(j.trim_end().ends_with(']'));
        assert!(j.contains("\"id\":\"a\""));
        assert!(j.contains("\"id\":\"b\""));
        assert_eq!(j.matches("},\n").count(), 1);
    }
}
