//! Figure reports: the common output format of every experiment.

use serde::Serialize;
use std::fmt::Write as _;

/// One qualitative reproduction check ("shape" assertion).
#[derive(Debug, Clone, Serialize)]
pub struct Check {
    /// Short name of the property checked.
    pub name: String,
    /// Whether the regenerated data satisfies it.
    pub passed: bool,
    /// Human-readable evidence (numbers involved).
    pub detail: String,
}

/// The regenerated data behind one figure of the paper.
#[derive(Debug, Clone, Serialize)]
pub struct FigureReport {
    /// Identifier, e.g. `"fig06"`.
    pub id: String,
    /// Title, e.g. `"Mean access delay vs probe packet number"`.
    pub title: String,
    /// What the paper's version of the figure shows (expected shape).
    pub paper_expectation: String,
    /// Column names of `rows`.
    pub columns: Vec<String>,
    /// The regenerated series.
    pub rows: Vec<Vec<f64>>,
    /// Scalar summary values (measured capacities, knees, …).
    pub scalars: Vec<(String, f64)>,
    /// Qualitative checks with outcomes.
    pub checks: Vec<Check>,
}

impl FigureReport {
    /// An empty report skeleton.
    pub fn new(id: &str, title: &str, paper_expectation: &str, columns: &[&str]) -> Self {
        FigureReport {
            id: id.to_string(),
            title: title.to_string(),
            paper_expectation: paper_expectation.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            scalars: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// Append one data row (must match `columns` in length).
    pub fn row(&mut self, values: Vec<f64>) {
        debug_assert_eq!(values.len(), self.columns.len());
        self.rows.push(values);
    }

    /// Record a named scalar (measured capacity, knee position, …).
    pub fn scalar(&mut self, name: &str, value: f64) {
        self.scalars.push((name.to_string(), value));
    }

    /// Record a qualitative check.
    pub fn check(&mut self, name: &str, passed: bool, detail: String) {
        self.checks.push(Check {
            name: name.to_string(),
            passed,
            detail,
        });
    }

    /// All checks passed?
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Render as TSV + check summary (what the figure binaries print).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# paper: {}", self.paper_expectation);
        for (name, v) in &self.scalars {
            let _ = writeln!(out, "# {name} = {v:.6}");
        }
        let _ = writeln!(out, "{}", self.columns.join("\t"));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:.6}")).collect();
            let _ = writeln!(out, "{}", cells.join("\t"));
        }
        for c in &self.checks {
            let _ = writeln!(
                out,
                "# CHECK [{}] {} — {}",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            );
        }
        out
    }

    /// Print the rendered report to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_everything() {
        let mut r = FigureReport::new("figX", "Title", "expected shape", &["a", "b"]);
        r.row(vec![1.0, 2.0]);
        r.scalar("c_mbps", 6.2);
        r.check("knee", true, "at 3.3".into());
        let text = r.render();
        assert!(text.contains("figX"));
        assert!(text.contains("a\tb"));
        assert!(text.contains("1.000000\t2.000000"));
        assert!(text.contains("c_mbps"));
        assert!(text.contains("CHECK [PASS] knee"));
        assert!(r.all_passed());
    }

    #[test]
    fn failed_check_flips_all_passed() {
        let mut r = FigureReport::new("f", "t", "p", &["x"]);
        r.check("bad", false, "nope".into());
        assert!(!r.all_passed());
        assert!(r.render().contains("CHECK [FAIL]"));
    }

    #[test]
    fn serializes_to_json() {
        let mut r = FigureReport::new("f", "t", "p", &["x"]);
        r.row(vec![4.25]);
        let j = serde_json::to_string(&r).unwrap();
        assert!(j.contains("\"id\":\"f\""));
        assert!(j.contains("4.25"));
    }
}
