//! The **campaign manifest**: provenance of a sharded grid campaign.
//!
//! A campaign is one grid configuration (one [`BiasGrid::fingerprint`])
//! partitioned over `n` shards, each persisting rows to its own JSONL
//! file, possibly on different hosts and across many interrupted
//! sessions. The manifest (`campaign.json` by default) is the durable
//! record tying those pieces together: for every shard it tracks the
//! row file, the host fingerprint that last ran it, expected vs
//! persisted cell counts, and an append-only history of sessions — so
//! the provenance of a table survives re-runs, and `--merge` can check
//! a campaign is complete before assembling it.
//!
//! The format is a small hand-rolled JSON document (the build
//! environment has no `serde`): one shard entry per line, parsed back
//! by targeted scans like the rest of this crate's readers. History
//! strings are machine-generated (host fingerprints and counts) and
//! never contain quotes, which keeps the parser honest.
//!
//! [`BiasGrid::fingerprint`]: crate::grid::BiasGrid::fingerprint

use crate::report::json_str;
use std::path::Path;

/// One shard's slot in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Shard index, `0 <= index < CampaignManifest::shards`.
    pub index: usize,
    /// The shard's JSONL row file (as passed to `--out`).
    pub out: String,
    /// Host fingerprint (`<cores>x<arch>`) of the last session that
    /// ran this shard.
    pub host: String,
    /// Cells this shard owns (the partition size).
    pub cells: usize,
    /// Rows persisted so far (`rows == cells` ⇒ shard complete).
    pub rows: usize,
    /// One line per session that touched this shard, oldest first.
    pub history: Vec<String>,
}

impl ShardEntry {
    /// All owned cells persisted?
    pub fn complete(&self) -> bool {
        self.rows == self.cells
    }
}

/// The manifest of one sharded campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignManifest {
    /// The campaign's run-configuration fingerprint — every shard's
    /// rows must carry it.
    pub run: u64,
    /// Number of shards the campaign is partitioned into.
    pub shards: usize,
    /// Total cells across the whole campaign.
    pub cells: usize,
    /// Shard slots recorded so far, sorted by index. A slot appears
    /// once its shard has run at least one session.
    pub entries: Vec<ShardEntry>,
}

impl CampaignManifest {
    /// A fresh manifest with no shard sessions recorded yet.
    pub fn new(run: u64, shards: usize, cells: usize) -> Self {
        CampaignManifest {
            run,
            shards,
            cells,
            entries: Vec::new(),
        }
    }

    /// Record a shard session: upsert the shard's slot with its row
    /// file, host and current row count, and append a history line
    /// describing what this session changed. Returns an error if the
    /// entry's existing `out` path disagrees (two row files for one
    /// shard would make `--merge` ambiguous).
    pub fn record_session(
        &mut self,
        index: usize,
        out: &str,
        host: &str,
        cells: usize,
        rows: usize,
    ) -> Result<(), String> {
        if index >= self.shards {
            return Err(format!(
                "shard index {index} out of range for a {}-shard campaign",
                self.shards
            ));
        }
        let entry = match self.entries.iter_mut().find(|e| e.index == index) {
            Some(e) => {
                if e.out != out {
                    return Err(format!(
                        "shard {index} is recorded with row file {:?} but this session \
                         wrote {out:?}; one shard must keep one row file",
                        e.out
                    ));
                }
                e
            }
            None => {
                self.entries.push(ShardEntry {
                    index,
                    out: out.to_string(),
                    host: String::new(),
                    cells,
                    rows: 0,
                    history: Vec::new(),
                });
                self.entries.sort_by_key(|e| e.index);
                self.entries.iter_mut().find(|e| e.index == index).unwrap()
            }
        };
        let delta = rows as i64 - entry.rows as i64;
        entry.host = host.to_string();
        entry.cells = cells;
        entry.rows = rows;
        entry.history.push(format!(
            "{host}: {delta:+} row(s), {rows}/{cells} persisted"
        ));
        Ok(())
    }

    /// Every shard slot present and complete?
    pub fn complete(&self) -> bool {
        self.entries.len() == self.shards && self.entries.iter().all(|e| e.complete())
    }

    /// The shard row files, in shard order (for `--merge`).
    pub fn outs(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.out.as_str()).collect()
    }

    /// Serialize (one shard entry per line; see the module doc).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"run\": \"{:016x}\",\n", self.run));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"cells\": {},\n", self.cells));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let history: Vec<String> = e.history.iter().map(|h| json_str(h)).collect();
            out.push_str(&format!(
                "    {{\"shard\":{},\"out\":{},\"host\":{},\"cells\":{},\"rows\":{},\
                 \"history\":[{}]}}{}\n",
                e.index,
                json_str(&e.out),
                json_str(&e.host),
                e.cells,
                e.rows,
                history.join(","),
                if i + 1 < self.entries.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse what [`CampaignManifest::to_json`] wrote.
    pub fn parse(text: &str) -> Result<Self, String> {
        let run_hex = scan_str(text, "\"run\": \"").ok_or("manifest has no run fingerprint")?;
        let run = u64::from_str_radix(run_hex, 16)
            .map_err(|_| format!("malformed run fingerprint {run_hex:?}"))?;
        let shards = scan_usize(text, "\"shards\": ").ok_or("manifest has no shard count")?;
        let cells = scan_usize(text, "\"cells\": ").ok_or("manifest has no cell count")?;
        let mut entries = Vec::new();
        for line in text.lines().map(str::trim) {
            let Some(rest) = line.strip_prefix("{\"shard\":") else {
                continue;
            };
            let index: usize = rest[..rest.find(',').ok_or("torn shard entry")?]
                .parse()
                .map_err(|_| "malformed shard index".to_string())?;
            let out = scan_str(line, "\"out\":").ok_or("shard entry has no out path")?;
            let host = scan_str(line, "\"host\":").ok_or("shard entry has no host")?;
            let cells = scan_usize(line, "\"cells\":").ok_or("shard entry has no cell count")?;
            let rows = scan_usize(line, "\"rows\":").ok_or("shard entry has no row count")?;
            let hist_at = line
                .find("\"history\":[")
                .ok_or("shard entry has no history")?;
            let hist = &line[hist_at + "\"history\":[".len()..];
            let hist = &hist[..hist.rfind(']').ok_or("torn history")?];
            let history: Vec<String> = hist
                .split("\",\"")
                .map(|h| h.trim_matches('"').to_string())
                .filter(|h| !h.is_empty())
                .collect();
            entries.push(ShardEntry {
                index,
                out: out.to_string(),
                host: host.to_string(),
                cells,
                rows,
                history,
            });
        }
        entries.sort_by_key(|e| e.index);
        Ok(CampaignManifest {
            run,
            shards,
            cells,
            entries,
        })
    }

    /// Load a manifest file; `Ok(None)` when it does not exist yet.
    pub fn load(path: impl AsRef<Path>) -> Result<Option<Self>, String> {
        let path = path.as_ref();
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text)
                .map(Some)
                .map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Write the manifest to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// The string value following `pat` (up to the closing quote).
fn scan_str<'a>(text: &'a str, pat: &str) -> Option<&'a str> {
    let at = text.find(pat)? + pat.len();
    let rest = text[at..].trim_start();
    let rest = rest.strip_prefix('"').unwrap_or(rest);
    rest.find('"').map(|end| &rest[..end])
}

/// The integer value following `pat`.
fn scan_usize(text: &str, pat: &str) -> Option<usize> {
    let at = text.find(pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignManifest {
        let mut m = CampaignManifest::new(0xdead_beef_0123_4567, 2, 8);
        m.record_session(1, "s1.jsonl", "4xx86_64", 4, 2).unwrap();
        m.record_session(0, "s0.jsonl", "2xaarch64", 4, 4).unwrap();
        m.record_session(1, "s1.jsonl", "4xx86_64", 4, 4).unwrap();
        m
    }

    #[test]
    fn round_trips_through_json() {
        let m = sample();
        let parsed = CampaignManifest::parse(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn records_sessions_with_history() {
        let m = sample();
        assert_eq!(m.entries.len(), 2);
        assert_eq!(m.entries[0].index, 0, "entries sorted by shard index");
        assert_eq!(m.entries[0].host, "2xaarch64");
        assert!(m.entries[0].complete());
        assert_eq!(
            m.entries[1].history,
            vec![
                "4xx86_64: +2 row(s), 2/4 persisted",
                "4xx86_64: +2 row(s), 4/4 persisted"
            ],
            "history survives re-runs"
        );
        assert!(m.complete());
        assert_eq!(m.outs(), vec!["s0.jsonl", "s1.jsonl"]);
    }

    #[test]
    fn incomplete_until_every_shard_finishes() {
        let mut m = CampaignManifest::new(1, 3, 9);
        assert!(!m.complete(), "no shard has run");
        m.record_session(0, "s0.jsonl", "h", 3, 3).unwrap();
        m.record_session(1, "s1.jsonl", "h", 3, 2).unwrap();
        assert!(!m.complete(), "shard 1 short, shard 2 missing");
        m.record_session(1, "s1.jsonl", "h", 3, 3).unwrap();
        assert!(!m.complete(), "shard 2 still missing");
        m.record_session(2, "s2.jsonl", "h", 3, 3).unwrap();
        assert!(m.complete());
    }

    #[test]
    fn rejects_out_path_changes_and_bad_indices() {
        let mut m = CampaignManifest::new(1, 2, 4);
        m.record_session(0, "a.jsonl", "h", 2, 1).unwrap();
        assert!(m.record_session(0, "b.jsonl", "h", 2, 2).is_err());
        assert!(m.record_session(2, "c.jsonl", "h", 2, 0).is_err());
    }

    #[test]
    fn load_of_missing_file_is_none_and_save_round_trips() {
        let path =
            std::env::temp_dir().join(format!("csmaprobe-campaign-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert_eq!(CampaignManifest::load(&path).unwrap(), None);
        let m = sample();
        m.save(&path).unwrap();
        assert_eq!(CampaignManifest::load(&path).unwrap(), Some(m));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CampaignManifest::parse("").is_err());
        assert!(CampaignManifest::parse("{\"run\": \"zzz\"}").is_err());
    }
}
