//! A minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to a crates registry, so
//! the three bench targets under `benches/` run as plain binaries
//! (`harness = false`) on this module instead. The API mirrors the
//! subset of criterion they use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`] — so swapping a real criterion dependency
//! back in is a one-line `use` change per bench file.
//!
//! Reporting is deliberately simple: each benchmark prints
//! `group/name  min  median  mean` wall-clock times over `sample_size`
//! samples, where each sample is one invocation of the measured closure.

use std::hint::black_box as bb;
use std::time::{Duration, Instant};

/// How `iter_batched` should treat its per-iteration setup output.
/// Only present for API compatibility; both variants behave the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small.
    SmallInput,
    /// Setup output is large.
    LargeInput,
}

/// Entry point object handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Record>,
}

#[derive(Debug)]
struct Record {
    name: String,
    min: Duration,
    median: Duration,
    mean: Duration,
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Print the collected results as an aligned table.
    pub fn summary(&self) {
        let width = self
            .results
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(0)
            .max(9);
        println!();
        println!(
            "{:<width$}  {:>12}  {:>12}  {:>12}",
            "benchmark", "min", "median", "mean"
        );
        for r in &self.results {
            println!(
                "{:<width$}  {:>12}  {:>12}  {:>12}",
                r.name,
                fmt_dur(r.min),
                fmt_dur(r.median),
                fmt_dur(r.mean)
            );
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `f` over `sample_size` samples and record the result.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warm-up pass populates caches and lazy statics.
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed);
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let full = format!("{}/{}", self.name, id);
        eprintln!(
            "bench {full}: min {} median {} mean {} ({} samples)",
            fmt_dur(min),
            fmt_dur(median),
            fmt_dur(mean),
            samples.len()
        );
        self.parent.results.push(Record {
            name: full,
            min,
            median,
            mean,
        });
        self
    }

    /// End the group (no-op; present for criterion API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; accumulates measured time.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Measure one invocation of `f`.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let t0 = Instant::now();
        bb(f());
        self.elapsed += t0.elapsed();
    }

    /// Measure one invocation of `routine` on a fresh `setup()` output,
    /// excluding the setup cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        bb(routine(input));
        self.elapsed += t0.elapsed();
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundle benchmark functions into a single group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name(c: &mut $crate::bench_support::Criterion) {
            $( $f(c); )+
        }
    };
}

/// Generate `fn main()` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench_support::Criterion::default();
            $( $group(&mut c); )+
            c.summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_named_result() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3);
            g.bench_function("work", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].name, "grp/work");
        assert!(c.results[0].mean >= c.results[0].min);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        assert!(b.elapsed < Duration::from_secs(1));
    }

    #[test]
    fn fmt_dur_picks_units() {
        assert!(fmt_dur(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_dur(Duration::from_micros(5)).contains("µs"));
        assert!(fmt_dur(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_dur(Duration::from_secs(5)).ends_with(" s"));
    }
}
