//! # csmaprobe-bench
//!
//! The figure-regeneration harness: one module per data figure of the
//! paper (there are no tables), each producing a [`report::FigureReport`]
//! with the same series the paper plots plus automated qualitative
//! checks ("who wins, where the knee is"). Thin binaries under
//! `src/bin/` print the reports as TSV; `all_figures` runs everything
//! and writes `experiments.json` for `EXPERIMENTS.md`.
//!
//! Scaling: every experiment takes a `scale` factor multiplying its
//! replication counts (default 1.0; the paper used up to 25 000 NS2
//! repetitions — `scale = 10.0` gets close at proportional runtime).
//! Set via `--scale <f>` argv or the `SCALE` env var in the binaries.

pub mod figures;
pub mod report;
pub mod scenarios;

/// Parse the common `--scale`/`SCALE` and `--seed`/`SEED` knobs.
pub fn cli_options() -> (f64, u64) {
    let mut scale: f64 = std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let mut seed: u64 = std::env::var("SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC5AA_2009);
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        match args[i].as_str() {
            "--scale" => scale = args[i + 1].parse().expect("bad --scale"),
            "--seed" => seed = args[i + 1].parse().expect("bad --seed"),
            _ => {}
        }
        i += 1;
    }
    (scale.max(0.01), seed)
}

/// Scale a replication count, keeping at least `min`.
pub fn scaled(base: usize, scale: f64, min: usize) -> usize {
    ((base as f64 * scale).round() as usize).max(min)
}
