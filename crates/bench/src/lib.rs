//! # csmaprobe-bench
//!
//! The figure-regeneration harness: one module per data figure of the
//! paper (there are no tables), each producing a [`report::FigureReport`]
//! with the same series the paper plots plus automated qualitative
//! checks ("who wins, where the knee is"). Thin binaries under
//! `src/bin/` print the reports as TSV; `all_figures` runs every entry
//! of [`figures::REGISTRY`] — scheduling whole figures concurrently
//! on the shared work-stealing executor — and writes `experiments.json` for
//! `EXPERIMENTS.md`.
//!
//! Scaling: every experiment takes a `scale` factor multiplying its
//! replication counts (default 1.0; the paper used up to 25 000 NS2
//! repetitions — `scale = 10.0` gets close at proportional runtime).
//! Set via `--scale <f>` argv or the `SCALE` env var in the binaries.

pub mod bench_support;
pub mod campaign;
pub mod figures;
pub mod grid;
pub mod report;
pub mod scenarios;
pub mod tier;
pub mod trend;

/// Default master seed for every figure binary (overridable via
/// `--seed` / `SEED`).
pub const DEFAULT_SEED: u64 = 0xC5AA_2009;

/// Default replication-budget multiplier.
pub const DEFAULT_SCALE: f64 = 1.0;

/// Smallest accepted scale; anything lower is clamped so every
/// experiment still runs at least a handful of replications.
pub const MIN_SCALE: f64 = 0.01;

/// Largest accepted scale; anything higher (including `inf`) is clamped
/// so a typo can never produce an effectively unbounded replication
/// budget.
pub const MAX_SCALE: f64 = 10_000.0;

/// Common options of every figure binary.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Replication-budget multiplier (sanitised into
    /// `[MIN_SCALE, MAX_SCALE]`).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// `--list`: print the figure registry and exit (`all_figures`).
    pub list: bool,
    /// `--only fig08,fig13`: run a subset of the registry
    /// (`all_figures`); `None` means everything.
    pub only: Option<Vec<String>>,
    /// `--jobs N`: upper bound on figures executing concurrently
    /// (`all_figures`); defaults to the available parallelism. Figures
    /// are one submission to the process-wide work-stealing executor,
    /// so any value — including oversubscribed ones — only caps the
    /// submission's width; the pool itself never exceeds the
    /// `CSMAPROBE_WORKERS`/hardware concurrency ceiling.
    pub jobs: usize,
}

/// Parse the common CLI knobs: `--scale`/`SCALE`, `--seed`/`SEED`,
/// `--only`/`ONLY`, `--list`, `--jobs`.
///
/// Precedence: argv beats environment beats default. Unparseable
/// values fall back to the next source in that order (with a warning
/// on stderr) rather than aborting the run.
pub fn cli_options() -> CliOptions {
    let args: Vec<String> = std::env::args().collect();
    cli_options_from(
        &args,
        std::env::var("SCALE").ok().as_deref(),
        std::env::var("SEED").ok().as_deref(),
        std::env::var("ONLY").ok().as_deref(),
    )
}

/// Testable core of [`cli_options`]: same semantics, with argv and the
/// `SCALE`/`SEED`/`ONLY` environment values passed in explicitly.
pub fn cli_options_from(
    args: &[String],
    env_scale: Option<&str>,
    env_seed: Option<&str>,
    env_only: Option<&str>,
) -> CliOptions {
    let mut scale: f64 = parse_or("SCALE", env_scale, DEFAULT_SCALE);
    let mut seed: u64 = parse_or("SEED", env_seed, DEFAULT_SEED);
    let mut only: Option<Vec<String>> = env_only.map(parse_only);
    let mut list = false;
    let mut jobs = default_jobs();
    // The value of a `--flag value` pair; another flag is never
    // swallowed as a value.
    let value_of = |i: usize| -> Option<&str> {
        args.get(i + 1)
            .map(String::as_str)
            .filter(|v| !v.starts_with("--"))
    };
    let mut i = 1;
    while i < args.len() {
        match (args[i].as_str(), value_of(i)) {
            ("--list", _) => list = true,
            ("--scale", Some(v)) => {
                scale = parse_or("--scale", Some(v), scale);
                i += 1;
            }
            ("--seed", Some(v)) => {
                seed = parse_or("--seed", Some(v), seed);
                i += 1;
            }
            ("--only", Some(v)) => {
                only = Some(parse_only(v));
                i += 1;
            }
            ("--jobs", Some(v)) => {
                jobs = parse_or("--jobs", Some(v), jobs).max(1);
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    CliOptions {
        scale: sanitize_scale(scale),
        seed,
        list,
        only,
        jobs,
    }
}

/// Split a `fig08,fig13`-style list into trimmed, non-empty ids.
fn parse_only(s: &str) -> Vec<String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(String::from)
        .collect()
}

/// Default figure-level concurrency: the machine's parallelism.
fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parse `value` if present, warning and falling back to `fallback` on
/// a malformed string.
fn parse_or<T: std::str::FromStr + Copy>(what: &str, value: Option<&str>, fallback: T) -> T {
    match value {
        None => fallback,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("warning: ignoring unparseable {what} value {s:?}");
            fallback
        }),
    }
}

/// Force `scale` into the sane band `[MIN_SCALE, MAX_SCALE]`.
///
/// `f64::parse` happily accepts `"NaN"`, `"inf"` and negative values; a
/// raw multiply-then-`as usize` of those yields replication budgets of
/// 0 or `usize::MAX`. Anything non-finite or non-positive falls back to
/// [`MIN_SCALE`] (with a warning), finite values clamp into the band.
pub fn sanitize_scale(scale: f64) -> f64 {
    if !scale.is_finite() || scale <= 0.0 {
        eprintln!("warning: nonsensical scale {scale}; using minimum {MIN_SCALE}");
        return MIN_SCALE;
    }
    scale.clamp(MIN_SCALE, MAX_SCALE)
}

/// Scale a replication count, keeping at least `min`.
///
/// Hardened: the scale passes through [`sanitize_scale`], so NaN,
/// infinite, zero or negative scales can never produce a zero or
/// effectively unbounded replication budget.
pub fn scaled(base: usize, scale: f64, min: usize) -> usize {
    ((base as f64 * sanitize_scale(scale)).round() as usize).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        std::iter::once("all_figures")
            .chain(parts.iter().copied())
            .map(String::from)
            .collect()
    }

    fn opts(parts: &[&str], env_scale: Option<&str>, env_seed: Option<&str>) -> CliOptions {
        cli_options_from(&argv(parts), env_scale, env_seed, None)
    }

    #[test]
    fn defaults_when_nothing_is_set() {
        let o = opts(&[], None, None);
        assert_eq!(o.scale, DEFAULT_SCALE);
        assert_eq!(o.seed, DEFAULT_SEED);
        assert!(!o.list);
        assert_eq!(o.only, None);
        assert!(o.jobs >= 1);
    }

    #[test]
    fn env_overrides_defaults() {
        let o = opts(&[], Some("2.5"), Some("77"));
        assert_eq!(o.scale, 2.5);
        assert_eq!(o.seed, 77);
    }

    #[test]
    fn argv_beats_env() {
        let o = opts(
            &["--scale", "4.0", "--seed", "123"],
            Some("2.5"),
            Some("77"),
        );
        assert_eq!(o.scale, 4.0);
        assert_eq!(o.seed, 123);
    }

    #[test]
    fn argv_knobs_are_independent() {
        let o = opts(&["--seed", "9"], Some("3.0"), None);
        assert_eq!(o.scale, 3.0, "env scale survives a seed-only argv");
        assert_eq!(o.seed, 9);
    }

    #[test]
    fn bad_env_falls_back_to_default() {
        let o = opts(&[], Some("fast"), Some("0x12"));
        assert_eq!(o.scale, DEFAULT_SCALE);
        assert_eq!(o.seed, DEFAULT_SEED, "hex strings are not accepted");
    }

    #[test]
    fn bad_argv_falls_back_to_env_then_default() {
        let o = opts(&["--scale", "huge", "--seed", "-1"], Some("2.0"), None);
        assert_eq!(o.scale, 2.0, "bad argv scale falls back to env");
        assert_eq!(o.seed, DEFAULT_SEED, "negative seed falls back to default");
    }

    #[test]
    fn scale_is_clamped_to_minimum() {
        assert_eq!(opts(&["--scale", "0.0001"], None, None).scale, MIN_SCALE);
        assert_eq!(opts(&["--scale", "-3"], None, None).scale, MIN_SCALE);
    }

    #[test]
    fn nonsense_scales_are_sanitised() {
        // `"NaN"`, `"inf"` and `"-inf"` all parse as f64 — they must
        // never survive into a replication budget.
        assert_eq!(opts(&["--scale", "NaN"], None, None).scale, MIN_SCALE);
        assert_eq!(opts(&["--scale", "inf"], None, None).scale, MIN_SCALE);
        assert_eq!(opts(&["--scale", "-inf"], None, None).scale, MIN_SCALE);
        assert_eq!(opts(&["--scale", "1e99"], None, None).scale, MAX_SCALE);
        assert_eq!(opts(&[], Some("inf"), None).scale, MIN_SCALE);
    }

    #[test]
    fn trailing_flag_without_value_is_ignored() {
        let o = opts(&["--seed"], None, None);
        assert_eq!(o.scale, DEFAULT_SCALE);
        assert_eq!(o.seed, DEFAULT_SEED);
    }

    #[test]
    fn list_flag_and_jobs() {
        let o = opts(&["--list", "--jobs", "3"], None, None);
        assert!(o.list);
        assert_eq!(o.jobs, 3);
        let o = opts(&["--jobs", "0"], None, None);
        assert!(o.jobs >= 1, "jobs floor at 1");
    }

    #[test]
    fn only_parses_comma_list() {
        let o = opts(&["--only", "fig08, fig13,,"], None, None);
        assert_eq!(o.only, Some(vec!["fig08".to_string(), "fig13".to_string()]));
    }

    #[test]
    fn only_argv_beats_env() {
        let o = cli_options_from(&argv(&["--only", "fig06"]), None, None, Some("fig08"));
        assert_eq!(o.only, Some(vec!["fig06".to_string()]));
        let o = cli_options_from(&argv(&[]), None, None, Some("fig08,fig10"));
        assert_eq!(o.only, Some(vec!["fig08".to_string(), "fig10".to_string()]));
    }

    #[test]
    fn flag_value_pairs_cannot_be_swallowed() {
        // `--scale --seed 7` must not consume `--seed` as the scale's
        // value and then skip the seed.
        let o = opts(&["--scale", "--seed", "7"], None, None);
        assert_eq!(o.scale, DEFAULT_SCALE, "bad scale value falls back");
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn scaled_applies_floor() {
        assert_eq!(scaled(1000, 0.5, 10), 500);
        assert_eq!(scaled(1000, 0.001, 10), 10);
        assert_eq!(scaled(7, 1.0, 1), 7);
    }

    #[test]
    fn scaled_survives_nonsense_scales() {
        assert_eq!(scaled(1000, f64::NAN, 10), 10);
        assert_eq!(scaled(1000, -5.0, 10), 10);
        assert_eq!(scaled(1000, 0.0, 10), 10);
        // Infinity is a typo, not a request for 10⁴× budgets: it falls
        // back to the minimum instead of usize::MAX reps.
        assert_eq!(scaled(1000, f64::INFINITY, 10), 10);
        assert_eq!(scaled(1000, f64::NEG_INFINITY, 10), 10);
        // Huge-but-finite clamps to MAX_SCALE.
        assert_eq!(scaled(1000, 1e300, 10), 1000 * MAX_SCALE as usize);
    }
}
