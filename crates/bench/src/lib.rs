//! # csmaprobe-bench
//!
//! The figure-regeneration harness: one module per data figure of the
//! paper (there are no tables), each producing a [`report::FigureReport`]
//! with the same series the paper plots plus automated qualitative
//! checks ("who wins, where the knee is"). Thin binaries under
//! `src/bin/` print the reports as TSV; `all_figures` runs everything
//! and writes `experiments.json` for `EXPERIMENTS.md`.
//!
//! Scaling: every experiment takes a `scale` factor multiplying its
//! replication counts (default 1.0; the paper used up to 25 000 NS2
//! repetitions — `scale = 10.0` gets close at proportional runtime).
//! Set via `--scale <f>` argv or the `SCALE` env var in the binaries.

pub mod bench_support;
pub mod figures;
pub mod report;
pub mod scenarios;

/// Default master seed for every figure binary (overridable via
/// `--seed` / `SEED`).
pub const DEFAULT_SEED: u64 = 0xC5AA_2009;

/// Default replication-budget multiplier.
pub const DEFAULT_SCALE: f64 = 1.0;

/// Smallest accepted scale; anything lower is clamped so every
/// experiment still runs at least a handful of replications.
pub const MIN_SCALE: f64 = 0.01;

/// Parse the common `--scale`/`SCALE` and `--seed`/`SEED` knobs.
///
/// Precedence: argv beats environment beats default. Unparseable
/// values fall back to the next source in that order (with a warning
/// on stderr) rather than aborting the run.
pub fn cli_options() -> (f64, u64) {
    let args: Vec<String> = std::env::args().collect();
    cli_options_from(
        &args,
        std::env::var("SCALE").ok().as_deref(),
        std::env::var("SEED").ok().as_deref(),
    )
}

/// Testable core of [`cli_options`]: same semantics, with argv and the
/// `SCALE`/`SEED` environment values passed in explicitly.
pub fn cli_options_from(args: &[String], env_scale: Option<&str>, env_seed: Option<&str>) -> (f64, u64) {
    let mut scale: f64 = parse_or("SCALE", env_scale, DEFAULT_SCALE);
    let mut seed: u64 = parse_or("SEED", env_seed, DEFAULT_SEED);
    let mut i = 1;
    while i + 1 < args.len() {
        match args[i].as_str() {
            "--scale" => scale = parse_or("--scale", Some(&args[i + 1]), scale),
            "--seed" => seed = parse_or("--seed", Some(&args[i + 1]), seed),
            _ => {}
        }
        i += 1;
    }
    (scale.max(MIN_SCALE), seed)
}

/// Parse `value` if present, warning and falling back to `fallback` on
/// a malformed string.
fn parse_or<T: std::str::FromStr + Copy>(what: &str, value: Option<&str>, fallback: T) -> T {
    match value {
        None => fallback,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("warning: ignoring unparseable {what} value {s:?}");
            fallback
        }),
    }
}

/// Scale a replication count, keeping at least `min`.
pub fn scaled(base: usize, scale: f64, min: usize) -> usize {
    ((base as f64 * scale).round() as usize).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        std::iter::once("all_figures")
            .chain(parts.iter().copied())
            .map(String::from)
            .collect()
    }

    #[test]
    fn defaults_when_nothing_is_set() {
        let (scale, seed) = cli_options_from(&argv(&[]), None, None);
        assert_eq!(scale, DEFAULT_SCALE);
        assert_eq!(seed, DEFAULT_SEED);
    }

    #[test]
    fn env_overrides_defaults() {
        let (scale, seed) = cli_options_from(&argv(&[]), Some("2.5"), Some("77"));
        assert_eq!(scale, 2.5);
        assert_eq!(seed, 77);
    }

    #[test]
    fn argv_beats_env() {
        let args = argv(&["--scale", "4.0", "--seed", "123"]);
        let (scale, seed) = cli_options_from(&args, Some("2.5"), Some("77"));
        assert_eq!(scale, 4.0);
        assert_eq!(seed, 123);
    }

    #[test]
    fn argv_knobs_are_independent() {
        let args = argv(&["--seed", "9"]);
        let (scale, seed) = cli_options_from(&args, Some("3.0"), None);
        assert_eq!(scale, 3.0, "env scale survives a seed-only argv");
        assert_eq!(seed, 9);
    }

    #[test]
    fn bad_env_falls_back_to_default() {
        let (scale, seed) = cli_options_from(&argv(&[]), Some("fast"), Some("0x12"));
        assert_eq!(scale, DEFAULT_SCALE);
        assert_eq!(seed, DEFAULT_SEED, "hex strings are not accepted");
    }

    #[test]
    fn bad_argv_falls_back_to_env_then_default() {
        let args = argv(&["--scale", "huge", "--seed", "-1"]);
        let (scale, seed) = cli_options_from(&args, Some("2.0"), None);
        assert_eq!(scale, 2.0, "bad argv scale falls back to env");
        assert_eq!(seed, DEFAULT_SEED, "negative seed falls back to default");
    }

    #[test]
    fn scale_is_clamped_to_minimum() {
        let (scale, _) = cli_options_from(&argv(&["--scale", "0.0001"]), None, None);
        assert_eq!(scale, MIN_SCALE);
        let (scale, _) = cli_options_from(&argv(&["--scale", "-3"]), None, None);
        assert_eq!(scale, MIN_SCALE);
    }

    #[test]
    fn trailing_flag_without_value_is_ignored() {
        let (scale, seed) = cli_options_from(&argv(&["--seed"]), None, None);
        assert_eq!(scale, DEFAULT_SCALE);
        assert_eq!(seed, DEFAULT_SEED);
    }

    #[test]
    fn scaled_applies_floor() {
        assert_eq!(scaled(1000, 0.5, 10), 500);
        assert_eq!(scaled(1000, 0.001, 10), 10);
        assert_eq!(scaled(7, 1.0, 1), 7);
    }
}
