//! Canonical experiment scenarios shared by the figure modules.
//!
//! The paper's testbed: 802.11b at 11 Mb/s (Prism cards, long
//! preamble, no RTS/CTS), 1500-byte packets unless noted, Poisson
//! cross-traffic. Its headline numbers — C ≈ 6.5, A ≈ 2, B ≈ 3.4 Mb/s
//! (Fig 1) — correspond to ≈4.5 Mb/s of offered contending traffic; our
//! stock-timing DCF gives C ≈ 6.2 Mb/s, so knees land a few percent
//! lower at identical offered loads (shape-preserving; see DESIGN.md).

use csmaprobe_core::link::{LinkConfig, ProbeTarget, WlanLink};
use csmaprobe_core::sweep::SweepScenario;
use csmaprobe_desim::rng::derive_seed;
use csmaprobe_mac::measured_standalone_capacity_bps;
use csmaprobe_phy::Phy;
use csmaprobe_probe::train::{TrainAccumulator, TrainMeasurement, TrainProbe};

/// Probe/cross packet size used throughout (bytes).
pub const FRAME: u32 = 1500;

/// Per-index reservoir cap of the dense (raw-sample) experiment paths —
/// the paper's largest NS2 replication count, so nothing is decimated
/// up to `--scale 12` while memory stays bounded beyond it.
pub const DENSE_SAMPLE_CAP: usize = 25_000;

/// The Fig 1 contending load (b/s) reproducing A ≈ 2 Mb/s on the
/// paper's C ≈ 6.5 Mb/s channel.
pub const FIG1_CROSS_BPS: f64 = 4_500_000.0;

/// The paper's PHY.
pub fn phy() -> Phy {
    Phy::dsss_11mbps()
}

/// Measured stand-alone capacity C for `bytes`-byte frames (cached by
/// callers; ~1 ms to compute).
pub fn capacity_bps(bytes: u32) -> f64 {
    measured_standalone_capacity_bps(&phy(), bytes, 3000, 0xCAFE)
}

/// The Fig 1 link: probe station vs one Poisson contender at
/// [`FIG1_CROSS_BPS`].
pub fn fig1_link() -> WlanLink {
    WlanLink::new(LinkConfig::default().contending_bps(FIG1_CROSS_BPS))
}

/// The Fig 4 "complete picture" link: contending cross-traffic plus
/// FIFO cross-traffic sharing the probe station's queue.
pub fn fig4_link() -> WlanLink {
    WlanLink::new(
        LinkConfig::default()
            .contending_bps(3_000_000.0)
            .fifo_cross_bps(1_500_000.0),
    )
}

/// The Fig 6/7 transient link: contending cross-traffic at 4 Mb/s
/// (probe will offer 5 Mb/s).
pub fn fig6_link() -> WlanLink {
    WlanLink::new(LinkConfig::default().contending_bps(4_000_000.0))
}

/// The Fig 8 link: contending cross-traffic at 2 Mb/s (probe 8 Mb/s).
pub fn fig8_link() -> WlanLink {
    WlanLink::new(LinkConfig::default().contending_bps(2_000_000.0))
}

/// The Fig 9 complex link: 4 contending stations with packet sizes
/// {40, 576, 1000, 1500} B at {0.1, 0.5, 0.75, 2} Mb/s.
pub fn fig9_link() -> WlanLink {
    use csmaprobe_core::link::CrossSpec;
    WlanLink::new(
        LinkConfig::default()
            .contending(CrossSpec::poisson_sized(100_000.0, 40))
            .contending(CrossSpec::poisson_sized(500_000.0, 576))
            .contending(CrossSpec::poisson_sized(750_000.0, 1000))
            .contending(CrossSpec::poisson_sized(2_000_000.0, 1500)),
    )
}

/// One packet-train sweep cell: a [`TrainProbe`] replicated `reps`
/// times from master seed `seed` (replication `r` uses
/// `derive_seed(seed, r)` — the exact seeds
/// [`TrainProbe::measure`]`(target, reps, seed)` uses internally).
#[derive(Debug, Clone, Copy)]
pub struct TrainCell {
    /// The probe this cell replicates.
    pub probe: TrainProbe,
    /// Replication budget.
    pub reps: usize,
    /// Master seed of the cell.
    pub seed: u64,
}

/// A grid of packet-train measurements (e.g. rate × train-length, the
/// Fig 13/15 sweeps) run as one [`SweepScenario`]: every
/// `(cell × replication)` is scheduled concurrently over the shared
/// work-stealing executor, and each cell's [`TrainMeasurement`] is bit-identical
/// to a standalone [`TrainProbe::measure`] with the same
/// `(reps, seed)`.
pub struct TrainSweep<'a, T: ProbeTarget + ?Sized> {
    /// Identifier for logs.
    pub name: &'static str,
    /// The link every cell probes.
    pub target: &'a T,
    /// The measurement grid, in row order.
    pub cells: Vec<TrainCell>,
}

impl<T: ProbeTarget + ?Sized> SweepScenario for TrainSweep<'_, T> {
    type Acc = TrainAccumulator;
    type Row = TrainMeasurement;

    fn name(&self) -> &str {
        self.name
    }
    fn points(&self) -> usize {
        self.cells.len()
    }
    fn reps(&self, point: usize) -> usize {
        self.cells[point].reps
    }
    fn identity(&self, _point: usize) -> TrainAccumulator {
        TrainAccumulator::default()
    }
    fn replicate(&self, point: usize, rep: usize, acc: &mut TrainAccumulator) {
        let cell = &self.cells[point];
        cell.probe
            .sample_into(self.target, derive_seed(cell.seed, rep as u64), acc);
    }
    fn finish(&self, point: usize, acc: TrainAccumulator) -> TrainMeasurement {
        let cell = &self.cells[point];
        cell.probe.finish(cell.reps, acc)
    }
}

/// Hard cap on sweep length: a malformed `(lo, hi, step)` triple can
/// never request an effectively unbounded grid of simulations.
pub const MAX_SWEEP_POINTS: usize = 10_000;

/// Evenly spaced probing rates `lo..=hi` (Mb/s) at `step`, in bits/s.
///
/// Hardened: non-finite or non-positive `lo`/`step`, or `hi < lo`,
/// yield an **empty** sweep (with a warning) instead of a nonsense grid
/// or an unbounded loop; the point count clamps at
/// [`MAX_SWEEP_POINTS`]. Points are computed as `lo + i·step` (not
/// accumulated), so the sweep is strictly increasing and every point
/// lies in `[lo, hi + ε]` by construction.
pub fn rate_sweep_mbps(lo: f64, hi: f64, step: f64) -> Vec<f64> {
    let sane =
        lo.is_finite() && hi.is_finite() && step.is_finite() && lo > 0.0 && step > 0.0 && hi >= lo;
    if !sane {
        eprintln!("warning: nonsensical rate sweep [{lo}, {hi}] step {step}; empty sweep");
        return Vec::new();
    }
    let span = ((hi - lo) / step + 1e-9).floor();
    let n = if span >= MAX_SWEEP_POINTS as f64 {
        eprintln!(
            "warning: rate sweep [{lo}, {hi}] step {step} clamped to {MAX_SWEEP_POINTS} points"
        );
        MAX_SWEEP_POINTS
    } else {
        span as usize + 1
    };
    (0..n).map(|i| (lo + i as f64 * step) * 1e6).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_in_paper_band() {
        let c = capacity_bps(FRAME);
        assert!((5.9e6..6.6e6).contains(&c), "C = {c}");
    }

    #[test]
    fn sweep_is_inclusive() {
        let r = rate_sweep_mbps(1.0, 3.0, 1.0);
        assert_eq!(r, vec![1e6, 2e6, 3e6]);
        let r = rate_sweep_mbps(0.5, 10.0, 0.5);
        assert_eq!(r.len(), 20);
        assert_eq!(r[0], 0.5e6);
        assert_eq!(r[19], 10e6);
    }

    #[test]
    fn degenerate_sweeps_are_empty() {
        assert!(rate_sweep_mbps(1.0, 3.0, 0.0).is_empty());
        assert!(rate_sweep_mbps(1.0, 3.0, -1.0).is_empty());
        assert!(rate_sweep_mbps(1.0, 3.0, f64::NAN).is_empty());
        assert!(rate_sweep_mbps(f64::NAN, 3.0, 1.0).is_empty());
        assert!(rate_sweep_mbps(1.0, f64::INFINITY, 1.0).is_empty());
        assert!(rate_sweep_mbps(3.0, 1.0, 1.0).is_empty());
        assert!(rate_sweep_mbps(0.0, 3.0, 1.0).is_empty());
        assert!(rate_sweep_mbps(-1.0, 3.0, 1.0).is_empty());
    }

    #[test]
    fn huge_sweeps_clamp_at_max_points() {
        let r = rate_sweep_mbps(1.0, 1e9, 1e-3);
        assert_eq!(r.len(), MAX_SWEEP_POINTS);
    }

    #[test]
    fn single_point_sweep() {
        assert_eq!(rate_sweep_mbps(2.0, 2.0, 1.0), vec![2e6]);
    }

    #[test]
    fn train_sweep_cells_match_standalone_measure() {
        let link = fig8_link();
        let cells = vec![
            TrainCell {
                probe: TrainProbe::new(5, FRAME, 2e6),
                reps: 4,
                seed: 11,
            },
            TrainCell {
                probe: TrainProbe::new(8, FRAME, 6e6),
                reps: 3,
                seed: 12,
            },
        ];
        let sweep = TrainSweep {
            name: "test",
            target: &link,
            cells: cells.clone(),
        };
        let rows = csmaprobe_core::sweep::run_sweep(&sweep);
        for (cell, row) in cells.iter().zip(&rows) {
            let standalone = cell.probe.measure(&link, cell.reps, cell.seed);
            assert_eq!(
                row.mean_output_gap_s().to_bits(),
                standalone.mean_output_gap_s().to_bits()
            );
            assert_eq!(row.reps, standalone.reps);
        }
    }
}
