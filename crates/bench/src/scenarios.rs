//! Canonical experiment scenarios shared by the figure modules.
//!
//! The paper's testbed: 802.11b at 11 Mb/s (Prism cards, long
//! preamble, no RTS/CTS), 1500-byte packets unless noted, Poisson
//! cross-traffic. Its headline numbers — C ≈ 6.5, A ≈ 2, B ≈ 3.4 Mb/s
//! (Fig 1) — correspond to ≈4.5 Mb/s of offered contending traffic; our
//! stock-timing DCF gives C ≈ 6.2 Mb/s, so knees land a few percent
//! lower at identical offered loads (shape-preserving; see DESIGN.md).

use csmaprobe_core::link::{LinkConfig, WlanLink};
use csmaprobe_mac::measured_standalone_capacity_bps;
use csmaprobe_phy::Phy;

/// Probe/cross packet size used throughout (bytes).
pub const FRAME: u32 = 1500;

/// Per-index reservoir cap of the dense (raw-sample) experiment paths —
/// the paper's largest NS2 replication count, so nothing is decimated
/// up to `--scale 12` while memory stays bounded beyond it.
pub const DENSE_SAMPLE_CAP: usize = 25_000;

/// The Fig 1 contending load (b/s) reproducing A ≈ 2 Mb/s on the
/// paper's C ≈ 6.5 Mb/s channel.
pub const FIG1_CROSS_BPS: f64 = 4_500_000.0;

/// The paper's PHY.
pub fn phy() -> Phy {
    Phy::dsss_11mbps()
}

/// Measured stand-alone capacity C for `bytes`-byte frames (cached by
/// callers; ~1 ms to compute).
pub fn capacity_bps(bytes: u32) -> f64 {
    measured_standalone_capacity_bps(&phy(), bytes, 3000, 0xCAFE)
}

/// The Fig 1 link: probe station vs one Poisson contender at
/// [`FIG1_CROSS_BPS`].
pub fn fig1_link() -> WlanLink {
    WlanLink::new(LinkConfig::default().contending_bps(FIG1_CROSS_BPS))
}

/// The Fig 4 "complete picture" link: contending cross-traffic plus
/// FIFO cross-traffic sharing the probe station's queue.
pub fn fig4_link() -> WlanLink {
    WlanLink::new(
        LinkConfig::default()
            .contending_bps(3_000_000.0)
            .fifo_cross_bps(1_500_000.0),
    )
}

/// The Fig 6/7 transient link: contending cross-traffic at 4 Mb/s
/// (probe will offer 5 Mb/s).
pub fn fig6_link() -> WlanLink {
    WlanLink::new(LinkConfig::default().contending_bps(4_000_000.0))
}

/// The Fig 8 link: contending cross-traffic at 2 Mb/s (probe 8 Mb/s).
pub fn fig8_link() -> WlanLink {
    WlanLink::new(LinkConfig::default().contending_bps(2_000_000.0))
}

/// The Fig 9 complex link: 4 contending stations with packet sizes
/// {40, 576, 1000, 1500} B at {0.1, 0.5, 0.75, 2} Mb/s.
pub fn fig9_link() -> WlanLink {
    use csmaprobe_core::link::CrossSpec;
    WlanLink::new(
        LinkConfig::default()
            .contending(CrossSpec::poisson_sized(100_000.0, 40))
            .contending(CrossSpec::poisson_sized(500_000.0, 576))
            .contending(CrossSpec::poisson_sized(750_000.0, 1000))
            .contending(CrossSpec::poisson_sized(2_000_000.0, 1500)),
    )
}

/// Evenly spaced probing rates `lo..=hi` (Mb/s) at `step`.
pub fn rate_sweep_mbps(lo: f64, hi: f64, step: f64) -> Vec<f64> {
    let mut rates = Vec::new();
    let mut r = lo;
    while r <= hi + 1e-9 {
        rates.push(r * 1e6);
        r += step;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_in_paper_band() {
        let c = capacity_bps(FRAME);
        assert!((5.9e6..6.6e6).contains(&c), "C = {c}");
    }

    #[test]
    fn sweep_is_inclusive() {
        let r = rate_sweep_mbps(1.0, 3.0, 1.0);
        assert_eq!(r, vec![1e6, 2e6, 3e6]);
    }
}
