//! Regenerate the paper's fig13 data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin fig13 [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::fig13::run(opts.scale, opts.seed).print();
}
