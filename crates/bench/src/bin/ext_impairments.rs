//! Regenerate the ext_impairments experiment. Usage:
//! `cargo run --release -p csmaprobe-bench --bin ext_impairments [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::ext_impairments::run(opts.scale, opts.seed).print();
}
