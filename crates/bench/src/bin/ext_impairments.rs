//! Regenerate the ext_impairments experiment. Usage:
//! `cargo run --release -p csmaprobe-bench --bin ext_impairments [--scale F] [--seed N]`
fn main() {
    let (scale, seed) = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::ext_impairments::run(scale, seed).print();
}
