//! Regenerate the paper's tool_bias data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin tool_bias [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::tool_bias::run(opts.scale, opts.seed).print();
}
