//! Regenerate the paper's fig15 data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin fig15 [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::fig15::run(opts.scale, opts.seed).print();
}
