//! Regenerate the paper's fig06 data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin fig06 [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::fig06::run(opts.scale, opts.seed).print();
}
