//! Regenerate the cross-tool grid-bias experiment. Usage:
//! `cargo run --release -p csmaprobe-bench --bin grid_bias [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::grid_bias::run(opts.scale, opts.seed).print();
}
