//! Regenerate the paper's fig04 data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin fig04 [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::fig04::run(opts.scale, opts.seed).print();
}
