//! Regenerate the paper's fig04 data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin fig04 [--scale F] [--seed N]`
fn main() {
    let (scale, seed) = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::fig04::run(scale, seed).print();
}
