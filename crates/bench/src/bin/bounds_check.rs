//! Regenerate the paper's bounds_check data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin bounds_check [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::bounds_check::run(opts.scale, opts.seed).print();
}
