//! Regenerate the paper's fig10 data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin fig10 [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::fig10::run(opts.scale, opts.seed).print();
}
