//! Regenerate the ablation_access experiment. Usage:
//! `cargo run --release -p csmaprobe-bench --bin ablation_access [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::ablation_access::run(opts.scale, opts.seed).print();
}
