//! Regenerate the paper's fig07 data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin fig07 [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::fig07::run(opts.scale, opts.seed).print();
}
