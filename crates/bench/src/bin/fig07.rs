//! Regenerate the paper's fig07 data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin fig07 [--scale F] [--seed N]`
fn main() {
    let (scale, seed) = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::fig07::run(scale, seed).print();
}
