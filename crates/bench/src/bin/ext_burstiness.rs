//! Regenerate the ext_burstiness experiment. Usage:
//! `cargo run --release -p csmaprobe-bench --bin ext_burstiness [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::ext_burstiness::run(opts.scale, opts.seed).print();
}
