//! The scenario **grid runner**: sweep the link × train × tool product
//! space in one invocation, persisting each finished cell incrementally
//! so huge grids never materialise in memory and an interrupted run
//! resumes where it stopped.
//!
//! Usage:
//! `cargo run --release -p csmaprobe-bench --bin grid --
//!    [--links wired,wlan_low,wlan_mid] [--trains short,mid,long]
//!    [--tools train,slops] [--scale F] [--seed N] [--jobs N]
//!    [--out grid_rows.jsonl] [--table grid.json] [--resume]
//!    [--shard I/N] [--manifest campaign.json] [--merge]
//!    [--max-cells K] [--list]`
//!
//! `--links` and `--trains` accept **inline specs** alongside catalog
//! names: `--links wlan:cross=6e6,fifo=1e6,wired` composes a custom
//! CSMA/CA link into the axis, `--trains short,n=50` a custom train
//! length. Inline points get canonical parameter-spelling names that
//! fold into every row's run-config fingerprint, so `--resume` rejects
//! a file produced by a different spec exactly as it rejects a changed
//! axis selection.
//!
//! Rows stream into `--out` as append-only JSONL (one line per cell,
//! flushed as the cell completes; see `report::RowSink`). With
//! `--resume`, already-persisted cells are skipped and a torn tail line
//! (from a kill mid-write) is truncated away — by the engine's
//! cell-local chunk-grid contract the re-run produces rows
//! **bit-identical** to what an uninterrupted run would have written,
//! so interrupted-plus-resumed and uninterrupted runs end with the same
//! row set. The finalize step assembles the rows (sorted by cell, so
//! completion order never shows) into the `--table` JSON array.
//!
//! # Sharded campaigns
//!
//! `--shard I/N` restricts this process to one shard of the campaign:
//! the cells at positions `I, I+N, I+2N, …` of the **name-keyed** cell
//! order (so membership never depends on axis selection order). Each
//! shard persists to its own `--out` file and records itself in the
//! campaign manifest (`--manifest`, default `campaign.json`): shard →
//! host fingerprint → row counts → session history. Every row carries a
//! shard-folded fingerprint, so `--resume` refuses a row file written
//! under a different `--shard` spec. When all shards are complete,
//! `grid --merge --manifest campaign.json --table grid.json` reads the
//! shard files **read-only**, verifies one campaign fingerprint and
//! pairwise-disjoint coverage, and assembles the byte-identical table
//! the unsharded run would have produced.
//!
//! `--max-cells K` stops after K cells (exit code 3, "interrupted by
//! budget") — a deterministic interruption for the CI resume proof.
//! Exit codes: 0 done, 2 usage/configuration error, 3 interrupted
//! (cells or shards still pending).

use csmaprobe_bench::campaign::CampaignManifest;
use csmaprobe_bench::grid::{parse_links, parse_tools, parse_trains, BiasGrid, GridRow};
use csmaprobe_bench::report::{row_cell, RowSink};
use csmaprobe_bench::trend::host_fingerprint;
use csmaprobe_core::grid::{shard_members, GridRunner, GridScenario, ShardSpec};
use csmaprobe_desim::replicate;

const DEFAULT_LINKS: &str = "wired,wlan_low,wlan_mid";
const DEFAULT_TRAINS: &str = "short,mid,long";
const DEFAULT_TOOLS: &str = "train,slops";
const DEFAULT_MANIFEST: &str = "campaign.json";

struct Options {
    links: String,
    trains: String,
    tools: String,
    scale: f64,
    seed: u64,
    jobs: usize,
    out: String,
    table: String,
    resume: bool,
    max_cells: usize,
    list: bool,
    shard: ShardSpec,
    manifest: String,
    /// `--manifest` was given explicitly (solo runs then also record).
    manifest_set: bool,
    merge: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: grid [--links a,b] [--trains a,b] [--tools a,b] [--scale F] [--seed N] \
         [--jobs N] [--out rows.jsonl] [--table grid.json] [--resume] [--shard I/N] \
         [--manifest campaign.json] [--merge] [--max-cells K] [--list]\n\
         inline axis specs: --links wlan:cross=<bps>,fifo=<bps> | \
         wired:capacity=<bps>,cross=<bps>; --trains n=<packets>\n\
         sharding: --shard I/N runs one shard of the campaign into its own --out; \
         --merge assembles the finished campaign from the --manifest record"
    );
    std::process::exit(2);
}

/// A malformed flag value: name the problem, then the usage text.
fn usage_error(msg: String) -> ! {
    eprintln!("error: {msg}");
    usage();
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().collect();
    let mut o = Options {
        links: DEFAULT_LINKS.to_string(),
        trains: DEFAULT_TRAINS.to_string(),
        tools: DEFAULT_TOOLS.to_string(),
        scale: csmaprobe_bench::DEFAULT_SCALE,
        seed: csmaprobe_bench::DEFAULT_SEED,
        jobs: 0,
        out: "grid_rows.jsonl".to_string(),
        table: "grid.json".to_string(),
        resume: false,
        max_cells: usize::MAX,
        list: false,
        shard: ShardSpec::solo(),
        manifest: DEFAULT_MANIFEST.to_string(),
        manifest_set: false,
        merge: false,
    };
    let mut i = 1;
    while i < args.len() {
        let value = || -> String { args.get(i + 1).cloned().unwrap_or_else(|| usage()) };
        match args[i].as_str() {
            "--links" => {
                o.links = value();
                i += 1;
            }
            "--trains" => {
                o.trains = value();
                i += 1;
            }
            "--tools" => {
                o.tools = value();
                i += 1;
            }
            "--scale" => {
                o.scale = value().parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--seed" => {
                o.seed = value().parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--jobs" => {
                o.jobs = value().parse().unwrap_or_else(|_| usage());
                if o.jobs == 0 {
                    usage_error("--jobs must be at least 1".to_string());
                }
                i += 1;
            }
            "--out" => {
                o.out = value();
                i += 1;
            }
            "--table" => {
                o.table = value();
                i += 1;
            }
            "--max-cells" => {
                o.max_cells = value().parse().unwrap_or_else(|_| usage());
                if o.max_cells == 0 {
                    // A zero budget used to be accepted as a silent
                    // no-op run that still exited 3 ("interrupted") —
                    // make the contradiction explicit instead.
                    usage_error(
                        "--max-cells 0 would run nothing and exit as interrupted; \
                         give a positive budget (or omit the flag)"
                            .to_string(),
                    );
                }
                i += 1;
            }
            "--shard" => {
                o.shard = ShardSpec::parse(&value()).unwrap_or_else(|e| usage_error(e));
                i += 1;
            }
            "--manifest" => {
                o.manifest = value();
                o.manifest_set = true;
                i += 1;
            }
            "--merge" => o.merge = true,
            "--resume" => o.resume = true,
            "--list" => o.list = true,
            _ => usage(),
        }
        i += 1;
    }
    o.scale = csmaprobe_bench::sanitize_scale(o.scale);
    o
}

fn fail(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Print cell-sorted rows as the human-readable TSV table.
fn print_tsv(rows: &[String]) {
    println!("link\ttrain\ttool\ttier\test_mbps\tci95_mbps\ttrue_A_mbps\treps\tfailed");
    for line in rows {
        // Rows are our own serialisation; a light scan prints the TSV.
        let field = |name: &str| -> String {
            let pat = format!("\"{name}\":");
            line.find(&pat)
                .map(|at| {
                    let rest = &line[at + pat.len()..];
                    // Quoted values (inline-spec names contain commas)
                    // end at the closing quote, bare ones at , or }.
                    if let Some(quoted) = rest.strip_prefix('"') {
                        let end = quoted.find('"').unwrap_or(quoted.len());
                        quoted[..end].to_string()
                    } else {
                        let end = rest.find([',', '}']).unwrap_or(rest.len());
                        rest[..end].to_string()
                    }
                })
                .unwrap_or_default()
        };
        let mbps = |name: &str| -> String {
            field(name)
                .parse::<f64>()
                .map(|v| format!("{:.3}", v / 1e6))
                .unwrap_or_else(|_| "nan".to_string())
        };
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            field("link"),
            field("train"),
            field("tool"),
            field("tier"),
            mbps("mean_bps"),
            mbps("ci95_bps"),
            mbps("available_bps"),
            field("reps"),
            field("failed"),
        );
    }
}

/// `--merge`: assemble the finished campaign recorded in the manifest.
/// Manifest-driven — axis flags are not consulted; the shard files are
/// opened strictly read-only.
fn merge(opts: &Options) -> ! {
    let manifest = CampaignManifest::load(&opts.manifest)
        .unwrap_or_else(|e| fail(e))
        .unwrap_or_else(|| {
            fail(format!(
                "no campaign manifest at {}; run the shards with --shard I/N first",
                opts.manifest
            ))
        });
    if !manifest.complete() {
        eprintln!(
            "campaign {:016x} is not complete ({} of {} shard(s) recorded):",
            manifest.run,
            manifest.entries.len(),
            manifest.shards
        );
        for e in &manifest.entries {
            eprintln!(
                "  shard {}/{}: {}/{} row(s) in {} (last host {})",
                e.index, manifest.shards, e.rows, e.cells, e.out, e.host
            );
        }
        std::process::exit(3);
    }

    // Pre-merge audit against the manifest: row counts and the campaign
    // fingerprint, via the same read-only loader the merge itself uses.
    let mut rows: Vec<String> = Vec::new();
    for entry in &manifest.entries {
        let file = RowSink::load(&entry.out)
            .unwrap_or_else(|e| fail(format!("cannot read shard file {}: {e}", entry.out)));
        if file.len() != entry.rows {
            fail(format!(
                "{} holds {} complete row(s) but the manifest records {}; \
                 re-run that shard with --resume",
                entry.out,
                file.len(),
                entry.rows
            ));
        }
        for line in file.rows() {
            if GridRow::run_of(line) != Some(manifest.run) {
                fail(format!(
                    "{} carries a row from a different campaign than the manifest \
                     records ({:016x})",
                    entry.out, manifest.run
                ));
            }
            rows.push(line.clone());
        }
    }

    let outs = manifest.outs();
    let table = RowSink::finalize_merged(&outs).unwrap_or_else(|e| fail(format!("merge: {e}")));
    std::fs::write(&opts.table, &table)
        .unwrap_or_else(|e| fail(format!("cannot write {}: {e}", opts.table)));
    rows.sort_by_key(|l| row_cell(l).unwrap_or(u64::MAX));
    print_tsv(&rows);
    eprintln!(
        "== campaign {:016x}: {} shard(s), {} cell(s) merged into {} ==",
        manifest.run,
        manifest.shards,
        rows.len(),
        opts.table,
    );
    std::process::exit(0);
}

/// `--list`: the catalogs, then the cell space with each cell's shard
/// assignment and persistence status — the partition audit. Reads the
/// `--out` file (if any) strictly read-only.
fn list(grid: &BiasGrid, opts: &Options) -> ! {
    println!("links:");
    for l in csmaprobe_bench::grid::LINKS {
        println!("  {:<10} {}", l.name, l.title);
    }
    println!("trains:");
    for t in csmaprobe_bench::grid::TRAINS {
        println!("  {:<10} {} packets", t.name, t.n);
    }
    println!("tools:");
    for t in csmaprobe_probe::tool::ToolKind::ALL {
        println!("  {}", t.name());
    }
    println!(
        "inline specs: --links wlan:cross=<bps>,fifo=<bps> | \
         wired:capacity=<bps>,cross=<bps>; --trains n=<packets>"
    );

    let total = grid.shape().len();
    let count = opts.shard.count;
    // Owning shard of every flat cell, from the same name-keyed
    // round-robin the runner schedules by.
    let mut owner = vec![0usize; total];
    for index in 0..count {
        for flat in shard_members(total, ShardSpec { index, count }, |f| grid.key_of(f)) {
            owner[flat] = index;
        }
    }
    let persisted = match RowSink::load(&opts.out) {
        Ok(file) => (0..total).map(|f| file.contains(&grid.key_of(f))).collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => vec![false; total],
        Err(e) => fail(format!("cannot read {}: {e}", opts.out)),
    };
    println!(
        "cells: {total} total; this process is shard {} ({} cell(s) owned)",
        opts.shard,
        grid.shard_cells().len()
    );
    println!("cell\tshard\tstatus\tkey");
    for flat in 0..total {
        let status = if owner[flat] != opts.shard.index {
            "other"
        } else if persisted[flat] {
            "done"
        } else {
            "pending"
        };
        println!(
            "{flat}\t{}/{}\t{status}\t{}",
            owner[flat],
            count,
            grid.key_of(flat)
        );
    }
    std::process::exit(0);
}

fn main() {
    let opts = parse_options();

    if opts.merge {
        merge(&opts);
    }

    let links = parse_links(&opts.links).unwrap_or_else(|e| fail(e));
    let trains = parse_trains(&opts.trains).unwrap_or_else(|e| fail(e));
    let tools = parse_tools(&opts.tools).unwrap_or_else(|e| fail(e));

    if opts.jobs > 0 {
        replicate::set_worker_limit(opts.jobs);
    }

    let grid = BiasGrid::new(links, trains, tools, opts.scale, opts.seed).with_shard(opts.shard);
    let total = grid.shape().len();

    if opts.list {
        list(&grid, &opts);
    }

    let owned = grid.shard_cells();

    let mut sink = if opts.resume {
        RowSink::resume(&opts.out)
    } else {
        RowSink::create(&opts.out)
    }
    .unwrap_or_else(|e| fail(format!("cannot open {}: {e}", opts.out)));

    // A resumed file must come from this exact grid configuration AND
    // this exact shard spec: every persisted row must carry this run's
    // fingerprint (axes, order, scale, seed, engine policy), this
    // shard's token, and a key this shard owns. Anything else would
    // silently mix statistical populations — or shard coverages — in
    // the final table.
    if opts.resume && !sink.is_empty() {
        let expected: std::collections::BTreeSet<String> =
            owned.iter().map(|&f| grid.key_of(f)).collect();
        let fingerprint = grid.fingerprint();
        let shard_token = grid.shard_token();
        let rows = sink
            .read_rows()
            .unwrap_or_else(|e| fail(format!("reading {}: {e}", opts.out)));
        for line in &rows {
            let key = csmaprobe_bench::report::row_key(line).unwrap_or("?");
            if GridRow::run_of(line) != Some(fingerprint) {
                fail(format!(
                    "{} row {key} was produced by a different grid configuration \
                     (axes/order, --scale, --seed, or the engine policy differ); \
                     delete the file or re-run with the original options",
                    opts.out
                ));
            }
            if GridRow::shard_of(line) != Some(shard_token.as_str()) {
                fail(format!(
                    "{} row {key} was produced under a different --shard spec than {} \
                     (its shard fingerprint differs); each shard keeps its own row \
                     file — delete the file or re-run with the original --shard",
                    opts.out,
                    grid.shard()
                ));
            }
            if !expected.contains(key) {
                fail(format!(
                    "{} row {key} is not a cell this shard owns; delete the file or \
                     re-run with the original axis selection",
                    opts.out
                ));
            }
        }
    }

    // Schedule exactly the owned cells whose rows are not yet persisted.
    let pending: Vec<usize> = owned
        .iter()
        .copied()
        .filter(|&f| !sink.contains(&grid.key_of(f)))
        .collect();
    let skipped = owned.len() - pending.len();
    let budgeted: &[usize] = &pending[..pending.len().min(opts.max_cells)];
    eprintln!(
        "grid: {total} cell(s) ({} links x {} trains x {} tools) at scale {}; \
         shard {} owns {}; {skipped} already persisted, running {}{}",
        grid.axes().0.len(),
        grid.axes().1.len(),
        grid.axes().2.len(),
        opts.scale,
        grid.shard(),
        owned.len(),
        budgeted.len(),
        if budgeted.len() < pending.len() {
            format!(" (of {} pending, --max-cells)", pending.len())
        } else {
            String::new()
        },
    );

    let t0 = std::time::Instant::now();
    let mut done = 0usize;
    let mut io_error: Option<std::io::Error> = None;
    GridRunner::new().run_cells_with(&grid, budgeted, |flat, row: GridRow| {
        if io_error.is_some() {
            return;
        }
        if let Err(e) = sink.append(&row.to_json()) {
            io_error = Some(e);
            return;
        }
        done += 1;
        eprintln!(
            "[{}/{}] cell {flat} {}: {:.2} Mb/s (A {:.2}, {} rep(s), {} failed)",
            skipped + done,
            owned.len(),
            row.key(),
            row.mean_bps / 1e6,
            row.available_bps / 1e6,
            row.reps,
            row.failed,
        );
    });
    if let Some(e) = io_error {
        fail(format!("writing {}: {e}", opts.out));
    }

    // Record this session in the campaign manifest: always for sharded
    // runs, and for solo runs when --manifest was given explicitly.
    if !grid.shard().is_solo() || opts.manifest_set {
        let mut manifest = CampaignManifest::load(&opts.manifest)
            .unwrap_or_else(|e| fail(e))
            .unwrap_or_else(|| {
                CampaignManifest::new(grid.fingerprint(), grid.shard().count, total)
            });
        if manifest.run != grid.fingerprint() {
            fail(format!(
                "{} records campaign {:016x} but this run is {:016x} (axes, --scale, \
                 --seed, engine policy or shard count differ); use another --manifest \
                 or delete it",
                opts.manifest,
                manifest.run,
                grid.fingerprint()
            ));
        }
        if manifest.shards != grid.shard().count || manifest.cells != total {
            fail(format!(
                "{} records a {}-shard, {}-cell campaign but this run is {}-shard, \
                 {}-cell; use another --manifest or delete it",
                opts.manifest,
                manifest.shards,
                manifest.cells,
                grid.shard().count,
                total
            ));
        }
        manifest
            .record_session(
                grid.shard().index,
                &opts.out,
                &host_fingerprint(),
                owned.len(),
                sink.len(),
            )
            .unwrap_or_else(|e| fail(format!("{}: {e}", opts.manifest)));
        manifest
            .save(&opts.manifest)
            .unwrap_or_else(|e| fail(format!("cannot write {}: {e}", opts.manifest)));
    }

    if sink.len() < owned.len() {
        eprintln!(
            "== {done} cell(s) persisted in {:.1}s; {} still pending — re-run with --resume ==",
            t0.elapsed().as_secs_f64(),
            owned.len() - sink.len(),
        );
        std::process::exit(3);
    }

    if !grid.shard().is_solo() {
        eprintln!(
            "== shard {} complete: {} cell(s) in {}; recorded in {}; when every shard \
             is done, assemble with: grid --merge --manifest {} --table {} ({:.1}s) ==",
            grid.shard(),
            owned.len(),
            opts.out,
            opts.manifest,
            opts.manifest,
            opts.table,
            t0.elapsed().as_secs_f64(),
        );
        return;
    }

    let table = sink
        .finalize()
        .unwrap_or_else(|e| fail(format!("finalize: {e}")));
    std::fs::write(&opts.table, &table)
        .unwrap_or_else(|e| fail(format!("cannot write {}: {e}", opts.table)));
    let mut rows = sink
        .read_rows()
        .unwrap_or_else(|e| fail(format!("read rows: {e}")));
    rows.sort_by_key(|l| row_cell(l).unwrap_or(u64::MAX));
    print_tsv(&rows);
    eprintln!(
        "== {done} cell(s) run, {} persisted in {}; table {} written ({:.1}s) ==",
        total,
        opts.out,
        opts.table,
        t0.elapsed().as_secs_f64(),
    );
}
