//! The scenario **grid runner**: sweep the link × train × tool product
//! space in one invocation, persisting each finished cell incrementally
//! so huge grids never materialise in memory and an interrupted run
//! resumes where it stopped.
//!
//! Usage:
//! `cargo run --release -p csmaprobe-bench --bin grid --
//!    [--links wired,wlan_low,wlan_mid] [--trains short,mid,long]
//!    [--tools train,slops] [--scale F] [--seed N] [--jobs N]
//!    [--out grid_rows.jsonl] [--table grid.json] [--resume]
//!    [--max-cells K] [--list]`
//!
//! `--links` and `--trains` accept **inline specs** alongside catalog
//! names: `--links wlan:cross=6e6,fifo=1e6,wired` composes a custom
//! CSMA/CA link into the axis, `--trains short,n=50` a custom train
//! length. Inline points get canonical parameter-spelling names that
//! fold into every row's run-config fingerprint, so `--resume` rejects
//! a file produced by a different spec exactly as it rejects a changed
//! axis selection.
//!
//! Rows stream into `--out` as append-only JSONL (one line per cell,
//! flushed as the cell completes; see `report::RowSink`). With
//! `--resume`, already-persisted cells are skipped and a torn tail line
//! (from a kill mid-write) is truncated away — by the engine's
//! cell-local chunk-grid contract the re-run produces rows
//! **bit-identical** to what an uninterrupted run would have written,
//! so interrupted-plus-resumed and uninterrupted runs end with the same
//! row set. The finalize step assembles the rows (sorted by cell, so
//! completion order never shows) into the `--table` JSON array.
//!
//! `--max-cells K` stops after K cells (exit code 3, "interrupted by
//! budget") — a deterministic interruption for the CI resume proof.

use csmaprobe_bench::grid::{parse_links, parse_tools, parse_trains, BiasGrid, GridRow};
use csmaprobe_bench::report::RowSink;
use csmaprobe_core::grid::{GridRunner, GridScenario};
use csmaprobe_desim::replicate;

const DEFAULT_LINKS: &str = "wired,wlan_low,wlan_mid";
const DEFAULT_TRAINS: &str = "short,mid,long";
const DEFAULT_TOOLS: &str = "train,slops";

struct Options {
    links: String,
    trains: String,
    tools: String,
    scale: f64,
    seed: u64,
    jobs: usize,
    out: String,
    table: String,
    resume: bool,
    max_cells: usize,
    list: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: grid [--links a,b] [--trains a,b] [--tools a,b] [--scale F] [--seed N] \
         [--jobs N] [--out rows.jsonl] [--table grid.json] [--resume] [--max-cells K] [--list]\n\
         inline axis specs: --links wlan:cross=<bps>,fifo=<bps> | \
         wired:capacity=<bps>,cross=<bps>; --trains n=<packets>"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().collect();
    let mut o = Options {
        links: DEFAULT_LINKS.to_string(),
        trains: DEFAULT_TRAINS.to_string(),
        tools: DEFAULT_TOOLS.to_string(),
        scale: csmaprobe_bench::DEFAULT_SCALE,
        seed: csmaprobe_bench::DEFAULT_SEED,
        jobs: 0,
        out: "grid_rows.jsonl".to_string(),
        table: "grid.json".to_string(),
        resume: false,
        max_cells: usize::MAX,
        list: false,
    };
    let mut i = 1;
    while i < args.len() {
        let value = || -> String { args.get(i + 1).cloned().unwrap_or_else(|| usage()) };
        match args[i].as_str() {
            "--links" => {
                o.links = value();
                i += 1;
            }
            "--trains" => {
                o.trains = value();
                i += 1;
            }
            "--tools" => {
                o.tools = value();
                i += 1;
            }
            "--scale" => {
                o.scale = value().parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--seed" => {
                o.seed = value().parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--jobs" => {
                o.jobs = value().parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--out" => {
                o.out = value();
                i += 1;
            }
            "--table" => {
                o.table = value();
                i += 1;
            }
            "--max-cells" => {
                o.max_cells = value().parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--resume" => o.resume = true,
            "--list" => o.list = true,
            _ => usage(),
        }
        i += 1;
    }
    o.scale = csmaprobe_bench::sanitize_scale(o.scale);
    o
}

fn main() {
    let opts = parse_options();

    if opts.list {
        println!("links:");
        for l in csmaprobe_bench::grid::LINKS {
            println!("  {:<10} {}", l.name, l.title);
        }
        println!("trains:");
        for t in csmaprobe_bench::grid::TRAINS {
            println!("  {:<10} {} packets", t.name, t.n);
        }
        println!("tools:");
        for t in csmaprobe_probe::tool::ToolKind::ALL {
            println!("  {}", t.name());
        }
        println!(
            "inline specs: --links wlan:cross=<bps>,fifo=<bps> | \
             wired:capacity=<bps>,cross=<bps>; --trains n=<packets>"
        );
        return;
    }

    let fail = |msg: String| -> ! {
        eprintln!("error: {msg}");
        std::process::exit(2);
    };
    let links = parse_links(&opts.links).unwrap_or_else(|e| fail(e));
    let trains = parse_trains(&opts.trains).unwrap_or_else(|e| fail(e));
    let tools = parse_tools(&opts.tools).unwrap_or_else(|e| fail(e));

    if opts.jobs > 0 {
        replicate::set_worker_limit(opts.jobs);
    }

    let grid = BiasGrid::new(links, trains, tools, opts.scale, opts.seed);
    let total = grid.shape().len();

    let mut sink = if opts.resume {
        RowSink::resume(&opts.out)
    } else {
        RowSink::create(&opts.out)
    }
    .unwrap_or_else(|e| fail(format!("cannot open {}: {e}", opts.out)));

    // A resumed file must come from this exact grid configuration:
    // every persisted row must carry this run's fingerprint (axes,
    // order, scale, seed) and a key this grid will produce. Anything
    // else would silently mix statistical populations in the table.
    if opts.resume && !sink.is_empty() {
        let expected: std::collections::BTreeSet<String> =
            (0..total).map(|f| grid.key_of(f)).collect();
        let fingerprint = grid.fingerprint();
        let rows = sink
            .read_rows()
            .unwrap_or_else(|e| fail(format!("reading {}: {e}", opts.out)));
        for line in &rows {
            let key = csmaprobe_bench::report::row_key(line).unwrap_or("?");
            if GridRow::run_of(line) != Some(fingerprint) {
                fail(format!(
                    "{} row {key} was produced by a different grid configuration \
                     (axes/order, --scale, --seed, or the engine policy differ); \
                     delete the file or re-run with the original options",
                    opts.out
                ));
            }
            if !expected.contains(key) {
                fail(format!(
                    "{} row {key} is not a cell of this grid; delete the file or \
                     re-run with the original axis selection",
                    opts.out
                ));
            }
        }
    }

    // Schedule exactly the cells whose rows are not yet persisted.
    let pending: Vec<usize> = (0..total)
        .filter(|&f| !sink.contains(&grid.key_of(f)))
        .collect();
    let skipped = total - pending.len();
    let budgeted: &[usize] = &pending[..pending.len().min(opts.max_cells)];
    eprintln!(
        "grid: {total} cell(s) ({} links x {} trains x {} tools) at scale {}; \
         {skipped} already persisted, running {}{}",
        grid.axes().0.len(),
        grid.axes().1.len(),
        grid.axes().2.len(),
        opts.scale,
        budgeted.len(),
        if budgeted.len() < pending.len() {
            format!(" (of {} pending, --max-cells)", pending.len())
        } else {
            String::new()
        },
    );

    let t0 = std::time::Instant::now();
    let mut done = 0usize;
    let mut io_error: Option<std::io::Error> = None;
    GridRunner::new().run_cells_with(&grid, budgeted, |flat, row: GridRow| {
        if io_error.is_some() {
            return;
        }
        if let Err(e) = sink.append(&row.to_json()) {
            io_error = Some(e);
            return;
        }
        done += 1;
        eprintln!(
            "[{}/{}] cell {flat} {}: {:.2} Mb/s (A {:.2}, {} rep(s), {} failed)",
            skipped + done,
            total,
            row.key(),
            row.mean_bps / 1e6,
            row.available_bps / 1e6,
            row.reps,
            row.failed,
        );
    });
    if let Some(e) = io_error {
        fail(format!("writing {}: {e}", opts.out));
    }

    if sink.len() < total {
        eprintln!(
            "== {done} cell(s) persisted in {:.1}s; {} still pending — re-run with --resume ==",
            t0.elapsed().as_secs_f64(),
            total - sink.len(),
        );
        std::process::exit(3);
    }

    let table = sink
        .finalize()
        .unwrap_or_else(|e| fail(format!("finalize: {e}")));
    std::fs::write(&opts.table, &table)
        .unwrap_or_else(|e| fail(format!("cannot write {}: {e}", opts.table)));
    println!("link\ttrain\ttool\ttier\test_mbps\tci95_mbps\ttrue_A_mbps\treps\tfailed");
    let mut rows = sink
        .read_rows()
        .unwrap_or_else(|e| fail(format!("read rows: {e}")));
    rows.sort_by_key(|l| csmaprobe_bench::report::row_cell(l).unwrap_or(u64::MAX));
    for line in &rows {
        // Rows are our own serialisation; a light scan prints the TSV.
        let field = |name: &str| -> String {
            let pat = format!("\"{name}\":");
            line.find(&pat)
                .map(|at| {
                    let rest = &line[at + pat.len()..];
                    // Quoted values (inline-spec names contain commas)
                    // end at the closing quote, bare ones at , or }.
                    if let Some(quoted) = rest.strip_prefix('"') {
                        let end = quoted.find('"').unwrap_or(quoted.len());
                        quoted[..end].to_string()
                    } else {
                        let end = rest.find([',', '}']).unwrap_or(rest.len());
                        rest[..end].to_string()
                    }
                })
                .unwrap_or_default()
        };
        let mbps = |name: &str| -> String {
            field(name)
                .parse::<f64>()
                .map(|v| format!("{:.3}", v / 1e6))
                .unwrap_or_else(|_| "nan".to_string())
        };
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            field("link"),
            field("train"),
            field("tool"),
            field("tier"),
            mbps("mean_bps"),
            mbps("ci95_bps"),
            mbps("available_bps"),
            field("reps"),
            field("failed"),
        );
    }
    eprintln!(
        "== {done} cell(s) run, {total} persisted in {}; table {} written ({:.1}s) ==",
        opts.out,
        opts.table,
        t0.elapsed().as_secs_f64(),
    );
}
