//! Regenerate the paper's fig01 data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin fig01 [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::fig01::run(opts.scale, opts.seed).print();
}
