//! Regenerate the paper's fig08 data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin fig08 [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::fig08::run(opts.scale, opts.seed).print();
}
