//! Regenerate the paper's fig09 data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin fig09 [--scale F] [--seed N]`
fn main() {
    let (scale, seed) = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::fig09::run(scale, seed).print();
}
