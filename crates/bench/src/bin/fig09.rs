//! Regenerate the paper's fig09 data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin fig09 [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::fig09::run(opts.scale, opts.seed).print();
}
