//! Compare per-figure `elapsed_s` timings of an `experiments.json`
//! against a checked-in baseline and **warn** (never fail) on
//! regressions — the BENCH_* trend check of the `figures-smoke` CI job.
//!
//! Usage: `bench_trend <current.json> <baseline.json> [--factor F]`
//!
//! * figures slower than `F ×` baseline (default 2.0) produce a
//!   `::warning::` line (rendered as an annotation by GitHub Actions);
//! * figures missing from either file are reported informationally;
//! * exit code is 0 unless the inputs are unreadable/empty (exit 2) —
//!   timing noise on shared CI runners must not gate merges.
//!
//! The baseline (`BENCH_baseline.json`) is a full `experiments.json`
//! from a scale-0.05 run; refresh it with:
//!
//! ```text
//! cargo run --release -p csmaprobe-bench --bin all_figures -- --scale 0.05
//! cp experiments.json BENCH_baseline.json
//! ```

use csmaprobe_bench::report::parse_figure_timings;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut paths = Vec::new();
    let mut factor = 2.0f64;
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--factor" {
            match args.get(i + 1).map(|s| s.parse::<f64>()) {
                Some(Ok(v)) => {
                    factor = v;
                    i += 1;
                }
                bad => {
                    eprintln!("error: --factor needs a numeric value, got {bad:?}");
                    std::process::exit(2);
                }
            }
        } else {
            paths.push(args[i].clone());
        }
        i += 1;
    }
    if paths.len() != 2 || !factor.is_finite() || factor <= 1.0 {
        eprintln!("usage: bench_trend <current.json> <baseline.json> [--factor F>1]");
        std::process::exit(2);
    }

    let read = |p: &str| -> Vec<(String, f64)> {
        match std::fs::read_to_string(p) {
            Ok(text) => parse_figure_timings(&text),
            Err(e) => {
                eprintln!("error: cannot read {p}: {e}");
                std::process::exit(2);
            }
        }
    };
    let current = read(&paths[0]);
    let baseline = read(&paths[1]);
    if current.is_empty() || baseline.is_empty() {
        eprintln!(
            "error: no timings parsed ({} current, {} baseline entries)",
            current.len(),
            baseline.len()
        );
        std::process::exit(2);
    }

    let base_of = |id: &str| baseline.iter().find(|(b, _)| b == id).map(|&(_, t)| t);
    let mut regressions = 0usize;
    let mut total_cur = 0.0f64;
    let mut total_base = 0.0f64;
    for (id, cur) in &current {
        match base_of(id) {
            None => println!("{id}: no baseline entry (new figure?) — {cur:.2}s"),
            Some(base) => {
                total_cur += cur;
                total_base += base;
                let ratio = if base > 0.0 { cur / base } else { f64::INFINITY };
                if *cur > 0.1 && ratio > factor {
                    regressions += 1;
                    println!(
                        "::warning title=figure timing regression::{id}: {cur:.2}s vs \
                         baseline {base:.2}s ({ratio:.1}x, threshold {factor:.1}x)"
                    );
                } else {
                    println!("{id}: {cur:.2}s vs baseline {base:.2}s ({ratio:.2}x)");
                }
            }
        }
    }
    for (id, _) in &baseline {
        if !current.iter().any(|(c, _)| c == id) {
            println!("{id}: in baseline but not in current run");
        }
    }
    println!(
        "== total {total_cur:.2}s vs baseline {total_base:.2}s; \
         {regressions} figure(s) over the {factor:.1}x threshold =="
    );
    // Advisory by design: timing noise must not gate merges.
}
