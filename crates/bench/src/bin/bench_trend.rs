//! Per-figure `elapsed_s` trend check — the BENCH_* perf-trajectory
//! gate of the `figures-smoke` CI job. **Warn-only by design**: timing
//! noise on shared CI runners must not gate merges.
//!
//! Two modes:
//!
//! * **Trajectory** (what CI runs):
//!   `bench_trend <current.json> --history BENCH_history.jsonl
//!    [--window N] [--k K] [--label L] [--parent SHA] [--no-append]`
//!   compares each figure against `median + k·MAD` of its last `N`
//!   recorded **same-hardware** runs (`csmaprobe_bench::trend::TrendGate`;
//!   each entry carries a `<cores>x<arch>` fingerprint, so a runner
//!   class change re-calibrates instead of false-flagging — "runner got
//!   slower" is separated from "code got slower") and then appends this
//!   run — fingerprint, `--parent` commit and all — to the history
//!   (trimmed to the most recent 50 entries). The history file rides in
//!   a CI cache/artifact between runs; with fewer than 3 comparable
//!   runs a figure is never flagged — the gate self-calibrates instead
//!   of trusting one checked-in number. The stored parent chain lets a
//!   human bisect a creeping regression across the window.
//!
//! * **Baseline** (legacy, for quick local diffs):
//!   `bench_trend <current.json> <baseline.json> [--factor F]`
//!   flags figures slower than `F ×` the checked-in baseline
//!   (`BENCH_baseline.json`), fixed factor, default 2.0.
//!
//! History integrity: trajectory mode refuses a history file with
//! malformed or torn lines (exit 4, one `::error::` annotation per bad
//! line) — a corrupted cache silently shrinking the calibration window
//! must fail CI loudly, not quietly "calibrate". Pass `--lenient` to
//! restore the skip-bad-lines behaviour for local runs against
//! hand-edited or ancient files.
//!
//! Exit code is 0 unless the inputs are unreadable/empty (exit 2) or
//! the history is malformed in strict mode (exit 4). Timing
//! regressions themselves remain warn-only.

use csmaprobe_bench::report::parse_figure_timings;
use csmaprobe_bench::trend::{
    host_fingerprint, parse_history, parse_history_checked, trim_history, HistoryEntry, TrendGate,
};

/// Most recent history entries kept when appending.
const HISTORY_KEEP: usize = 50;

fn read_timings(path: &str) -> Vec<(String, f64)> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_figure_timings(&text),
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut paths = Vec::new();
    let mut factor = 2.0f64;
    let mut history_path: Option<String> = None;
    let mut gate = TrendGate::default();
    let mut label = "run".to_string();
    let mut parent: Option<String> = None;
    let mut append = true;
    let mut lenient = false;

    let mut i = 1;
    let bad = |what: &str, v: Option<&String>| -> ! {
        eprintln!("error: {what} needs a valid value, got {v:?}");
        std::process::exit(2);
    };
    while i < args.len() {
        let value = |i: usize| args.get(i + 1);
        match args[i].as_str() {
            "--factor" => {
                factor = match value(i).map(|s| s.parse::<f64>()) {
                    Some(Ok(v)) => v,
                    _ => bad("--factor", value(i)),
                };
                i += 1;
            }
            "--history" => {
                history_path = match value(i) {
                    Some(p) => Some(p.clone()),
                    None => bad("--history", None),
                };
                i += 1;
            }
            "--window" => {
                gate.window = match value(i).map(|s| s.parse::<usize>()) {
                    Some(Ok(v)) if v > 0 => v,
                    _ => bad("--window", value(i)),
                };
                i += 1;
            }
            "--k" => {
                gate.k = match value(i).map(|s| s.parse::<f64>()) {
                    Some(Ok(v)) if v.is_finite() && v > 0.0 => v,
                    _ => bad("--k", value(i)),
                };
                i += 1;
            }
            "--label" => {
                label = match value(i) {
                    Some(l) => l.clone(),
                    None => bad("--label", None),
                };
                i += 1;
            }
            "--parent" => {
                parent = match value(i) {
                    Some(p) if !p.is_empty() => Some(p.clone()),
                    Some(_) => None, // empty SHA (e.g. shallow clone): record nothing
                    None => bad("--parent", None),
                };
                i += 1;
            }
            "--no-append" => append = false,
            "--lenient" => lenient = true,
            _ => paths.push(args[i].clone()),
        }
        i += 1;
    }

    match (paths.len(), &history_path) {
        (1, Some(history)) => {
            run_trajectory(&paths[0], history, gate, &label, parent, append, lenient)
        }
        (2, None) => run_baseline(&paths[0], &paths[1], factor),
        _ => {
            eprintln!(
                "usage: bench_trend <current.json> --history BENCH_history.jsonl \
                 [--window N] [--k K] [--label L] [--no-append] [--lenient]\n\
                 \x20      bench_trend <current.json> <baseline.json> [--factor F>1]"
            );
            std::process::exit(2);
        }
    }
}

/// Trajectory mode: robust gate against the stored run history.
#[allow(clippy::too_many_arguments)]
fn run_trajectory(
    current_path: &str,
    history_path: &str,
    gate: TrendGate,
    label: &str,
    parent: Option<String>,
    append: bool,
    lenient: bool,
) {
    let current = read_timings(current_path);
    if current.is_empty() {
        eprintln!("error: no timings parsed from {current_path}");
        std::process::exit(2);
    }
    let history = match std::fs::read_to_string(history_path) {
        Ok(text) if lenient => {
            let parsed = parse_history(&text);
            let lines = text.lines().filter(|l| !l.trim().is_empty()).count();
            if parsed.len() < lines {
                println!(
                    "note: skipped {} malformed history line(s) (--lenient)",
                    lines - parsed.len()
                );
            }
            parsed
        }
        Ok(text) => match parse_history_checked(&text) {
            Ok(parsed) => parsed,
            Err(bad) => {
                // A corrupted history silently shrinking the window
                // would look like a healthy "calibrating" run; fail
                // loudly instead (or rerun with --lenient).
                for (lineno, what) in &bad {
                    println!(
                        "::error file={history_path},line={lineno},\
                         title=malformed BENCH history::{what}"
                    );
                }
                eprintln!(
                    "error: {} malformed line(s) in {history_path}; \
                     fix or drop the cached history, or pass --lenient",
                    bad.len()
                );
                std::process::exit(4);
            }
        },
        Err(_) => Vec::new(), // first run: no trajectory yet
    };

    let host = host_fingerprint();
    let comparable = history.iter().filter(|e| e.same_host(Some(&host))).count();
    println!(
        "runner {host}: {comparable} of {} stored run(s) calibrate on this hardware",
        history.len()
    );
    let mut regressions = 0usize;
    for f in gate.assess(&history, &current, Some(&host)) {
        if f.regressed {
            regressions += 1;
            // The gate floors the MAD (an all-identical window has MAD
            // 0); print the floored value so the stated arithmetic
            // reproduces the threshold.
            println!(
                "::warning title=figure timing regression::{}: {:.2}s vs median {:.2}s \
                 + {}x MAD {:.3}s = {:.2}s threshold ({} run(s) of history)",
                f.id,
                f.current,
                f.median,
                gate.k,
                f.mad.max(gate.mad_floor),
                f.threshold,
                f.samples
            );
        } else if f.samples >= 3 {
            println!(
                "{}: {:.2}s vs median {:.2}s (threshold {:.2}s, {} run(s))",
                f.id, f.current, f.median, f.threshold, f.samples
            );
        } else {
            println!(
                "{}: {:.2}s — {} run(s) of history, calibrating (need 3)",
                f.id, f.current, f.samples
            );
        }
    }
    println!(
        "== {} figure(s) checked against {} stored run(s); {regressions} over \
         median + {}x MAD ==",
        current.len(),
        history.len(),
        gate.k
    );

    if append {
        let mut updated = history;
        updated.push(HistoryEntry {
            label: label.to_string(),
            host: Some(host),
            parent,
            figures: current,
        });
        let updated = trim_history(updated, HISTORY_KEEP);
        let payload: String = updated
            .iter()
            .map(|e| format!("{}\n", e.to_json()))
            .collect();
        if let Err(e) = std::fs::write(history_path, payload) {
            eprintln!("error: cannot write {history_path}: {e}");
            std::process::exit(2);
        }
        println!(
            "history appended: {} entry(ies) in {history_path}",
            updated.len()
        );
    }
    // Advisory by design: timing noise must not gate merges.
}

/// Legacy baseline mode: fixed-factor diff against one snapshot.
fn run_baseline(current_path: &str, baseline_path: &str, factor: f64) {
    if !factor.is_finite() || factor <= 1.0 {
        eprintln!("error: --factor must be a finite value > 1");
        std::process::exit(2);
    }
    let current = read_timings(current_path);
    let baseline = read_timings(baseline_path);
    if current.is_empty() || baseline.is_empty() {
        eprintln!(
            "error: no timings parsed ({} current, {} baseline entries)",
            current.len(),
            baseline.len()
        );
        std::process::exit(2);
    }

    let base_of = |id: &str| baseline.iter().find(|(b, _)| b == id).map(|&(_, t)| t);
    let mut regressions = 0usize;
    let mut total_cur = 0.0f64;
    let mut total_base = 0.0f64;
    for (id, cur) in &current {
        match base_of(id) {
            None => println!("{id}: no baseline entry (new figure?) — {cur:.2}s"),
            Some(base) => {
                total_cur += cur;
                total_base += base;
                let ratio = if base > 0.0 {
                    cur / base
                } else {
                    f64::INFINITY
                };
                if *cur > 0.1 && ratio > factor {
                    regressions += 1;
                    println!(
                        "::warning title=figure timing regression::{id}: {cur:.2}s vs \
                         baseline {base:.2}s ({ratio:.1}x, threshold {factor:.1}x)"
                    );
                } else {
                    println!("{id}: {cur:.2}s vs baseline {base:.2}s ({ratio:.2}x)");
                }
            }
        }
    }
    for (id, _) in &baseline {
        if !current.iter().any(|(c, _)| c == id) {
            println!("{id}: in baseline but not in current run");
        }
    }
    println!(
        "== total {total_cur:.2}s vs baseline {total_base:.2}s; \
         {regressions} figure(s) over the {factor:.1}x threshold =="
    );
    // Advisory by design: timing noise must not gate merges.
}
