//! Regenerate the paper's fig17 data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin fig17 [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::fig17::run(opts.scale, opts.seed).print();
}
