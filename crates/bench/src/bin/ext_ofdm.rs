//! Regenerate the ext_ofdm experiment. Usage:
//! `cargo run --release -p csmaprobe-bench --bin ext_ofdm [--scale F] [--seed N]`
fn main() {
    let (scale, seed) = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::ext_ofdm::run(scale, seed).print();
}
