//! Regenerate the ext_ofdm experiment. Usage:
//! `cargo run --release -p csmaprobe-bench --bin ext_ofdm [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::ext_ofdm::run(opts.scale, opts.seed).print();
}
