//! Regenerate every data figure of the paper in one run and write
//! `experiments.json` next to the workspace root.
//!
//! Usage: `cargo run --release -p csmaprobe-bench --bin all_figures
//! [--scale F] [--seed N] [--only fig08,fig13] [--list] [--jobs N]`
//!
//! Figures come from `figures::REGISTRY` and are submitted — by
//! descending cost weight — as one task batch to the process-wide
//! work-stealing chunk executor (`csmaprobe_desim::executor`), the same
//! pool their replication reduces run on. `--jobs` caps how many
//! figures execute concurrently; a figure that finishes hands its
//! workers to the remaining figures' replication chunks mid-flight, so
//! the multi-figure tail no longer serialises on one core. Reports are
//! printed and serialised in registry order regardless of completion
//! order, and per-figure wall-clock lands in `experiments.json` as
//! `elapsed_s` — the only field that varies between otherwise identical
//! runs.

use csmaprobe_bench::figures::{self, FigureDef};
use csmaprobe_bench::report::FigureReport;
use csmaprobe_desim::replicate;

fn main() {
    let opts = csmaprobe_bench::cli_options();

    if opts.list {
        for d in figures::REGISTRY {
            println!("{:<16} {}", d.id, d.title);
        }
        return;
    }

    // Resolve the selection against the registry, keeping report order.
    let selected: Vec<&'static FigureDef> = match &opts.only {
        None => figures::REGISTRY.iter().collect(),
        Some(ids) => {
            let unknown: Vec<&String> = ids
                .iter()
                .filter(|id| figures::find(id).is_none())
                .collect();
            if !unknown.is_empty() {
                eprintln!(
                    "error: unknown figure id(s) {:?}; run with --list to see the registry",
                    unknown
                );
                std::process::exit(2);
            }
            figures::REGISTRY
                .iter()
                .filter(|d| ids.iter().any(|id| id == d.id))
                .collect()
        }
    };

    if selected.is_empty() {
        eprintln!("error: --only selected no figures; run with --list to see the registry");
        std::process::exit(2);
    }

    let jobs = opts.jobs.min(selected.len()).max(1);
    eprintln!(
        "running {} experiment(s) at scale {} (seed {}, {} figure job(s))...",
        selected.len(),
        opts.scale,
        opts.seed,
        jobs
    );
    let t_all = std::time::Instant::now();

    // Submit expensive figures first so short ones pack the tail; the
    // executor hands a finished figure's workers to the replication
    // chunks of whatever is still running.
    let mut order: Vec<usize> = (0..selected.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(selected[i].weight));

    let scale = opts.scale;
    let seed = opts.seed;
    let tasks: Vec<_> = order
        .iter()
        .map(|&pos| {
            let def = selected[pos];
            move || {
                let t0 = std::time::Instant::now();
                let mut rep = (def.run)(scale, seed);
                rep.elapsed_s = Some(t0.elapsed().as_secs_f64());
                eprintln!(
                    "{}: {} checks, {} — {:.1}s",
                    def.id,
                    rep.checks.len(),
                    if rep.all_passed() {
                        "ALL PASS"
                    } else {
                        "FAILURES"
                    },
                    t0.elapsed().as_secs_f64()
                );
                (pos, rep)
            }
        })
        .collect();

    let mut slots: Vec<Option<FigureReport>> = Vec::new();
    slots.resize_with(selected.len(), || None);
    for (pos, rep) in replicate::run_tasks(jobs, tasks) {
        slots[pos] = Some(rep);
    }

    let reports: Vec<FigureReport> = slots
        .into_iter()
        .map(|s| s.expect("figure slot not filled"))
        .collect();
    for rep in &reports {
        rep.print();
        println!();
    }

    let json = csmaprobe_bench::report::reports_to_json(&reports);
    std::fs::write("experiments.json", &json).expect("write experiments.json");
    let total: usize = reports.iter().map(|r| r.checks.len()).sum();
    let passed: usize = reports
        .iter()
        .flat_map(|r| &r.checks)
        .filter(|c| c.passed)
        .count();
    eprintln!(
        "== {passed}/{total} qualitative checks passed; experiments.json written ({:.1}s total) ==",
        t_all.elapsed().as_secs_f64()
    );
    if passed != total {
        std::process::exit(1);
    }
}
