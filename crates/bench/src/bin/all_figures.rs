//! Regenerate every data figure of the paper in one run and write
//! `experiments.json` next to the workspace root.
//!
//! Usage: `cargo run --release -p csmaprobe-bench --bin all_figures
//! [--scale F] [--seed N] [--only fig08,fig13] [--list] [--jobs N]`
//!
//! Figures come from `figures::REGISTRY` and are scheduled concurrently
//! (up to `--jobs`, default: available parallelism) by descending cost
//! weight, sharing one process-wide simulation worker budget with the
//! per-figure replication engine. Reports are printed and serialised in
//! registry order regardless of completion order, and per-figure
//! wall-clock lands in `experiments.json` as `elapsed_s` — the only
//! field that varies between otherwise identical runs.

use csmaprobe_bench::figures::{self, FigureDef};
use csmaprobe_bench::report::FigureReport;
use csmaprobe_desim::replicate;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn main() {
    let opts = csmaprobe_bench::cli_options();

    if opts.list {
        for d in figures::REGISTRY {
            println!("{:<16} {}", d.id, d.title);
        }
        return;
    }

    // Resolve the selection against the registry, keeping report order.
    let selected: Vec<&'static FigureDef> = match &opts.only {
        None => figures::REGISTRY.iter().collect(),
        Some(ids) => {
            let unknown: Vec<&String> = ids
                .iter()
                .filter(|id| figures::find(id).is_none())
                .collect();
            if !unknown.is_empty() {
                eprintln!(
                    "error: unknown figure id(s) {:?}; run with --list to see the registry",
                    unknown
                );
                std::process::exit(2);
            }
            figures::REGISTRY
                .iter()
                .filter(|d| ids.iter().any(|id| id == d.id))
                .collect()
        }
    };

    if selected.is_empty() {
        eprintln!("error: --only selected no figures; run with --list to see the registry");
        std::process::exit(2);
    }

    // Figure-level concurrency shares the replication engine's worker
    // budget: the scheduler borrows its extra threads from the same
    // pool the per-figure reduces draw from, so the process's CPU-bound
    // thread count stays at the hardware parallelism. Each borrowed
    // thread hands its permit back the moment it runs out of figures,
    // letting the tail figure's own replication re-parallelise.
    let want = opts.jobs.min(selected.len()).max(1);
    let extra = replicate::acquire_workers(want - 1);
    let jobs = 1 + extra;
    eprintln!(
        "running {} experiment(s) at scale {} (seed {}, {} figure job(s))...",
        selected.len(),
        opts.scale,
        opts.seed,
        jobs
    );
    let t_all = std::time::Instant::now();

    // Schedule expensive figures first so short ones pack the tail.
    let mut order: Vec<usize> = (0..selected.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(selected[i].weight));

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<FigureReport>> = Vec::new();
    slots.resize_with(selected.len(), || None);
    let slots = Mutex::new(slots);

    let worker = || loop {
        let k = next.fetch_add(1, Ordering::Relaxed);
        if k >= order.len() {
            break;
        }
        let pos = order[k];
        let def = selected[pos];
        let t0 = std::time::Instant::now();
        let mut rep = (def.run)(opts.scale, opts.seed);
        rep.elapsed_s = Some(t0.elapsed().as_secs_f64());
        eprintln!(
            "{}: {} checks, {} — {:.1}s",
            def.id,
            rep.checks.len(),
            if rep.all_passed() {
                "ALL PASS"
            } else {
                "FAILURES"
            },
            t0.elapsed().as_secs_f64()
        );
        slots.lock().unwrap()[pos] = Some(rep);
    };
    std::thread::scope(|scope| {
        let worker = &worker;
        for _ in 0..jobs - 1 {
            // Borrowed scheduler threads hand their permit back the
            // moment they run out of figures, so the tail figure's own
            // replication can re-parallelise.
            scope.spawn(move || {
                worker();
                replicate::release_workers(1);
            });
        }
        worker();
    });

    let reports: Vec<FigureReport> = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|s| s.expect("figure slot not filled"))
        .collect();
    for rep in &reports {
        rep.print();
        println!();
    }

    let json = csmaprobe_bench::report::reports_to_json(&reports);
    std::fs::write("experiments.json", &json).expect("write experiments.json");
    let total: usize = reports.iter().map(|r| r.checks.len()).sum();
    let passed: usize = reports
        .iter()
        .flat_map(|r| &r.checks)
        .filter(|c| c.passed)
        .count();
    eprintln!(
        "== {passed}/{total} qualitative checks passed; experiments.json written ({:.1}s total) ==",
        t_all.elapsed().as_secs_f64()
    );
    if passed != total {
        std::process::exit(1);
    }
}
