//! Regenerate every data figure of the paper in one run and write
//! `experiments.json` next to the workspace root.
//!
//! Usage: `cargo run --release -p csmaprobe-bench --bin all_figures
//! [--scale F] [--seed N]` — scale multiplies every experiment's
//! replication budget.

use csmaprobe_bench::figures;
use csmaprobe_bench::report::FigureReport;

/// A named experiment: figure id plus its `run(scale, seed)` function.
type FigureRun = (&'static str, fn(f64, u64) -> FigureReport);

fn main() {
    let (scale, seed) = csmaprobe_bench::cli_options();
    eprintln!("running all experiments at scale {scale} (seed {seed})...");
    let runs: Vec<FigureRun> = vec![
        ("fig01", figures::fig01::run),
        ("fig04", figures::fig04::run),
        ("fig06", figures::fig06::run),
        ("fig07", figures::fig07::run),
        ("fig08", figures::fig08::run),
        ("fig09", figures::fig09::run),
        ("fig10", figures::fig10::run),
        ("fig13", figures::fig13::run),
        ("fig15", figures::fig15::run),
        ("fig16", figures::fig16::run),
        ("fig17", figures::fig17::run),
        ("bounds_check", figures::bounds_check::run),
        ("tool_bias", figures::tool_bias::run),
        ("ablation_access", figures::ablation_access::run),
        ("ext_ofdm", figures::ext_ofdm::run),
        ("ext_impairments", figures::ext_impairments::run),
        ("ext_burstiness", figures::ext_burstiness::run),
    ];

    let mut reports = Vec::new();
    for (name, f) in runs {
        let t0 = std::time::Instant::now();
        let rep = f(scale, seed);
        eprintln!(
            "{name}: {} checks, {} — {:.1}s",
            rep.checks.len(),
            if rep.all_passed() { "ALL PASS" } else { "FAILURES" },
            t0.elapsed().as_secs_f64()
        );
        rep.print();
        println!();
        reports.push(rep);
    }

    let json = csmaprobe_bench::report::reports_to_json(&reports);
    std::fs::write("experiments.json", &json).expect("write experiments.json");
    let total: usize = reports.iter().map(|r| r.checks.len()).sum();
    let passed: usize = reports
        .iter()
        .flat_map(|r| &r.checks)
        .filter(|c| c.passed)
        .count();
    eprintln!("== {passed}/{total} qualitative checks passed; experiments.json written ==");
    if passed != total {
        std::process::exit(1);
    }
}
