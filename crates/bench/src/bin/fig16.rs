//! Regenerate the paper's fig16 data series. Usage:
//! `cargo run --release -p csmaprobe-bench --bin fig16 [--scale F] [--seed N]`
fn main() {
    let opts = csmaprobe_bench::cli_options();
    csmaprobe_bench::figures::fig16::run(opts.scale, opts.seed).print();
}
