//! The engine-tier regime matrix: named steady-state cells spanning
//! offered load × station count × coverage class, with explicit
//! per-tier execution.
//!
//! The router (`csmaprobe_core::engine`) decides *globally* which tier
//! serves a cell; this module instead runs a cell on a **named** tier
//! so the tier-equivalence and tier-speedup figures (and the KS harness
//! in `tests/tier_equivalence.rs`) can compare tiers side by side
//! without mutating the process-wide engine policy — figures run
//! concurrently on the shared executor, so a global override here would
//! leak into every other figure's routing.

use csmaprobe_core::engine::{self, EngineTier};
use csmaprobe_core::link::{
    CrossShape, CrossSpec, LinkConfig, SteadyPoint, TrainObservation, WlanLink,
};
use csmaprobe_desim::time::Dur;
use csmaprobe_traffic::probe::ProbeTrain;

use crate::scenarios::FRAME;

/// One steady-state cell of the tier matrix.
pub struct TierRegime {
    /// Short identifier used in figure rows and the equivalence table.
    pub name: &'static str,
    /// The link under test.
    pub link: WlanLink,
    /// Probe offered rate, bits/s.
    pub ri_bps: f64,
    /// Number of contending stations (excluding the probe station).
    pub contenders: usize,
}

impl TierRegime {
    fn new(name: &'static str, cfg: LinkConfig, ri_bps: f64) -> Self {
        let contenders = cfg.contending.len();
        TierRegime {
            name,
            link: WlanLink::new(cfg),
            ri_bps,
            contenders,
        }
    }

    /// Does `tier` cover this cell? ([`EngineTier::Event`] covers
    /// everything — it is the oracle.)
    pub fn covered_by(&self, tier: EngineTier) -> bool {
        match tier {
            EngineTier::Event => true,
            EngineTier::Slotted => engine::slotted_covers(self.link.config()),
            EngineTier::Analytic => engine::analytic_covers(self.link.config(), self.ri_bps),
        }
    }

    /// Run this cell on an explicit tier. Returns `None` when the tier
    /// does not cover the cell (the router would fall back to the
    /// event core there).
    pub fn steady_with_tier(
        &self,
        tier: EngineTier,
        duration: Dur,
        seed: u64,
    ) -> Option<SteadyPoint> {
        if !self.covered_by(tier) {
            return None;
        }
        Some(match tier {
            EngineTier::Event => self.link.steady_state_event(self.ri_bps, duration, seed),
            EngineTier::Slotted => self.link.steady_state_slotted(self.ri_bps, duration, seed),
            EngineTier::Analytic => self.link.steady_state_analytic(self.ri_bps),
        })
    }

    /// Run the cell on `tier` and report `(point, wall_clock_seconds)`.
    pub fn timed_steady(
        &self,
        tier: EngineTier,
        duration: Dur,
        seed: u64,
    ) -> Option<(SteadyPoint, f64)> {
        let t0 = std::time::Instant::now();
        let p = self.steady_with_tier(tier, duration, seed)?;
        Some((p, t0.elapsed().as_secs_f64()))
    }

    /// Run a replication *chunk* of `train` probes on the slotted tier
    /// — one scalar kernel call per seed, or one batched call for the
    /// whole chunk — and report the per-lane observations plus the
    /// wall-clock seconds. The two forms are bit-identical by the
    /// batched kernel's contract; `tier_speedup`'s batched leg gates
    /// exactly that plus a no-regression margin. `None` when the
    /// slotted tier does not cover this cell.
    pub fn timed_train_chunk(
        &self,
        train: ProbeTrain,
        seeds: &[u64],
        batched: bool,
    ) -> Option<(Vec<TrainObservation>, f64)> {
        if !self.covered_by(EngineTier::Slotted) {
            return None;
        }
        let t0 = std::time::Instant::now();
        let obs = if batched {
            self.link.probe_train_slotted_batch(train, seeds)
        } else {
            seeds
                .iter()
                .map(|&s| self.link.probe_train_slotted(train, s))
                .collect()
        };
        Some((obs, t0.elapsed().as_secs_f64()))
    }
}

/// The regime matrix the tier figures sweep: offered loads below /
/// around / above the fair share, with and without FIFO cross-traffic,
/// saturated symmetric cells (`analytic-*`, served by the Bianchi
/// model) and the finite-load cells of the non-saturated fixed point's
/// certified matrix (`nonsat-*`: sub-knee / knee / above-knee loads at
/// 2–10 stations). Every cell is slotted-covered; `fifo-1` and
/// `mixed-2` (CBR contender) are the simulation-only shapes.
pub fn regime_matrix() -> Vec<TierRegime> {
    vec![
        // Light load, one Poisson contender: identity region.
        TierRegime::new(
            "light-1",
            LinkConfig::default().contending_bps(2_000_000.0),
            1_000_000.0,
        ),
        // The Fig 1 knee: probe pushed past the available bandwidth.
        TierRegime::new(
            "knee-1",
            LinkConfig::default().contending_bps(4_500_000.0),
            3_000_000.0,
        ),
        // Complete picture: contending + FIFO cross sharing the probe
        // queue (the Fig 4 topology). Slotted-covered, not analytic.
        TierRegime::new(
            "fifo-1",
            LinkConfig::default()
                .contending_bps(3_000_000.0)
                .fifo_cross_bps(1_500_000.0),
            2_000_000.0,
        ),
        // Heterogeneous CBR + Poisson contenders, probe saturating.
        TierRegime::new(
            "mixed-2",
            LinkConfig::default()
                .contending_bps(2_000_000.0)
                .contending(CrossSpec::shaped(1_000_000.0, CrossShape::Cbr)),
            9_000_000.0,
        ),
        // Saturated symmetric cells — the saturation model's home turf.
        TierRegime::new(
            "analytic-2",
            LinkConfig::default().contending(CrossSpec::poisson_sized(12_000_000.0, FRAME)),
            12_000_000.0,
        ),
        TierRegime::new(
            "analytic-4",
            LinkConfig::default()
                .contending(CrossSpec::poisson_sized(12_000_000.0, FRAME))
                .contending(CrossSpec::poisson_sized(12_000_000.0, FRAME))
                .contending(CrossSpec::poisson_sized(12_000_000.0, FRAME)),
            12_000_000.0,
        ),
        // Finite-load cells — the non-saturated fixed point's regime
        // matrix (sub-knee / knee / above-knee × station count, names
        // counting total stations as in bianchi_nonsat_oracle.rs).
        TierRegime::new(
            "nonsat-sub-2",
            LinkConfig::default().contending_bps(2_000_000.0),
            1_000_000.0,
        ),
        TierRegime::new(
            "nonsat-knee-2",
            LinkConfig::default().contending_bps(4_500_000.0),
            1_000_000.0,
        ),
        TierRegime::new(
            "nonsat-above-2",
            LinkConfig::default().contending_bps(4_500_000.0),
            9_000_000.0,
        ),
        TierRegime::new(
            "nonsat-sub-5",
            {
                let mut cfg = LinkConfig::default();
                for _ in 0..4 {
                    cfg = cfg.contending_bps(700_000.0);
                }
                cfg
            },
            700_000.0,
        ),
        TierRegime::new(
            "nonsat-knee-5",
            {
                let mut cfg = LinkConfig::default();
                for _ in 0..4 {
                    cfg = cfg.contending_bps(1_200_000.0);
                }
                cfg
            },
            1_500_000.0,
        ),
        TierRegime::new(
            "nonsat-above-10",
            {
                let mut cfg = LinkConfig::default();
                for _ in 0..9 {
                    cfg = cfg.contending_bps(550_000.0);
                }
                cfg
            },
            4_000_000.0,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_exercises_every_tier() {
        let regimes = regime_matrix();
        assert!(regimes.iter().all(|r| r.covered_by(EngineTier::Event)));
        assert!(regimes.iter().all(|r| r.covered_by(EngineTier::Slotted)));
        let analytic: Vec<&str> = regimes
            .iter()
            .filter(|r| r.covered_by(EngineTier::Analytic))
            .map(|r| r.name)
            .collect();
        // `light-1`/`knee-1` are Poisson finite-load shapes, so the
        // non-saturated fixed point now covers them too; `fifo-1` and
        // `mixed-2` (CBR contender) remain simulation-only.
        assert_eq!(
            analytic,
            [
                "light-1",
                "knee-1",
                "analytic-2",
                "analytic-4",
                "nonsat-sub-2",
                "nonsat-knee-2",
                "nonsat-above-2",
                "nonsat-sub-5",
                "nonsat-knee-5",
                "nonsat-above-10",
            ]
        );
        // The `nonsat-*` cells must reach the finite-load model (not
        // the saturation model the dispatch prefers when both cover).
        for r in &regimes {
            let cfg = r.link.config();
            let sat = engine::saturation_covers(cfg, r.ri_bps);
            let nonsat = engine::nonsat_certified(cfg, r.ri_bps);
            if r.name.starts_with("nonsat-") {
                assert!(nonsat && !sat, "{} should be finite-load-covered", r.name);
            }
            if r.name.starts_with("analytic-") {
                assert!(sat, "{} should be saturation-covered", r.name);
            }
        }
    }

    #[test]
    fn uncovered_tier_returns_none() {
        let regimes = regime_matrix();
        let fifo = regimes.iter().find(|r| r.name == "fifo-1").unwrap();
        assert!(fifo
            .steady_with_tier(EngineTier::Analytic, Dur::from_secs_f64(0.1), 1)
            .is_none());
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for r in regime_matrix() {
            assert!(seen.insert(r.name), "duplicate regime {}", r.name);
        }
    }
}
