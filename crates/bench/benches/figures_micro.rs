//! Benchmarks (criterion-style, on the in-tree `bench_support` harness) of the figure-regeneration pipelines at micro
//! scale — one group per table/figure of the paper, so `cargo bench`
//! exercises every experiment end to end and reports how its cost
//! scales.
//!
//! (`scale = 0.05` keeps each iteration fast; absolute experiment
//! numbers come from the `all_figures` binary, not from here.)

use csmaprobe_bench::bench_support::Criterion;
use csmaprobe_bench::figures;
use csmaprobe_bench::report::FigureReport;
use csmaprobe_bench::{criterion_group, criterion_main};

const MICRO: f64 = 0.05;

fn bench_one(c: &mut Criterion, name: &str, f: fn(f64, u64) -> FigureReport) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function(name, |b| {
        b.iter(|| {
            let rep = f(MICRO, 1);
            assert!(!rep.rows.is_empty());
        })
    });
    g.finish();
}

fn figures_micro(c: &mut Criterion) {
    bench_one(c, "fig01_rate_response", figures::fig01::run);
    bench_one(c, "fig04_complete_picture", figures::fig04::run);
    bench_one(c, "fig06_mean_access_delay", figures::fig06::run);
    bench_one(c, "fig07_histograms", figures::fig07::run);
    bench_one(c, "fig08_ks_profile", figures::fig08::run);
    bench_one(c, "fig09_complex_ks", figures::fig09::run);
    bench_one(c, "fig10_transient_length", figures::fig10::run);
    bench_one(c, "fig13_short_trains", figures::fig13::run);
    bench_one(c, "fig15_short_trains_fifo", figures::fig15::run);
    bench_one(c, "fig16_packet_pair", figures::fig16::run);
    bench_one(c, "fig17_mser", figures::fig17::run);
    bench_one(c, "bounds_check", figures::bounds_check::run);
    bench_one(c, "tool_bias", figures::tool_bias::run);
}

criterion_group!(benches, figures_micro);
criterion_main!(benches);
