//! Benchmarks (criterion-style, on the in-tree `bench_support` harness) of the measurement tools: what one full
//! measurement costs (probe trains, packet pairs, MSER correction, and
//! the iterative available-bandwidth search).

use csmaprobe_bench::bench_support::Criterion;
use csmaprobe_bench::{criterion_group, criterion_main};
use csmaprobe_core::link::{LinkConfig, WiredLink, WlanLink};
use csmaprobe_probe::mser::MserProbe;
use csmaprobe_probe::pair::PacketPairProbe;
use csmaprobe_probe::slops::SlopsEstimator;
use csmaprobe_probe::train::TrainProbe;

fn bench_train_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("train_probe");
    g.sample_size(10);
    let wlan = WlanLink::new(LinkConfig::default().contending_bps(4.5e6));
    g.bench_function("wlan_50pkt_x20reps", |b| {
        b.iter(|| {
            let m = TrainProbe::new(50, 1500, 5e6).measure(&wlan, 20, 7);
            assert!(m.output_rate_bps() > 0.0);
        })
    });
    let wired = WiredLink::new(10e6, 4e6);
    g.bench_function("wired_50pkt_x20reps", |b| {
        b.iter(|| {
            let m = TrainProbe::new(50, 1500, 5e6).measure(&wired, 20, 7);
            assert!(m.output_rate_bps() > 0.0);
        })
    });
    g.finish();
}

fn bench_packet_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_pair");
    g.sample_size(10);
    let wlan = WlanLink::new(LinkConfig::default().contending_bps(2e6));
    g.bench_function("wlan_100pairs", |b| {
        b.iter(|| {
            let m = PacketPairProbe::new(1500, 100).measure(&wlan, 3);
            assert!(m.rate_from_mean_bps() > 0.0);
        })
    });
    g.finish();
}

fn bench_mser_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("mser_probe");
    g.sample_size(10);
    let wlan = WlanLink::new(LinkConfig::default().contending_bps(4.5e6));
    g.bench_function("wlan_20pkt_x50reps_mser2", |b| {
        b.iter(|| {
            let m = MserProbe::new(20, 1500, 6e6, 2).measure(&wlan, 50, 5);
            assert!(m.corrected_rate_bps() > 0.0);
        })
    });
    g.finish();
}

fn bench_slops(c: &mut Criterion) {
    let mut g = c.benchmark_group("slops");
    g.sample_size(10);
    let wired = WiredLink::new(10e6, 4e6);
    g.bench_function("wired_6iter_x3reps", |b| {
        b.iter(|| {
            let est = SlopsEstimator {
                n: 60,
                reps: 3,
                iterations: 6,
                ..Default::default()
            };
            let r = est.run(&wired, 9);
            assert!(r.estimate_bps > 0.0);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_train_probe,
    bench_packet_pair,
    bench_mser_probe,
    bench_slops
);
criterion_main!(benches);
