//! Benchmarks (criterion-style, on the in-tree `bench_support` harness) of the substrate crates: the DCF simulator,
//! the Lindley FIFO queue, and the statistics kernels. These measure
//! the cost of the machinery every experiment is built from.

use csmaprobe_bench::bench_support::{BatchSize, Criterion};
use csmaprobe_bench::{criterion_group, criterion_main};
use csmaprobe_desim::rng::SimRng;
use csmaprobe_desim::time::{Dur, Time};
use csmaprobe_mac::{saturated_source, WlanSim};
use csmaprobe_phy::Phy;
use csmaprobe_queueing::fifo::{fifo_serve, Job};
use csmaprobe_stats::ks::two_sample_ks;
use csmaprobe_stats::mser::mser_m;

fn bench_mac_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("mac_sim");
    g.sample_size(20);
    // One saturated station, 2000 frames: the per-packet cost of the
    // DCF contention loop.
    g.bench_function("saturated_1sta_2000pkt", |b| {
        b.iter(|| {
            let mut sim = WlanSim::new(Phy::dsss_11mbps(), 42);
            let st = sim.add_station(saturated_source(1500, 2000));
            let out = sim.run(Time::MAX);
            assert_eq!(out.records(st).len(), 2000);
        })
    });
    // Two contending saturated stations: collisions + freezing paths.
    g.bench_function("saturated_2sta_2x1000pkt", |b| {
        b.iter(|| {
            let mut sim = WlanSim::new(Phy::dsss_11mbps(), 42);
            let a = sim.add_station(saturated_source(1500, 1000));
            let _b2 = sim.add_station(saturated_source(1500, 1000));
            let out = sim.run(Time::MAX);
            assert_eq!(out.records(a).len(), 1000);
        })
    });
    g.finish();
}

fn bench_fifo_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("queueing");
    g.sample_size(20);
    let jobs: Vec<Job> = {
        let mut rng = SimRng::new(7);
        let mut t = Time::ZERO;
        (0..100_000)
            .map(|_| {
                t += Dur::from_nanos(rng.below(2_000_000));
                Job {
                    arrival: t,
                    service: Dur::from_micros(800 + rng.below(800)),
                }
            })
            .collect()
    };
    g.bench_function("lindley_100k_jobs", |b| {
        b.iter_batched(
            || jobs.clone(),
            |jobs| {
                let served = fifo_serve(&jobs);
                assert_eq!(served.len(), jobs.len());
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");
    g.sample_size(30);
    let mut rng = SimRng::new(3);
    let a: Vec<f64> = (0..2_000).map(|_| rng.f64()).collect();
    let b_sample: Vec<f64> = (0..2_000).map(|_| rng.f64() * 1.1).collect();
    g.bench_function("ks_2000_vs_2000", |bch| {
        bch.iter(|| {
            let out = two_sample_ks(&a, &b_sample, 0.05);
            assert!(out.statistic > 0.0);
        })
    });
    let series: Vec<f64> = (0..10_000)
        .map(|i| (-(i as f64) / 100.0).exp() + (i as f64 * 0.37).sin().abs())
        .collect();
    g.bench_function("mser2_10k_series", |bch| {
        bch.iter(|| {
            let r = mser_m(&series, 2).unwrap();
            assert!(r.truncate_raw <= series.len());
        })
    });
    g.finish();
}

criterion_group!(benches, bench_mac_sim, bench_fifo_queue, bench_stats);
criterion_main!(benches);
