//! # csmaprobe-phy
//!
//! IEEE 802.11 PHY timing for the CSMA/CA MAC simulator: frame
//! airtimes, ACK durations, and the MAC timing constants (slot, SIFS,
//! DIFS, EIFS, CWmin/CWmax) that the DCF contention process is built
//! from.
//!
//! Two PHY families are modelled:
//!
//! * **DSSS / HR-DSSS (802.11b)** — what the paper's testbed (Prism
//!   chipset at 11 Mb/s, long preamble, no RTS/CTS) and its NS2 setup
//!   use. This is the default everywhere in the workspace.
//! * **OFDM (802.11a/g)** — provided for completeness and for
//!   sensitivity experiments; symbol-padded airtime per 802.11-2007
//!   §17.3.2.
//!
//! All durations are integer nanoseconds ([`Dur`]); airtime division is
//! done in 128-bit arithmetic and rounded **up** to whole nanoseconds
//! (transmissions can only end on or after the last bit).

pub mod ofdm;

use csmaprobe_desim::time::Dur;

/// Length in bytes of an 802.11 ACK control frame.
pub const ACK_BYTES: u32 = 14;

/// Length in bytes of an 802.11 RTS control frame.
pub const RTS_BYTES: u32 = 20;

/// Length in bytes of an 802.11 CTS control frame.
pub const CTS_BYTES: u32 = 14;

/// MAC overhead added to every data MPDU: 24-byte MAC header + 4-byte
/// FCS. (The paper's NS2 setup uses the stock 802.11 MAC, which adds
/// exactly this.)
pub const MAC_DATA_OVERHEAD_BYTES: u32 = 28;

/// Airtime of `bits` transmitted at `rate_bps`, rounded up to whole
/// nanoseconds.
#[inline]
pub fn serialization_time(bits: u64, rate_bps: u64) -> Dur {
    debug_assert!(rate_bps > 0);
    let ns = (bits as u128 * 1_000_000_000u128).div_ceil(rate_bps as u128);
    Dur::from_nanos(ns as u64)
}

/// The preamble variants defined for DSSS/HR-DSSS PHYs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preamble {
    /// 144 µs sync+SFD plus 48 µs PLCP header, both at 1 Mb/s (192 µs
    /// total). Mandatory, and the paper's testbed default.
    Long,
    /// 72 µs shortened sync at 1 Mb/s plus 24 µs PLCP header at 2 Mb/s
    /// (96 µs total). Optional in 802.11b.
    Short,
}

impl Preamble {
    /// Total PLCP preamble + header duration.
    pub fn duration(self) -> Dur {
        match self {
            Preamble::Long => Dur::from_micros(192),
            Preamble::Short => Dur::from_micros(96),
        }
    }
}

/// A complete PHY/MAC timing parameterisation.
///
/// Use the constructors ([`Phy::dsss_11mbps`], [`Phy::dsss`],
/// [`Phy::ofdm_g`], …) rather than filling fields by hand; invariants
/// between fields (e.g. DIFS = SIFS + 2·slot) are the constructors'
/// responsibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phy {
    /// Backoff slot duration (20 µs DSSS, 9 µs OFDM).
    pub slot: Dur,
    /// Short interframe space (10 µs DSSS, 16 µs OFDM).
    pub sifs: Dur,
    /// PLCP preamble + header overhead prepended to every frame.
    pub plcp: Dur,
    /// Data rate for MPDUs, bits/s.
    pub data_rate_bps: u64,
    /// Control (basic) rate used for ACK frames, bits/s.
    pub control_rate_bps: u64,
    /// Minimum contention window (CWmin); backoff drawn from `[0, CW]`.
    pub cw_min: u32,
    /// Maximum contention window (CWmax).
    pub cw_max: u32,
    /// Retry limit before a frame is dropped (long retry limit).
    pub retry_limit: u32,
    /// True when this is an OFDM PHY (changes airtime quantisation).
    pub ofdm: bool,
}

impl Phy {
    /// 802.11b at 11 Mb/s, long preamble, ACK at 2 Mb/s — the paper's
    /// testbed and NS2 configuration.
    pub fn dsss_11mbps() -> Phy {
        Phy::dsss(11_000_000, Preamble::Long)
    }

    /// 802.11b/DSSS at an arbitrary rate (1, 2, 5.5 or 11 Mb/s).
    ///
    /// ACKs are sent at the highest mandatory basic rate not exceeding
    /// the data rate (1 or 2 Mb/s).
    pub fn dsss(data_rate_bps: u64, preamble: Preamble) -> Phy {
        let control = if data_rate_bps >= 2_000_000 {
            2_000_000
        } else {
            1_000_000
        };
        Phy {
            slot: Dur::from_micros(20),
            sifs: Dur::from_micros(10),
            plcp: preamble.duration(),
            data_rate_bps,
            control_rate_bps: control,
            cw_min: 31,
            cw_max: 1023,
            retry_limit: 7,
            ofdm: false,
        }
    }

    /// 802.11g (ERP-OFDM) at `data_rate_bps` with 802.11a timing
    /// (9 µs slots, 16 µs SIFS).
    pub fn ofdm_g(data_rate_bps: u64) -> Phy {
        Phy {
            slot: Dur::from_micros(9),
            sifs: Dur::from_micros(16),
            plcp: Dur::from_micros(20), // 16 µs preamble + 4 µs SIGNAL
            data_rate_bps,
            control_rate_bps: ofdm::basic_rate_for(data_rate_bps),
            cw_min: 15,
            cw_max: 1023,
            retry_limit: 7,
            ofdm: true,
        }
    }

    /// DCF interframe space: SIFS + 2 slots.
    #[inline]
    pub fn difs(&self) -> Dur {
        self.sifs + self.slot * 2
    }

    /// Extended interframe space, used after an erroneous reception:
    /// `SIFS + ACK-at-lowest-rate + DIFS` (802.11-2007 §9.2.3.5).
    #[inline]
    pub fn eifs(&self) -> Dur {
        self.sifs + self.ack_airtime_at(1_000_000) + self.difs()
    }

    /// Airtime of a data MPDU carrying `payload_bytes` of higher-layer
    /// payload (MAC header and FCS are added internally).
    pub fn data_airtime(&self, payload_bytes: u32) -> Dur {
        let bytes = payload_bytes + MAC_DATA_OVERHEAD_BYTES;
        self.frame_airtime(bytes, self.data_rate_bps)
    }

    /// Airtime of an ACK frame at the configured control rate.
    pub fn ack_airtime(&self) -> Dur {
        self.ack_airtime_at(self.control_rate_bps)
    }

    /// Airtime of an RTS frame at the configured control rate.
    pub fn rts_airtime(&self) -> Dur {
        self.frame_airtime(RTS_BYTES, self.control_rate_bps)
    }

    /// Airtime of a CTS frame at the configured control rate.
    pub fn cts_airtime(&self) -> Dur {
        self.frame_airtime(CTS_BYTES, self.control_rate_bps)
    }

    /// Duration of the RTS/CTS preface before the data frame:
    /// `RTS + SIFS + CTS + SIFS`.
    pub fn rts_cts_preface(&self) -> Dur {
        self.rts_airtime() + self.sifs + self.cts_airtime() + self.sifs
    }

    /// How long an RTS transmitter waits for the CTS before declaring
    /// the attempt failed: SIFS + CTS airtime + one slot of slack.
    pub fn cts_timeout(&self) -> Dur {
        self.sifs + self.cts_airtime() + self.slot
    }

    fn ack_airtime_at(&self, rate_bps: u64) -> Dur {
        self.frame_airtime(ACK_BYTES, rate_bps)
    }

    /// Airtime of an arbitrary MPDU of `mpdu_bytes` (already including
    /// MAC overhead) at `rate_bps`, including PLCP overhead.
    pub fn frame_airtime(&self, mpdu_bytes: u32, rate_bps: u64) -> Dur {
        if self.ofdm {
            self.plcp + ofdm::symbol_padded_airtime(mpdu_bytes, rate_bps)
        } else {
            self.plcp + serialization_time(mpdu_bytes as u64 * 8, rate_bps)
        }
    }

    /// Duration a **successful** transmission occupies the channel:
    /// data frame + SIFS + ACK. (DIFS/backoff are contention, not
    /// occupancy, and belong to the MAC.)
    pub fn success_exchange(&self, payload_bytes: u32) -> Dur {
        self.data_airtime(payload_bytes) + self.sifs + self.ack_airtime()
    }

    /// How long a transmitter waits for an ACK before declaring the
    /// attempt failed: SIFS + ACK airtime + one slot of scheduling
    /// slack.
    pub fn ack_timeout(&self) -> Dur {
        self.sifs + self.ack_airtime() + self.slot
    }

    /// The contention window for backoff stage `stage` (0-based):
    /// `min((CWmin+1)·2^stage − 1, CWmax)`.
    pub fn cw_at_stage(&self, stage: u32) -> u32 {
        let w = (self.cw_min as u64 + 1) << stage.min(16);
        ((w - 1) as u32).min(self.cw_max)
    }

    /// Stand-alone saturation throughput of one station sending
    /// `payload_bytes` frames with nobody contending: the channel
    /// cycles through DIFS + E\[backoff\] + exchange. Returned in bits/s.
    ///
    /// This is the paper's *capacity* `C` for its single-flow setting
    /// (≈6.2 Mb/s for 1500-byte frames at 11 Mb/s, long preamble — the
    /// testbed reports ≈6.5 Mb/s with its slightly different overhead
    /// accounting).
    pub fn standalone_capacity_bps(&self, payload_bytes: u32) -> f64 {
        let mean_backoff_slots = self.cw_min as f64 / 2.0;
        let cycle = self.difs().as_secs_f64()
            + mean_backoff_slots * self.slot.as_secs_f64()
            + self.success_exchange(payload_bytes).as_secs_f64();
        payload_bytes as f64 * 8.0 / cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_rounds_up() {
        // 1 bit at 1 Gb/s = exactly 1 ns.
        assert_eq!(serialization_time(1, 1_000_000_000), Dur::from_nanos(1));
        // 1 bit at 3 Gb/s = 0.33 ns -> 1 ns.
        assert_eq!(serialization_time(1, 3_000_000_000), Dur::from_nanos(1));
        // 8000 bits at 1 Mb/s = 8 ms exactly.
        assert_eq!(serialization_time(8000, 1_000_000), Dur::from_millis(8));
    }

    #[test]
    fn dsss_constants_match_standard() {
        let phy = Phy::dsss_11mbps();
        assert_eq!(phy.slot, Dur::from_micros(20));
        assert_eq!(phy.sifs, Dur::from_micros(10));
        assert_eq!(phy.difs(), Dur::from_micros(50));
        assert_eq!(phy.cw_min, 31);
        assert_eq!(phy.cw_max, 1023);
        assert_eq!(phy.plcp, Dur::from_micros(192));
    }

    #[test]
    fn ack_airtime_11b() {
        let phy = Phy::dsss_11mbps();
        // 192 us PLCP + 14*8 bits / 2 Mb/s = 192 + 56 = 248 us.
        assert_eq!(phy.ack_airtime(), Dur::from_micros(248));
    }

    #[test]
    fn data_airtime_1500b_11mbps() {
        let phy = Phy::dsss_11mbps();
        // (1500+28)*8 = 12224 bits at 11 Mb/s = 1111272.72.. ns -> ceil.
        let expect = Dur::from_micros(192) + serialization_time(12224, 11_000_000);
        assert_eq!(phy.data_airtime(1500), expect);
        // Sanity: about 1.303 ms.
        let us = phy.data_airtime(1500).as_micros_f64();
        assert!((1300.0..1310.0).contains(&us), "{us}");
    }

    #[test]
    fn low_rate_dsss_uses_1mbps_acks() {
        let phy = Phy::dsss(1_000_000, Preamble::Long);
        assert_eq!(phy.control_rate_bps, 1_000_000);
        // 192 + 112 us.
        assert_eq!(phy.ack_airtime(), Dur::from_micros(304));
    }

    #[test]
    fn cw_doubles_and_caps() {
        let phy = Phy::dsss_11mbps();
        assert_eq!(phy.cw_at_stage(0), 31);
        assert_eq!(phy.cw_at_stage(1), 63);
        assert_eq!(phy.cw_at_stage(2), 127);
        assert_eq!(phy.cw_at_stage(5), 1023);
        assert_eq!(phy.cw_at_stage(6), 1023);
        assert_eq!(phy.cw_at_stage(60), 1023); // shift clamped, no overflow
    }

    #[test]
    fn standalone_capacity_near_paper_value() {
        let phy = Phy::dsss_11mbps();
        let c = phy.standalone_capacity_bps(1500) / 1e6;
        // Paper reports ~6.5 Mb/s on the testbed; stock-timing estimate
        // lands slightly lower. Accept the 5.9..6.8 window.
        assert!((5.9..6.8).contains(&c), "capacity {c} Mb/s");
    }

    #[test]
    fn eifs_exceeds_difs() {
        let phy = Phy::dsss_11mbps();
        assert!(phy.eifs() > phy.difs());
    }

    #[test]
    fn success_exchange_composition() {
        let phy = Phy::dsss_11mbps();
        assert_eq!(
            phy.success_exchange(1000),
            phy.data_airtime(1000) + phy.sifs + phy.ack_airtime()
        );
    }

    #[test]
    fn ofdm_g_constants() {
        let phy = Phy::ofdm_g(54_000_000);
        assert_eq!(phy.slot, Dur::from_micros(9));
        assert_eq!(phy.sifs, Dur::from_micros(16));
        assert_eq!(phy.difs(), Dur::from_micros(34));
        assert_eq!(phy.cw_min, 15);
        assert!(phy.ofdm);
    }

    #[test]
    fn airtime_monotone_in_payload() {
        let phy = Phy::dsss_11mbps();
        let mut prev = Dur::ZERO;
        for bytes in [40u32, 100, 576, 1000, 1500] {
            let a = phy.data_airtime(bytes);
            assert!(a > prev);
            prev = a;
        }
    }
}
