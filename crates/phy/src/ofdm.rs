//! OFDM (802.11a/g) airtime details.
//!
//! OFDM frames are quantised to 4 µs symbols; the PSDU is wrapped in a
//! 16-bit SERVICE field and 6 tail bits, then padded to a whole number
//! of symbols (802.11-2007 §17.3.2.3):
//!
//! ```text
//! N_sym = ceil((16 + 8·bytes + 6) / N_dbps)
//! ```

use csmaprobe_desim::time::Dur;

/// OFDM symbol duration (4 µs, including guard interval).
pub const SYMBOL: Dur = Dur(4_000);

/// Data bits per OFDM symbol for each 802.11a/g rate.
///
/// Returns `None` for rates that are not part of the OFDM rate set.
pub fn data_bits_per_symbol(rate_bps: u64) -> Option<u32> {
    Some(match rate_bps {
        6_000_000 => 24,
        9_000_000 => 36,
        12_000_000 => 48,
        18_000_000 => 72,
        24_000_000 => 96,
        36_000_000 => 144,
        48_000_000 => 192,
        54_000_000 => 216,
        _ => return None,
    })
}

/// The mandatory basic rate used for control responses to a frame sent
/// at `data_rate_bps`: the highest of {6, 12, 24} Mb/s not exceeding it.
pub fn basic_rate_for(data_rate_bps: u64) -> u64 {
    if data_rate_bps >= 24_000_000 {
        24_000_000
    } else if data_rate_bps >= 12_000_000 {
        12_000_000
    } else {
        6_000_000
    }
}

/// Airtime of `mpdu_bytes` at `rate_bps`, quantised to whole OFDM
/// symbols (PLCP preamble **not** included).
///
/// Panics if `rate_bps` is not an OFDM rate.
pub fn symbol_padded_airtime(mpdu_bytes: u32, rate_bps: u64) -> Dur {
    let ndbps = data_bits_per_symbol(rate_bps)
        .unwrap_or_else(|| panic!("{rate_bps} bit/s is not an 802.11a/g OFDM rate"));
    let bits = 16 + 8 * mpdu_bytes as u64 + 6;
    let symbols = bits.div_ceil(ndbps as u64);
    SYMBOL * symbols
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_table_complete() {
        for r in [6, 9, 12, 18, 24, 36, 48, 54] {
            assert!(data_bits_per_symbol(r * 1_000_000).is_some());
        }
        assert!(data_bits_per_symbol(11_000_000).is_none());
    }

    #[test]
    fn symbol_padding_rounds_up() {
        // 1500+28 bytes at 54 Mb/s: bits = 16 + 12224 + 6 = 12246;
        // 12246 / 216 = 56.69 -> 57 symbols = 228 us.
        assert_eq!(
            symbol_padded_airtime(1528, 54_000_000),
            Dur::from_micros(228)
        );
    }

    #[test]
    fn one_byte_is_one_symbol_at_6mbps() {
        // bits = 16+8+6 = 30 <= 24*2, so 2 symbols.
        assert_eq!(symbol_padded_airtime(1, 6_000_000), SYMBOL * 2);
    }

    #[test]
    fn basic_rates() {
        assert_eq!(basic_rate_for(54_000_000), 24_000_000);
        assert_eq!(basic_rate_for(18_000_000), 12_000_000);
        assert_eq!(basic_rate_for(6_000_000), 6_000_000);
        assert_eq!(basic_rate_for(9_000_000), 6_000_000);
    }

    #[test]
    #[should_panic(expected = "not an 802.11a/g OFDM rate")]
    fn non_ofdm_rate_panics() {
        symbol_padded_airtime(100, 11_000_000);
    }
}
