//! Behavioural tests of the MAC option switches: frame-error
//! injection, RTS/CTS protection, the immediate-access ablation, and
//! channel airtime accounting.

use csmaprobe_desim::time::{Dur, Time};
use csmaprobe_mac::{saturated_source, MacOptions, WlanSim};
use csmaprobe_phy::Phy;
use csmaprobe_traffic::{PacketArrival, TraceSource};

fn phy() -> Phy {
    Phy::dsss_11mbps()
}

#[test]
fn frame_errors_cause_retries_and_slowdown() {
    let n = 1500;
    let clean = {
        let mut sim = WlanSim::new(phy(), 5);
        let st = sim.add_station(saturated_source(1500, n));
        let out = sim.run(Time::MAX);
        (out.records(st).last().unwrap().done, out.channel)
    };
    let lossy = {
        let mut sim =
            WlanSim::new(phy(), 5).with_options(MacOptions::default().with_frame_error_rate(0.2));
        let st = sim.add_station(saturated_source(1500, n));
        let out = sim.run(Time::MAX);
        let recs = out.records(st);
        // With retry limit 7 and p=0.2, drops are ~1e-5: all delivered.
        assert_eq!(recs.iter().filter(|r| !r.dropped).count(), n);
        // Retries must actually happen, roughly p/(1-p) per packet.
        let retries: u32 = recs.iter().map(|r| r.retries).sum();
        let per_pkt = retries as f64 / n as f64;
        assert!(
            (0.18..0.35).contains(&per_pkt),
            "retries per packet {per_pkt}"
        );
        (recs.last().unwrap().done, out.channel)
    };
    // 20% errors with full-frame waste: ~25% longer completion.
    let slowdown = lossy.0.as_secs_f64() / clean.0.as_secs_f64();
    assert!(
        (1.15..1.55).contains(&slowdown),
        "completion slowdown {slowdown}"
    );
    // Accounting agrees.
    assert_eq!(clean.1.frame_errors, 0);
    assert_eq!(clean.1.error_time, Dur::ZERO);
    assert!(lossy.1.frame_errors > 0);
    assert!(lossy.1.error_time > Dur::ZERO);
}

#[test]
fn heavy_errors_eventually_drop_frames() {
    let mut sim =
        WlanSim::new(phy(), 7).with_options(MacOptions::default().with_frame_error_rate(0.8));
    let st = sim.add_station(saturated_source(1500, 300));
    let out = sim.run(Time::MAX);
    let recs = out.records(st);
    assert_eq!(recs.len(), 300);
    let dropped = recs.iter().filter(|r| r.dropped).count();
    // P(drop) = 0.8^8 ≈ 0.168.
    let frac = dropped as f64 / 300.0;
    assert!((0.08..0.30).contains(&frac), "drop fraction {frac}");
    // Dropped frames carry max retries.
    for r in recs.iter().filter(|r| r.dropped) {
        assert_eq!(r.retries, phy().retry_limit + 1);
    }
}

#[test]
fn rts_cts_adds_overhead_for_lone_station() {
    let run = |opts: MacOptions| {
        let mut sim = WlanSim::new(phy(), 9).with_options(opts);
        let st = sim.add_station(saturated_source(1500, 500));
        let out = sim.run(Time::MAX);
        let last = out.records(st).last().unwrap().done;
        500.0 * 1500.0 * 8.0 / last.as_secs_f64()
    };
    let plain = run(MacOptions::default());
    let protected = run(MacOptions::default().with_rts_cts(1000));
    // The RTS/CTS preface costs ~2x192us PLCP + control bytes per frame:
    // clearly lower throughput, but not catastrophically so.
    assert!(protected < 0.9 * plain, "plain {plain} rts {protected}");
    assert!(protected > 0.5 * plain, "plain {plain} rts {protected}");
}

#[test]
fn rts_cts_threshold_spares_small_frames() {
    let run = |bytes: u32| {
        let mut sim =
            WlanSim::new(phy(), 11).with_options(MacOptions::default().with_rts_cts(1000));
        let st = sim.add_station(saturated_source(bytes, 200));
        let out = sim.run(Time::MAX);
        let recs = out.records(st);
        // Per-frame exchange duration from the second record on
        // (steady backoff regime).
        let r = &recs[10];
        r.done - r.rx_end // SIFS + ACK, same either way
    };
    // The tail is identical; compare rx_end-head instead.
    let mut sim = WlanSim::new(phy(), 11).with_options(MacOptions::default().with_rts_cts(1000));
    let small = sim.add_station(saturated_source(576, 50));
    let out = sim.run(Time::MAX);
    let p = phy();
    // A 576-byte frame is below the threshold: its rx_end - head must
    // never include the RTS/CTS preface.
    for r in out.records(small) {
        let min_with_preface = p.rts_cts_preface() + p.data_airtime(576) + p.difs();
        if r.retries == 0 && r.access_delay() < min_with_preface {
            // At least one frame's access is too fast to contain a
            // preface: threshold respected.
            return;
        }
    }
    let _ = run(576);
    panic!("all small frames look RTS-protected");
}

#[test]
fn disabling_immediate_access_slows_first_packet() {
    // A lone packet on an idle channel: with immediate access its
    // access delay is DIFS + exchange; without, a backoff is added.
    let one_packet = |opts: MacOptions, seed: u64| {
        let mut sim = WlanSim::new(phy(), seed).with_options(opts);
        let st = sim.add_station(Box::new(TraceSource::new(vec![PacketArrival::new(
            Time::from_millis(1),
            1500,
        )])));
        let out = sim.run(Time::MAX);
        out.records(st)[0].access_delay()
    };
    let p = phy();
    let base = p.difs() + p.success_exchange(1500);
    // Immediate: always exactly the base (grid alignment adds < 1 slot).
    for seed in 0..20 {
        let d = one_packet(MacOptions::default(), seed);
        assert!(d <= base + p.slot, "immediate-access delay {d}");
    }
    // Without: a uniform [0, 31]-slot backoff is added; over 20 seeds at
    // least one draw must exceed 4 slots.
    let mut saw_backoff = false;
    for seed in 0..20 {
        let d = one_packet(MacOptions::default().without_immediate_access(), seed);
        assert!(d >= base, "delay below base: {d}");
        if d > base + p.slot * 4 {
            saw_backoff = true;
        }
    }
    assert!(saw_backoff, "no backoff observed with immediate access off");
}

#[test]
fn channel_accounting_is_consistent() {
    let mut sim = WlanSim::new(phy(), 13);
    let a = sim.add_station(saturated_source(1500, 400));
    let _b = sim.add_station(saturated_source(1500, 400));
    let out = sim.run(Time::MAX);
    let ch = out.channel;
    assert_eq!(ch.collisions, out.collisions);
    assert_eq!(ch.frame_errors, 0);
    // Success airtime accounts for every delivered frame's exchange.
    let p = phy();
    let expected: u64 = [a, csmaprobe_mac::StationId(1)]
        .iter()
        .flat_map(|&id| out.records(id))
        .filter(|r| !r.dropped)
        .map(|r| (p.data_airtime(r.bytes) + p.sifs + p.ack_airtime()).as_nanos())
        .sum();
    assert_eq!(ch.success_time.as_nanos(), expected);
    // Busy time below the final completion instant.
    assert!(ch.busy_time() < out.last_done - Time::ZERO);
    // Utilisation in (0, 1].
    let u = ch.utilisation(out.last_done);
    assert!((0.5..=1.0).contains(&u), "utilisation {u}");
}

#[test]
fn rts_cts_reduces_collision_cost() {
    // Two saturated stations: collision airtime per collision event is
    // much smaller with RTS/CTS (only the 20-byte RTS collides).
    let per_collision = |opts: MacOptions| {
        let mut sim = WlanSim::new(phy(), 17).with_options(opts);
        let _a = sim.add_station(saturated_source(1500, 2000));
        let _b = sim.add_station(saturated_source(1500, 2000));
        let out = sim.run(Time::MAX);
        assert!(out.channel.collisions > 0);
        out.channel.collision_time.as_secs_f64() / out.channel.collisions as f64
    };
    let plain = per_collision(MacOptions::default());
    let protected = per_collision(MacOptions::default().with_rts_cts(1000));
    assert!(
        protected < 0.6 * plain,
        "per-collision cost: plain {plain:.6}s vs rts {protected:.6}s"
    );
}
