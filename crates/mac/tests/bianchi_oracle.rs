//! Bianchi model vs the saturated event simulation — the analytic
//! tier's accuracy contract.
//!
//! The engine router (`csmaprobe_core::engine`) substitutes
//! [`BianchiModel`] for a full event simulation on saturated symmetric
//! cells. These tests pin that substitution to the event-core oracle:
//!
//! * **Documented tolerance**: aggregate saturation throughput and the
//!   mean access delay of the analytic model stay within **5 %** of a
//!   long fixed-seed event simulation for n ∈ {2, 4, 8} saturated
//!   stations. The residual comes from effects the model ignores by
//!   construction (retry-limit drops, post-drop window reset, the
//!   tagged station's sub-slot position inside busy slots) — see the
//!   module docs of `csmaprobe_mac::bianchi`.
//! * **Fixed-seed regression vector**: the analytic access-delay
//!   sampler is deterministic per seed; a pinned prefix guards the
//!   draw-site layout against accidental reordering (which would
//!   silently change every analytic-tier figure).

use csmaprobe_desim::time::Time;
use csmaprobe_mac::{saturated_source, BianchiModel, WlanSim};
use csmaprobe_phy::Phy;

const PAYLOAD: u32 = 1500;

/// Run `n` saturated stations for `packets` frames each and return
/// (aggregate throughput bps, mean access delay s) over the whole run.
fn saturated_event(n: usize, packets: usize, seed: u64) -> (f64, f64) {
    let phy = Phy::dsss_11mbps();
    let mut sim = WlanSim::new(phy, seed);
    let ids: Vec<_> = (0..n)
        .map(|_| sim.add_station(saturated_source(PAYLOAD, packets)))
        .collect();
    let out = sim.run(Time::MAX);

    let mut bits = 0u64;
    let mut last_done = Time::ZERO;
    let mut delay_sum = 0.0;
    let mut delay_n = 0usize;
    for &id in &ids {
        for r in out.records(id) {
            if !r.dropped {
                bits += r.bytes as u64 * 8;
                last_done = last_done.max(r.done);
            }
        }
        let d = out.access_delays_s(id);
        delay_n += d.len();
        delay_sum += d.iter().sum::<f64>();
    }
    (
        bits as f64 / last_done.as_secs_f64(),
        delay_sum / delay_n as f64,
    )
}

#[test]
fn throughput_within_five_percent_of_event_sim() {
    for &n in &[2usize, 4, 8] {
        let model = BianchiModel::solve(&Phy::dsss_11mbps(), n, PAYLOAD);
        let (sim_bps, _) = saturated_event(n, 4000, 0xB1A5 + n as u64);
        let rel = (model.throughput_bps - sim_bps).abs() / sim_bps;
        assert!(
            rel < 0.05,
            "n={n}: model {:.0} vs sim {sim_bps:.0} bps (rel {rel:.4})",
            model.throughput_bps
        );
    }
}

#[test]
fn mean_access_delay_within_five_percent_of_event_sim() {
    for &n in &[2usize, 4, 8] {
        let model = BianchiModel::solve(&Phy::dsss_11mbps(), n, PAYLOAD);
        let (_, sim_mu) = saturated_event(n, 4000, 0xDE1A + n as u64);
        let rel = (model.mean_access_delay_s - sim_mu).abs() / sim_mu;
        assert!(
            rel < 0.05,
            "n={n}: model {:.6} vs sim {sim_mu:.6} s (rel {rel:.4})",
            model.mean_access_delay_s
        );
    }
}

#[test]
fn sampler_mean_within_five_percent_of_event_sim() {
    // The per-packet analytic sampler (not just the closed-form mean)
    // must agree with the event core too: the KS equivalence harness
    // relies on its distribution, not only its first moment.
    for &n in &[2usize, 4] {
        let model = BianchiModel::solve(&Phy::dsss_11mbps(), n, PAYLOAD);
        let draws = model.access_delays(&Phy::dsss_11mbps(), PAYLOAD, 20_000, 0x5A3);
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let (_, sim_mu) = saturated_event(n, 4000, 0xAB + n as u64);
        let rel = (mean - sim_mu).abs() / sim_mu;
        assert!(
            rel < 0.05,
            "n={n}: sampler {mean:.6} vs sim {sim_mu:.6} (rel {rel:.4})"
        );
    }
}

#[test]
fn fixed_seed_regression_vector() {
    // Bit-exact pins. If a refactor legitimately changes RNG draw
    // order, re-derive these with `cargo test -- --nocapture` and bump
    // them together with a CHANGES.md note: every analytic-tier figure
    // shifts with them.
    let phy = Phy::dsss_11mbps();
    let model = BianchiModel::solve(&phy, 4, PAYLOAD);
    assert!(
        (model.tau - 0.050653753318434).abs() < 1e-12,
        "tau pin: got {:.15}",
        model.tau
    );
    assert!(
        (model.p - 0.144393819317876).abs() < 1e-12,
        "p pin: got {:.15}",
        model.p
    );
    assert!(
        (model.throughput_bps - 6_526_746.139_597).abs() < 1e-3,
        "throughput pin: got {:.6}",
        model.throughput_bps
    );
    let v = model.access_delays(&phy, PAYLOAD, 4, 0xC0FFEE);
    let expect = [1.004_763_8e-2, 3.362_546e-3, 1.671_273e-3, 1.874_400_3e-2];
    for (got, want) in v.iter().zip(expect.iter()) {
        assert!(
            (got - want).abs() < 1e-12,
            "regression vector drifted: got {v:?}"
        );
    }
}
