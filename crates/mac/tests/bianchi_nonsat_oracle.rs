//! Finite-load fixed point vs the event-core oracle — the non-saturated
//! analytic tier's accuracy contract.
//!
//! The engine router substitutes [`NonSatModel`] for a full event
//! simulation on certified finite-load cells (Poisson contenders, no
//! FIFO cross-traffic, uniform frame sizes). These tests pin that
//! substitution across the same regime matrix the tier figures sweep —
//! sub-knee, knee and above-knee offered loads at 2, 5 and 10 stations:
//!
//! * **Documented tolerance**: delivered throughput (probe station,
//!   saturated stations, and the aggregate) stays within **5 %** of a
//!   long seed-averaged event simulation on every regime cell, and the
//!   probe's mean access delay stays within **5 %** on every cell the
//!   model **delay-certifies** (`NonSatModel::delay_certified`). Cells
//!   it refuses — the deep knee, where queue-buildup excursions
//!   dominate — are asserted to be refused (the router must keep them
//!   on the simulator).
//! * **Fixed-seed regression vector**: the per-frame delay-chain
//!   sampler is deterministic per seed; a pinned prefix guards the
//!   draw-site layout (shared with `BianchiModel::sample_access_delay`)
//!   against accidental reordering.
//! * **Convergence property**: across a swept lattice of offered loads
//!   the solver either certifies convergence (residual below the bound)
//!   or reports [`NonSatError::NotConverged`] — it never spins and
//!   never returns an uncertified solution.

use csmaprobe_desim::time::{Dur, Time};
use csmaprobe_mac::{NonSatModel, NonSatStation, WlanSim};
use csmaprobe_phy::Phy;
use csmaprobe_traffic::{CbrSource, PoissonSource, SizeModel, Source};

const PAYLOAD: u32 = 1500;

/// The finite-load regime matrix: (name, station loads in bits/s).
/// Station 0 plays the probe (CBR in the event oracle, as in
/// `WlanLink::steady_state_event`); the rest are Poisson contenders.
fn regime_loads() -> Vec<(&'static str, Vec<f64>)> {
    vec![
        // 2 stations: the Fig 1 shape (probe vs one contender).
        ("sub-2", vec![1.0e6, 2.0e6]),
        ("knee-2", vec![1.0e6, 4.5e6]),
        ("above-2", vec![9.0e6, 4.5e6]),
        // 5 stations.
        ("sub-5", vec![0.7e6; 5]),
        ("knee-5", vec![1.5e6, 1.2e6, 1.2e6, 1.2e6, 1.2e6]),
        ("above-5", vec![6.0e6, 1.2e6, 1.2e6, 1.2e6, 1.2e6]),
        // 10 stations.
        ("sub-10", vec![0.3e6; 10]),
        ("knee-10", {
            let mut v = vec![1.0e6];
            v.extend(std::iter::repeat(0.55e6).take(9));
            v
        }),
        ("above-10", {
            let mut v = vec![4.0e6];
            v.extend(std::iter::repeat(0.55e6).take(9));
            v
        }),
    ]
}

fn stations(loads: &[f64]) -> Vec<NonSatStation> {
    loads
        .iter()
        .map(|&rate_bps| NonSatStation {
            rate_bps,
            bytes: PAYLOAD,
        })
        .collect()
}

/// One event-core run of the finite-load cell: CBR station 0 + Poisson
/// contenders, delivered bits per station and station-0 access delays
/// counted over the second half of `duration` (the same warm-up and
/// window discipline as `WlanLink::steady_state_event`).
fn finite_event(loads: &[f64], duration: Dur, seed: u64) -> (Vec<f64>, f64, usize) {
    let phy = Phy::dsss_11mbps();
    let warmup = Dur::from_millis(500);
    let start = Time::ZERO + warmup;
    let end = start + duration;
    let mut sim = WlanSim::new(phy, seed);
    let ids: Vec<_> = loads
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let sizes = SizeModel::Fixed(PAYLOAD);
            let src: Box<dyn Source> = if i == 0 {
                Box::new(CbrSource::from_bitrate(rate, sizes, start, end))
            } else {
                Box::new(PoissonSource::from_bitrate(rate, sizes, Time::ZERO, end))
            };
            sim.add_station(src)
        })
        .collect();
    let out = sim.run(end + Dur::from_secs(2));
    let mid = start + duration / 2;
    let secs = (end - mid).as_secs_f64();
    let rates: Vec<f64> = ids
        .iter()
        .map(|&id| {
            let bits: u64 = out
                .records(id)
                .iter()
                .filter(|r| !r.dropped && r.rx_end > mid && r.rx_end <= end)
                .map(|r| r.bytes as u64 * 8)
                .sum();
            bits as f64 / secs
        })
        .collect();
    let mut delay_sum = 0.0;
    let mut delay_n = 0usize;
    for r in out.records(ids[0]) {
        if !r.dropped && r.rx_end > mid && r.rx_end <= end {
            delay_sum += r.access_delay().as_secs_f64();
            delay_n += 1;
        }
    }
    (rates, delay_sum / delay_n.max(1) as f64, delay_n)
}

/// Seed-averaged event oracle: `reps` independent runs pooled, so the
/// Poisson arrival noise (~1/sqrt(frames)) sits well below the 5 % gate.
fn averaged_event(loads: &[f64], duration: Dur, reps: u64, base_seed: u64) -> (Vec<f64>, f64) {
    let mut rates = vec![0.0; loads.len()];
    let mut delay_sum = 0.0;
    let mut delay_w = 0.0;
    for i in 0..reps {
        let (r, mu, n) = finite_event(loads, duration, base_seed + i);
        for (acc, v) in rates.iter_mut().zip(&r) {
            *acc += v;
        }
        delay_sum += mu * n as f64;
        delay_w += n as f64;
    }
    for v in &mut rates {
        *v /= reps as f64;
    }
    (rates, delay_sum / delay_w.max(1.0))
}

#[test]
fn throughput_within_five_percent_of_event_sim() {
    // Per-station gates apply where the event measurement has enough
    // frames to resolve 5 %: the CBR probe (station 0) and saturated
    // stations. Lightly-loaded Poisson contenders deliver a few hundred
    // frames per window — their per-station event rates carry several
    // percent of pure arrival noise — so they are gated through the
    // aggregate instead.
    println!("regime     station  model_mbps  event_mbps  rel");
    for (name, loads) in regime_loads() {
        let model = NonSatModel::solve(&Phy::dsss_11mbps(), &stations(&loads)).unwrap();
        let (event, _) = averaged_event(&loads, Dur::from_secs(4), 6, 0x0F5E);
        for (i, s) in model.per_station.iter().enumerate() {
            let rel = (s.throughput_bps - event[i]).abs() / event[i].max(1.0);
            println!(
                "{name:<10} {i:>3}  {:>10.4}  {:>10.4}  {rel:.4}",
                s.throughput_bps / 1e6,
                event[i] / 1e6
            );
            if i == 0 || s.saturated {
                assert!(
                    rel < 0.05,
                    "{name} station {i}: model {:.0} vs event {:.0} (rel {rel:.4})",
                    s.throughput_bps,
                    event[i]
                );
            }
        }
        let agg_model = model.throughput_bps;
        let agg_event: f64 = event.iter().sum();
        let agg_rel = (agg_model - agg_event).abs() / agg_event;
        assert!(
            agg_rel < 0.05,
            "{name} aggregate: model {agg_model:.0} vs event {agg_event:.0} (rel {agg_rel:.4})"
        );
    }
}

#[test]
fn mean_access_delay_within_five_percent_of_event_sim() {
    // The ±5 % delay gate applies exactly where the model certifies it
    // (`delay_certified`): the sub-knee and above-knee rows. The knee
    // rows — queue-buildup excursion territory, the paper's "transitory
    // periods" — must be *refused* by the predicate, and the measured
    // deviation there must indeed be an underestimate beyond the gate
    // (otherwise the predicate is leaving accuracy on the table).
    println!("regime     certified  model_ms  event_ms  rel");
    let mut refused = 0usize;
    for (name, loads) in regime_loads() {
        let model = NonSatModel::solve(&Phy::dsss_11mbps(), &stations(&loads)).unwrap();
        // Delay means are heavy-tailed: a light probe delivers only
        // ~100 frames per window, so the event mean needs deep seed
        // averaging to resolve the 5 % gate.
        let (_, event_mu) = averaged_event(&loads, Dur::from_secs(4), 20, 0xDE1B);
        let mu = model.per_station[0].mean_access_delay_s;
        let rel = (mu - event_mu).abs() / event_mu;
        let certified = model.delay_certified(0);
        println!(
            "{name:<10} {certified:<9}  {:>8.4}  {:>8.4}  {rel:.4}",
            mu * 1e3,
            event_mu * 1e3
        );
        if certified {
            assert!(rel < 0.05, "certified cell {name}: rel {rel:.4}");
        } else {
            refused += 1;
            assert!(
                mu < event_mu,
                "{name}: refusals must be mean-field underestimates \
                 (model {mu:.6} vs event {event_mu:.6})"
            );
        }
    }
    // The knee rows exist to exercise the refusal path.
    assert!(
        (2..=4).contains(&refused),
        "expected the knee rows (and only them) refused, got {refused}"
    );
}

#[test]
fn sampler_mean_within_five_percent_of_event_sim() {
    // The per-frame chain sampler (not just the closed-form mean) must
    // track the event core: the tier's distributional claim rests on it.
    for (name, loads) in [
        ("sub-2", vec![1.0e6, 2.0e6]),
        ("above-5", vec![6.0e6, 1.2e6, 1.2e6, 1.2e6, 1.2e6]),
    ] {
        let model = NonSatModel::solve(&Phy::dsss_11mbps(), &stations(&loads)).unwrap();
        let draws = model.access_delays(&Phy::dsss_11mbps(), 0, 20_000, 0x5A4);
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let (_, event_mu) = averaged_event(&loads, Dur::from_secs(4), 6, 0xAB2);
        let rel = (mean - event_mu).abs() / event_mu;
        assert!(
            rel < 0.05,
            "{name}: sampler {mean:.6} vs event {event_mu:.6} (rel {rel:.4})"
        );
    }
}

#[test]
#[ignore = "diagnostic: model-vs-event error map across a utilization ladder"]
fn diagnostic_error_ladder() {
    println!("cell                         util  model_ms  event_ms  d_rel   thr0_rel");
    let cells: Vec<(&str, Vec<f64>)> = vec![
        ("light-2 (24%)", vec![0.5e6, 1.0e6]),
        ("mid-2 (48%)", vec![1.0e6, 2.0e6]),
        ("sub-2 (73%)", vec![1.0e6, 4.5e6]),
        ("knee-2 (sat c)", vec![3.0e6, 4.5e6]),
        ("above-2", vec![9.0e6, 4.5e6]),
        ("light-5 (32%)", vec![0.4e6; 5]),
        ("mid-5 (56%)", vec![0.7e6; 5]),
        ("sub-5 (77%)", vec![0.8e6, 1.0e6, 1.0e6, 1.0e6, 1.0e6]),
        ("knee-5 (95%)", vec![1.5e6, 1.2e6, 1.2e6, 1.2e6, 1.2e6]),
        ("above-5", vec![6.0e6, 1.2e6, 1.2e6, 1.2e6, 1.2e6]),
        ("light-10 (32%)", vec![0.2e6; 10]),
        ("mid-10 (56%)", vec![0.35e6; 10]),
        ("sub-10 (81%)", {
            let mut v = vec![0.5e6];
            v.extend(std::iter::repeat(0.45e6).take(9));
            v
        }),
        ("knee-10 (95%)", {
            let mut v = vec![1.0e6];
            v.extend(std::iter::repeat(0.55e6).take(9));
            v
        }),
        ("above-10", {
            let mut v = vec![4.0e6];
            v.extend(std::iter::repeat(0.55e6).take(9));
            v
        }),
    ];
    for (name, loads) in cells {
        let util: f64 = loads.iter().sum::<f64>() / 6.23e6;
        let model = NonSatModel::solve(&Phy::dsss_11mbps(), &stations(&loads)).unwrap();
        let (ev_a, mu_a) = averaged_event(&loads, Dur::from_secs(4), 15, 0x11);
        let (ev_b, mu_b) = averaged_event(&loads, Dur::from_secs(4), 15, 0x5000);
        let event_mu = (mu_a + mu_b) / 2.0;
        let event_thr0 = (ev_a[0] + ev_b[0]) / 2.0;
        let mu = model.per_station[0].mean_access_delay_s;
        let d_rel = (mu - event_mu) / event_mu;
        let t_rel = (model.per_station[0].throughput_bps - event_thr0) / event_thr0;
        println!(
            "{name:<28} {util:.2}  {:>8.4}  {:>8.4}  {d_rel:+.4} (halves {:+.3}/{:+.3})  {t_rel:+.4}",
            mu * 1e3,
            event_mu * 1e3,
            (mu - mu_a) / mu_a,
            (mu - mu_b) / mu_b,
        );
    }
}

#[test]
fn fixed_seed_regression_vector() {
    // Bit-exact pins for the knee-2 cell. If a refactor legitimately
    // changes RNG draw order or the fixed-point arithmetic, re-derive
    // with `cargo test -- --nocapture` and bump these together with a
    // CHANGES.md note: every analytic-tier figure shifts with them.
    let phy = Phy::dsss_11mbps();
    let model = NonSatModel::solve(&phy, &stations(&[3.0e6, 4.5e6])).unwrap();
    assert!(model.residual < NonSatModel::TOLERANCE);
    let s0 = &model.per_station[0];
    assert_eq!(format!("{:.15}", s0.tau), "0.049160571247828");
    assert_eq!(format!("{:.15}", s0.p), "0.057562801006979");
    assert_eq!(format!("{:.15}", s0.rho), "0.904303746862644");
    assert_eq!(format!("{:.6}", s0.throughput_bps), "3000000.000000");
    assert_eq!(
        format!("{:.6}", model.per_station[1].throughput_bps),
        "3511221.830151"
    );
    assert_eq!(format!("{:.9}", s0.mean_access_delay_s), "0.003617215");
    let v = model.access_delays(&phy, 0, 4, 0xC0FFEE);
    let pinned = [0.001891273, 0.003442546, 0.003322546, 0.001631273];
    for (got, want) in v.iter().zip(pinned) {
        assert!(
            (got - want).abs() < 1e-12,
            "sampler drifted: {v:?} vs {pinned:?}"
        );
    }
}

#[test]
fn solver_terminates_with_certificate_or_reports_noncoverage() {
    // Convergence property: across a lattice of offered loads spanning
    // idle to far-past-saturation and 1..=12 stations, solve() always
    // terminates, and every Ok carries a residual below the bound.
    let phy = Phy::dsss_11mbps();
    let mut solved = 0usize;
    let mut refused = 0usize;
    for n in [1usize, 2, 3, 5, 8, 12] {
        for &probe in &[0.1e6, 0.5e6, 1.5e6, 3.0e6, 6.0e6, 12.0e6, 30.0e6] {
            for &cross in &[0.2e6, 0.9e6, 2.0e6, 4.5e6, 9.0e6] {
                let mut loads = vec![probe];
                loads.extend(std::iter::repeat(cross).take(n - 1));
                match NonSatModel::solve(&phy, &stations(&loads)) {
                    Ok(m) => {
                        solved += 1;
                        assert!(
                            m.residual < NonSatModel::TOLERANCE,
                            "n={n} probe={probe} cross={cross}: certificate violated \
                             (residual {})",
                            m.residual
                        );
                        assert!(m.iterations <= NonSatModel::MAX_ITER);
                        for s in &m.per_station {
                            assert!(s.throughput_bps.is_finite() && s.throughput_bps >= 0.0);
                            assert!(
                                s.mean_access_delay_s.is_finite() && s.mean_access_delay_s > 0.0
                            );
                            assert!((0.0..=1.0).contains(&s.rho));
                        }
                    }
                    Err(e) => {
                        refused += 1;
                        // A refusal must be the documented certificate
                        // failure, never a panic or a hang.
                        match e {
                            csmaprobe_mac::NonSatError::NotConverged { residual, .. } => {
                                assert!(residual.is_finite())
                            }
                            csmaprobe_mac::NonSatError::BadInput => {
                                panic!("lattice inputs are all valid")
                            }
                        }
                    }
                }
            }
        }
    }
    println!("lattice: {solved} solved, {refused} refused");
    assert!(solved > 0, "the lattice must certify most cells");
}
