//! The slot-quantised DCF kernel — the fast tier of the engine stack.
//!
//! [`WlanSim`](crate::sim::WlanSim) is the correctness oracle: it keeps
//! a full per-packet record for every station, draws its traffic from
//! boxed [`Source`] trait objects, and materialises queues, winner
//! lists and per-station record vectors on every run. None of that is
//! needed for steady-state measurements, where the only outputs are
//! windowed per-flow bit counts and (optionally) the access-delay
//! records of a single watched flow.
//!
//! This kernel advances the *same* slot-quantised contention state
//! machine — idle grids anchored at `channel_free_at + DIFS`, backoff
//! counters positioning transmissions at `anchor + slots_left · slot`,
//! freeze-and-resume on busy periods, binary exponential contention
//! windows — over flat station arrays with inlined traffic generation
//! and no per-event allocation. It shares [`MacOptions`] and the seeded
//! RNG contract with the event core: station `i` draws from
//! `SimRng::new(derive_seed(seed, i + 1))` and every backoff/arrival
//! draw happens at the same call site in the same order. One
//! replication therefore remains one seed, and on the covered regimes
//! (Poisson/CBR/trace/saturated flows, fixed frame sizes) the kernel is
//! **trajectory-identical** to the event core: same seed, bit-for-bit
//! the same packet schedule. The statistical-equivalence harness
//! (`tests/tier_equivalence.rs`) additionally proves distributional
//! equivalence on disjoint seed sets, which is the property the router
//! actually relies on.
//!
//! What the kernel does *not* model (the router falls back to the event
//! core for these): on/off bursty sources and random frame-size models.

use crate::options::MacOptions;
use crate::sim::{PacketRecord, StationId};
use csmaprobe_desim::rng::{derive_seed, SimRng};
use csmaprobe_desim::time::{Dur, Time};
use csmaprobe_phy::Phy;
use csmaprobe_traffic::{CbrSource, PacketArrival, PoissonSource, SizeModel, Source};
use std::collections::VecDeque;

/// One traffic flow feeding a slotted station's FIFO queue.
#[derive(Debug, Clone)]
pub enum SlottedFlow {
    /// Replay an explicit arrival list (probe trains and sequences).
    Trace(Vec<PacketArrival>),
    /// `packets` frames of `bytes` payload all queued at t = 0 — the
    /// saturated-station convention of [`crate::saturated_source`].
    Saturated {
        /// Payload bytes per frame.
        bytes: u32,
        /// Total frames offered.
        packets: u64,
    },
    /// Poisson arrivals at `rate_bps` of payload on `[start, until)`.
    Poisson {
        /// Offered payload rate, bits/s.
        rate_bps: f64,
        /// Fixed payload size, bytes.
        bytes: u32,
        /// Flow tag carried into records and window accounting.
        flow: u16,
        /// First-arrival reference instant.
        start: Time,
        /// Exclusive end of the arrival process.
        until: Time,
    },
    /// Periodic (CBR) arrivals at `rate_bps` on `[start, until)`.
    Cbr {
        /// Offered payload rate, bits/s.
        rate_bps: f64,
        /// Fixed payload size, bytes.
        bytes: u32,
        /// Flow tag carried into records and window accounting.
        flow: u16,
        /// First (nominal) arrival instant.
        start: Time,
        /// Exclusive end of the arrival process.
        until: Time,
    },
}

/// Inlined flow generator — the concrete source types of the traffic
/// crate, dispatched by enum instead of vtable so the compiler can see
/// through the draws. Draw sites match the event core's sources
/// exactly (they *are* the same implementations for Poisson/CBR).
enum FlowSrc {
    Trace {
        arrivals: Vec<PacketArrival>,
        idx: usize,
    },
    Saturated {
        bytes: u32,
        left: u64,
    },
    Poisson(PoissonSource),
    Cbr(CbrSource),
}

impl FlowSrc {
    fn next(&mut self, rng: &mut SimRng) -> Option<PacketArrival> {
        match self {
            FlowSrc::Trace { arrivals, idx } => {
                let p = arrivals.get(*idx).copied();
                if p.is_some() {
                    *idx += 1;
                }
                p
            }
            FlowSrc::Saturated { bytes, left } => {
                if *left == 0 {
                    return None;
                }
                *left -= 1;
                Some(PacketArrival::new(Time::ZERO, *bytes))
            }
            FlowSrc::Poisson(s) => s.next_packet(rng),
            FlowSrc::Cbr(s) => s.next_packet(rng),
        }
    }
}

impl SlottedFlow {
    fn build(&self) -> FlowSrc {
        match self {
            SlottedFlow::Trace(arrivals) => {
                for w in arrivals.windows(2) {
                    assert!(
                        w[1].time >= w[0].time,
                        "trace arrivals must be time-ordered"
                    );
                }
                FlowSrc::Trace {
                    arrivals: arrivals.clone(),
                    idx: 0,
                }
            }
            SlottedFlow::Saturated { bytes, packets } => FlowSrc::Saturated {
                bytes: *bytes,
                left: *packets,
            },
            SlottedFlow::Poisson {
                rate_bps,
                bytes,
                flow,
                start,
                until,
            } => FlowSrc::Poisson(
                PoissonSource::from_bitrate(*rate_bps, SizeModel::Fixed(*bytes), *start, *until)
                    .with_flow(*flow),
            ),
            SlottedFlow::Cbr {
                rate_bps,
                bytes,
                flow,
                start,
                until,
            } => FlowSrc::Cbr(
                CbrSource::from_bitrate(*rate_bps, SizeModel::Fixed(*bytes), *start, *until)
                    .with_flow(*flow),
            ),
        }
    }
}

/// A station's merged arrival feed. Single-flow stations pull straight
/// from the source (the event core's layout); multi-flow stations
/// replicate [`csmaprobe_traffic::MergeSource`] semantics — one
/// look-ahead per sub-source, primed in order on first pull, ties to
/// the earlier-added flow — so the shared-RNG draw order matches the
/// event core's merged probe/FIFO-cross station.
enum Feed {
    Single(FlowSrc),
    Merged {
        sources: Vec<FlowSrc>,
        pending: Vec<Option<PacketArrival>>,
        primed: bool,
    },
}

impl Feed {
    fn next(&mut self, rng: &mut SimRng) -> Option<PacketArrival> {
        match self {
            Feed::Single(src) => src.next(rng),
            Feed::Merged {
                sources,
                pending,
                primed,
            } => {
                if !*primed {
                    for (i, s) in sources.iter_mut().enumerate() {
                        pending[i] = s.next(rng);
                    }
                    *primed = true;
                }
                let mut best: Option<usize> = None;
                for (i, p) in pending.iter().enumerate() {
                    if let Some(pkt) = p {
                        match best {
                            Some(b) if pending[b].unwrap().time <= pkt.time => {}
                            _ => best = Some(i),
                        }
                    }
                }
                let i = best?;
                let out = pending[i].take();
                pending[i] = sources[i].next(rng);
                out
            }
        }
    }
}

/// One backoff draw, for invariant checking (enable with
/// [`SlottedSim::watch_backoffs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffDraw {
    /// Station that drew.
    pub station: usize,
    /// Backoff stage at the draw (contention-window doublings so far).
    pub stage: u32,
    /// The contention window the draw was bounded by.
    pub cw: u32,
    /// The drawn counter, in `[0, cw]`.
    pub slots: u32,
}

struct SlotStation {
    feed: Feed,
    rng: SimRng,
    next_arrival: Option<PacketArrival>,
    /// FIFO transmission queue: `(arrival, bytes, flow)`.
    queue: VecDeque<(Time, u32, u16)>,
    head_since: Time,
    slots_left: u32,
    count_start: Time,
    contending: bool,
    stage: u32,
    retries: u32,
    /// Distinct flow tags of this station, in declaration order — the
    /// window-accounting slots.
    flow_tags: Vec<u16>,
}

impl SlotStation {
    #[inline]
    fn tx_time(&self, slot: Dur) -> Time {
        debug_assert!(self.contending);
        self.count_start + slot * self.slots_left as u64
    }
}

#[derive(Debug, Clone, Copy)]
struct StopRule {
    station: usize,
    flow: u16,
    remaining: usize,
}

/// The slot-quantised fast-tier simulator. API mirrors
/// [`WlanSim`](crate::sim::WlanSim): build, attach stations, run.
pub struct SlottedSim {
    phy: Phy,
    seed: u64,
    options: MacOptions,
    stations: Vec<SlotStation>,
    stop_rule: Option<StopRule>,
    watch: Option<(usize, u16)>,
    record_backoffs: bool,
    window: Option<(Time, Time)>,
}

/// Everything a finished slotted run produced.
pub struct SlottedOutput {
    /// Packet records of the watched flow ([`SlottedSim::watch_flow`]),
    /// in completion order. Empty when nothing is watched.
    pub records: Vec<PacketRecord>,
    /// Number of collision events on the channel.
    pub collisions: u64,
    /// Completion instant of the last delivered/dropped packet.
    pub last_done: Time,
    /// Delivered payload bits per station per flow slot, counting
    /// frames with `rx_end` inside the configured window (everything
    /// when no window was set).
    pub window_bits: Vec<Vec<u64>>,
    /// Flow tags labelling each station's `window_bits` slots.
    pub flow_tags: Vec<Vec<u16>>,
    /// Every backoff draw, when [`SlottedSim::watch_backoffs`] was on.
    pub backoffs: Vec<BackoffDraw>,
}

impl SlottedOutput {
    /// Delivered bits of one station/flow inside the window.
    pub fn flow_window_bits(&self, station: StationId, flow: u16) -> u64 {
        self.flow_tags[station.0]
            .iter()
            .position(|&t| t == flow)
            .map(|i| self.window_bits[station.0][i])
            .unwrap_or(0)
    }

    /// Access delays of the watched flow's records, seconds.
    pub fn access_delays_s(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.access_delay().as_secs_f64())
            .collect()
    }
}

impl SlottedSim {
    /// A slotted simulation over `phy` with the given master seed.
    pub fn new(phy: Phy, seed: u64) -> Self {
        SlottedSim {
            phy,
            seed,
            options: MacOptions::default(),
            stations: Vec::new(),
            stop_rule: None,
            watch: None,
            record_backoffs: false,
            window: None,
        }
    }

    /// Builder-style MAC options override.
    pub fn with_options(mut self, options: MacOptions) -> Self {
        self.options = options;
        self
    }

    /// Attach a station fed by the merged `flows` (one entry = a
    /// single-flow station, the common case). Ids are dense indices in
    /// attach order; the station RNG is
    /// `SimRng::new(derive_seed(seed, idx + 1))`, the event core's
    /// contract.
    pub fn add_station(&mut self, flows: Vec<SlottedFlow>) -> StationId {
        assert!(!flows.is_empty(), "station needs at least one flow");
        let idx = self.stations.len();
        let rng = SimRng::new(derive_seed(self.seed, idx as u64 + 1));
        let mut flow_tags: Vec<u16> = Vec::with_capacity(flows.len());
        for f in &flows {
            let tag = match f {
                SlottedFlow::Trace(arrivals) => arrivals.first().map(|p| p.flow).unwrap_or(0),
                SlottedFlow::Saturated { .. } => 0,
                SlottedFlow::Poisson { flow, .. } | SlottedFlow::Cbr { flow, .. } => *flow,
            };
            if !flow_tags.contains(&tag) {
                flow_tags.push(tag);
            }
        }
        let mut sources: Vec<FlowSrc> = flows.iter().map(|f| f.build()).collect();
        let feed = if sources.len() == 1 {
            Feed::Single(sources.pop().unwrap())
        } else {
            let n = sources.len();
            Feed::Merged {
                sources,
                pending: vec![None; n],
                primed: false,
            }
        };
        self.stations.push(SlotStation {
            feed,
            rng,
            next_arrival: None,
            queue: VecDeque::new(),
            head_since: Time::ZERO,
            slots_left: 0,
            count_start: Time::ZERO,
            contending: false,
            stage: 0,
            retries: 0,
            flow_tags,
        });
        StationId(idx)
    }

    /// Stop once `station` has completed `count` packets of `flow`
    /// (same early-termination contract as the event core).
    pub fn stop_after_flow(&mut self, station: StationId, flow: u16, count: usize) {
        self.stop_rule = Some(StopRule {
            station: station.0,
            flow,
            remaining: count,
        });
    }

    /// Keep full [`PacketRecord`]s for one station's flow (the probe);
    /// all other completions only feed the window counters.
    pub fn watch_flow(&mut self, station: StationId, flow: u16) {
        self.watch = Some((station.0, flow));
    }

    /// Record every backoff draw (stage, window, value) for invariant
    /// tests.
    pub fn watch_backoffs(&mut self) {
        self.record_backoffs = true;
    }

    /// Count delivered bits only for frames whose `rx_end` falls in
    /// `(from, to]` — the steady-state measurement window.
    pub fn set_window(&mut self, from: Time, to: Time) {
        debug_assert!(to > from);
        self.window = Some((from, to));
    }

    /// Align `t` up to the idle-period slot grid anchored at `anchor`
    /// (identical to the event core's grid rule).
    #[inline]
    fn align_up(anchor: Time, slot: Dur, t: Time) -> Time {
        if t <= anchor {
            return anchor;
        }
        let offset = t - anchor;
        anchor + slot * offset.div_ceil_dur(slot)
    }

    /// Run until `horizon` (exclusive) or until no event remains.
    pub fn run(mut self, horizon: Time) -> SlottedOutput {
        let slot = self.phy.slot;
        let difs = self.phy.difs();
        let retry_limit = self.phy.retry_limit;
        let mut channel_free_at = Time::ZERO;
        let mut last_done = Time::ZERO;
        let mut collisions = 0u64;
        let mut stop = self.stop_rule;
        let watch = self.watch;
        let window = self.window;
        let mut records: Vec<PacketRecord> = Vec::new();
        let mut backoffs: Vec<BackoffDraw> = Vec::new();
        let mut window_bits: Vec<Vec<u64>> = self
            .stations
            .iter()
            .map(|st| vec![0u64; st.flow_tags.len()])
            .collect();

        // Prime every station's arrival look-ahead (the event core's
        // first `next_packet` call per station, in station order).
        for st in &mut self.stations {
            st.next_arrival = st.feed.next(&mut st.rng);
        }

        macro_rules! draw_backoff {
            ($st:expr, $i:expr, $stage:expr) => {{
                let cw = self.phy.cw_at_stage($stage);
                let slots = $st.rng.range_inclusive(0, cw as u64) as u32;
                if self.record_backoffs {
                    backoffs.push(BackoffDraw {
                        station: $i,
                        stage: $stage,
                        cw,
                        slots,
                    });
                }
                slots
            }};
        }

        // Credit a delivered frame to its station/flow window slot.
        let credit = |window_bits: &mut Vec<Vec<u64>>,
                      flow_tags: &[u16],
                      station: usize,
                      flow: u16,
                      bytes: u32,
                      rx_end: Time| {
            if let Some((from, to)) = window {
                if rx_end <= from || rx_end > to {
                    return;
                }
            }
            if let Some(slot_idx) = flow_tags.iter().position(|&t| t == flow) {
                window_bits[station][slot_idx] += bytes as u64 * 8;
            }
        };

        loop {
            if stop.is_some_and(|s| s.remaining == 0) {
                break;
            }

            // Earliest pending arrival across stations.
            let mut next_arr = Time::MAX;
            let mut arr_station = usize::MAX;
            for (i, st) in self.stations.iter().enumerate() {
                if let Some(p) = st.next_arrival {
                    if p.time < next_arr {
                        next_arr = p.time;
                        arr_station = i;
                    }
                }
            }

            // Earliest candidate transmission across contending stations.
            let mut next_tx = Time::MAX;
            for st in &self.stations {
                if st.contending {
                    let t = st.tx_time(slot);
                    if t < next_tx {
                        next_tx = t;
                    }
                }
            }

            let next_event = next_arr.min(next_tx);
            if next_event == Time::MAX || next_event >= horizon {
                break;
            }

            if next_arr <= next_tx {
                // ---- arrival ----
                let st = &mut self.stations[arr_station];
                let pkt = st.next_arrival.take().unwrap();
                st.next_arrival = st.feed.next(&mut st.rng);
                debug_assert!(
                    st.next_arrival.map(|n| n.time >= pkt.time).unwrap_or(true),
                    "flow emitted decreasing arrival times"
                );
                st.queue.push_back((pkt.time, pkt.bytes, pkt.flow));
                if st.queue.len() == 1 {
                    st.head_since = pkt.time;
                    st.stage = 0;
                    st.retries = 0;
                    st.contending = true;
                    if pkt.time < channel_free_at {
                        st.slots_left = draw_backoff!(st, arr_station, 0);
                        st.count_start = channel_free_at + difs;
                    } else {
                        let anchor = channel_free_at + difs;
                        st.slots_left = if self.options.immediate_access {
                            0
                        } else {
                            draw_backoff!(st, arr_station, 0)
                        };
                        st.count_start = Self::align_up(anchor, slot, pkt.time + difs);
                    }
                }
                continue;
            }

            // ---- transmission(s) at next_tx ----
            let t = next_tx;
            // Snapshot the winner set before freezing: the freeze pass
            // below rewrites non-winners' `slots_left` without touching
            // `count_start`, so `tx_time` is no longer meaningful for
            // them afterwards (a frozen count can coincidentally land
            // back on `t`).
            let winners: Vec<usize> = self
                .stations
                .iter()
                .enumerate()
                .filter(|(_, st)| st.contending && st.tx_time(slot) == t)
                .map(|(i, _)| i)
                .collect();
            debug_assert!(!winners.is_empty());
            let winner_count = winners.len();
            let w0 = winners[0];

            // Freeze every other contending station.
            for i in 0..self.stations.len() {
                if winners.contains(&i) {
                    continue;
                }
                let st = &mut self.stations[i];
                if !st.contending {
                    continue;
                }
                if st.count_start <= t {
                    let elapsed = (t - st.count_start).div_dur(slot) as u32;
                    debug_assert!(
                        st.slots_left > elapsed,
                        "non-winner should not have expired"
                    );
                    st.slots_left -= elapsed;
                } else if st.slots_left == 0 {
                    // Lost its immediate-access opportunity to this busy
                    // period: must back off like everyone else.
                    let stage = st.stage;
                    st.slots_left = draw_backoff!(st, i, stage);
                }
            }

            let busy_end;
            if winner_count == 1 {
                let w = w0;
                let failed = self.options.frame_error_rate > 0.0
                    && self.stations[w].rng.f64() < self.options.frame_error_rate;
                let st = &mut self.stations[w];
                let (arrival, bytes, flow) = *st.queue.front().expect("winner with empty queue");
                let uses_rts = self.options.uses_rts(bytes);
                let preface = if uses_rts {
                    self.phy.rts_cts_preface()
                } else {
                    Dur::ZERO
                };
                let data = self.phy.data_airtime(bytes);
                if failed {
                    // ---- corrupted data frame: no ACK, BEB retry ----
                    let fail_end = t + preface + data + self.phy.ack_timeout();
                    st.retries += 1;
                    st.stage += 1;
                    if st.retries > retry_limit {
                        if watch == Some((w, flow)) {
                            records.push(PacketRecord {
                                arrival,
                                head: st.head_since,
                                rx_end: t + preface + data,
                                done: fail_end,
                                bytes,
                                retries: st.retries,
                                dropped: true,
                                flow,
                            });
                        }
                        if let Some(s) = stop.as_mut() {
                            if s.station == w && s.flow == flow {
                                s.remaining = s.remaining.saturating_sub(1);
                            }
                        }
                        last_done = last_done.max(fail_end);
                        st.queue.pop_front();
                        Self::rearm_after_completion(
                            st,
                            w,
                            fail_end,
                            &self.phy,
                            self.record_backoffs,
                            &mut backoffs,
                        );
                    } else {
                        let stage = st.stage;
                        st.slots_left = draw_backoff!(st, w, stage);
                    }
                    busy_end = fail_end;
                } else {
                    // ---- success ----
                    let rx_end = t + preface + data;
                    let done = rx_end + self.phy.sifs + self.phy.ack_airtime();
                    if watch == Some((w, flow)) {
                        records.push(PacketRecord {
                            arrival,
                            head: st.head_since,
                            rx_end,
                            done,
                            bytes,
                            retries: st.retries,
                            dropped: false,
                            flow,
                        });
                    }
                    credit(&mut window_bits, &st.flow_tags, w, flow, bytes, rx_end);
                    if let Some(s) = stop.as_mut() {
                        if s.station == w && s.flow == flow {
                            s.remaining = s.remaining.saturating_sub(1);
                        }
                    }
                    last_done = last_done.max(done);
                    st.queue.pop_front();
                    Self::rearm_after_completion(
                        st,
                        w,
                        done,
                        &self.phy,
                        self.record_backoffs,
                        &mut backoffs,
                    );
                    busy_end = done;
                }
            } else {
                // ---- collision ----
                collisions += 1;
                let mut max_frame = Dur::ZERO;
                for &i in &winners {
                    let st = &self.stations[i];
                    let (_, bytes, _) = *st.queue.front().unwrap();
                    let air = if self.options.uses_rts(bytes) {
                        // RTS/CTS: only the short RTS collides.
                        self.phy.rts_airtime()
                    } else {
                        self.phy.data_airtime(bytes)
                    };
                    max_frame = max_frame.max(air);
                }
                // The channel is unusable for the longest frame plus the
                // ACK/CTS-timeout the colliders observe before resuming.
                busy_end = t + max_frame + self.phy.sifs + self.phy.ack_airtime();
                for &i in &winners {
                    let st = &mut self.stations[i];
                    st.retries += 1;
                    st.stage += 1;
                    if st.retries > retry_limit {
                        // Drop the frame.
                        let (arrival, bytes, flow) = *st.queue.front().unwrap();
                        if watch == Some((i, flow)) {
                            records.push(PacketRecord {
                                arrival,
                                head: st.head_since,
                                rx_end: t + self.phy.data_airtime(bytes),
                                done: busy_end,
                                bytes,
                                retries: st.retries,
                                dropped: true,
                                flow,
                            });
                        }
                        if let Some(s) = stop.as_mut() {
                            if s.station == i && s.flow == flow {
                                s.remaining = s.remaining.saturating_sub(1);
                            }
                        }
                        last_done = last_done.max(busy_end);
                        st.queue.pop_front();
                        Self::rearm_after_completion(
                            st,
                            i,
                            busy_end,
                            &self.phy,
                            self.record_backoffs,
                            &mut backoffs,
                        );
                    } else {
                        let stage = st.stage;
                        st.slots_left = draw_backoff!(st, i, stage);
                    }
                }
            }

            channel_free_at = busy_end;
            // Re-anchor every contending station on the new idle grid.
            let anchor = channel_free_at + difs;
            for st in &mut self.stations {
                if st.contending {
                    st.count_start = anchor;
                }
            }
        }

        let flow_tags = self
            .stations
            .iter()
            .map(|st| st.flow_tags.clone())
            .collect();
        SlottedOutput {
            records,
            collisions,
            last_done,
            window_bits,
            flow_tags,
            backoffs,
        }
    }

    /// After the head packet completes: reset the contention window and
    /// arm the next head, if any, with a fresh post-transmission
    /// backoff. Identical to the event core's rearm rule.
    fn rearm_after_completion(
        st: &mut SlotStation,
        idx: usize,
        done: Time,
        phy: &Phy,
        record: bool,
        backoffs: &mut Vec<BackoffDraw>,
    ) {
        st.stage = 0;
        st.retries = 0;
        if st.queue.is_empty() {
            st.contending = false;
        } else {
            st.head_since = done;
            let cw = phy.cw_at_stage(0);
            let slots = st.rng.range_inclusive(0, cw as u64) as u32;
            if record {
                backoffs.push(BackoffDraw {
                    station: idx,
                    stage: 0,
                    cw,
                    slots,
                });
            }
            st.slots_left = slots;
            st.contending = true;
            // count_start is set by the caller's re-anchoring pass.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::WlanSim;
    use crate::{saturated_source, MacOptions};
    use csmaprobe_traffic::TraceSource;

    fn phy() -> Phy {
        Phy::dsss_11mbps()
    }

    /// Event-core replica of a kernel configuration: same seed, same
    /// station order, equivalent sources.
    fn event_records(
        seed: u64,
        stations: &[Vec<SlottedFlow>],
        watch: (usize, u16),
        horizon: Time,
        options: MacOptions,
    ) -> Vec<PacketRecord> {
        let mut sim = WlanSim::new(phy(), seed).with_options(options);
        let mut ids = Vec::new();
        for flows in stations {
            let sources: Vec<Box<dyn Source>> = flows
                .iter()
                .map(|f| -> Box<dyn Source> {
                    match f {
                        SlottedFlow::Trace(arrivals) => {
                            Box::new(TraceSource::new(arrivals.clone()))
                        }
                        SlottedFlow::Saturated { bytes, packets } => {
                            saturated_source(*bytes, *packets as usize)
                        }
                        SlottedFlow::Poisson {
                            rate_bps,
                            bytes,
                            flow,
                            start,
                            until,
                        } => Box::new(
                            PoissonSource::from_bitrate(
                                *rate_bps,
                                SizeModel::Fixed(*bytes),
                                *start,
                                *until,
                            )
                            .with_flow(*flow),
                        ),
                        SlottedFlow::Cbr {
                            rate_bps,
                            bytes,
                            flow,
                            start,
                            until,
                        } => Box::new(
                            CbrSource::from_bitrate(
                                *rate_bps,
                                SizeModel::Fixed(*bytes),
                                *start,
                                *until,
                            )
                            .with_flow(*flow),
                        ),
                    }
                })
                .collect();
            let src: Box<dyn Source> = if sources.len() == 1 {
                sources.into_iter().next().unwrap()
            } else {
                Box::new(csmaprobe_traffic::MergeSource::new(sources))
            };
            ids.push(sim.add_station(src));
        }
        let out = sim.run(horizon);
        out.flow_records(ids[watch.0], watch.1)
    }

    fn slotted_records(
        seed: u64,
        stations: &[Vec<SlottedFlow>],
        watch: (usize, u16),
        horizon: Time,
        options: MacOptions,
    ) -> Vec<PacketRecord> {
        let mut sim = SlottedSim::new(phy(), seed).with_options(options);
        let mut ids = Vec::new();
        for flows in stations {
            ids.push(sim.add_station(flows.clone()));
        }
        sim.watch_flow(ids[watch.0], watch.1);
        sim.run(horizon).records
    }

    #[test]
    fn single_saturated_station_bit_identical() {
        let cfg = vec![vec![SlottedFlow::Saturated {
            bytes: 1500,
            packets: 300,
        }]];
        for seed in [1u64, 2, 99, 0xC0FFEE] {
            let ev = event_records(seed, &cfg, (0, 0), Time::MAX, MacOptions::default());
            let sl = slotted_records(seed, &cfg, (0, 0), Time::MAX, MacOptions::default());
            assert_eq!(ev, sl, "seed {seed}");
            assert_eq!(ev.len(), 300);
        }
    }

    #[test]
    fn two_saturated_stations_bit_identical() {
        let cfg = vec![
            vec![SlottedFlow::Saturated {
                bytes: 1500,
                packets: 400,
            }],
            vec![SlottedFlow::Saturated {
                bytes: 1000,
                packets: 400,
            }],
        ];
        for seed in [7u64, 42] {
            let ev = event_records(seed, &cfg, (0, 0), Time::MAX, MacOptions::default());
            let sl = slotted_records(seed, &cfg, (0, 0), Time::MAX, MacOptions::default());
            assert_eq!(ev, sl, "seed {seed}");
        }
    }

    #[test]
    fn cbr_probe_against_poisson_cross_bit_identical() {
        // The steady-state cell shape: CBR probe + Poisson contender.
        let end = Time::from_secs_f64(3.0);
        let cfg = vec![
            vec![SlottedFlow::Cbr {
                rate_bps: 5_000_000.0,
                bytes: 1500,
                flow: 1,
                start: Time::from_millis(500),
                until: end,
            }],
            vec![SlottedFlow::Poisson {
                rate_bps: 4_500_000.0,
                bytes: 1500,
                flow: 0,
                start: Time::ZERO,
                until: end,
            }],
        ];
        let horizon = end + Dur::from_secs(2);
        let ev = event_records(11, &cfg, (0, 1), horizon, MacOptions::default());
        let sl = slotted_records(11, &cfg, (0, 1), horizon, MacOptions::default());
        assert!(!ev.is_empty());
        assert_eq!(ev, sl);
    }

    #[test]
    fn merged_fifo_cross_bit_identical() {
        // Probe trace + Poisson FIFO cross sharing one queue, plus a
        // contender: the fig-4 station layout.
        let end = Time::from_secs_f64(2.0);
        let probe: Vec<PacketArrival> = (0..100)
            .map(|i| PacketArrival {
                time: Time::from_millis(500) + Dur::from_micros(3000) * i as u64,
                bytes: 1500,
                flow: 1,
            })
            .collect();
        let cfg = vec![
            vec![
                SlottedFlow::Trace(probe),
                SlottedFlow::Poisson {
                    rate_bps: 1_500_000.0,
                    bytes: 1500,
                    flow: 2,
                    start: Time::ZERO,
                    until: end,
                },
            ],
            vec![SlottedFlow::Poisson {
                rate_bps: 3_000_000.0,
                bytes: 1500,
                flow: 0,
                start: Time::ZERO,
                until: end,
            }],
        ];
        let ev = event_records(23, &cfg, (0, 1), end, MacOptions::default());
        let sl = slotted_records(23, &cfg, (0, 1), end, MacOptions::default());
        assert!(!ev.is_empty());
        assert_eq!(ev, sl);
    }

    #[test]
    fn window_bits_match_event_throughput_window() {
        let end = Time::from_secs_f64(4.0);
        let mid = Time::from_secs_f64(2.0);
        let mut sim = SlottedSim::new(phy(), 31);
        let a = sim.add_station(vec![SlottedFlow::Poisson {
            rate_bps: 2_000_000.0,
            bytes: 1500,
            flow: 0,
            start: Time::ZERO,
            until: end,
        }]);
        sim.set_window(mid, end);
        let out = sim.run(end);

        let mut ev = WlanSim::new(phy(), 31);
        let ea = ev.add_station(Box::new(PoissonSource::from_bitrate(
            2_000_000.0,
            SizeModel::Fixed(1500),
            Time::ZERO,
            end,
        )));
        let eout = ev.run(end);
        let ev_bps = eout.throughput_bps_window(ea, mid, end);
        let sl_bps = out.flow_window_bits(a, 0) as f64 / (end - mid).as_secs_f64();
        assert_eq!(ev_bps, sl_bps);
        assert!(sl_bps > 1.5e6, "{sl_bps}");
    }

    #[test]
    fn stop_rule_terminates_early() {
        let mut sim = SlottedSim::new(phy(), 5);
        let a = sim.add_station(vec![SlottedFlow::Saturated {
            bytes: 1500,
            packets: 100_000,
        }]);
        sim.watch_flow(a, 0);
        sim.stop_after_flow(a, 0, 25);
        let out = sim.run(Time::MAX);
        assert_eq!(out.records.len(), 25);
    }

    #[test]
    fn backoff_draws_respect_contention_window() {
        let mut sim = SlottedSim::new(phy(), 9);
        let _a = sim.add_station(vec![SlottedFlow::Saturated {
            bytes: 1500,
            packets: 300,
        }]);
        let _b = sim.add_station(vec![SlottedFlow::Saturated {
            bytes: 1500,
            packets: 300,
        }]);
        sim.watch_backoffs();
        let out = sim.run(Time::MAX);
        assert!(!out.backoffs.is_empty());
        let p = phy();
        for d in &out.backoffs {
            assert_eq!(d.cw, p.cw_at_stage(d.stage));
            assert!(d.slots <= d.cw, "draw {d:?}");
        }
        // Collisions happened, so some draws are at elevated stages.
        assert!(out.collisions > 0);
        assert!(out.backoffs.iter().any(|d| d.stage > 0));
    }

    #[test]
    fn frame_errors_bit_identical() {
        let opts = MacOptions::default().with_frame_error_rate(0.2);
        let cfg = vec![vec![SlottedFlow::Saturated {
            bytes: 1500,
            packets: 200,
        }]];
        let ev = event_records(13, &cfg, (0, 0), Time::MAX, opts);
        let sl = slotted_records(13, &cfg, (0, 0), Time::MAX, opts);
        assert_eq!(ev, sl);
        assert!(ev.iter().any(|r| r.retries > 0));
    }

    #[test]
    fn rts_cts_bit_identical() {
        let opts = MacOptions::default().with_rts_cts(500);
        let cfg = vec![
            vec![SlottedFlow::Saturated {
                bytes: 1500,
                packets: 150,
            }],
            vec![SlottedFlow::Saturated {
                bytes: 1500,
                packets: 150,
            }],
        ];
        let ev = event_records(17, &cfg, (0, 0), Time::MAX, opts);
        let sl = slotted_records(17, &cfg, (0, 0), Time::MAX, opts);
        assert_eq!(ev, sl);
    }

    #[test]
    fn without_immediate_access_bit_identical() {
        let opts = MacOptions::default().without_immediate_access();
        let end = Time::from_secs_f64(1.0);
        let cfg = vec![vec![SlottedFlow::Poisson {
            rate_bps: 1_000_000.0,
            bytes: 1500,
            flow: 0,
            start: Time::ZERO,
            until: end,
        }]];
        let ev = event_records(19, &cfg, (0, 0), end, opts);
        let sl = slotted_records(19, &cfg, (0, 0), end, opts);
        assert!(!ev.is_empty());
        assert_eq!(ev, sl);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let cfg = vec![vec![SlottedFlow::Saturated {
                bytes: 1500,
                packets: 100,
            }]];
            slotted_records(seed, &cfg, (0, 0), Time::MAX, MacOptions::default())
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
